"""Audit an obfuscated contract: opcode baseline vs ScamDetect's CFG view.

Scenario: an auditor receives a contract whose deployer ran it through a
BOSC/BiAn-style obfuscator.  The example shows (a) how much the obfuscator
inflates and reshapes the bytecode, (b) how an opcode-histogram classifier's
verdict becomes unreliable, and (c) how the CFG-based ScamDetect pipeline,
hardened only with opcode-level augmentation, keeps flagging the drainer.

Run with::

    python examples/obfuscated_contract_audit.py
"""

from __future__ import annotations

import random

import numpy as np

from repro import ScamDetectConfig, ScamDetector
from repro.datasets import CorpusGenerator, GeneratorConfig
from repro.datasets.corpus import Corpus
from repro.evaluation.experiments import TRAIN_TIME_PASSES, obfuscate_corpus
from repro.evm.cfg_builder import build_cfg
from repro.evm.contracts import TEMPLATES_BY_NAME
from repro.features import OpcodeHistogramExtractor
from repro.ml import RandomForestClassifier
from repro.obfuscation import EVMObfuscator, ObfuscationReport


def main() -> None:
    print("== obfuscated contract audit ==")

    # --- train both detectors on the same hardened corpus -------------------
    base = CorpusGenerator(GeneratorConfig(platform="evm", num_samples=200,
                                           label_noise=0.02, seed=5)).generate()
    hardened = Corpus(list(base) + list(obfuscate_corpus(base, 0.5, seed=50,
                                                         passes=TRAIN_TIME_PASSES)),
                      name="hardened")
    labels = np.asarray(hardened.labels())

    extractor = OpcodeHistogramExtractor()
    baseline = RandomForestClassifier(n_estimators=40, random_state=0)
    baseline.fit(extractor.fit_transform(hardened), labels)

    detector = ScamDetector(ScamDetectConfig(architecture="gin", readout="max",
                                             epochs=30, seed=5))
    detector.train(hardened)
    print(f"both detectors trained on {len(hardened)} contracts "
          f"(clean + opcode-level augmentation)")

    # --- the contract under audit: a drainer, progressively obfuscated ------
    rng = random.Random(123)
    drainer = TEMPLATES_BY_NAME["approval_drainer"].generate(rng)
    print("\nauditing an approval drainer under increasing obfuscation:")
    header = (f"{'intensity':>9} {'size(B)':>8} {'blocks':>7} {'edges':>6} "
              f"{'baseline p(mal)':>16} {'scamdetect p(mal)':>18}")
    print(header)
    print("-" * len(header))

    for intensity in (0.0, 0.25, 0.5, 0.75, 1.0):
        report = ObfuscationReport()
        if intensity > 0:
            code = EVMObfuscator(intensity=intensity, seed=77).obfuscate(drainer, report)
        else:
            code = drainer
        cfg = build_cfg(code)

        sample_corpus = Corpus([hardened[0].with_bytecode(code, obfuscated=intensity > 0,
                                                          intensity=intensity)])
        baseline_probability = baseline.predict_proba(
            extractor.transform(sample_corpus))[0, 1]
        verdict = detector.scan(code, sample_id=f"drainer@{intensity:.2f}")

        print(f"{intensity:>9.2f} {len(code):>8d} {cfg.num_blocks:>7d} "
              f"{cfg.num_edges:>6d} {baseline_probability:>16.3f} "
              f"{verdict.malicious_probability:>18.3f}")

    print("\nreading: the opcode-histogram baseline's confidence decays towards "
          "chance as junk code floods the histogram, while the CFG/marker view "
          "keeps the drainer's ORIGIN-gated sweep loop visible.")


if __name__ == "__main__":
    main()
