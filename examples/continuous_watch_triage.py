"""Continuous watching with a persistent registry and triage rules.

Scenario: a security desk points the detector at a drop directory that other
systems write contract submissions into.  Instead of re-scanning the corpus
on a cron job, a watch daemon polls it: new and changed files are scanned,
verdicts land durably in a SQLite registry (so restarts, queries and the
scan server all share one source of truth), and declarative TOML rules tag
and alert on the dangerous ones at ingest time.

Run with::

    python examples/continuous_watch_triage.py
"""

from __future__ import annotations

import json
import pathlib
import random
import tempfile

from repro import ScamDetectConfig, ScamDetector
from repro.datasets import CorpusGenerator, GeneratorConfig
from repro.evm.contracts import TEMPLATES_BY_NAME as EVM_TEMPLATES
from repro.registry import (
    RulesEngine,
    ScanRegistry,
    WatchDaemon,
    parse_rules,
)

TRIAGE_RULES = """
[[rules]]
name = "page-on-high-confidence-scam"

[rules.match]
verdict = "malicious"
min_score = 0.8

[rules.actions]
tag = ["hot"]
alert = true

[[rules]]
name = "track-low-confidence"

[rules.match]
verdict = "malicious"
max_score = 0.8

[rules.actions]
tag = ["review"]
"""


def main() -> None:
    print("== continuous watch + rules-based triage ==")

    corpus = CorpusGenerator(
        GeneratorConfig(
            platform="evm", num_samples=160, label_noise=0.02, seed=33
        )
    ).generate()
    detector = ScamDetector(
        ScamDetectConfig(architecture="gcn", epochs=25, seed=33),
        explain=False,
    )
    detector.train(corpus)
    print(f"detector trained on {len(corpus)} contracts")

    rng = random.Random(99)
    with tempfile.TemporaryDirectory(prefix="watch-example-") as tmp:
        root = pathlib.Path(tmp)
        feed = root / "drops"
        feed.mkdir()
        for name in ("erc20_token", "staking_vault", "multisig_wallet"):
            code = EVM_TEMPLATES[name].generate(rng)
            (feed / f"{name}.bin").write_bytes(code)

        alerts = root / "alerts.jsonl"
        engine = RulesEngine(parse_rules(TRIAGE_RULES), alert_path=alerts)
        with ScanRegistry.for_config(
            root / "verdicts.db", detector.config
        ) as registry:
            daemon = WatchDaemon(
                detector, registry, feed, rules=engine, interval=0.5
            )

            stats = daemon.poll_once()
            print(f"cycle 1 (initial ingest): {stats.format()}")

            # nothing changed: the second cycle is pure os.stat
            stats = daemon.poll_once()
            print(f"cycle 2 (unchanged):      {stats.format()}")

            # two malicious drops arrive between polls
            for name in ("approval_drainer", "honeypot"):
                code = EVM_TEMPLATES[name].generate(rng)
                (feed / f"{name}.bin").write_bytes(code)
            stats = daemon.poll_once()
            print(f"cycle 3 (two new drops):  {stats.format()}")

            print("\nregistry contents (newest first):")
            for row in registry.query(limit=10):
                print(f"  {row.format()}")

            hot = registry.query(tag="hot") + registry.query(tag="review")
            print(f"\n{len(hot)} contracts triaged for review")
            if alerts.exists():
                for line in alerts.read_text().splitlines():
                    alert = json.loads(line)
                    print(
                        f"  ALERT [{alert['rule']}] "
                        f"{alert['source_path']} "
                        f"p={alert['malicious_probability']:.3f}"
                    )

            # a registry hit needs no model: re-dropping known bytecode
            # under a new name is answered from SQLite
            clone = feed / "approval_drainer-clone.bin"
            clone.write_bytes((feed / "approval_drainer.bin").read_bytes())
            stats = daemon.poll_once()
            print(
                f"\ncycle 4 (clone drop):     {stats.format()}"
                f"\n  -> served from the registry with zero inference"
            )


if __name__ == "__main__":
    main()
