"""Triage a stream of freshly-deployed contracts during a phishing campaign.

Scenario: a security team watches new contract deployments during an active
wallet-drainer campaign.  They need a ranked list of the most suspicious
deployments *before* any victim interacts with them -- exactly the proactive,
pre-execution setting ScamDetect targets.

Run with::

    python examples/phishing_campaign_triage.py
"""

from __future__ import annotations

import random

from repro import ScamDetectConfig, ScamDetector
from repro.datasets import CorpusGenerator, GeneratorConfig
from repro.evm.contracts import BENIGN_TEMPLATES, MALICIOUS_TEMPLATES


def simulate_deployment_stream(count: int, malicious_fraction: float,
                               seed: int) -> list:
    """Simulate ``count`` new deployments; most are benign, a few are drainers."""
    rng = random.Random(seed)
    stream = []
    for index in range(count):
        if rng.random() < malicious_fraction:
            template = rng.choice(MALICIOUS_TEMPLATES)
        else:
            template = rng.choice(BENIGN_TEMPLATES)
        stream.append((f"deploy-{index:03d}", template.name,
                       template.generate(rng), template.label))
    return stream


def main() -> None:
    print("== phishing campaign triage ==")

    # historical labelled corpus used to train the detector
    history = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=220, label_noise=0.03, seed=3)).generate()
    detector = ScamDetector(ScamDetectConfig(architecture="gin", readout="max",
                                             epochs=30, seed=3),
                            threshold=0.5)
    detector.train(history)
    print(f"detector trained on {len(history)} historical contracts")

    # incoming deployments during the campaign (15% malicious)
    stream = simulate_deployment_stream(count=40, malicious_fraction=0.15, seed=91)
    reports = []
    for deploy_id, family, bytecode, true_label in stream:
        report = detector.scan(bytecode, sample_id=deploy_id)
        reports.append((report, family, true_label))

    # ranked triage queue: highest malicious probability first
    reports.sort(key=lambda item: item[0].malicious_probability, reverse=True)
    print(f"\ntriage queue ({len(reports)} deployments, most suspicious first):")
    print(f"{'deployment':<12} {'p(malicious)':>12} {'verdict':>10} "
          f"{'true family':>20}")
    for report, family, _ in reports[:12]:
        print(f"{report.sample_id:<12} {report.malicious_probability:>12.3f} "
              f"{report.verdict:>10} {family:>20}")

    flagged = [item for item in reports if item[0].is_malicious]
    truly_malicious = [item for item in reports if item[2] == 1]
    caught = sum(1 for report, _, label in reports if report.is_malicious and label == 1)
    print(f"\nflagged {len(flagged)} deployments; campaign contracts caught: "
          f"{caught}/{len(truly_malicious)}")
    false_positives = sum(1 for report, _, label in reports
                          if report.is_malicious and label == 0)
    print(f"false positives: {false_positives}")


if __name__ == "__main__":
    main()
