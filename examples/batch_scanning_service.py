"""The batch scanning service: cached, parallel triage of a contract feed.

Scenario: a security desk receives a rolling feed of contract submissions.
Most of the feed is repeats -- factory clones, re-submissions of yesterday's
contracts, re-audits after a model refresh -- so the desk runs the detector
behind the service layer: a content-addressed graph cache (with an on-disk
tier that survives restarts) plus parallel lowering and batched inference.

Run with::

    python examples/batch_scanning_service.py
"""

from __future__ import annotations

import random
import tempfile

from repro import ScamDetectConfig, ScamDetector
from repro.datasets import CorpusGenerator, GeneratorConfig
from repro.evm.contracts import TEMPLATES_BY_NAME as EVM_TEMPLATES
from repro.service import BatchScanner, GraphCache


def main() -> None:
    print("== batch scanning service ==")

    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=160, label_noise=0.02, seed=21)).generate()
    detector = ScamDetector(ScamDetectConfig(architecture="gcn", epochs=25, seed=21),
                            explain=False)
    detector.train(corpus)
    print(f"detector trained on {len(corpus)} contracts")

    # today's feed: fresh deployments mixed with clones of known bytecode
    rng = random.Random(77)
    fresh = [(f"fresh-{name}-{index}", EVM_TEMPLATES[name].generate(rng))
             for index, name in enumerate(
                 ("erc20_token", "staking_vault", "approval_drainer",
                  "honeypot", "backdoor_proxy", "multisig_wallet"))]
    clones = [(f"clone-{index:03d}", corpus[index % len(corpus)].bytecode)
              for index in range(60)]
    feed = fresh + clones

    with tempfile.TemporaryDirectory() as cache_home:
        cache = GraphCache.for_config(detector.config, capacity=2048,
                                      disk_dir=cache_home)
        scanner = BatchScanner(detector, cache=cache)

        print("\nfirst pass (cold cache):")
        first = scanner.scan_codes([code for _, code in feed],
                                   sample_ids=[name for name, _ in feed])
        print(first.format())

        print("\nsecond pass (warm cache, same feed re-submitted):")
        second = scanner.scan_codes([code for _, code in feed],
                                    sample_ids=[name for name, _ in feed])
        print(second.format())

        speedup = (first.elapsed_seconds / second.elapsed_seconds
                   if second.elapsed_seconds else float("inf"))
        print(f"\nwarm-over-cold speedup: {speedup:.1f}x")

        flagged = second.malicious_reports()
        print(f"flagged for analyst review: "
              f"{', '.join(report.sample_id for report in flagged[:6])}"
              f"{' ...' if len(flagged) > 6 else ''}")


if __name__ == "__main__":
    main()
