"""The live scan server: concurrent clients, request coalescing, metrics.

Scenario: the security desk moves from nightly batch scans to a always-on
scanning endpoint.  A :class:`ScanServer` wraps the trained detector behind
``POST /scan`` with a request coalescer: concurrent requests queue up and are
scored together in single block-diagonal GNN batches, sharing one graph
cache -- verdicts stay byte-identical to one-shot ``ScamDetector.scan``.

This example starts the server in-process on a free port, fires a burst of
concurrent clients at it, checks verdict parity, and prints the ``/metrics``
counters that a monitoring stack would scrape.

Run with::

    python examples/scan_server_client.py

(The standalone equivalent: ``scamdetect serve --model-path ...`` and any
HTTP client -- see the curl examples in the README.)
"""

from concurrent.futures import ThreadPoolExecutor

from repro import ScamDetectConfig, ScamDetector
from repro.datasets import CorpusGenerator, GeneratorConfig
from repro.service import ServerClient
from repro.service.server import ScanServer


def main() -> None:
    print("== scan server with request coalescing ==")

    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=160, label_noise=0.02, seed=33)).generate()
    detector = ScamDetector(ScamDetectConfig(architecture="gcn", epochs=25,
                                             seed=33))
    detector.train(corpus)
    print(f"detector trained on {len(corpus)} contracts")

    # today's traffic: clients re-submitting a mix of known bytecode
    feed = [corpus[index % len(corpus)].bytecode for index in range(96)]

    with ScanServer(detector, port=0, workers=16, max_batch=16,
                    max_wait_ms=10.0) as server:
        client = ServerClient(port=server.port)
        health = client.wait_until_ready()
        print(f"server up at {server.url} -- model: {health['model']}")

        with ThreadPoolExecutor(max_workers=24) as pool:
            verdicts = list(pool.map(client.scan, feed))
        flagged = [v for v in verdicts if v["verdict"] == "malicious"]
        print(f"\nscanned {len(verdicts)} concurrent requests, "
              f"{len(flagged)} flagged malicious")

        # every served verdict matches the one-shot scan path exactly
        mismatches = sum(
            1 for code, served in zip(feed, verdicts)
            if served != detector.scan(code).to_dict())
        print(f"verdict mismatches vs ScamDetector.scan: {mismatches}")

        metrics = client.metrics()
        batches = metrics["scans"]["batches"]
        cache = metrics["scans"]["cache"]
        latency = metrics["latency"]["scan"]
        print("\n/metrics after the burst:")
        print(f"  requests:        {metrics['requests']}")
        print(f"  inference calls: {batches['count']} "
              f"(max batch {batches['max_size']}, "
              f"{batches['coalesced']} coalesced)")
        print(f"  batch histogram: {batches['histogram']}")
        print(f"  cache hit rate:  {cache['hit_rate']:.1%} "
              f"({cache['hits']} hits / {cache['lookups']} lookups)")
        print(f"  scan latency:    p50={latency['p50_ms']:.1f}ms "
              f"p90={latency['p90_ms']:.1f}ms p99={latency['p99_ms']:.1f}ms")
    print("\nserver drained and shut down cleanly")


if __name__ == "__main__":
    main()
