"""Quickstart: train ScamDetect on a synthetic EVM corpus and scan contracts.

Run with::

    python examples/quickstart.py

The script generates a labelled corpus from the built-in contract template
families (the offline substitute for an Etherscan-scraped dataset), trains
the default ScamDetect pipeline (a 2-layer GCN over control-flow graphs),
reports its held-out accuracy and then scans two individual contracts --
one benign ERC-20 token and one phishing approval drainer.
"""

from __future__ import annotations

import random

from repro import ScamDetectConfig, ScamDetector
from repro.datasets import CorpusGenerator, GeneratorConfig, stratified_split
from repro.evm.contracts import TEMPLATES_BY_NAME


def main() -> None:
    print("== ScamDetect quickstart ==")

    # 1. build a labelled corpus (5 benign + 5 malicious EVM families)
    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=200, label_noise=0.02, seed=7)).generate()
    print(f"corpus: {corpus!r}")

    # 2. stratified train/test split
    train, test = stratified_split(corpus, test_fraction=0.3, seed=7)
    print(f"train={len(train)} contracts, test={len(test)} contracts")

    # 3. train the detector (GCN over CFGs with semantic-marker node features)
    detector = ScamDetector(ScamDetectConfig(architecture="gcn", epochs=30, seed=7))
    detector.train(train)

    # 4. held-out evaluation
    metrics = detector.evaluate(test)
    print("held-out metrics: "
          + ", ".join(f"{name}={value:.3f}" for name, value in metrics.items()))

    # 5. scan individual contracts (hex input, platform sniffed automatically)
    rng = random.Random(99)
    benign = TEMPLATES_BY_NAME["erc20_token"].generate(rng)
    drainer = TEMPLATES_BY_NAME["approval_drainer"].generate(rng)

    print("\n-- scanning a benign ERC-20 token --")
    print(detector.scan("0x" + benign.hex(), sample_id="erc20-token").format())

    print("\n-- scanning a phishing approval drainer --")
    print(detector.scan(drainer, sample_id="approval-drainer").format())


if __name__ == "__main__":
    main()
