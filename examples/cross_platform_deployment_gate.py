"""A cross-platform deployment gate: one detector for EVM and WASM contracts.

Scenario: a multi-chain platform (an EVM rollup plus a WASM-based chain)
wants a single pre-deployment gate that scans every submitted contract,
whatever its runtime, and blocks the ones that look like malware.  This is
the Phase-2 goal of the ScamDetect roadmap: platform-agnostic detection
through the shared IR.

Run with::

    python examples/cross_platform_deployment_gate.py
"""

from __future__ import annotations

import random

from repro import ScamDetectConfig, ScamDetector
from repro.core.frontends import detect_platform
from repro.datasets import CorpusGenerator, GeneratorConfig
from repro.datasets.corpus import Corpus
from repro.evm.contracts import TEMPLATES_BY_NAME as EVM_TEMPLATES
from repro.wasm.contracts import WASM_TEMPLATES_BY_NAME as WASM_TEMPLATES


def main() -> None:
    print("== cross-platform deployment gate ==")

    # one mixed training corpus: EVM + WASM families through the shared IR
    evm_corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=140, label_noise=0.02, seed=8)).generate()
    wasm_corpus = CorpusGenerator(GeneratorConfig(
        platform="wasm", num_samples=140, label_noise=0.02, seed=9)).generate()
    mixed = Corpus(list(evm_corpus) + list(wasm_corpus), name="multichain")

    detector = ScamDetector(ScamDetectConfig(architecture="gcn", epochs=30, seed=8))
    detector.train(mixed)
    print(f"gate trained on {len(mixed)} contracts "
          f"({len(evm_corpus)} EVM + {len(wasm_corpus)} WASM)")
    print(f"per-platform accuracy: evm={detector.evaluate(evm_corpus)['accuracy']:.3f} "
          f"wasm={detector.evaluate(wasm_corpus)['accuracy']:.3f}")

    # submissions arriving at the gate -- the platform is not declared, the
    # gate sniffs it from the binary itself
    rng = random.Random(2024)
    submissions = [
        ("erc20-launch", EVM_TEMPLATES["erc20_token"].generate(rng)),
        ("yield-vault", EVM_TEMPLATES["staking_vault"].generate(rng)),
        ("airdrop-claim-helper", EVM_TEMPLATES["approval_drainer"].generate(rng)),
        ("upgradeable-wallet", EVM_TEMPLATES["backdoor_proxy"].generate(rng)),
        ("wasm-ft-token", WASM_TEMPLATES["wasm_token"].generate(rng)),
        ("wasm-name-registry", WASM_TEMPLATES["wasm_registry"].generate(rng)),
        ("wasm-rewards-booster", WASM_TEMPLATES["wasm_drainer"].generate(rng)),
        ("wasm-vault-v2", WASM_TEMPLATES["wasm_rugpull"].generate(rng)),
    ]

    print("\ngate decisions:")
    print(f"{'submission':<24} {'platform':>8} {'p(malicious)':>13} {'decision':>10}")
    for name, code in submissions:
        platform = detect_platform(code)
        report = detector.scan(code, sample_id=name)
        decision = "REJECT" if report.is_malicious else "allow"
        print(f"{name:<24} {platform:>8} {report.malicious_probability:>13.3f} "
              f"{decision:>10}")

    # the same gate as a batch service call: parallel lowering, a graph cache
    # shared across submission waves, and throughput telemetry
    from repro.service import GraphCache

    cache = GraphCache.for_config(detector.config)
    summary = detector.scan_many([code for _, code in submissions],
                                 sample_ids=[name for name, _ in submissions],
                                 cache=cache)
    print("\n" + summary.format())
    resubmitted = detector.scan_many([code for _, code in submissions],
                                     sample_ids=[name for name, _ in submissions],
                                     cache=cache)
    print(f"re-submission wave served from cache: "
          f"{resubmitted.cache_stats.hits}/{resubmitted.num_scanned} hits")


if __name__ == "__main__":
    main()
