"""Tests for metrics and preprocessing utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    classification_summary,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
)
from repro.ml.preprocessing import MinMaxScaler, StandardScaler, train_test_split


def test_accuracy_basics():
    assert accuracy_score([1, 0, 1], [1, 0, 1]) == 1.0
    assert accuracy_score([1, 0, 1, 0], [1, 1, 1, 1]) == 0.5
    assert accuracy_score([], []) == 0.0


def test_confusion_matrix_counts():
    cm = confusion_matrix([1, 1, 0, 0, 1], [1, 0, 0, 1, 1])
    assert cm == {"tp": 2, "fp": 1, "tn": 1, "fn": 1}


def test_precision_recall_f1():
    y_true = [1, 1, 0, 0, 1]
    y_pred = [1, 0, 0, 1, 1]
    precision = precision_score(y_true, y_pred)
    recall = recall_score(y_true, y_pred)
    assert precision == pytest.approx(2 / 3)
    assert recall == pytest.approx(2 / 3)
    assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)


def test_degenerate_precision_recall():
    assert precision_score([0, 0], [0, 0]) == 0.0
    assert recall_score([0, 0], [1, 1]) == 0.0
    assert f1_score([0, 0], [0, 0]) == 0.0


def test_roc_auc_perfect_and_inverted():
    labels = [0, 0, 1, 1]
    assert roc_auc_score(labels, [0.1, 0.2, 0.8, 0.9]) == 1.0
    assert roc_auc_score(labels, [0.9, 0.8, 0.2, 0.1]) == 0.0
    assert roc_auc_score([1, 1], [0.5, 0.6]) == 0.5  # single class


def test_roc_auc_handles_ties():
    assert roc_auc_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)


def test_classification_summary_keys():
    summary = classification_summary([0, 1], [0, 1], scores=[0.2, 0.9])
    assert set(summary) == {"accuracy", "precision", "recall", "f1", "roc_auc"}


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 1), st.floats(0, 1, allow_nan=False)),
                min_size=4, max_size=60))
def test_roc_auc_bounded(pairs):
    labels = [label for label, _ in pairs]
    scores = [score for _, score in pairs]
    auc = roc_auc_score(labels, scores)
    assert 0.0 <= auc <= 1.0


def test_standard_scaler_zero_mean_unit_variance():
    rng = np.random.default_rng(0)
    X = rng.normal(3.0, 2.0, size=(100, 5))
    scaled = StandardScaler().fit_transform(X)
    assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)


def test_standard_scaler_constant_column_safe():
    X = np.array([[1.0, 5.0], [1.0, 7.0]])
    scaled = StandardScaler().fit_transform(X)
    assert np.all(np.isfinite(scaled))


def test_scalers_require_fit():
    with pytest.raises(RuntimeError):
        StandardScaler().transform(np.ones((2, 2)))
    with pytest.raises(RuntimeError):
        MinMaxScaler().transform(np.ones((2, 2)))


def test_minmax_scaler_range():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(50, 3)) * 10
    scaled = MinMaxScaler().fit_transform(X)
    assert scaled.min() >= 0.0
    assert scaled.max() <= 1.0


def test_train_test_split_stratified():
    X = np.arange(100).reshape(50, 2)
    y = np.array([0] * 40 + [1] * 10)
    X_train, X_test, y_train, y_test = train_test_split(X, y, test_fraction=0.2, seed=0)
    assert len(X_train) + len(X_test) == 50
    assert (y_test == 1).sum() == 2
    assert (y_test == 0).sum() == 8


def test_train_test_split_length_mismatch():
    with pytest.raises(ValueError):
        train_test_split(np.ones((3, 1)), np.ones(4))
