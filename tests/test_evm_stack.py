"""Unit tests for the symbolic stack used in jump-target resolution."""

from repro.evm.assembler import assemble
from repro.evm.disassembler import disassemble
from repro.evm.stack import UNKNOWN, SymbolicStack


def _apply_program(items):
    stack = SymbolicStack()
    for instruction in disassemble(assemble(items)):
        stack.apply(instruction)
    return stack


def test_push_tracks_constant():
    stack = _apply_program([("PUSH2", 0x1234)])
    assert stack.jump_target() == 0x1234


def test_dup_and_swap_preserve_constants():
    stack = _apply_program([("PUSH1", 5), ("PUSH1", 9), ("SWAP1", None)])
    assert stack.peek(0) == 5
    assert stack.peek(1) == 9
    stack = _apply_program([("PUSH1", 7), ("DUP1", None)])
    assert stack.peek(0) == 7
    assert stack.peek(1) == 7


def test_and_mask_preserves_constant():
    stack = _apply_program([("PUSH2", 0x00FF), ("PUSH2", 0x0F0F), ("AND", None)])
    assert stack.peek(0) == 0x000F


def test_opaque_operations_lose_precision():
    stack = _apply_program([("PUSH1", 3), ("CALLDATALOAD", None)])
    assert stack.peek(0) is UNKNOWN
    stack = _apply_program([("PUSH1", 3), ("PUSH1", 4), ("ADD", None)])
    assert stack.peek(0) is UNKNOWN


def test_pop_on_empty_stack_is_unknown():
    stack = SymbolicStack()
    assert stack.pop() is UNKNOWN
    assert stack.peek(10) is UNKNOWN


def test_unknown_opcode_clears_tracking():
    stack = SymbolicStack()
    for instruction in disassemble(bytes([0x60, 0x10, 0xEF])):
        stack.apply(instruction)
    assert len(stack) == 0


def test_copy_is_independent():
    stack = _apply_program([("PUSH1", 1)])
    clone = stack.copy()
    clone.pop()
    assert stack.peek(0) == 1
    assert clone.peek(0) is UNKNOWN


def test_deep_swap_conservatively_forgets():
    stack = _apply_program([("PUSH1", 1), ("SWAP16", None)])
    assert stack.peek(0) is UNKNOWN
