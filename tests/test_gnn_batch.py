"""Parity tests: the batched-graph engine vs the per-graph oracle.

Every architecture's ``forward_batch`` must reproduce the per-graph forward
pass, batched ``predict_proba`` must reproduce the per-graph probabilities,
and a vectorized ``fit`` must land on the same parameters as the per-graph
training loop (identical seeds and dropout RNG streams make the two engines
walk the same optimizer trajectory, so only float reduction-order noise
separates them).
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.functional import cross_entropy
from repro.gnn import (
    GNN_ARCHITECTURES,
    ContractGraph,
    GNNTrainer,
    GraphBatch,
    GraphClassifier,
    corpus_to_graphs,
    readout,
    readout_batch,
)
from repro.gnn.layers import CONV_REGISTRY, GATConv


def _toy_graph(num_nodes=5, feature_dim=8, label=1, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.random((num_nodes, feature_dim))
    adjacency = (rng.random((num_nodes, num_nodes)) > 0.6).astype(float)
    adjacency = np.maximum(adjacency, adjacency.T)
    np.fill_diagonal(adjacency, 1.0)
    degrees = adjacency.sum(axis=1)
    inverse_sqrt = 1.0 / np.sqrt(degrees)
    normalized = adjacency * inverse_sqrt[:, None] * inverse_sqrt[None, :]
    return ContractGraph(node_features=features, adjacency=adjacency,
                         normalized_adjacency=normalized, label=label)


@pytest.fixture()
def toy_graphs():
    """Mixed-size toy graphs, including a single-node graph."""
    return [_toy_graph(num_nodes=n, seed=i, label=i % 2)
            for i, n in enumerate([5, 3, 9, 1, 7, 4])]


# -------------------------------------------------------------------------- #
# GraphBatch structure


def test_graph_batch_layout(toy_graphs):
    batch = GraphBatch(toy_graphs)
    assert batch.num_graphs == len(toy_graphs)
    assert batch.num_nodes == sum(g.num_nodes for g in toy_graphs)
    assert batch.node_features.shape == (batch.num_nodes, 8)
    np.testing.assert_array_equal(batch.node_counts,
                                  [g.num_nodes for g in toy_graphs])
    np.testing.assert_array_equal(batch.labels,
                                  [g.label for g in toy_graphs])
    # segment ids are sorted and block-aligned
    assert np.all(np.diff(batch.segment_ids) >= 0)
    np.testing.assert_array_equal(np.bincount(batch.segment_ids),
                                  batch.node_counts)


def test_graph_batch_block_diagonal_operators(toy_graphs):
    batch = GraphBatch(toy_graphs[:3])
    for kind, attribute in (("adjacency", "adjacency"),
                            ("normalized", "normalized_adjacency"),
                            ("mean", "mean_aggregator")):
        operator = batch.operator(kind)
        expected = np.zeros((batch.num_nodes, batch.num_nodes))
        offset = 0
        for graph in batch.graphs:
            block = getattr(graph, attribute)
            expected[offset:offset + graph.num_nodes,
                     offset:offset + graph.num_nodes] = block
            offset += graph.num_nodes
        np.testing.assert_allclose(operator.to_dense(), expected)


def test_graph_batch_rejects_bad_input(toy_graphs):
    with pytest.raises(ValueError, match="at least one"):
        GraphBatch([])
    narrow = _toy_graph(num_nodes=3, feature_dim=4)
    with pytest.raises(ValueError, match="width"):
        GraphBatch([toy_graphs[0], narrow])


def test_contract_graph_caches_derived_operators(toy_graphs):
    graph = toy_graphs[0]
    assert graph.mean_aggregator is graph.mean_aggregator
    assert graph.attention_mask is graph.attention_mask
    assert graph.sparse_operator("normalized") is graph.sparse_operator("normalized")
    with pytest.raises(ValueError, match="kind"):
        graph.sparse_operator("laplacian")
    # the SAGE aggregator excludes self loops and row-normalizes
    aggregator = graph.mean_aggregator
    assert np.all(np.diag(aggregator) == 0.0)
    row_sums = aggregator.sum(axis=1)
    assert np.all((np.abs(row_sums - 1.0) < 1e-9) | (row_sums == 0.0))


# -------------------------------------------------------------------------- #
# layer / readout / model parity


@pytest.mark.parametrize("architecture", GNN_ARCHITECTURES)
def test_layer_forward_batch_matches_per_graph(architecture, toy_graphs):
    layer = CONV_REGISTRY[architecture](8, 6)
    batch = GraphBatch(toy_graphs)
    batched = layer.forward_batch(Tensor(batch.node_features), batch).numpy()
    offset = 0
    for graph in toy_graphs:
        single = layer(Tensor(graph.node_features), graph).numpy()
        np.testing.assert_allclose(batched[offset:offset + graph.num_nodes],
                                   single, atol=1e-9)
        offset += graph.num_nodes


@pytest.mark.parametrize("kind", ["mean", "sum", "max"])
def test_readout_batch_matches_per_graph(kind, toy_graphs):
    batch = GraphBatch(toy_graphs)
    rng = np.random.default_rng(0)
    embeddings = rng.standard_normal((batch.num_nodes, 4))
    batched = readout_batch(Tensor(embeddings), batch.segment_ids,
                            batch.num_graphs, kind).numpy()
    offset = 0
    for row, graph in enumerate(toy_graphs):
        single = readout(Tensor(embeddings[offset:offset + graph.num_nodes]),
                         kind).numpy()
        np.testing.assert_allclose(batched[row:row + 1], single, atol=1e-12)
        offset += graph.num_nodes
    with pytest.raises(ValueError, match="median"):
        readout_batch(Tensor(embeddings), batch.segment_ids,
                      batch.num_graphs, "median")


@pytest.mark.parametrize("architecture", GNN_ARCHITECTURES)
def test_model_forward_batch_matches_per_graph_logits(architecture, toy_graphs):
    model = GraphClassifier(architecture=architecture, in_features=8,
                            hidden_features=16, num_layers=2,
                            readout_kind="max", dropout_rate=0.0)
    model.eval()
    batch = GraphBatch(toy_graphs)
    batched = model.forward_batch(batch).numpy()
    singles = np.concatenate([model(graph).numpy() for graph in toy_graphs])
    np.testing.assert_allclose(batched, singles, atol=1e-9)


def test_gat_batched_attention_ignores_non_edges():
    """Perturbing a non-neighbour must not change a node's batched output."""
    graphs = [_toy_graph(num_nodes=4, seed=1), _toy_graph(num_nodes=3, seed=2)]
    layer = GATConv(8, 6)
    before = layer.forward_batch(Tensor(GraphBatch(graphs).node_features),
                                 GraphBatch(graphs)).numpy()[:4].copy()
    # node 0 of graph 1 is in a different block: changing it must not leak
    graphs[1].node_features[0] += 10.0
    after = layer.forward_batch(Tensor(GraphBatch(graphs).node_features),
                                GraphBatch(graphs)).numpy()[:4]
    np.testing.assert_allclose(before, after, atol=1e-12)


# -------------------------------------------------------------------------- #
# gradient + training parity


@pytest.mark.parametrize("architecture", GNN_ARCHITECTURES)
def test_batched_gradients_match_per_graph(architecture, toy_graphs):
    kwargs = dict(architecture=architecture, in_features=8, hidden_features=8,
                  num_layers=2, dropout_rate=0.0, seed=3)
    batched_model = GraphClassifier(**kwargs)
    oracle_model = GraphClassifier(**kwargs)
    targets = [graph.label for graph in toy_graphs]

    cross_entropy(batched_model.forward_batch(GraphBatch(toy_graphs)),
                  targets).backward()
    cross_entropy(Tensor.concatenate([oracle_model(g) for g in toy_graphs],
                                     axis=0), targets).backward()
    for batched, oracle in zip(batched_model.parameters(),
                               oracle_model.parameters()):
        np.testing.assert_allclose(batched.grad, oracle.grad, atol=1e-9)


@pytest.mark.parametrize("architecture", GNN_ARCHITECTURES)
def test_fit_and_predict_parity(architecture, tiny_evm_corpus):
    """Post-fit parameters, probabilities and predictions match the oracle."""
    graphs = corpus_to_graphs(tiny_evm_corpus)
    kwargs = dict(architecture=architecture, in_features=graphs[0].feature_dim,
                  hidden_features=8, num_layers=1, dropout_rate=0.0, seed=0)
    batched_model = GraphClassifier(**kwargs)
    oracle_model = GraphClassifier(**kwargs)
    batched = GNNTrainer(batched_model, epochs=4, seed=0,
                         vectorized=True).fit(graphs)
    oracle = GNNTrainer(oracle_model, epochs=4, seed=0,
                        vectorized=False).fit(graphs)

    for left, right in zip(batched_model.parameters(), oracle_model.parameters()):
        np.testing.assert_allclose(left.data, right.data, atol=1e-8)
    np.testing.assert_allclose(batched.history.losses, oracle.history.losses,
                               atol=1e-8)
    np.testing.assert_allclose(batched.predict_proba(graphs),
                               oracle.predict_proba(graphs), atol=1e-8)
    np.testing.assert_array_equal(batched.predict(graphs), oracle.predict(graphs))


def test_fit_parity_with_dropout(tiny_evm_corpus):
    """Both engines consume the dropout RNG stream identically."""
    graphs = corpus_to_graphs(tiny_evm_corpus)
    kwargs = dict(architecture="gcn", in_features=graphs[0].feature_dim,
                  hidden_features=8, num_layers=1, dropout_rate=0.3, seed=0)
    batched_model = GraphClassifier(**kwargs)
    oracle_model = GraphClassifier(**kwargs)
    GNNTrainer(batched_model, epochs=3, seed=0, vectorized=True).fit(graphs)
    GNNTrainer(oracle_model, epochs=3, seed=0, vectorized=False).fit(graphs)
    for left, right in zip(batched_model.parameters(), oracle_model.parameters()):
        np.testing.assert_allclose(left.data, right.data, atol=1e-8)


def test_iter_predict_proba_chunks_match_full(tiny_evm_corpus):
    graphs = corpus_to_graphs(tiny_evm_corpus)
    model = GraphClassifier(architecture="gin", in_features=graphs[0].feature_dim,
                            hidden_features=8, seed=1)
    trainer = GNNTrainer(model, epochs=2, seed=1).fit(graphs)
    full = trainer.predict_proba(graphs)
    chunked = np.concatenate(list(trainer.iter_predict_proba(graphs,
                                                             batch_size=7)))
    np.testing.assert_allclose(chunked, full, atol=1e-12)


def test_trainer_validates_inference_batch_size(tiny_evm_corpus):
    graphs = corpus_to_graphs(tiny_evm_corpus)
    model = GraphClassifier(in_features=graphs[0].feature_dim)
    with pytest.raises(ValueError):
        GNNTrainer(model, inference_batch_size=0)
