"""Tests for the registry-v2 surface: rule-to-SQL compilation, keyset
pagination, retro-triage, and the per-platform partitioned registry.

The load-bearing contracts:

* every compiled rule selects exactly the rows the Python matcher
  (``TriageRule.matches_row``) accepts, in the same sha256 order, and its
  query plan is index-backed (no full-table scan);
* ``query_page`` walks the registry without skipping or duplicating rows,
  rejects foreign cursors, and stays stable under timestamp ties;
* ``RetroTriage`` is resumable, idempotent on tags, and its dry run
  previews exactly what a real run then applies;
* ``PartitionedScanRegistry`` answers every read byte-identically to the
  same operations against one shared database.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest

from repro.core.report import VerdictReport
from repro.registry import (
    CompileError,
    PartitionedScanRegistry,
    RegistryError,
    RetroTriage,
    ScanRegistry,
    TriageRule,
    check_index_backed,
    compile_rule,
    compile_rules,
    decode_cursor,
    encode_cursor,
    parse_rules,
)
from repro.registry.compile import _glob_from_fnmatch, _sha256_range
from repro.registry.compile import verify_parity

FP = "fp-v2-0001"


def make_report(sample_id="c-0", platform="evm", label=0, probability=0.2,
                notes=None):
    return VerdictReport(
        sample_id=sample_id, platform=platform, label=label,
        malicious_probability=probability, cfg_blocks=3, cfg_edges=4,
        num_instructions=40, model="scamdetect-test",
        notes=list(notes or []))


def seed_registry(registry, rows=120, seed=7):
    """Deterministic mixed-population rows; returns the recorded shas."""
    rng = random.Random(seed)
    shas = []
    for index in range(rows):
        sha = f"{rng.randrange(16 ** 8):08x}" + f"{index:056d}"[-56:]
        malicious = rng.random() < 0.4
        notes = []
        if malicious and rng.random() < 0.5:
            notes.append("indicator: selfdestruct-drain fired")
        report = make_report(
            sample_id=f"c-{index}",
            platform="wasm" if rng.random() < 0.3 else "evm",
            label=int(malicious),
            probability=(rng.uniform(0.7, 1.0) if malicious
                         else rng.uniform(0.0, 0.5)),
            notes=notes)
        source = (f"inbox/{index}.bin" if rng.random() < 0.5
                  else f"archive/{index}.bin")
        identity = ("sha256:model-a" if rng.random() < 0.6
                    else "sha256:model-b")
        registry.record(sha, report, source_path=source,
                        model_identity=identity,
                        scanned_at=1000.0 + rng.randrange(0, 5000))
        shas.append(sha)
    # some tagged rows so the has_tag matcher has something to find
    for sha in shas[::10]:
        registry.add_tags(sha, ["seeded"])
    return shas


@pytest.fixture()
def registry(tmp_path):
    with ScanRegistry(tmp_path / "v2.db", fingerprint=FP) as reg:
        yield reg


# --------------------------------------------------------------------------- #
# rules v2: new matchers parse and match


def test_parse_rules_v2_matcher_keys():
    rules = parse_rules(
        '[[rules]]\n'
        'name = "v2"\n'
        '[rules.match]\n'
        'tag = "seeded"\n'
        'model_identity = "sha256:model-b"\n'
        'since = 1500\n'
        'until = "2026-01-01T00:00:00+00:00"\n'
        'sha256 = "0ab"\n'
        '[rules.actions]\n'
        'tag = ["hit"]\n')
    (rule,) = rules
    assert rule.has_tag == "seeded"
    assert rule.model_identity == "sha256:model-b"
    assert rule.since == 1500.0
    assert rule.until == 1767225600.0
    assert rule.sha256_prefix == "0ab"
    assert rule.tag == ("hit",)


def test_matches_row_covers_v2_matchers(registry):
    sha = "ab" + "0" * 62
    registry.record(sha, make_report(label=1, probability=0.95),
                    source_path="inbox/x.bin",
                    model_identity="sha256:model-b", scanned_at=2000.0)
    registry.add_tags(sha, ["seeded"])
    row = registry.get(sha)
    hit = TriageRule(name="hit", has_tag="seeded",
                     model_identity="sha256:model-b", since=1500.0,
                     until=2500.0, sha256_prefix="ab")
    assert hit.matches_row(row)
    for miss in (
        TriageRule(name="m1", has_tag="absent"),
        TriageRule(name="m2", model_identity="sha256:model-a"),
        TriageRule(name="m3", since=3000.0),
        TriageRule(name="m4", until=1500.0),
        TriageRule(name="m5", sha256_prefix="ff"),
    ):
        assert not miss.matches_row(row)


# --------------------------------------------------------------------------- #
# rule-to-SQL compiler: parity, plans, translation corners


PARITY_RULES = [
    TriageRule(name="hot", verdict="malicious", min_score=0.9),
    TriageRule(name="drain", platform="evm",
               indicators=("selfdestruct-drain",)),
    TriageRule(name="window", since=2000.0, until=4000.0),
    TriageRule(name="inbox-b", path_glob="inbox/*",
               model_identity="sha256:model-b"),
    TriageRule(name="tagged", has_tag="seeded"),
    TriageRule(name="prefix", sha256_prefix="0"),
    TriageRule(name="band", min_score=0.1, max_score=0.5,
               verdict="benign"),
]


def test_compiled_rules_agree_with_python_matcher(registry):
    seed_registry(registry)
    all_rows = registry.select_where("fingerprint = ?", (FP,))
    for rule in PARITY_RULES:
        compiled = compile_rule(rule, FP)
        selected = registry.select_where(compiled.where, compiled.params)
        expected = [row.sha256 for row in all_rows
                    if rule.matches_row(row)]
        assert [row.sha256 for row in selected] == expected, rule.name
        assert expected, f"rule {rule.name} matched nothing -- dead test"
        # and the documented one-directional cross-check agrees
        assert verify_parity(compiled, selected) == []


def test_compiled_plans_are_index_backed(registry):
    seed_registry(registry, rows=30)
    compiled = compile_rules(PARITY_RULES, FP)
    lines = check_index_backed(registry, compiled)
    assert lines  # EXPLAIN output surfaced for --explain
    assert all("SCAN verdicts" not in line or "INDEX" in line
               for line in lines)


def test_compile_requires_fingerprint_scope():
    with pytest.raises(CompileError):
        compile_rule(TriageRule(name="x", verdict="malicious"), "")


def test_glob_translation_negated_class(registry):
    assert _glob_from_fnmatch("data/[!ab]*") == "data/[^ab]*"
    assert _glob_from_fnmatch("a[x!y]b") == "a[x!y]b"  # literal mid-class
    registry.record("aa" + "0" * 62, make_report("keep"),
                    source_path="data/zed.bin")
    registry.record("bb" + "0" * 62, make_report("drop"),
                    source_path="data/abc.bin")
    rule = TriageRule(name="neg", path_glob="data/[!ab]*")
    compiled = compile_rule(rule, FP)
    selected = registry.select_where(compiled.where, compiled.params)
    assert [row.source_path for row in selected] == ["data/zed.bin"]
    assert all(rule.matches_row(row) for row in selected)


def test_sha256_prefix_half_open_range():
    assert _sha256_range("00") == ("00", "01")
    assert _sha256_range("ab") == ("ab", "ac")
    # trailing f's are stripped before the bump: "0f" -> high "1", which
    # bounds the same set as "10" over fixed-width lowercase hex
    assert _sha256_range("0f") == ("0f", "1")
    assert _sha256_range("ff") == ("ff", None)


def test_sha256_prefix_compiles_to_range_not_like(registry):
    compiled = compile_rule(TriageRule(name="p", sha256_prefix="ab"), FP)
    assert "LIKE" not in compiled.where
    assert "sha256 >= ?" in compiled.where and "sha256 < ?" in compiled.where
    registry.record("ab" + "f" * 62, make_report("in"))
    registry.record("ac" + "0" * 62, make_report("out"))
    selected = registry.select_where(compiled.where, compiled.params)
    assert [row.sha256[:2] for row in selected] == ["ab"]


# --------------------------------------------------------------------------- #
# keyset pagination


def test_query_page_walks_everything_in_listing_order(registry):
    seed_registry(registry, rows=25)
    listing = registry.query(limit=None)
    walked, cursor, pages = [], None, 0
    while True:
        rows, cursor = registry.query_page(cursor=cursor, page_size=10)
        walked.extend(rows)
        pages += 1
        if cursor is None:
            break
    assert pages == 3
    assert [row.sha256 for row in walked] == \
        [row.sha256 for row in listing]
    assert [row.to_dict() for row in walked] == \
        [row.to_dict() for row in listing]


def test_query_page_stable_under_timestamp_ties(registry):
    for index in range(12):
        registry.record(f"{index:064x}", make_report(f"c-{index}"),
                        scanned_at=777.0)
    walked, cursor = [], None
    while True:
        rows, cursor = registry.query_page(cursor=cursor, page_size=5)
        walked.extend(row.sha256 for row in rows)
        if cursor is None:
            break
    assert walked == sorted(walked)  # sha256 tiebreak, ascending
    assert len(walked) == len(set(walked)) == 12


def test_query_page_rejects_foreign_cursor(registry):
    with pytest.raises(RegistryError, match="cursor"):
        registry.query_page(cursor="not-a-cursor")
    with pytest.raises(RegistryError):
        registry.query_page(page_size=0)


def test_query_page_applies_filters(registry):
    seed_registry(registry)
    rows, cursor = registry.query_page(page_size=500, verdict="malicious",
                                       platform="evm")
    assert cursor is None
    assert rows
    assert all(row.label == 1 and row.platform == "evm" for row in rows)


def test_cursor_roundtrip_is_bit_exact():
    stamp = 1700000000.123456789
    token = encode_cursor(stamp, "ab" * 32)
    assert decode_cursor(token) == (stamp, "ab" * 32)
    with pytest.raises(RegistryError):
        decode_cursor("@@@not-base64@@@")


# --------------------------------------------------------------------------- #
# retro-triage


TRIAGE_TEXT = "hot+drain v1"
TRIAGE_RULES = [
    TriageRule(name="hot", verdict="malicious", min_score=0.9,
               tag=("retro-hot",)),
    TriageRule(name="drain", indicators=("selfdestruct-drain",),
               tag=("retro-drain",)),
]


def test_triage_dry_run_previews_then_apply_writes(registry):
    seed_registry(registry)
    dry = RetroTriage(registry, TRIAGE_RULES, TRIAGE_TEXT,
                      dry_run=True).run()
    assert dry.dry_run and dry.rows_matched > 0
    assert dry.tags_applied == 0 and dry.alerts == 0
    assert dry.preview  # the CLI diff output has content
    assert not registry.query(tag="retro-hot", limit=None)

    wet = RetroTriage(registry, TRIAGE_RULES, TRIAGE_TEXT).run()
    assert wet.rows_matched == dry.rows_matched
    assert wet.rule_matches == dry.rule_matches
    tagged = registry.query(tag="retro-hot", limit=None)
    assert len(tagged) == wet.rule_matches["hot"]
    assert all(row.malicious_probability >= 0.9 for row in tagged)

    # idempotent: a second full run matches the same rows but has no new
    # tags to write
    again = RetroTriage(registry, TRIAGE_RULES, TRIAGE_TEXT,
                        resume=False).run()
    assert again.rows_matched == wet.rows_matched
    assert again.tags_applied == 0


def test_triage_resumes_from_last_committed_batch(registry):
    seed_registry(registry)
    calls = []

    class Boom(RuntimeError):
        pass

    def crash_after(rule, row):
        calls.append((rule.name, row.sha256))
        if len(calls) == 5:
            raise Boom()

    with pytest.raises(Boom):
        RetroTriage(registry, TRIAGE_RULES, TRIAGE_TEXT, batch_size=3,
                    on_match=crash_after).run()
    state = registry.find_triage_run(
        RetroTriage(registry, TRIAGE_RULES, TRIAGE_TEXT).digest, FP)
    assert state is not None  # progress row survived the crash

    resumed_calls = []
    result = RetroTriage(
        registry, TRIAGE_RULES, TRIAGE_TEXT, batch_size=3,
        on_match=lambda rule, row: resumed_calls.append(
            (rule.name, row.sha256))).run()
    assert result.resumed

    # the resumed run replays at most the one uncommitted batch, and the
    # union covers every match of a clean run exactly
    clean = []
    RetroTriage(registry, TRIAGE_RULES, TRIAGE_TEXT, dry_run=True,
                resume=False,
                on_match=lambda rule, row: clean.append(
                    (rule.name, row.sha256))).run()
    assert set(calls) | set(resumed_calls) == set(clean)
    assert len(set(calls) & set(resumed_calls)) <= 3  # one batch replay
    assert result.rows_matched == len(clean)

    # finished runs do not resume
    fresh = RetroTriage(registry, TRIAGE_RULES, TRIAGE_TEXT,
                        dry_run=True).run()
    assert not fresh.resumed


def test_triage_edited_rules_start_fresh_run(registry):
    seed_registry(registry, rows=30)
    first = RetroTriage(registry, TRIAGE_RULES, TRIAGE_TEXT).run()
    edited = RetroTriage(registry, TRIAGE_RULES,
                         TRIAGE_TEXT + " # edited").run()
    assert first.run_id != edited.run_id
    assert not edited.resumed


def test_triage_exit_nonzero_propagates(registry):
    seed_registry(registry, rows=30)
    rules = [TriageRule(name="page", verdict="malicious",
                        exit_nonzero=True)]
    result = RetroTriage(registry, rules, "page v1", dry_run=True).run()
    assert result.exit_nonzero


# --------------------------------------------------------------------------- #
# partitioned registry: byte-identical to single-db


def seed_both(single, partitioned, rows=80, seed=23):
    rng = random.Random(seed)
    for index in range(rows):
        sha = f"{rng.randrange(16 ** 12):012x}" + f"{index:052d}"[-52:]
        report = make_report(
            sample_id=f"c-{index}",
            platform=rng.choice(["evm", "wasm", "sol"]),
            label=int(rng.random() < 0.4),
            probability=rng.random())
        kwargs = dict(source_path=f"feed/{index}.bin",
                      model_identity="sha256:model-a",
                      scanned_at=1000.0 + rng.randrange(0, 400))
        single.record(sha, report, **kwargs)
        partitioned.record(sha, report, **kwargs)


@pytest.fixture()
def pair(tmp_path):
    single = ScanRegistry(tmp_path / "single.db", fingerprint=FP)
    partitioned = PartitionedScanRegistry(
        tmp_path / "fleet", fingerprint=FP, platforms=("evm", "wasm"))
    seed_both(single, partitioned)
    yield single, partitioned
    single.close()
    partitioned.close()


def test_partition_routing_and_layout(tmp_path, pair):
    single, partitioned = pair
    assert (tmp_path / "fleet" / "evm.db").exists()
    assert (tmp_path / "fleet" / "wasm.db").exists()
    # "sol" has no partition: routed to the first, still queryable by its
    # real platform column
    sol = partitioned.query(platform="sol", limit=None)
    assert sol and all(row.platform == "sol" for row in sol)
    assert partitioned.counts() == single.counts()


def test_partitioned_query_byte_identical(pair):
    single, partitioned = pair
    for kwargs in ({"limit": None}, {"verdict": "malicious", "limit": None},
                   {"platform": "wasm", "limit": None},
                   {"min_score": 0.5, "max_score": 0.9, "limit": None},
                   {"path_glob": "feed/*", "limit": 10}):
        want = [row.to_dict() for row in single.query(**dict(kwargs))]
        got = [row.to_dict() for row in partitioned.query(**dict(kwargs))]
        assert got == want, kwargs


def test_partitioned_pagination_byte_identical(pair):
    single, partitioned = pair
    cursor_a = cursor_b = None
    while True:
        page_a, cursor_a = single.query_page(cursor=cursor_a, page_size=7)
        page_b, cursor_b = partitioned.query_page(cursor=cursor_b,
                                                  page_size=7)
        assert [row.to_dict() for row in page_b] == \
            [row.to_dict() for row in page_a]
        if cursor_a is None or cursor_b is None:
            assert cursor_a is None and cursor_b is None
            break
    with pytest.raises(RegistryError):
        partitioned.query_page(cursor="garbage")


def test_partitioned_select_where_and_point_reads(pair):
    single, partitioned = pair
    want = single.select_where("fingerprint = ?", (FP,))
    got = partitioned.select_where("fingerprint = ?", (FP,))
    assert [row.to_dict() for row in got] == \
        [row.to_dict() for row in want]
    sample = want[0].sha256
    assert partitioned.get(sample).to_dict() == \
        single.get(sample).to_dict()
    assert partitioned.history(sample) == single.history(sample)


def test_partitioned_triage_tags_across_partitions(pair):
    single, partitioned = pair
    rules = [TriageRule(name="sweep", min_score=0.6, tag=("swept",))]
    RetroTriage(single, rules, "sweep v1").run()
    RetroTriage(partitioned, rules, "sweep v1").run()
    want = [row.to_dict() for row in single.query(tag="swept", limit=None)]
    got = [row.to_dict()
           for row in partitioned.query(tag="swept", limit=None)]
    assert got == want and got


# --------------------------------------------------------------------------- #
# fleet contention: concurrent writer processes, busy-retry hardening


def _fleet_writer(path, worker, shas, rounds, queue):
    from repro.resilience import RetryPolicy

    registry = ScanRegistry(
        path, fingerprint=FP,
        write_retry=RetryPolicy(max_attempts=20, base_delay_s=0.002,
                                max_delay_s=0.05, deadline_s=120.0))
    try:
        # zero busy timeout: collisions surface as SQLITE_BUSY and must be
        # absorbed by the application-level retry, not sqlite's wait
        with registry._lock:
            registry._conn.execute("PRAGMA busy_timeout = 0")
        for index in range(rounds):
            sha = shas[(worker + index) % len(shas)]
            registry.record(sha, make_report(f"w{worker}-{index}"),
                            source_path=f"writer-{worker}.bin")
        queue.put(("ok", registry.busy_retries))
    except Exception as error:  # pragma: no cover - failure reporting
        queue.put(("error", repr(error)))
    finally:
        registry.close()


def test_fleet_writers_lose_no_updates_and_retry_busy(tmp_path):
    path = tmp_path / "fleet.db"
    ScanRegistry(path, fingerprint=FP).close()  # schema before the race
    shas = [f"{index:064x}" for index in range(8)]
    writers, rounds = 4, 50
    queue = multiprocessing.Queue()
    processes = [
        multiprocessing.Process(target=_fleet_writer,
                                args=(path, worker, shas, rounds, queue))
        for worker in range(writers)
    ]
    for process in processes:
        process.start()
    outcomes = [queue.get(timeout=120) for _ in processes]
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0
    assert all(status == "ok" for status, _ in outcomes), outcomes

    with ScanRegistry(path, fingerprint=FP) as registry:
        rows = registry.select_where("fingerprint = ?", (FP,))
        # no lost updates: every record() landed exactly once
        assert sum(row.scan_count for row in rows) == writers * rounds
        assert len(rows) == len(shas)
    # the zero-timeout writers genuinely collided and the app-level retry
    # absorbed it -- a disarmed retry path fails here
    assert sum(retries for _, retries in outcomes) >= 1


def test_partitioned_writers_on_distinct_platforms(tmp_path):
    # platform routing means concurrent evm/wasm writers touch different
    # files entirely; the merged view still equals the sum of its parts
    with PartitionedScanRegistry(tmp_path / "fleet", fingerprint=FP) as reg:
        for index in range(30):
            platform = "evm" if index % 2 else "wasm"
            reg.record(f"{index:064x}", make_report(platform=platform),
                       scanned_at=float(index))
        assert reg.counts()["verdicts"] == 30
        assert reg.partitions["evm"].counts()["verdicts"] == 15
        assert reg.partitions["wasm"].counts()["verdicts"] == 15
        assert reg.busy_retries == 0
