"""Tests for the ScamDetect core: frontends, config, pipeline, detector, reports."""

import numpy as np
import pytest

from repro import ScamDetectConfig, ScamDetector
from repro.core.frontends import (
    EVMFrontend,
    FRONTEND_REGISTRY,
    WasmFrontend,
    detect_platform,
    get_frontend,
)
from repro.core.pipeline import ScamDetectPipeline
from repro.core.report import ScanSummary, VerdictReport
from repro.datasets.generator import CorpusGenerator, GeneratorConfig
from repro.evm.contracts import TEMPLATES_BY_NAME, make_minimal_proxy
from repro.wasm.contracts import WASM_TEMPLATES_BY_NAME


# -------------------------------------------------------------------------- #
# frontends


def test_frontend_registry_and_lookup():
    assert set(FRONTEND_REGISTRY) == {"evm", "wasm"}
    assert isinstance(get_frontend("EVM"), EVMFrontend)
    assert isinstance(get_frontend("wasm"), WasmFrontend)
    with pytest.raises(KeyError):
        get_frontend("solana")


def test_platform_sniffing(rng):
    evm_code = TEMPLATES_BY_NAME["erc20_token"].generate(rng)
    wasm_code = WASM_TEMPLATES_BY_NAME["wasm_token"].generate(rng)
    assert detect_platform(evm_code) == "evm"
    assert detect_platform(wasm_code) == "wasm"
    assert detect_platform("0x" + evm_code.hex()) == "evm"
    with pytest.raises(ValueError):
        detect_platform("not-hex")


def test_frontends_lower_to_shared_ir(rng):
    evm_code = TEMPLATES_BY_NAME["staking_vault"].generate(rng)
    wasm_code = WASM_TEMPLATES_BY_NAME["wasm_token"].generate(rng)
    evm_instructions = get_frontend("evm").lower(evm_code)
    wasm_instructions = get_frontend("wasm").lower(wasm_code)
    assert {i.platform for i in evm_instructions} == {"evm"}
    assert {i.platform for i in wasm_instructions} == {"wasm"}
    shared_categories = ({i.category for i in evm_instructions}
                         & {i.category for i in wasm_instructions})
    assert "storage" in shared_categories
    assert "call" in shared_categories


# -------------------------------------------------------------------------- #
# configuration


def test_config_validation():
    ScamDetectConfig().validate()
    with pytest.raises(ValueError):
        ScamDetectConfig(architecture="transformer").validate()
    with pytest.raises(ValueError):
        ScamDetectConfig(readout="median").validate()
    with pytest.raises(ValueError):
        ScamDetectConfig(num_layers=0).validate()
    with pytest.raises(ValueError):
        ScamDetectConfig(dropout=1.5).validate()
    with pytest.raises(ValueError):
        ScamDetectConfig(node_feature_mode="raw").validate()


def test_config_dict_roundtrip():
    config = ScamDetectConfig(architecture="gat", epochs=7, readout="max")
    restored = ScamDetectConfig.from_dict(config.to_dict())
    assert restored == config
    # unknown keys are ignored
    assert ScamDetectConfig.from_dict({"architecture": "gin", "bogus": 1}).architecture == "gin"


# -------------------------------------------------------------------------- #
# pipeline + detector


@pytest.fixture(scope="module")
def trained_detector():
    corpus = CorpusGenerator(GeneratorConfig(num_samples=40, label_noise=0.0,
                                             seed=21)).generate()
    detector = ScamDetector(ScamDetectConfig(epochs=12, hidden_features=16))
    detector.train(corpus)
    return detector, corpus


def test_pipeline_requires_fit_before_use():
    pipeline = ScamDetectPipeline(ScamDetectConfig(epochs=1))
    corpus = CorpusGenerator(GeneratorConfig(num_samples=4, seed=1)).generate()
    with pytest.raises(RuntimeError):
        pipeline.predict(corpus)
    with pytest.raises(RuntimeError):
        pipeline.model


def test_detector_scan_before_train_raises():
    with pytest.raises(RuntimeError):
        ScamDetector().scan(b"\x60\x01")


def test_detector_threshold_validation():
    with pytest.raises(ValueError):
        ScamDetector(threshold=0.0)


def test_detector_end_to_end_accuracy(trained_detector):
    detector, corpus = trained_detector
    metrics = detector.evaluate(corpus)
    assert metrics["accuracy"] >= 0.9
    assert set(metrics) == {"accuracy", "precision", "recall", "f1", "roc_auc"}


def test_detector_scan_report_fields(trained_detector, rng):
    detector, _ = trained_detector
    code = TEMPLATES_BY_NAME["approval_drainer"].generate(rng)
    report = detector.scan(code, sample_id="suspicious")
    assert isinstance(report, VerdictReport)
    assert report.sample_id == "suspicious"
    assert report.platform == "evm"
    assert 0.0 <= report.malicious_probability <= 1.0
    assert report.cfg_blocks > 0
    assert report.verdict in ("benign", "malicious")
    assert "suspicious" in report.format()
    assert "verdict" in report.to_dict()
    assert report.to_json().startswith("{")


def test_detector_scan_accepts_hex_and_sniffs_platform(trained_detector, rng):
    detector, _ = trained_detector
    evm_code = TEMPLATES_BY_NAME["erc20_token"].generate(rng)
    wasm_code = WASM_TEMPLATES_BY_NAME["wasm_token"].generate(rng)
    assert detector.scan("0x" + evm_code.hex()).platform == "evm"
    assert detector.scan(wasm_code).platform == "wasm"


def test_detector_scan_flags_minimal_proxy(trained_detector):
    detector, _ = trained_detector
    report = detector.scan(make_minimal_proxy(0xABCDEF))
    assert any("ERC-1167" in note for note in report.notes)


def test_detector_scan_batch_and_summary(trained_detector, rng):
    detector, _ = trained_detector
    codes = [TEMPLATES_BY_NAME["erc20_token"].generate(rng),
             TEMPLATES_BY_NAME["approval_drainer"].generate(rng)]
    summary = detector.scan_batch(codes, sample_ids=["a", "b"])
    assert isinstance(summary, ScanSummary)
    assert summary.num_scanned == 2
    assert summary.num_malicious + summary.num_benign == 2
    assert "scanned 2 contracts" in summary.format()


def test_detector_scan_corpus(trained_detector):
    detector, corpus = trained_detector
    summary = detector.scan_corpus(corpus.subset(range(6)))
    assert summary.num_scanned == 6


def test_detector_discriminates_families(trained_detector, rng):
    """The trained detector must score drainers above benign tokens on average."""
    detector, _ = trained_detector
    benign_scores = [detector.scan(TEMPLATES_BY_NAME["erc20_token"].generate(rng)
                                   ).malicious_probability for _ in range(5)]
    malicious_scores = [detector.scan(TEMPLATES_BY_NAME["approval_drainer"].generate(rng)
                                      ).malicious_probability for _ in range(5)]
    assert np.mean(malicious_scores) > np.mean(benign_scores)


def test_pipeline_mixed_platform_training():
    evm = CorpusGenerator(GeneratorConfig(num_samples=16, label_noise=0.0,
                                          seed=31)).generate()
    wasm = CorpusGenerator(GeneratorConfig(platform="wasm", num_samples=16,
                                           label_noise=0.0, seed=32)).generate()
    from repro.datasets.corpus import Corpus
    mixed = Corpus(list(evm) + list(wasm), name="mixed")
    pipeline = ScamDetectPipeline(ScamDetectConfig(epochs=6, hidden_features=16))
    pipeline.fit(mixed)
    metrics = pipeline.evaluate(mixed)
    assert metrics["accuracy"] >= 0.7
