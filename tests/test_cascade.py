"""Unit tests of the tier-0 cascade pre-filter head.

Covers the head in isolation (calibration, threshold selection, decision
semantics, deterministic training) and its integration with the identity
machinery the rest of the repo keys on: an attached or retrained head must
change ``model_fingerprint()`` and therefore force registry misses, and a
persisted head must round-trip bit-for-bit through the bundle.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cascade.calibration import (
    apply_isotonic,
    apply_platt,
    fit_isotonic,
    fit_platt,
)
from repro.cascade.head import (
    CascadeConfig,
    CascadeDecision,
    CascadeError,
    CascadeHead,
    threshold_at_recall,
)
from repro.core.config import ScamDetectConfig
from repro.core.detector import ScamDetector
from repro.core.persistence import PersistenceError
from repro.datasets.corpus import ContractSample, Corpus
from repro.datasets.generator import CorpusGenerator, GeneratorConfig
from repro.features.ngrams import NgramExtractor

FAST = ScamDetectConfig(epochs=3, num_layers=1, hidden_features=8)


@pytest.fixture(scope="module")
def mixed_corpus(tiny_evm_corpus):
    """EVM + WASM training samples, both platforms with positives."""
    wasm = CorpusGenerator(GeneratorConfig(
        platform="wasm", num_samples=16, label_noise=0.0,
        seed=29)).generate("tiny-wasm")
    return Corpus(list(tiny_evm_corpus) + list(wasm), name="mixed")


@pytest.fixture(scope="module")
def fitted_head(mixed_corpus):
    return CascadeHead().fit(mixed_corpus)


# --------------------------------------------------------------------------- #
# calibration


def _synthetic_scores(num: int = 80):
    rng = np.random.default_rng(7)
    labels = np.asarray([0, 1] * (num // 2))
    # positives score higher on average but the classes overlap, so the
    # calibrators actually have something to smooth
    scores = rng.normal(loc=labels * 1.5, scale=0.8)
    return scores, labels


def test_platt_calibration_is_strictly_monotone():
    scores, labels = _synthetic_scores()
    a, b = fit_platt(scores, labels)
    assert a > 0  # higher raw score => higher calibrated probability
    grid = np.linspace(scores.min() - 1, scores.max() + 1, 200)
    calibrated = apply_platt(grid, a, b)
    assert np.all(np.diff(calibrated) > 0)
    assert np.all((calibrated > 0.0) & (calibrated < 1.0))


def test_platt_smoothed_targets_never_saturate():
    # perfectly separable scores: Platt's smoothed targets keep the fitted
    # probabilities strictly inside (0, 1)
    scores = np.asarray([-2.0, -1.0, 1.0, 2.0])
    labels = np.asarray([0, 0, 1, 1])
    a, b = fit_platt(scores, labels)
    calibrated = apply_platt(scores, a, b)
    assert np.all(calibrated > 0.0) and np.all(calibrated < 1.0)


def test_isotonic_calibration_is_nondecreasing():
    scores, labels = _synthetic_scores()
    knots_x, knots_y = fit_isotonic(scores, labels)
    assert np.all(np.diff(knots_x) > 0)  # strictly increasing knot axis
    assert np.all(np.diff(knots_y) >= 0)  # monotone fit by construction
    grid = np.linspace(scores.min() - 1, scores.max() + 1, 200)
    calibrated = apply_isotonic(grid, knots_x, knots_y)
    assert np.all(np.diff(calibrated) >= 0)
    assert np.all((calibrated >= 0.0) & (calibrated <= 1.0))


def test_calibration_input_validation():
    with pytest.raises(ValueError, match="both classes"):
        fit_platt(np.asarray([0.1, 0.2]), np.asarray([1, 1]))
    with pytest.raises(ValueError, match="same length"):
        fit_platt(np.asarray([0.1]), np.asarray([1, 0]))
    with pytest.raises(ValueError, match="same length"):
        fit_isotonic(np.asarray([0.1]), np.asarray([1, 0]))
    with pytest.raises(ValueError, match="at least one"):
        fit_isotonic(np.asarray([]), np.asarray([]))


# --------------------------------------------------------------------------- #
# threshold selection


def test_threshold_at_recall_full_recall_is_min_positive():
    scores = np.asarray([0.9, 0.2, 0.7, 0.4])
    assert threshold_at_recall(scores, 1.0) == pytest.approx(0.2)


def test_threshold_at_recall_allows_floor_of_misses():
    scores = np.linspace(0.1, 0.8, 8)  # 0.1, 0.2, ..., 0.8
    # 87.5% of 8 positives must stay at/above the line: one miss allowed
    assert threshold_at_recall(scores, 0.875) == pytest.approx(0.2)
    # 75% of 8 -> 2 misses allowed
    assert threshold_at_recall(scores, 0.75) == pytest.approx(0.3)
    # recall so low every miss would be allowed: still returns a real score
    assert threshold_at_recall(scores, 0.05) == pytest.approx(0.8)


def test_threshold_at_recall_validation():
    with pytest.raises(ValueError, match="target_recall"):
        threshold_at_recall(np.asarray([0.5]), 0.0)
    with pytest.raises(ValueError, match="target_recall"):
        threshold_at_recall(np.asarray([0.5]), 1.5)
    with pytest.raises(ValueError, match="at least one positive"):
        threshold_at_recall(np.asarray([]), 1.0)


def test_fitted_thresholds_keep_every_training_positive(fitted_head,
                                                        mixed_corpus):
    """target_recall=1.0: no training positive may fall below its
    platform's threshold (the zero-miss guarantee the margin sits on)."""
    thresholds = fitted_head.thresholds
    assert set(thresholds) == {"evm", "wasm"}  # per-platform, not global
    scores = fitted_head.score_corpus(mixed_corpus)
    for platform in thresholds:
        positive = np.asarray([
            score for score, sample in zip(scores, mixed_corpus)
            if sample.platform == platform and sample.label == 1])
        assert positive.min() >= thresholds[platform]
        # and the threshold IS the minimum positive score, not lower
        assert thresholds[platform] == pytest.approx(positive.min())


def test_platform_without_positives_never_short_circuits(tiny_evm_corpus):
    """A platform absent from training gets no threshold; its contracts
    always escalate to the GNN no matter how benign they score."""
    head = CascadeHead().fit(tiny_evm_corpus)  # EVM-only corpus
    assert "wasm" not in head.thresholds
    wasm_module = b"\x00asm\x01\x00\x00\x00"
    decisions = head.decide([wasm_module], ["wasm"], margin=0.0)
    assert decisions[0].platform_threshold is None
    assert not decisions[0].short_circuit

    # same outcome when the platform is *present* in training but has no
    # malicious samples: it is skipped during threshold fitting entirely
    benign_wasm = [
        ContractSample(sample_id=f"benign-wasm-{i}", platform="wasm",
                       bytecode=wasm_module, label=0, family="benign")
        for i in range(4)
    ]
    mixed = Corpus(list(tiny_evm_corpus) + benign_wasm, name="no-wasm-pos")
    head = CascadeHead().fit(mixed)
    assert "wasm" not in head.thresholds and "evm" in head.thresholds
    decisions = head.decide([wasm_module], ["wasm"], margin=0.0)
    assert not decisions[0].short_circuit


# --------------------------------------------------------------------------- #
# decision semantics


def test_margin_only_shrinks_the_short_circuit_set(fitted_head,
                                                   mixed_corpus):
    codes = [sample.bytecode for sample in mixed_corpus]
    platforms = [sample.platform for sample in mixed_corpus]
    tight = fitted_head.decide(codes, platforms, margin=0.0)
    loose = fitted_head.decide(codes, platforms, margin=0.05)
    assert any(decision.short_circuit for decision in tight)
    for narrow, wide in zip(loose, tight):
        if narrow.short_circuit:  # larger margin is strictly more cautious
            assert wide.short_circuit
    # a margin past every threshold drives the cutoff to max(0, ...) = 0
    huge = fitted_head.decide(codes, platforms, margin=1.0)
    assert not any(decision.short_circuit for decision in huge)


def test_benign_ceiling_caps_the_short_circuit_band(fitted_head,
                                                    mixed_corpus):
    """No score can sit below a zero ceiling, so nothing short-circuits:
    a short-circuited report can never be labelled malicious."""
    codes = [sample.bytecode for sample in mixed_corpus]
    platforms = [sample.platform for sample in mixed_corpus]
    decisions = fitted_head.decide(codes, platforms, margin=0.0,
                                   benign_ceiling=0.0)
    assert not any(decision.short_circuit for decision in decisions)


def test_near_miss_is_the_margin_band():
    below_threshold = CascadeDecision(
        probability=0.3, short_circuit=False, platform_threshold=0.4)
    assert below_threshold.near_miss  # only the margin kept it escalated
    above_threshold = CascadeDecision(
        probability=0.5, short_circuit=False, platform_threshold=0.4)
    assert not above_threshold.near_miss
    short_circuited = CascadeDecision(
        probability=0.1, short_circuit=True, platform_threshold=0.4)
    assert not short_circuited.near_miss
    no_threshold = CascadeDecision(
        probability=0.0, short_circuit=False, platform_threshold=None)
    assert not no_threshold.near_miss


def test_effective_margin_override_and_validation(fitted_head):
    assert fitted_head.effective_margin() == \
        fitted_head.config.margin
    assert fitted_head.effective_margin(0.25) == 0.25
    with pytest.raises(ValueError, match=">= 0"):
        fitted_head.effective_margin(-0.1)


def test_scores_are_batch_invariant(fitted_head, mixed_corpus):
    """Scoring a batch and scoring one-by-one must agree exactly -- the
    quantized scores are what thresholds and parity suites compare."""
    codes = [sample.bytecode for sample in mixed_corpus[:10]]
    platforms = [sample.platform for sample in mixed_corpus[:10]]
    batched = fitted_head.score_bytes(codes, platforms)
    singles = [float(fitted_head.score_bytes([code], [platform])[0])
               for code, platform in zip(codes, platforms)]
    assert batched.tolist() == singles


def test_config_validation():
    with pytest.raises(ValueError, match="calibration"):
        CascadeConfig(calibration="beta").validate()
    with pytest.raises(ValueError, match="target_recall"):
        CascadeConfig(target_recall=0.0).validate()
    with pytest.raises(ValueError, match="margin"):
        CascadeConfig(margin=-1.0).validate()
    with pytest.raises(ValueError, match="ngram_order"):
        CascadeConfig(ngram_order=0).validate()
    with pytest.raises(ValueError, match="top_k"):
        CascadeConfig(top_k=0).validate()


def test_unfitted_head_refuses_to_score_or_serialize():
    head = CascadeHead()
    assert not head.is_fitted
    with pytest.raises(CascadeError, match="before fit"):
        head.score_bytes([b"\x60\x00"], ["evm"])
    with pytest.raises(CascadeError, match="unfitted"):
        head.fingerprint()
    with pytest.raises(CascadeError, match="unfitted"):
        head.metadata()
    single_class = Corpus([ContractSample(
        sample_id="only-benign", platform="evm", bytecode=b"\x60\x00\x00",
        label=0, family="benign")], name="single-class")
    with pytest.raises(CascadeError, match="both benign and malicious"):
        CascadeHead().fit(single_class)
    with pytest.raises(CascadeError, match="unfitted"):
        head.state_arrays()
    with pytest.raises(CascadeError, match="before fit"):
        head._calibrate(np.asarray([0.5]))
    assert "unfitted" in head.describe()


def test_describe_and_repr_summarize_the_fitted_head(fitted_head):
    description = fitted_head.describe()
    assert "fitted" in description and "2gram" in description
    assert repr(fitted_head) == f"CascadeHead({description})"


# --------------------------------------------------------------------------- #
# deterministic training + fingerprint identity


def test_training_is_deterministic(mixed_corpus, fitted_head):
    """Same config + same corpus => bit-identical head (the property the
    whole fingerprint scheme rests on)."""
    retrained = CascadeHead().fit(mixed_corpus)
    assert retrained.fingerprint() == fitted_head.fingerprint()
    assert retrained.thresholds == fitted_head.thresholds
    assert retrained.score_corpus(mixed_corpus).tolist() == \
        fitted_head.score_corpus(mixed_corpus).tolist()


def test_isotonic_head_trains_and_differs(mixed_corpus, fitted_head):
    isotonic = CascadeHead(CascadeConfig(calibration="isotonic"))
    isotonic.fit(mixed_corpus)
    assert isotonic.fingerprint() != fitted_head.fingerprint()
    decisions = isotonic.decide(
        [sample.bytecode for sample in mixed_corpus],
        [sample.platform for sample in mixed_corpus])
    assert len(decisions) == len(mixed_corpus)


def test_config_seed_salts_the_fingerprint(mixed_corpus, fitted_head):
    salted = CascadeHead(CascadeConfig(seed=1)).fit(mixed_corpus)
    assert salted.fingerprint() != fitted_head.fingerprint()
    # the salt is identity-only: the learned decisions are unchanged
    assert salted.thresholds == fitted_head.thresholds


def test_attaching_a_head_changes_the_model_fingerprint(tiny_evm_corpus):
    detector = ScamDetector(FAST, explain=False).train(tiny_evm_corpus)
    without_head = detector.pipeline.model_fingerprint()
    detector.pipeline.fit_cascade(tiny_evm_corpus)
    with_head = detector.pipeline.model_fingerprint()
    assert with_head != without_head
    # retraining under a different cascade config moves it again
    detector.pipeline.fit_cascade(tiny_evm_corpus, CascadeConfig(seed=1))
    assert detector.pipeline.model_fingerprint() not in (without_head,
                                                         with_head)


def test_model_identity_records_cascade_mode_and_margin(tiny_evm_corpus):
    detector = ScamDetector(FAST, explain=False)
    detector.train(tiny_evm_corpus, cascade=True)
    fingerprint = detector.pipeline.model_fingerprint()
    detector.cascade = False
    assert detector.model_identity() == fingerprint
    detector.cascade = True
    enabled = detector.model_identity()
    assert enabled.startswith(fingerprint) and "+cascade-m" in enabled
    detector.cascade_margin = 0.05
    assert detector.model_identity() != enabled  # margin is part of the key


def test_fingerprint_change_forces_registry_misses(tiny_evm_corpus,
                                                   tmp_path):
    """The acceptance invariant: rows recorded under one cascade generation
    (or mode) are never served to another -- a retrained head or a toggled
    cascade re-scans instead of replaying stale verdicts."""
    from repro.registry import ScanRegistry

    detector = ScamDetector(FAST, explain=False, cascade=True)
    detector.train(tiny_evm_corpus, cascade=True)
    codes = [sample.bytecode for sample in tiny_evm_corpus[:8]]
    with ScanRegistry.for_config(tmp_path / "verdicts.db",
                                 detector.config) as registry:
        cold = detector.scan_many(codes, registry=registry)
        assert cold.registry_hits == 0
        warm = detector.scan_many(codes, registry=registry)
        assert warm.registry_hits == len(codes)  # same identity: all hits

        # GNN-only scans must not consume cascade-mode rows...
        detector.cascade = False
        gnn_only = detector.scan_many(codes, registry=registry)
        assert gnn_only.registry_hits == 0

        # ...and a retrained head invalidates the cascade-mode rows too
        detector.cascade = True
        detector.pipeline.fit_cascade(tiny_evm_corpus, CascadeConfig(seed=1))
        retrained = detector.scan_many(codes, registry=registry)
        assert retrained.registry_hits == 0
        rescan = detector.scan_many(codes, registry=registry)
        assert rescan.registry_hits == len(codes)


# --------------------------------------------------------------------------- #
# persistence


def test_bundle_roundtrip_preserves_head_and_decisions(tiny_evm_corpus,
                                                       tmp_path):
    detector = ScamDetector(FAST, explain=False, cascade=True)
    detector.train(tiny_evm_corpus, cascade=True)
    detector.save(tmp_path / "model")
    loaded = ScamDetector.load(tmp_path / "model", explain=False,
                               cascade=True)
    assert loaded.pipeline.cascade is not None
    assert loaded.pipeline.cascade.fingerprint() == \
        detector.pipeline.cascade.fingerprint()
    assert loaded.pipeline.model_fingerprint() == \
        detector.pipeline.model_fingerprint()
    codes = [sample.bytecode for sample in tiny_evm_corpus]
    platforms = [sample.platform for sample in tiny_evm_corpus]
    assert loaded.cascade_decide(codes, platforms) == \
        detector.cascade_decide(codes, platforms)


def test_bundle_without_head_loads_but_refuses_cascade_scans(
        tiny_evm_corpus, tmp_path):
    detector = ScamDetector(FAST, explain=False).train(tiny_evm_corpus)
    detector.save(tmp_path / "plain")
    loaded = ScamDetector.load(tmp_path / "plain", explain=False,
                               cascade=True)
    with pytest.raises(RuntimeError, match="no trained cascade head"):
        loaded.scan(tiny_evm_corpus[0].bytecode)
    # the same bundle is fine GNN-only
    loaded.cascade = False
    loaded.scan(tiny_evm_corpus[0].bytecode)


def test_bundle_with_orphan_cascade_arrays_is_rejected(tiny_evm_corpus,
                                                       tmp_path):
    """Cascade arrays in the npz without the JSON 'cascade' block mean a
    corrupt or partially-written bundle: loading must fail loudly."""
    detector = ScamDetector(FAST, explain=False)
    detector.train(tiny_evm_corpus, cascade=True)
    detector.save(tmp_path / "model")
    json_path = tmp_path / "model.json"
    metadata = json.loads(json_path.read_text())
    del metadata["cascade"]
    json_path.write_text(json.dumps(metadata))
    with pytest.raises(PersistenceError, match="no 'cascade' block"):
        ScamDetector.load(tmp_path / "model")


def test_from_state_rejects_corrupt_metadata(fitted_head):
    metadata = fitted_head.metadata()
    arrays = fitted_head.state_arrays()
    del metadata["classes"]
    with pytest.raises(CascadeError, match="corrupt cascade state"):
        CascadeHead.from_state(metadata, arrays)
    with pytest.raises(CascadeError, match="corrupt cascade state"):
        CascadeHead.from_state(fitted_head.metadata(),
                               {"idf": arrays["idf"]})


# --------------------------------------------------------------------------- #
# n-gram short-sequence regression (the pre-filter's feature floor)


def test_ngram_short_sequences_produce_padded_features():
    """Regression: a contract shorter than the n-gram order used to
    transform to an all-zero row, indistinguishable from empty bytecode.
    Under PAD_TOKEN it contributes one right-padded n-gram instead."""
    single_opcode = ContractSample(
        sample_id="one-op", platform="evm", bytecode=b"\x00",  # STOP
        label=0, family="benign")
    longer = ContractSample(
        sample_id="longer", platform="evm",
        bytecode=b"\x60\x01\x60\x02\x01\x00", label=1, family="scam")
    corpus = Corpus([single_opcode, longer], name="short-seq")
    extractor = NgramExtractor(n=2, top_k=16)
    features = extractor.fit_transform(corpus)
    assert features.shape == (2, extractor.dimension)
    # the 1-opcode contract is visible: its padded bigram made the
    # vocabulary during fit and its row is non-zero
    assert features[0].sum() > 0
    # and a fit that never saw the short contract still transforms it
    # without crashing (the padded bigram just misses the vocabulary)
    refit = NgramExtractor(n=3, top_k=16).fit(Corpus([longer], name="l"))
    out = refit.transform(Corpus([single_opcode], name="s"))
    assert out.shape == (1, refit.dimension)
