"""Tests of the batch scanning service layer: cache, scanner, persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import ScamDetectConfig
from repro.core.detector import ScamDetector
from repro.core.persistence import PersistenceError, load_pipeline, save_pipeline
from repro.core.pipeline import ScamDetectPipeline
from repro.service import BatchScanner, GraphCache
from repro.service.cache import DISK_META_FILENAME, bytecode_key

FAST = ScamDetectConfig(epochs=3, num_layers=1, hidden_features=8)


@pytest.fixture(scope="module")
def trained_detector(tiny_evm_corpus):
    detector = ScamDetector(FAST, explain=False)
    detector.train(tiny_evm_corpus)
    return detector


# --------------------------------------------------------------------------- #
# fingerprint


def test_graph_fingerprint_stable_and_selective():
    base = ScamDetectConfig()
    assert base.graph_fingerprint() == ScamDetectConfig().graph_fingerprint()
    # model-only settings do not change the lowering fingerprint
    assert (ScamDetectConfig(architecture="gin", epochs=99, seed=5)
            .graph_fingerprint() == base.graph_fingerprint())
    # every graph-shaping knob does
    for variant in (ScamDetectConfig(node_feature_mode="count"),
                    ScamDetectConfig(include_marker_features=False),
                    ScamDetectConfig(include_structural_features=False),
                    ScamDetectConfig(max_nodes=64)):
        assert variant.graph_fingerprint() != base.graph_fingerprint()


def test_bytecode_key_separates_platforms():
    assert bytecode_key(b"\x00\x01", "evm") != bytecode_key(b"\x00\x01", "wasm")
    assert bytecode_key(b"\x00\x01", "evm") == bytecode_key(b"\x00\x01", "evm")


# --------------------------------------------------------------------------- #
# cache behaviour


def test_cache_hit_returns_identical_graph(tiny_evm_corpus):
    pipeline = ScamDetectPipeline(FAST)
    cache = GraphCache.for_config(FAST)
    pipeline.set_graph_cache(cache)
    sample = tiny_evm_corpus[0]
    first = pipeline.sample_to_graph(sample)
    assert cache.stats.misses == 1 and cache.stats.hits == 0
    second = pipeline.sample_to_graph(sample)
    assert cache.stats.hits == 1
    np.testing.assert_array_equal(first.node_features, second.node_features)
    np.testing.assert_array_equal(first.adjacency, second.adjacency)
    np.testing.assert_array_equal(first.normalized_adjacency,
                                  second.normalized_adjacency)
    assert second.label == sample.label
    assert second.sample_id == sample.sample_id


def test_cache_rebinds_label_and_sample_id(tiny_evm_corpus):
    cache = GraphCache.for_config(FAST)
    pipeline = ScamDetectPipeline(FAST, graph_cache=cache)
    sample = tiny_evm_corpus[0]
    pipeline.sample_to_graph(sample)
    hit = cache.get(sample.bytecode, sample.platform, label=1,
                    sample_id="renamed")
    assert hit is not None
    assert hit.label == 1 and hit.sample_id == "renamed"


def test_cache_lru_eviction(tiny_evm_corpus):
    cache = GraphCache.for_config(FAST, capacity=2)
    pipeline = ScamDetectPipeline(FAST, graph_cache=cache)
    a, b, c = tiny_evm_corpus[0], tiny_evm_corpus[1], tiny_evm_corpus[2]
    pipeline.sample_to_graph(a)
    pipeline.sample_to_graph(b)
    pipeline.sample_to_graph(a)       # refresh a: b is now least-recent
    pipeline.sample_to_graph(c)       # evicts b
    assert cache.stats.evictions == 1
    assert len(cache) == 2
    assert cache.get(b.bytecode, b.platform) is None
    assert cache.get(a.bytecode, a.platform) is not None
    assert cache.get(c.bytecode, c.platform) is not None


def test_cache_fingerprint_mismatch_rejected():
    cache = GraphCache.for_config(ScamDetectConfig(node_feature_mode="count"))
    with pytest.raises(ValueError, match="fingerprint"):
        ScamDetectPipeline(FAST, graph_cache=cache)
    pipeline = ScamDetectPipeline(FAST)
    with pytest.raises(ValueError, match="fingerprint"):
        pipeline.set_graph_cache(cache)


def test_disk_tier_roundtrip(tmp_path, tiny_evm_corpus):
    disk = tmp_path / "graph-cache"
    cache = GraphCache.for_config(FAST, disk_dir=disk)
    pipeline = ScamDetectPipeline(FAST, graph_cache=cache)
    sample = tiny_evm_corpus[0]
    fresh = pipeline.sample_to_graph(sample)
    assert cache.stats.disk_writes == 1
    tier = disk / FAST.graph_fingerprint()
    assert json.loads((tier / DISK_META_FILENAME).read_text())["fingerprint"] == \
        cache.fingerprint

    # a new process (new cache object) hits the disk tier, bit-identically
    revived = GraphCache.for_config(FAST, disk_dir=disk)
    hit = revived.get(sample.bytecode, sample.platform, label=sample.label,
                      sample_id=sample.sample_id)
    assert hit is not None and revived.stats.disk_hits == 1
    np.testing.assert_array_equal(hit.node_features, fresh.node_features)
    np.testing.assert_array_equal(hit.normalized_adjacency,
                                  fresh.normalized_adjacency)


def test_disk_tier_isolates_fingerprints(tmp_path, tiny_evm_corpus):
    disk = tmp_path / "graph-cache"
    sample = tiny_evm_corpus[0]
    cache = GraphCache.for_config(FAST, disk_dir=disk)
    ScamDetectPipeline(FAST, graph_cache=cache).sample_to_graph(sample)

    # a cache for a different config shares the directory without seeing
    # (or purging) the other fingerprint's entries
    other = ScamDetectConfig(node_feature_mode="count")
    other_cache = GraphCache.for_config(other, disk_dir=disk)
    assert other_cache.stats.stale_purges == 0
    assert other_cache.get(sample.bytecode, sample.platform) is None
    assert GraphCache.for_config(FAST, disk_dir=disk).get(
        sample.bytecode, sample.platform) is not None


def test_disk_tier_truncated_entry_is_warned_miss(tmp_path, tiny_evm_corpus):
    """A torn/corrupt entry on disk (e.g. from a pre-atomic writer or bit
    rot) is treated as a miss with a warning, deleted, and rewritten clean
    by the next put."""
    import warnings

    disk = tmp_path / "graph-cache"
    sample = tiny_evm_corpus[0]
    cache = GraphCache.for_config(FAST, disk_dir=disk)
    pipeline = ScamDetectPipeline(FAST, graph_cache=cache)
    fresh = pipeline.sample_to_graph(sample)
    key = bytecode_key(sample.bytecode, sample.platform)
    entry = disk / FAST.graph_fingerprint() / f"{key}.npz"
    payload = entry.read_bytes()
    entry.write_bytes(payload[:len(payload) // 2])  # torn write

    revived = GraphCache.for_config(FAST, disk_dir=disk)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert revived.get(sample.bytecode, sample.platform) is None
    assert any("unreadable" in str(entry_.message) for entry_ in caught)
    assert revived.stats.disk_corrupt == 1
    assert revived.stats.misses == 1 and revived.stats.hits == 0
    assert not entry.exists()  # removed, so the next put rewrites it

    relowered = ScamDetectPipeline(FAST, graph_cache=revived) \
        .sample_to_graph(sample)
    np.testing.assert_array_equal(relowered.node_features,
                                  fresh.node_features)
    assert revived.stats.disk_writes == 1
    third = GraphCache.for_config(FAST, disk_dir=disk)
    assert third.get(sample.bytecode, sample.platform) is not None


def test_disk_tier_writes_are_atomic_and_uniquely_named(tmp_path,
                                                        tiny_evm_corpus):
    """The publish step is a temp-file + os.replace with a process-unique
    temp name: no bare .npz ever exists in a partial state, and no temp
    files are left behind."""
    disk = tmp_path / "graph-cache"
    sample = tiny_evm_corpus[0]
    cache = GraphCache.for_config(FAST, disk_dir=disk)
    first = cache._temp_path_for(cache._entry_path("abc123"))
    second = cache._temp_path_for(cache._entry_path("abc123"))
    assert first != second  # unique even for the same key in one process
    assert first.name.startswith(".") and first.suffix == ".npz"

    ScamDetectPipeline(FAST, graph_cache=cache).sample_to_graph(sample)
    tier = disk / FAST.graph_fingerprint()
    leftovers = [path for path in tier.iterdir() if ".tmp." in path.name]
    assert leftovers == []


def test_disk_tier_purges_entries_without_sidecar(tmp_path, tiny_evm_corpus):
    disk = tmp_path / "graph-cache"
    sample = tiny_evm_corpus[0]
    cache = GraphCache.for_config(FAST, disk_dir=disk)
    ScamDetectPipeline(FAST, graph_cache=cache).sample_to_graph(sample)
    (disk / FAST.graph_fingerprint() / DISK_META_FILENAME).unlink()

    reopened = GraphCache.for_config(FAST, disk_dir=disk)
    assert reopened.stats.stale_purges == 1
    assert reopened.get(sample.bytecode, sample.platform) is None


# --------------------------------------------------------------------------- #
# batch scanner


def test_batch_scanner_matches_single_scan(trained_detector, tiny_evm_corpus):
    detector = trained_detector
    codes = [sample.bytecode for sample in tiny_evm_corpus]
    ids = [sample.sample_id for sample in tiny_evm_corpus]
    singles = [detector.scan(code, sample_id=sample_id)
               for code, sample_id in zip(codes, ids)]

    scanner = BatchScanner(detector, cache=GraphCache.for_config(FAST))
    for attempt in range(2):          # cold pass, then fully cached pass
        result = scanner.scan_codes(codes, sample_ids=ids)
        assert [r.to_dict() for r in result.reports] == \
            [r.to_dict() for r in singles]
    assert result.cache_stats.hit_rate == 1.0
    assert result.num_scanned == len(codes)
    assert result.elapsed_seconds > 0.0
    detector.pipeline.set_graph_cache(None)


def test_scan_many_and_summary_fields(trained_detector, tiny_evm_corpus):
    detector = trained_detector
    result = detector.scan_many([s.bytecode for s in tiny_evm_corpus[:6]])
    assert result.num_scanned == 6
    assert result.reports[0].sample_id == "contract-0000"
    assert "throughput" in result.format()


def test_scan_many_restores_previous_cache(trained_detector, tiny_evm_corpus):
    detector = trained_detector
    assert detector.pipeline.graph_cache is None
    cache = GraphCache.for_config(FAST)
    detector.scan_many([tiny_evm_corpus[0].bytecode], cache=cache)
    # the throwaway scanner must not leave its cache attached
    assert detector.pipeline.graph_cache is None
    assert cache.stats.lookups == 1


def test_scan_many_sequential_workers(trained_detector, tiny_evm_corpus):
    detector = trained_detector
    result = detector.scan_many([s.bytecode for s in tiny_evm_corpus[:4]],
                                max_workers=1)
    assert result.num_workers == 1
    assert result.num_scanned == 4


def test_coerce_bytecode_accepts_wrapped_hex(trained_detector, tiny_evm_corpus):
    from repro.core.detector import coerce_bytecode

    code = tiny_evm_corpus[0].bytecode
    hex_text = code.hex()
    wrapped = "0x" + "\n".join(hex_text[i:i + 32]
                               for i in range(0, len(hex_text), 32)) + "\n"
    assert coerce_bytecode(wrapped) == code


def test_scan_directory(trained_detector, tiny_evm_corpus, tmp_path):
    detector = trained_detector
    feed = tmp_path / "feed"
    feed.mkdir()
    (feed / "a.hex").write_text("0x" + tiny_evm_corpus[0].bytecode.hex())
    (feed / "b.bin").write_bytes(tiny_evm_corpus[1].bytecode)
    (feed / ".hidden").write_bytes(b"\x00")
    (feed / "entry.npz").write_bytes(b"not a contract")
    (feed / DISK_META_FILENAME).write_text("{}")
    result = detector.scan_directory(feed)
    assert sorted(r.sample_id for r in result.reports) == ["a.hex", "b.bin"]
    expected = detector.scan(tiny_evm_corpus[0].bytecode, sample_id="a.hex")
    got = next(r for r in result.reports if r.sample_id == "a.hex")
    assert got.to_dict() == expected.to_dict()


def test_scan_directory_skips_bad_inputs_with_warning(trained_detector,
                                                      tiny_evm_corpus,
                                                      tmp_path, monkeypatch):
    import pathlib

    feed = tmp_path / "feed"
    feed.mkdir()
    (feed / "good.bin").write_bytes(tiny_evm_corpus[0].bytecode)
    (feed / "broken.hex").write_text("this is not hex")
    (feed / "empty.bin").write_bytes(b"")
    (feed / "locked.bin").write_bytes(tiny_evm_corpus[1].bytecode)

    # simulate an unreadable file (chmod is useless when tests run as root)
    original_read_bytes = pathlib.Path.read_bytes

    def read_bytes(self):
        if self.name == "locked.bin":
            raise PermissionError(13, "Permission denied")
        return original_read_bytes(self)

    monkeypatch.setattr(pathlib.Path, "read_bytes", read_bytes)
    with pytest.warns(UserWarning) as warned:
        result = trained_detector.scan_directory(feed)
    # one corrupt submission must not abort the batch
    assert [r.sample_id for r in result.reports] == ["good.bin"]
    assert len(result.skipped) == 3
    assert any("broken.hex" in entry for entry in result.skipped)
    assert any("empty" in entry for entry in result.skipped)
    assert any("locked.bin" in entry for entry in result.skipped)
    assert len(warned) == 3
    assert "skipped 3 unreadable inputs" in result.format()


def test_batch_result_stats_dict_schema(trained_detector, tiny_evm_corpus):
    scanner = BatchScanner(trained_detector, inference_batch_size=4)
    result = scanner.scan_codes([s.bytecode for s in tiny_evm_corpus[:10]])
    stats = result.stats_dict()
    assert stats["contracts"] == 10
    assert stats["malicious"] + stats["benign"] == 10
    assert stats["contracts_per_second"] > 0.0
    # 10 contracts at inference_batch_size=4 -> batches of 4, 4, 2
    assert result.batch_sizes == {4: 2, 2: 1}
    assert stats["batches"] == {"count": 3, "max_size": 4, "coalesced": 3,
                                "histogram": {"2": 1, "4": 2}}
    assert set(stats["cache"]) == {"hits", "misses", "lookups", "hit_rate",
                                   "evictions", "disk_hits", "disk_writes",
                                   "stale_purges", "disk_corrupt"}


def test_batch_scanner_requires_trained_detector():
    with pytest.raises(RuntimeError, match="trained"):
        BatchScanner(ScamDetector(FAST))


def test_batch_scanner_empty_input(trained_detector):
    result = BatchScanner(trained_detector).scan_codes([])
    assert result.num_scanned == 0
    assert result.contracts_per_second == 0.0


# --------------------------------------------------------------------------- #
# CLI


def test_cli_scan_batch(trained_detector, tiny_evm_corpus, tmp_path, capsys):
    from repro.cli import main

    model_path = tmp_path / "model"
    trained_detector.save(model_path)
    feed = tmp_path / "feed"
    feed.mkdir()
    for sample in tiny_evm_corpus[:5]:
        (feed / f"{sample.sample_id}.bin").write_bytes(sample.bytecode)

    exit_code = main(["scan-batch", "--model-path", str(model_path),
                      "--input-dir", str(feed),
                      "--cache-dir", str(tmp_path / "cache")])
    output = capsys.readouterr().out
    assert "scanned 5 contracts" in output
    assert "throughput:" in output
    # verdict-coded exit status: 0 all benign, 2 anything malicious
    assert exit_code in (0, 2)

    # warm run against the persistent cache tier reports full hit rate
    exit_code = main(["scan-batch", "--model-path", str(model_path),
                      "--input-dir", str(feed),
                      "--cache-dir", str(tmp_path / "cache")])
    output = capsys.readouterr().out
    assert "hit_rate=100.0%" in output
    assert "disk_hits=5" in output


# --------------------------------------------------------------------------- #
# persistence round-trip with fingerprints


def test_persistence_roundtrip_identical_verdicts(trained_detector,
                                                  tiny_evm_corpus, tmp_path):
    detector = trained_detector
    path = tmp_path / "model"
    detector.save(path)
    metadata = json.loads((tmp_path / "model.json").read_text())
    assert metadata["graph_fingerprint"] == FAST.graph_fingerprint()

    reloaded = ScamDetector.load(path, explain=False)
    for sample in tiny_evm_corpus[:8]:
        before = detector.scan(sample.bytecode, sample_id=sample.sample_id)
        after = reloaded.scan(sample.bytecode, sample_id=sample.sample_id)
        assert before.to_dict() == after.to_dict()


def test_load_rejects_stale_bundle_fingerprint(trained_detector, tmp_path):
    path = tmp_path / "model"
    trained_detector.save(path)
    metadata = json.loads((tmp_path / "model.json").read_text())
    metadata["graph_fingerprint"] = "0" * 16
    (tmp_path / "model.json").write_text(json.dumps(metadata))
    with pytest.raises(PersistenceError, match="fingerprint"):
        load_pipeline(path)


def test_load_attaches_matching_cache(trained_detector, tiny_evm_corpus,
                                      tmp_path):
    path = tmp_path / "model"
    save_pipeline(trained_detector.pipeline, path)
    cache = GraphCache.for_config(FAST)
    pipeline = load_pipeline(path, graph_cache=cache)
    assert pipeline.graph_cache is cache
    pipeline.sample_to_graph(tiny_evm_corpus[0])
    assert cache.stats.misses == 1

    mismatched = GraphCache.for_config(ScamDetectConfig(max_nodes=64))
    with pytest.raises(PersistenceError, match="fingerprint"):
        load_pipeline(path, graph_cache=mismatched)
