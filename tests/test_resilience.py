"""Tests of the resilience layer: fault injection, retries, breakers.

Unit coverage of :mod:`repro.resilience` (deterministic fault schedules,
backoff policies, the circuit breaker) plus the integration seams the
chaos experiment (E13) leans on: cache corruption recovery, registry
busy-write retries, webhook dead-lettering, client-side 503/Retry-After
handling, server overload backpressure and shard quarantine.
"""

from __future__ import annotations

import errno
import io
import json
import sqlite3
import urllib.error

import pytest

from repro.core.config import ScamDetectConfig
from repro.core.detector import ScamDetector
from repro.registry import ScanRegistry, parse_rules
from repro.registry.rules import RulesEngine
from repro.resilience import (
    CircuitBreaker,
    FAULT_CRASH_EXIT_CODE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    active_injector,
    evaluate_fault,
    fault_plan,
    fault_point,
)
from repro.service import (
    BatchScanner,
    GraphCache,
    ScanServer,
    ServerClient,
    ServerClientError,
    ShardedScanner,
)

FAST = ScamDetectConfig(epochs=3, num_layers=1, hidden_features=8)


@pytest.fixture(scope="module")
def trained_detector(tiny_evm_corpus):
    detector = ScamDetector(FAST, explain=False)
    detector.train(tiny_evm_corpus)
    return detector


# --------------------------------------------------------------------------- #
# FaultSpec / FaultPlan


def test_fault_spec_validation():
    with pytest.raises(ValueError, match="kind"):
        FaultSpec(site="x", kind="meteor-strike")
    with pytest.raises(ValueError, match="probability"):
        FaultSpec(site="x", kind="delay", probability=1.5)
    with pytest.raises(ValueError, match="exception"):
        FaultSpec(site="x", kind="exception", exception="segfault")


def test_fault_plan_roundtrip_and_load(tmp_path):
    plan = FaultPlan(specs=(
        FaultSpec(site="cache.*", kind="corrupt", probability=0.5),
        FaultSpec(site="registry.write", kind="exception",
                  exception="sqlite_busy", after=1, max_fires=2),
    ), seed=42)
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan.to_dict()))
    assert FaultPlan.load(path) == plan


def test_fault_plan_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown"):
        FaultPlan.from_dict({"seed": 0, "specs": [
            {"site": "x", "kind": "delay", "flux_capacitor": True}]})


# --------------------------------------------------------------------------- #
# FaultInjector schedules


def test_injector_after_and_max_fires_schedule():
    injector = FaultInjector(FaultPlan(specs=(
        FaultSpec(site="s", kind="exception", after=2, max_fires=2),)))
    fired = [injector.evaluate("s") is not None for _ in range(6)]
    assert fired == [False, False, True, True, False, False]
    assert injector.fired_total() == 2


def test_injector_site_patterns_and_first_firing_wins():
    injector = FaultInjector(FaultPlan(specs=(
        FaultSpec(site="shard.worker.*", kind="crash", max_fires=1),
        FaultSpec(site="shard.*", kind="delay"),
    )))
    assert injector.evaluate("cache.disk_read") is None
    # both specs match; the first (crash) wins its single fire
    assert injector.evaluate("shard.worker.0").kind == "crash"
    # its budget spent, the broader delay spec takes over
    assert injector.evaluate("shard.worker.0").kind == "delay"


def test_injector_probability_is_seed_deterministic():
    def pattern(seed):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="s", kind="delay", probability=0.5),), seed=seed))
        return [injector.evaluate("s") is not None for _ in range(32)]

    assert pattern(7) == pattern(7)
    assert pattern(7) != pattern(8)
    assert any(pattern(7)) and not all(pattern(7))


def test_fault_point_is_noop_when_disarmed():
    assert active_injector() is None
    fault_point("anything.at.all")          # must not raise
    assert evaluate_fault("anything") is None


def test_fault_plan_context_arms_and_disarms():
    plan = FaultPlan(specs=(
        FaultSpec(site="ctx", kind="exception", max_fires=1),))
    with fault_plan(plan) as injector:
        assert active_injector() is injector
        with pytest.raises(InjectedFault) as excinfo:
            fault_point("ctx")
        assert excinfo.value.site == "ctx"
        assert injector.fired_total() == 1
    assert active_injector() is None


def test_exception_kinds_raise_contract_matching_types():
    injector = FaultInjector(FaultPlan(specs=(
        FaultSpec(site="a", kind="exception", exception="sqlite_busy"),
        FaultSpec(site="b", kind="exception", exception="urlerror"),
        FaultSpec(site="c", kind="exception", exception="oserror"),
    )))
    with pytest.raises(sqlite3.OperationalError, match="locked"):
        injector.trigger("a")
    with pytest.raises(urllib.error.URLError):
        injector.trigger("b")
    with pytest.raises(OSError):
        injector.trigger("c")


def test_disk_full_and_corrupt_faults(tmp_path):
    target = tmp_path / "entry.npz"
    target.write_bytes(b"A" * 64)
    injector = FaultInjector(FaultPlan(specs=(
        FaultSpec(site="write", kind="disk_full"),
        FaultSpec(site="read", kind="corrupt"),
    )))
    with pytest.raises(OSError) as excinfo:
        injector.trigger("write")
    assert excinfo.value.errno == errno.ENOSPC
    injector.trigger("read", path=target)
    scribbled = target.read_bytes()
    assert scribbled[:4] == b"\xde\xad\xbe\xef" and len(scribbled) == 64


# --------------------------------------------------------------------------- #
# RetryPolicy


def test_retry_delays_are_bounded_and_deterministic():
    policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, max_delay_s=0.3,
                         multiplier=2.0, jitter=0.25, seed=9)
    first = list(policy.delays())
    assert first == list(policy.delays())          # same seed, same jitter
    assert len(first) == 4                         # one per retry
    assert all(0.0 < delay <= 0.3 * 1.25 for delay in first)


def test_retry_call_recovers_and_counts():
    calls = {"n": 0}
    retried = []

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise ConnectionError("nope")
        return "ok"

    policy = RetryPolicy(max_attempts=4, base_delay_s=0.001,
                         max_delay_s=0.002)
    result = policy.call(flaky, retry_on=(ConnectionError,),
                         on_retry=lambda *args: retried.append(args),
                         sleep=lambda _: None)
    assert result == "ok" and calls["n"] == 3 and len(retried) == 2


def test_retry_exhaustion_reraises_last_underlying_error():
    policy = RetryPolicy(max_attempts=2, base_delay_s=0.001)
    with pytest.raises(ConnectionError, match="always"):
        policy.call(lambda: (_ for _ in ()).throw(ConnectionError("always")),
                    retry_on=(ConnectionError,), sleep=lambda _: None)


def test_retry_should_retry_gate_and_retry_after_override():
    slept = []

    def fail():
        raise ServerClientError(503, "busy", retry_after=7.5)

    policy = RetryPolicy(max_attempts=3, base_delay_s=0.001)
    with pytest.raises(ServerClientError):
        policy.call(fail, retry_on=(ServerClientError,),
                    retry_after=lambda error: error.retry_after,
                    sleep=slept.append)
    assert slept == [7.5, 7.5]                     # header beat the schedule

    # a non-transient verdict short-circuits without any retry
    slept.clear()
    with pytest.raises(ServerClientError):
        policy.call(fail, retry_on=(ServerClientError,),
                    should_retry=lambda error: False, sleep=slept.append)
    assert slept == []


def test_retry_deadline_stops_early():
    policy = RetryPolicy(max_attempts=50, base_delay_s=10.0,
                         deadline_s=0.5)
    attempts = {"n": 0}

    def fail():
        attempts["n"] += 1
        raise ConnectionError("down")

    with pytest.raises(ConnectionError):
        policy.call(fail, retry_on=(ConnectionError,), sleep=lambda _: None)
    # the first computed delay already blows the budget
    assert attempts["n"] == 1


# --------------------------------------------------------------------------- #
# CircuitBreaker


def test_breaker_opens_once_at_threshold():
    breaker = CircuitBreaker(failure_threshold=3)
    assert [breaker.record_failure("s0") for _ in range(5)] == \
        [False, False, True, False, False]
    assert breaker.is_open("s0") and breaker.open_keys() == ["s0"]
    assert not breaker.is_open("s1")


def test_breaker_success_clears_streak_only_while_closed():
    breaker = CircuitBreaker(failure_threshold=2)
    breaker.record_failure("k")
    breaker.record_success("k")                    # streak reset
    assert not breaker.record_failure("k")
    assert breaker.record_failure("k")             # 2nd in a row: opens
    breaker.record_success("k")                    # no silent half-open
    assert breaker.is_open("k")
    breaker.reset("k")
    assert not breaker.is_open("k")


# --------------------------------------------------------------------------- #
# integration: cache recovery under corruption / full disk


def test_cache_corrupt_disk_entry_recovers_as_miss(trained_detector,
                                                   tiny_evm_corpus,
                                                   tmp_path):
    codes = [sample.bytecode for sample in tiny_evm_corpus[:6]]
    oracle = [report.to_dict() for report in BatchScanner(
        trained_detector, max_workers=1).scan_codes(codes).reports]
    warm = GraphCache(trained_detector.config.graph_fingerprint(),
                      disk_dir=tmp_path)
    BatchScanner(trained_detector, cache=warm, max_workers=1).scan_codes(codes)
    cold = GraphCache(trained_detector.config.graph_fingerprint(),
                      disk_dir=tmp_path)
    with fault_plan(FaultPlan(specs=(
            FaultSpec(site="cache.disk_read", kind="corrupt"),))):
        with pytest.warns(UserWarning, match="corrupt"):
            result = BatchScanner(trained_detector, cache=cold,
                                  max_workers=1).scan_codes(codes)
    assert [report.to_dict() for report in result.reports] == oracle
    # every disk lookup hit really-corrupted bytes and fell back to lowering
    assert cold.stats.hits == 0


def test_cache_disk_full_write_keeps_serving(trained_detector,
                                             tiny_evm_corpus, tmp_path):
    codes = [sample.bytecode for sample in tiny_evm_corpus[:4]]
    oracle = [report.to_dict() for report in BatchScanner(
        trained_detector, max_workers=1).scan_codes(codes).reports]
    cache = GraphCache(trained_detector.config.graph_fingerprint(),
                       disk_dir=tmp_path)
    with fault_plan(FaultPlan(specs=(
            FaultSpec(site="cache.disk_write", kind="disk_full"),))):
        with pytest.warns(UserWarning):
            result = BatchScanner(trained_detector, cache=cache,
                                  max_workers=1).scan_codes(codes)
    assert [report.to_dict() for report in result.reports] == oracle


# --------------------------------------------------------------------------- #
# integration: registry busy-write retry


def test_registry_write_retries_through_sqlite_busy(trained_detector,
                                                    tiny_evm_corpus,
                                                    tmp_path):
    registry = ScanRegistry.for_config(tmp_path / "verdicts.db",
                                       trained_detector.config)
    codes = [sample.bytecode for sample in tiny_evm_corpus[:6]]
    with registry, fault_plan(FaultPlan(specs=(
            FaultSpec(site="registry.write", kind="exception",
                      exception="sqlite_busy", max_fires=2),))):
        BatchScanner(trained_detector, max_workers=1,
                     registry=registry).scan_codes(codes)
        assert registry.counts()["verdicts"] > 0
        assert active_injector().fired_total() == 2


def test_registry_write_raises_after_retry_exhaustion(trained_detector,
                                                      tmp_path):
    registry = ScanRegistry.for_config(
        tmp_path / "verdicts.db", trained_detector.config,)
    registry.write_retry = RetryPolicy(max_attempts=2, base_delay_s=0.001,
                                       max_delay_s=0.002)
    report = trained_detector.scan(b"\x60\x01\x60\x02\x01\x00")
    with registry, fault_plan(FaultPlan(specs=(
            FaultSpec(site="registry.write", kind="exception",
                      exception="sqlite_busy"),))):
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            registry.record_many([("ab" * 32, report, "x.bin")])


# --------------------------------------------------------------------------- #
# integration: webhook retry + dead-letter


RULE = """
[[rules]]
name = "page"

[rules.match]
min_score = 0.0

[rules.actions]
alert = true
webhook = "http://hooks.test/scam"
"""


def _report(detector):
    return detector.scan(b"\x60\x01\x60\x02\x01\x00")


def test_webhook_retry_recovers_without_dead_letter(trained_detector,
                                                    tmp_path):
    calls = []

    def opener(request, timeout=None):
        calls.append(request.full_url)
        return io.BytesIO(b"ok")

    engine = RulesEngine(parse_rules(RULE),
                         alert_path=tmp_path / "alerts.jsonl",
                         dead_letter_path=tmp_path / "dead.jsonl",
                         opener=opener,
                         retry=RetryPolicy(max_attempts=3,
                                           base_delay_s=0.001,
                                           max_delay_s=0.002))
    with fault_plan(FaultPlan(specs=(
            FaultSpec(site="rules.webhook", kind="exception",
                      exception="urlerror", max_fires=1),))):
        engine.evaluate(_report(trained_detector), "a" * 64)
    assert calls == ["http://hooks.test/scam"]
    assert engine.webhook_retries == 1 and engine.webhook_failures == 0
    assert not (tmp_path / "dead.jsonl").exists()


def test_webhook_exhaustion_dead_letters_the_payload(trained_detector,
                                                     tmp_path):
    dead = tmp_path / "dead.jsonl"
    engine = RulesEngine(parse_rules(RULE),
                         alert_path=tmp_path / "alerts.jsonl",
                         dead_letter_path=dead,
                         retry=RetryPolicy(max_attempts=2,
                                           base_delay_s=0.001,
                                           max_delay_s=0.002))
    with fault_plan(FaultPlan(specs=(
            FaultSpec(site="rules.webhook", kind="exception",
                      exception="urlerror", message="refused"),))):
        with pytest.warns(UserWarning, match="webhook POST .* failed"):
            engine.evaluate(_report(trained_detector), "b" * 64,
                            source_path="inbox/x.bin")
    assert engine.webhook_failures == 1
    entries = [json.loads(line) for line in dead.read_text().splitlines()]
    assert len(entries) == 1
    assert entries[0]["url"] == "http://hooks.test/scam"
    assert entries[0]["attempts"] == 2
    assert entries[0]["payload"]["sha256"] == "b" * 64
    assert "refused" in entries[0]["error"]


# --------------------------------------------------------------------------- #
# integration: client retries, Retry-After, overload backpressure


def test_client_retries_injected_503_and_counts(trained_detector,
                                                tiny_evm_corpus):
    server = ScanServer(trained_detector, port=0, workers=2).start()
    try:
        client = ServerClient(port=server.port)
        client.wait_until_ready()
        code = tiny_evm_corpus[0].bytecode
        with fault_plan(FaultPlan(specs=(
                FaultSpec(site="server.handler", kind="exception",
                          max_fires=1),))):
            served = client.scan(code)
        assert client.retries == 1
        assert served == trained_detector.scan(code).to_dict()
    finally:
        server.shutdown()


def test_injected_503_carries_retry_after_header(trained_detector,
                                                 tiny_evm_corpus):
    server = ScanServer(trained_detector, port=0, workers=2,
                        retry_after_s=2.0).start()
    try:
        client = ServerClient(port=server.port,
                              retry=RetryPolicy(max_attempts=1))
        client.wait_until_ready()
        with fault_plan(FaultPlan(specs=(
                FaultSpec(site="server.handler", kind="exception",
                          max_fires=1),))):
            with pytest.raises(ServerClientError) as excinfo:
                client.scan(tiny_evm_corpus[0].bytecode)
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after == 2.0
    finally:
        server.shutdown()


def test_bounded_coalescer_queue_sheds_load(trained_detector,
                                            tiny_evm_corpus):
    import threading
    import time

    from repro.service import RequestCoalescer, ServerMetrics, \
        ServerOverloaded

    pipeline = trained_detector.pipeline
    graphs = [pipeline.analyse_bytecode(tiny_evm_corpus[0].bytecode)[0]]
    release = threading.Event()

    def slow_scorer(batch, batch_size=None):
        release.wait(timeout=10.0)
        return [[0.5, 0.5]] * len(batch)       # predict_proba-shaped rows

    coalescer = RequestCoalescer(None, ServerMetrics(), max_wait_ms=0.0,
                                 scorer=slow_scorer, max_queue=1)
    coalescer.start()
    try:
        workers = [threading.Thread(target=coalescer.submit, args=(graphs,),
                                    daemon=True)
                   for _ in range(2)]
        workers[0].start()
        # wait until the drain thread is stuck scoring the first submission
        deadline = time.monotonic() + 5.0
        while coalescer._queue.qsize() != 0:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        workers[1].start()          # fills the single queue slot
        while coalescer._queue.qsize() != 1:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        with pytest.raises(ServerOverloaded, match="queue is full"):
            coalescer.submit(graphs)
    finally:
        release.set()
        for worker in workers:
            worker.join(timeout=10.0)
        coalescer.close()


# --------------------------------------------------------------------------- #
# integration: shard quarantine + degraded serving


def test_quarantined_shard_rebalances_and_completes(trained_detector,
                                                    tiny_evm_corpus):
    codes = [sample.bytecode for sample in tiny_evm_corpus]
    ids = [sample.sample_id for sample in tiny_evm_corpus]
    oracle = BatchScanner(trained_detector, max_workers=1).scan_codes(
        codes, sample_ids=ids)
    plan = FaultPlan(specs=(
        FaultSpec(site="shard.worker.0", kind="crash", max_fires=1),))
    with fault_plan(plan), \
            ShardedScanner(trained_detector, shards=2, chunk_size=2,
                           max_restarts=0) as scanner:
        scanner.start()
        with pytest.warns(UserWarning, match="quarantining"):
            result = scanner.scan_codes(codes, sample_ids=ids)
        assert scanner.degraded and scanner.quarantined_shards == [0]
        # degraded-but-correct: nothing lost, nothing wrong
        assert [report.to_dict() for report in result.reports] == \
            [report.to_dict() for report in oracle.reports]
        # the pool keeps serving follow-up batches on the healthy shard
        again = scanner.scan_codes(codes[:4], sample_ids=ids[:4])
        assert [report.to_dict() for report in again.reports] == \
            [report.to_dict() for report in oracle.reports[:4]]


def test_single_shard_quarantine_fails_loudly(trained_detector,
                                              tiny_evm_corpus):
    from repro.service import ShardError

    codes = [sample.bytecode for sample in tiny_evm_corpus[:4]]
    plan = FaultPlan(specs=(
        FaultSpec(site="shard.worker.0", kind="crash", max_fires=1),))
    with fault_plan(plan), \
            ShardedScanner(trained_detector, shards=1, chunk_size=2,
                           max_restarts=0) as scanner:
        scanner.start()
        with pytest.raises(ShardError, match="no healthy shard"):
            scanner.scan_codes(codes)


def test_crash_exit_code_is_stable():
    # the heal loop's warnings and CI triage key on this value
    assert FAULT_CRASH_EXIT_CODE == 3
