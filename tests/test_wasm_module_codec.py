"""Tests for the WASM module encoder/parser roundtrip."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wasm.contracts import WASM_ALL_TEMPLATES
from repro.wasm.encoder import MAGIC, VERSION, encode_instruction, encode_module
from repro.wasm.module import WasmFunction, WasmModule, instr
from repro.wasm.opcodes import BLOCKTYPE_VOID, VALTYPE_I64, WASM_OPCODES_BY_NAME
from repro.wasm.parser import WasmParseError, decode_instruction, parse_module


def _simple_module():
    module = WasmModule(name="simple")
    type_index = module.add_type(1, 1)
    module.add_function(WasmFunction(type_index=type_index,
                                     locals=[(2, VALTYPE_I64)],
                                     body=[
                                         instr("local.get", 0),
                                         instr("i64.const", 41),
                                         instr("i64.add"),
                                     ]))
    return module


def test_module_header():
    binary = encode_module(_simple_module())
    assert binary.startswith(MAGIC + VERSION)


def test_roundtrip_simple_module():
    module = _simple_module()
    parsed = parse_module(encode_module(module))
    assert parsed.num_functions == 1
    assert parsed.types == [(1, 1)]
    assert [e.name for e in parsed.functions[0].body] == ["local.get", "i64.const",
                                                          "i64.add"]
    assert parsed.functions[0].body[1].operands == (41,)
    assert parsed.functions[0].locals == [(2, VALTYPE_I64)]


def test_roundtrip_structured_control_flow():
    module = WasmModule()
    type_index = module.add_type(0, 0)
    body = [
        instr("block", BLOCKTYPE_VOID),
        instr("i32.const", 0),
        instr("br_if", 0),
        instr("loop", BLOCKTYPE_VOID),
        instr("i32.const", 1),
        instr("br_if", 0),
        instr("end"),
        instr("end"),
    ]
    module.add_function(WasmFunction(type_index=type_index, body=body))
    parsed = parse_module(encode_module(module))
    assert [e.name for e in parsed.functions[0].body] == [e.name for e in body]


def test_roundtrip_all_templates(rng):
    for template in WASM_ALL_TEMPLATES:
        binary = template.generate(rng)
        parsed = parse_module(binary)
        assert parsed.num_functions >= 4, template.name
        reencoded = encode_module(parsed)
        assert parse_module(reencoded).num_instructions == parsed.num_instructions


def test_parser_rejects_bad_magic():
    with pytest.raises(WasmParseError):
        parse_module(b"\x00bad\x01\x00\x00\x00")
    with pytest.raises(WasmParseError):
        parse_module(MAGIC + b"\x02\x00\x00\x00")


def test_parser_rejects_unknown_opcode():
    with pytest.raises(WasmParseError):
        decode_instruction(bytes([0xFE]), 0)


def test_encode_instruction_memarg():
    encoded = encode_instruction(instr("i32.store", 2, 16))
    assert encoded[0] == WASM_OPCODES_BY_NAME["i32.store"].value
    decoded, _ = decode_instruction(encoded, 0)
    assert decoded.operands == (2, 16)


def test_add_type_deduplicates():
    module = WasmModule()
    first = module.add_type(2, 1)
    second = module.add_type(2, 1)
    third = module.add_type(0, 0)
    assert first == second
    assert third != first


def test_add_function_validates_type_index():
    module = WasmModule()
    with pytest.raises(ValueError):
        module.add_function(WasmFunction(type_index=3))


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(["i64.add", "i64.sub", "drop", "nop", "i64.mul"]),
                min_size=0, max_size=30),
       st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
def test_roundtrip_random_straightline_bodies(names, constant):
    module = WasmModule()
    type_index = module.add_type(0, 0)
    body = [instr("i64.const", constant)] + [instr(name) for name in names]
    module.add_function(WasmFunction(type_index=type_index, body=body))
    parsed = parse_module(encode_module(module))
    assert [e.name for e in parsed.functions[0].body] == [e.name for e in body]
    assert parsed.functions[0].body[0].operands == (constant,)
