"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.datasets.generator import CorpusGenerator, GeneratorConfig


@pytest.fixture(scope="session")
def rng():
    """A deterministic RNG shared by tests that need randomness."""
    return random.Random(1234)


@pytest.fixture(scope="session")
def small_evm_corpus():
    """A small, clean EVM corpus (60 contracts, no label noise)."""
    return CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=60, label_noise=0.0, seed=11)).generate("test-evm")


@pytest.fixture(scope="session")
def small_wasm_corpus():
    """A small, clean WASM corpus (40 contracts, no label noise)."""
    return CorpusGenerator(GeneratorConfig(
        platform="wasm", num_samples=40, label_noise=0.0, seed=13)).generate("test-wasm")


@pytest.fixture(scope="session")
def tiny_evm_corpus():
    """A very small EVM corpus for expensive (training) tests."""
    return CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=24, label_noise=0.0, seed=17)).generate("tiny-evm")
