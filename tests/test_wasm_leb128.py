"""Unit and property tests for LEB128 encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wasm.leb128 import (
    LEB128Error,
    decode_signed,
    decode_unsigned,
    encode_signed,
    encode_unsigned,
)


def test_known_unsigned_encodings():
    assert encode_unsigned(0) == b"\x00"
    assert encode_unsigned(127) == b"\x7f"
    assert encode_unsigned(128) == b"\x80\x01"
    assert encode_unsigned(624485) == b"\xe5\x8e\x26"


def test_known_signed_encodings():
    assert encode_signed(0) == b"\x00"
    assert encode_signed(-1) == b"\x7f"
    assert encode_signed(63) == b"\x3f"
    assert encode_signed(-64) == b"\x40"
    assert encode_signed(-123456) == b"\xc0\xbb\x78"


def test_decode_reports_consumed_offset():
    data = encode_unsigned(300) + b"\xAA"
    value, offset = decode_unsigned(data, 0)
    assert value == 300
    assert offset == 2


def test_unsigned_rejects_negative():
    with pytest.raises(LEB128Error):
        encode_unsigned(-1)


def test_truncated_sequences_rejected():
    with pytest.raises(LEB128Error):
        decode_unsigned(b"\x80", 0)
    with pytest.raises(LEB128Error):
        decode_signed(b"\xff", 0)


def test_overlong_sequence_rejected():
    with pytest.raises(LEB128Error):
        decode_unsigned(b"\x80" * 11 + b"\x00", 0)


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 63 - 1))
def test_unsigned_roundtrip(value):
    encoded = encode_unsigned(value)
    decoded, offset = decode_unsigned(encoded)
    assert decoded == value
    assert offset == len(encoded)


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=-(2 ** 62), max_value=2 ** 62 - 1))
def test_signed_roundtrip(value):
    encoded = encode_signed(value)
    decoded, offset = decode_signed(encoded)
    assert decoded == value
    assert offset == len(encoded)
