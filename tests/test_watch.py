"""End-to-end tests of the watch daemon + registry-backed scanning.

Locks the PR's acceptance invariant: for any corpus, one ``watch`` poll
cycle followed by ``query --all`` returns verdicts byte-identical to a
``scan-batch`` over the same corpus; a second poll cycle performs zero GNN
inference calls; the registry survives a daemon restart; and a graph
fingerprint change invalidates only the stale rows.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.core.config import ScamDetectConfig
from repro.core.detector import ScamDetector
from repro.registry import RulesEngine, ScanRegistry, WatchDaemon, \
    content_sha256, parse_rules
from repro.service import BatchScanner, GraphCache

FAST = ScamDetectConfig(epochs=3, num_layers=1, hidden_features=8)


@pytest.fixture(scope="module")
def trained_detector(tiny_evm_corpus):
    detector = ScamDetector(FAST, explain=False)
    detector.train(tiny_evm_corpus)
    return detector


@pytest.fixture()
def feed(tmp_path, tiny_evm_corpus):
    """A corpus directory of .bin files plus the matching raw codes."""
    directory = tmp_path / "feed"
    directory.mkdir()
    for sample in tiny_evm_corpus:
        (directory / f"{sample.sample_id}.bin").write_bytes(sample.bytecode)
    return directory


@pytest.fixture()
def registry(tmp_path, trained_detector):
    with ScanRegistry.for_config(tmp_path / "verdicts.db",
                                 trained_detector.config) as reg:
        yield reg


def write_contract(directory, name, bytecode):
    path = directory / name
    path.write_bytes(bytecode)
    # poll change detection keys on (size, mtime_ns); same-size rewrites in
    # the same timestamp granule must still be visible
    stat = path.stat()
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
    return path


# --------------------------------------------------------------------------- #
# the acceptance invariant


def test_watch_then_query_matches_scan_batch_byte_identical(
        trained_detector, feed, registry):
    daemon = WatchDaemon(trained_detector, registry, feed)
    cold = daemon.poll_once()
    assert cold.new == cold.files_seen > 0
    assert cold.inference_calls >= 1

    oracle = trained_detector.scan_directory(feed)
    rows = {row.source_path: row for row in registry.query(limit=None)}
    assert len(rows) == oracle.num_scanned
    for report in oracle.reports:
        stored = rows[report.sample_id].to_report()
        assert stored.to_dict() == report.to_dict()

    # second cycle over the unchanged corpus: stat short-circuit only
    warm = daemon.poll_once()
    assert warm.unchanged == warm.files_seen
    assert warm.scanned == 0
    assert warm.registry_hits == 0
    assert warm.inference_calls == 0


def test_watch_query_cli_roundtrip(trained_detector, feed, tmp_path,
                                   capsys):
    model_path = tmp_path / "model"
    trained_detector.save(model_path)
    registry_path = tmp_path / "cli-verdicts.db"

    exit_code = main(["watch", str(feed), "--model-path", str(model_path),
                      "--registry", str(registry_path),
                      "--interval", "0.05", "--max-polls", "2"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "poll 1:" in out and "poll 2:" in out
    assert "0 inference calls" in out  # the second poll was free

    exit_code = main(["query", "--registry", str(registry_path),
                      "--model-path", str(model_path), "--all", "--json"])
    assert exit_code == 0
    rows = json.loads(capsys.readouterr().out)

    # CLI parity: the recorded reports equal a scan-batch over the corpus
    batch = main(["scan-batch", "--model-path", str(model_path),
                  "--input-dir", str(feed), "--show-reports"])
    assert batch in (0, 2)
    oracle = trained_detector.scan_directory(feed)
    by_path = {row["source_path"]: row["report"] for row in rows}
    assert len(by_path) == oracle.num_scanned
    for report in oracle.reports:
        assert by_path[report.sample_id] == report.to_dict()


# --------------------------------------------------------------------------- #
# incremental change detection


def test_new_changed_deleted_files_are_tracked(trained_detector, feed,
                                               registry, tiny_evm_corpus):
    daemon = WatchDaemon(trained_detector, registry, feed)
    daemon.poll_once()

    # drop a brand-new contract, mutate an existing one, delete another
    existing = sorted(feed.glob("evm-*.bin"))
    fresh_code = tiny_evm_corpus[0].bytecode + b"\x00"
    write_contract(feed, "dropped.bin", fresh_code)
    write_contract(feed, existing[0].name,
                   existing[0].read_bytes() + b"\x00\x00")
    removed = existing[1]
    removed.unlink()

    stats = daemon.poll_once()
    assert stats.new == 1
    assert stats.changed == 1
    assert stats.deleted == 1
    assert stats.scanned == 2 and stats.inference_calls == 1

    # the deleted path is flagged in the index; its verdict row remains
    assert removed.name not in registry.watched_files()
    deleted_entry = registry.watched_files(
        include_deleted=True)[removed.name]
    assert deleted_entry.deleted_at is not None
    assert registry.get(deleted_entry.sha256) is not None

    # and the new verdicts landed
    assert registry.get(content_sha256(fresh_code)) is not None


def test_duplicate_content_served_from_registry_without_inference(
        trained_detector, feed, registry):
    daemon = WatchDaemon(trained_detector, registry, feed)
    daemon.poll_once()
    clone_source = sorted(feed.glob("*.bin"))[0]
    write_contract(feed, "clone-of-first.bin", clone_source.read_bytes())
    stats = daemon.poll_once()
    assert stats.new == 1
    assert stats.registry_hits == 1
    assert stats.scanned == 0
    assert stats.inference_calls == 0
    # the registry hit is rebound to the new path in the poll's reports
    assert stats.reports[0].sample_id == "clone-of-first.bin"


def test_registry_survives_daemon_restart(trained_detector, feed, tmp_path):
    registry_path = tmp_path / "restart.db"
    with ScanRegistry.for_config(registry_path,
                                 trained_detector.config) as registry:
        WatchDaemon(trained_detector, registry, feed).poll_once()
        before = {row.sha256: row.malicious_probability
                  for row in registry.query(limit=None)}
    assert before

    # a brand-new daemon process-equivalent: fresh handles, same file.  The
    # stat index survives too, so not even re-hashing happens.
    with ScanRegistry.for_config(registry_path,
                                 trained_detector.config) as registry:
        stats = WatchDaemon(trained_detector, registry, feed).poll_once()
        assert stats.inference_calls == 0
        assert stats.scanned == 0 and stats.unchanged == stats.files_seen
        after = {row.sha256: row.malicious_probability
                 for row in registry.query(limit=None)}
    assert after == before


def test_fingerprint_change_invalidates_only_stale_rows(
        trained_detector, feed, tmp_path, tiny_evm_corpus):
    registry_path = tmp_path / "fp.db"
    with ScanRegistry.for_config(registry_path,
                                 trained_detector.config) as registry:
        WatchDaemon(trained_detector, registry, feed).poll_once()
        old_rows = len(registry.query(limit=None))
    assert old_rows > 0

    # a lowering-config change (different max_nodes) gets a new fingerprint
    changed = ScamDetector(
        ScamDetectConfig(epochs=3, num_layers=1, hidden_features=8,
                         max_nodes=64),
        explain=False).train(tiny_evm_corpus)
    assert changed.config.graph_fingerprint() != \
        trained_detector.config.graph_fingerprint()

    with ScanRegistry.for_config(registry_path,
                                 changed.config) as registry:
        stats = WatchDaemon(changed, registry, feed).poll_once()
        # nothing of the old fingerprint is trusted: everything re-scans
        assert stats.scanned == stats.files_seen
        assert stats.inference_calls >= 1
        # ... but the stale rows are still there under their own scope
        assert len(registry.query(limit=None)) == stats.files_seen
        assert len(registry.query(all_fingerprints=True)) \
            == old_rows + stats.files_seen
        assert registry.purge_stale() == old_rows


def test_mismatched_registry_fingerprint_is_rejected(trained_detector,
                                                     feed, tmp_path):
    registry = ScanRegistry(tmp_path / "wrong.db", fingerprint="deadbeef")
    try:
        with pytest.raises(ValueError, match="fingerprint"):
            WatchDaemon(trained_detector, registry, feed)
        with pytest.raises(ValueError, match="fingerprint"):
            BatchScanner(trained_detector, registry=registry)
    finally:
        registry.close()


# --------------------------------------------------------------------------- #
# triage rules on the watch path


def test_watch_runs_triage_rules_on_new_verdicts(trained_detector, feed,
                                                 registry, tmp_path):
    # threshold 0.05 flags essentially everything malicious, so the rule
    # deterministically fires on this tiny corpus
    spicy = ScamDetector(FAST, threshold=0.05, explain=False)
    spicy.pipeline = trained_detector.pipeline
    sink = tmp_path / "alerts.jsonl"
    engine = RulesEngine(parse_rules("""
[[rules]]
name = "page-on-scam"
[rules.match]
verdict = "malicious"
[rules.actions]
tag = ["hot"]
alert = true
exit_nonzero = true
"""), alert_path=sink)
    daemon = WatchDaemon(spicy, registry, feed, rules=engine)
    stats = daemon.poll_once()
    assert stats.malicious > 0
    assert stats.rules_matched == stats.malicious
    assert stats.alerts == stats.malicious
    assert stats.exit_nonzero and daemon.exit_nonzero
    alerts = [json.loads(line) for line in sink.read_text().splitlines()]
    assert len(alerts) == stats.malicious
    assert all(alert["rule"] == "page-on-scam" for alert in alerts)
    # tags landed on the registry rows
    tagged = registry.query(tag="hot")
    assert len(tagged) == stats.malicious


# --------------------------------------------------------------------------- #
# BatchScanner registry integration (hits distinct from cache hits)


def test_batch_scanner_registry_hits_skip_inference(trained_detector,
                                                    tiny_evm_corpus,
                                                    registry):
    codes = [sample.bytecode for sample in tiny_evm_corpus[:8]]
    ids = [sample.sample_id for sample in tiny_evm_corpus[:8]]
    scanner = BatchScanner(trained_detector, registry=registry)
    cold = scanner.scan_codes(codes, sample_ids=ids)
    assert cold.registry_hits == 0
    assert sum(cold.batch_sizes.values()) >= 1

    warm = scanner.scan_codes(codes, sample_ids=ids)
    assert warm.registry_hits == len(codes)
    assert warm.batch_sizes == {}  # zero inference calls
    for fresh, cached in zip(cold.reports, warm.reports):
        assert fresh.to_dict() == cached.to_dict()

    stats = warm.stats_dict()
    assert stats["registry"] == {"hits": len(codes), "misses": 0}
    assert "registry" in warm.format()


def test_registry_hits_are_distinct_from_cache_hits(trained_detector,
                                                    tiny_evm_corpus,
                                                    registry):
    codes = [sample.bytecode for sample in tiny_evm_corpus[:6]]
    cache = GraphCache.for_config(trained_detector.config)
    scanner = BatchScanner(trained_detector, cache=cache)
    try:
        cache_only = scanner.scan_codes(codes)
        cache_warm = scanner.scan_codes(codes)
        # graph-cache hits still run inference ...
        assert cache_warm.cache_stats.hit_rate == 1.0
        assert sum(cache_warm.batch_sizes.values()) >= 1
        assert cache_warm.registry_hits == 0

        with_registry = BatchScanner(trained_detector, cache=cache,
                                     registry=registry)
        first = with_registry.scan_codes(codes)
        second = with_registry.scan_codes(codes)
        # ... while registry hits skip the model entirely
        assert first.registry_hits == 0
        assert second.registry_hits == len(codes)
        assert second.batch_sizes == {}
        for one, two in zip(cache_only.reports, second.reports):
            assert one.to_dict() == two.to_dict()
    finally:
        trained_detector.pipeline.graph_cache = None


def test_registry_threshold_change_relabels_hits(trained_detector,
                                                 tiny_evm_corpus, registry):
    codes = [sample.bytecode for sample in tiny_evm_corpus[:6]]
    BatchScanner(trained_detector, registry=registry).scan_codes(codes)

    spicy = ScamDetector(FAST, threshold=0.05, explain=False)
    spicy.pipeline = trained_detector.pipeline
    result = BatchScanner(spicy, registry=registry).scan_codes(codes)
    # stored probabilities are reused, labels reflect the new threshold
    assert result.registry_hits == len(codes)
    for report in result.reports:
        assert report.label == int(report.malicious_probability >= 0.05)


def test_registry_ignores_rows_from_other_model_or_explain(
        trained_detector, tiny_evm_corpus, registry):
    codes = [sample.bytecode for sample in tiny_evm_corpus[:4]]
    BatchScanner(trained_detector, registry=registry).scan_codes(codes)

    # a retrain with IDENTICAL hyper-parameters produces different weights
    # (different seed) but the same architecture label and the same graph
    # fingerprint -- the registry must re-scan, never serve the old
    # model's verdicts
    retrained = ScamDetector(
        ScamDetectConfig(epochs=3, num_layers=1, hidden_features=8,
                         seed=99),
        explain=False)
    retrained.train(tiny_evm_corpus)
    assert retrained.config.graph_fingerprint() == \
        trained_detector.config.graph_fingerprint()
    assert retrained.pipeline.model_fingerprint() != \
        trained_detector.pipeline.model_fingerprint()
    result = BatchScanner(retrained, registry=registry).scan_codes(codes)
    assert result.registry_hits == 0
    for report in result.reports:
        direct = retrained.scan(codes[result.reports.index(report)])
        assert report.malicious_probability == direct.malicious_probability

    # same fingerprint, different explain setting: rows must not be reused
    # (their notes would not match a fresh scan's)
    explainer = ScamDetector(FAST, explain=True)
    explainer.pipeline = trained_detector.pipeline
    result = BatchScanner(explainer, registry=registry).scan_codes(codes)
    assert result.registry_hits == 0
    # the re-scan upserted explained rows; now both settings hit
    again = BatchScanner(explainer, registry=registry).scan_codes(codes)
    assert again.registry_hits == len(codes)
    for report in again.reports:
        direct = explainer.scan(codes[again.reports.index(report)])
        assert report.malicious_probability == direct.malicious_probability


def test_sharded_scan_records_and_serves_registry(trained_detector,
                                                  tiny_evm_corpus,
                                                  registry):
    codes = [sample.bytecode for sample in tiny_evm_corpus[:8]]
    ids = [sample.sample_id for sample in tiny_evm_corpus[:8]]
    with BatchScanner(trained_detector, shards=2,
                      registry=registry) as scanner:
        cold = scanner.scan_codes(codes, sample_ids=ids)
        warm = scanner.scan_codes(codes, sample_ids=ids)
    assert cold.registry_hits == 0 and cold.shard_stats
    # the warm pass never reaches the shard pool
    assert warm.registry_hits == len(codes)
    oracle = [trained_detector.scan(code, sample_id=sample_id)
              for code, sample_id in zip(codes, ids)]
    for single, cached in zip(oracle, warm.reports):
        assert single.to_dict() == cached.to_dict()


# --------------------------------------------------------------------------- #
# directory walking: recursion + glob filtering


def test_scan_directory_recursive_flag_and_glob(trained_detector, feed,
                                                tiny_evm_corpus):
    nested = feed / "nested"
    nested.mkdir()
    write_contract(nested, "deep.bin", tiny_evm_corpus[0].bytecode)

    everything = trained_detector.scan_directory(feed)
    assert "nested/deep.bin" in \
        [report.sample_id for report in everything.reports]

    flat = trained_detector.scan_directory(feed, recursive=False)
    assert len(flat.reports) == len(everything.reports) - 1
    assert all("nested" not in report.sample_id for report in flat.reports)

    only_nested = trained_detector.scan_directory(feed,
                                                  pattern="nested/*.bin")
    assert [report.sample_id for report in only_nested.reports] \
        == ["nested/deep.bin"]


def test_watch_respects_recursive_and_pattern(trained_detector, feed,
                                              registry, tiny_evm_corpus):
    nested = feed / "sub"
    nested.mkdir()
    write_contract(nested, "inner.bin", tiny_evm_corpus[0].bytecode)
    top_level = len(list(feed.glob("*.bin")))

    daemon = WatchDaemon(trained_detector, registry, feed, recursive=False)
    stats = daemon.poll_once()
    assert stats.files_seen == top_level

    daemon = WatchDaemon(trained_detector, registry, feed,
                         pattern="sub/*.bin")
    stats = daemon.poll_once()
    assert stats.files_seen == 1


def test_watch_skips_registry_database_in_corpus_dir(trained_detector,
                                                     feed):
    # a registry living inside the watched directory must never be scanned
    with ScanRegistry.for_config(feed / "verdicts.db",
                                 trained_detector.config) as registry:
        daemon = WatchDaemon(trained_detector, registry, feed)
        stats = daemon.poll_once()
        assert stats.files_seen == len(list(feed.glob("*.bin")))
        assert all(not row.source_path.endswith(".db")
                   for row in registry.query(limit=None))


# --------------------------------------------------------------------------- #
# drain + recovery under injected faults


def test_stop_during_injected_slow_poll_finishes_the_cycle(
        trained_detector, feed, registry):
    # a SIGTERM-style stop() landing mid-cycle (the CLI's signal handler
    # calls exactly this) must let the poll in flight finish and record
    # its verdicts -- shutdown latency is bounded, work is never dropped
    import threading

    from repro.resilience import FaultPlan, FaultSpec, fault_plan

    daemon = WatchDaemon(trained_detector, registry, feed, interval=0.05)
    with daemon, fault_plan(FaultPlan(specs=(
            FaultSpec(site="watch.poll", kind="delay", delay_s=0.4,
                      max_fires=1),))):
        stopper = threading.Timer(0.1, daemon.stop)
        stopper.start()
        try:
            completed = daemon.run()
        finally:
            stopper.cancel()
    assert completed == 1
    # the interrupted cycle still recorded every contract durably
    scanned = BatchScanner(trained_detector, max_workers=1).scan_directory(
        feed)
    recorded = {row.sha256 for row in registry.query(limit=None)}
    assert {content_sha256(sample_bytes)
            for sample_bytes in (path.read_bytes()
                                 for path in feed.glob("*.bin"))} <= recorded
    assert len(recorded) >= scanned.num_scanned - scanned.registry_hits


def test_faulted_poll_cycle_is_skipped_then_retried(trained_detector, feed,
                                                    registry):
    from repro.resilience import FaultPlan, FaultSpec, fault_plan

    daemon = WatchDaemon(trained_detector, registry, feed, interval=0.01)
    with daemon, fault_plan(FaultPlan(specs=(
            FaultSpec(site="watch.poll", kind="exception", max_fires=1),))):
        with pytest.warns(UserWarning, match="transient fault"):
            completed = daemon.run(max_polls=1)
    # the faulted cycle aborted before scanning; the retry cycle saw the
    # whole corpus fresh and recorded everything
    assert completed == 1 and daemon.faulted_polls == 1
    assert len(registry.query(limit=None)) > 0
    stats = WatchDaemon(trained_detector, registry, feed).poll_once()
    assert stats.inference_calls == 0     # nothing was lost or half-recorded


# --------------------------------------------------------------------------- #
# discovery-path correctness: stat failures and mid-cycle rewrites


def test_unstatable_file_is_not_marked_deleted(trained_detector, feed,
                                               registry):
    from repro.resilience import FaultPlan, FaultSpec, fault_plan

    daemon = WatchDaemon(trained_detector, registry, feed)
    daemon.poll_once()
    live = set(registry.watched_files())
    assert live

    # one file transiently fails stat() this cycle (NFS hiccup, racing
    # chmod): it must be skipped, NOT swept into the deletion sweep
    with fault_plan(FaultPlan(specs=(
            FaultSpec(site="watch.stat", kind="exception",
                      exception="oserror", max_fires=1),))):
        with pytest.warns(UserWarning, match="cannot stat"):
            stats = daemon.poll_once()
    assert stats.skipped == 1
    assert stats.deleted == 0
    # the skipped path is still live in the index -- no deleted_at stamp
    assert set(registry.watched_files()) == live
    index = registry.watched_files(include_deleted=True)
    assert all(index[rel].deleted_at is None for rel in live)

    # next cycle stats everything again: nothing changed, nothing re-scans
    clean = daemon.poll_once()
    assert clean.unchanged == clean.files_seen == len(live)
    assert clean.deleted == 0 and clean.scanned == 0


def test_stat_failure_still_detects_real_deletions(trained_detector, feed,
                                                   registry):
    from repro.resilience import FaultPlan, FaultSpec, fault_plan

    daemon = WatchDaemon(trained_detector, registry, feed)
    daemon.poll_once()
    removed = sorted(feed.glob("*.bin"))[0]
    removed.unlink()

    # a *different* file faults its stat in the same cycle; the genuinely
    # deleted file must still be swept
    with fault_plan(FaultPlan(specs=(
            FaultSpec(site="watch.stat", kind="exception",
                      exception="oserror", max_fires=1),))):
        with pytest.warns(UserWarning, match="cannot stat"):
            stats = daemon.poll_once()
    assert stats.skipped == 1
    assert stats.deleted == 1
    assert removed.name not in registry.watched_files()


def test_midcycle_rewrite_records_consistent_stat(trained_detector, feed,
                                                  registry, monkeypatch,
                                                  tiny_evm_corpus):
    import repro.registry.watch as watch_module

    daemon = WatchDaemon(trained_detector, registry, feed)
    daemon.poll_once()

    target = sorted(feed.glob("*.bin"))[0]
    first_rewrite = target.read_bytes() + b"\x00"
    final_content = tiny_evm_corpus[1].bytecode + b"\x00\x00"
    write_contract(feed, target.name, first_rewrite)

    # simulate the stat->read race: the first read of the target lands
    # *after* a second rewrite that the discovery stat never saw
    real_read = watch_module.read_contract_file
    raced = {"done": False}

    def racing_read(path):
        raw = real_read(path)
        if path.name == target.name and not raced["done"]:
            raced["done"] = True
            write_contract(feed, target.name, final_content)
            return real_read(path)
        return raw

    monkeypatch.setattr(watch_module, "read_contract_file", racing_read)
    daemon.poll_once()
    monkeypatch.setattr(watch_module, "read_contract_file", real_read)
    assert raced["done"]

    # the recorded index entry must describe the bytes that were hashed:
    # sha of what is on disk now, stat consistent with it -- so the next
    # poll sees the file as unchanged and nothing was masked
    entry = registry.watched_files()[target.name]
    assert entry.sha256 == content_sha256(final_content)
    stat = target.stat()
    assert (entry.size, entry.mtime_ns) == (stat.st_size, stat.st_mtime_ns)
    assert registry.get(content_sha256(final_content)) is not None

    clean = daemon.poll_once()
    assert clean.changed == 0 and clean.scanned == 0
    assert clean.registry_hits == 0


def test_stable_read_rereads_until_stat_settles(tmp_path):
    from repro.registry.watch import stable_read

    path = tmp_path / "contract.bin"
    path.write_bytes(b"\x60\x00\x60\x01")
    stat = path.stat()

    # passing a stale pre-read stat (as if the file changed between the
    # discovery stat and the read) forces a re-read under a fresh stat
    raw, size, mtime_ns = stable_read(path, stat.st_size - 1,
                                      stat.st_mtime_ns - 1)
    assert raw == b"\x60\x00\x60\x01"
    assert (size, mtime_ns) == (stat.st_size, stat.st_mtime_ns)

    # a settled file short-circuits: one read, stat unchanged
    raw, size, mtime_ns = stable_read(path, stat.st_size, stat.st_mtime_ns)
    assert raw == b"\x60\x00\x60\x01"
    assert (size, mtime_ns) == (stat.st_size, stat.st_mtime_ns)


# --------------------------------------------------------------------------- #
# PollStats reporting: every counter must be visible


def test_pollstats_surfaces_exit_and_fault_counters():
    from repro.registry.watch import PollStats

    stats = PollStats(files_seen=3, unchanged=3, exit_nonzero=True,
                      faulted_polls=2)
    line = stats.format()
    assert "2 faulted polls" in line
    assert "exit rule fired" in line
    payload = stats.to_dict()
    assert payload["exit_nonzero"] is True
    assert payload["faulted_polls"] == 2
    # every dataclass counter is exported -- nothing silently dropped
    for field in ("files_seen", "unchanged", "new", "changed", "deleted",
                  "skipped", "registry_hits", "scanned", "malicious",
                  "inference_calls", "alerts", "rules_matched",
                  "exit_nonzero", "faulted_polls", "elapsed_seconds"):
        assert field in payload, field

    quiet = PollStats(files_seen=3, unchanged=3)
    assert "faulted" not in quiet.format()
    assert "exit rule" not in quiet.format()


def test_watch_cli_json_stream_includes_fault_counters(
        trained_detector, feed, tmp_path, capsys):
    model_path = tmp_path / "json-model"
    trained_detector.save(model_path)
    registry_path = tmp_path / "json-verdicts.db"

    exit_code = main(["watch", str(feed), "--model-path", str(model_path),
                      "--registry", str(registry_path),
                      "--interval", "0.05", "--max-polls", "2", "--json"])
    assert exit_code == 0
    lines = [line for line in capsys.readouterr().out.splitlines()
             if line.startswith("{")]
    assert len(lines) == 2
    for number, line in enumerate(lines, start=1):
        payload = json.loads(line)
        assert payload["poll"] == number
        assert payload["exit_nonzero"] is False
        assert payload["faulted_polls"] == 0
    # the second poll was warm: machine-readable proof
    warm = json.loads(lines[1])
    assert warm["inference_calls"] == 0 and warm["scanned"] == 0
