"""Unit tests for IR normalization and feature encoders."""

import numpy as np
import pytest

from repro.evm.contracts import TEMPLATES_BY_NAME
from repro.evm.cfg_builder import build_cfg
from repro.ir.features import (
    NODE_FEATURE_DIM,
    NUM_STRUCTURAL_FEATURES,
    SEMANTIC_MARKERS,
    adjacency_with_self_loops,
    graph_feature_vector,
    marker_vector,
    node_feature_matrix,
    normalized_adjacency,
)
from repro.ir.normalization import (
    CATEGORY_VOCABULARY,
    category_index,
    normalize_category,
    num_categories,
)


def _example_cfg(rng, family="approval_drainer"):
    return build_cfg(TEMPLATES_BY_NAME[family].generate(rng))


def test_normalize_category_known_and_aliases():
    assert normalize_category("storage") == "storage"
    assert normalize_category("  Storage ") == "storage"
    assert normalize_category("mem") == "memory"
    assert normalize_category("halt") == "terminator"
    assert normalize_category("something-new") == "invalid"


def test_category_index_is_positional():
    for position, category in enumerate(CATEGORY_VOCABULARY):
        assert category_index(category) == position
    assert num_categories() == len(CATEGORY_VOCABULARY)


def test_marker_vector_detects_groups():
    vector = marker_vector(["ORIGIN", "CALL", "SSTORE"])
    names = [name for name, _ in SEMANTIC_MARKERS]
    assert vector[names.index("origin_check")] == 1.0
    assert vector[names.index("external_call")] == 1.0
    assert vector[names.index("storage_write")] == 1.0
    assert vector[names.index("self_destruct")] == 0.0
    assert vector.shape == (len(SEMANTIC_MARKERS),)


def test_node_feature_matrix_shape_and_range(rng):
    cfg = _example_cfg(rng)
    features = node_feature_matrix(cfg)
    assert features.shape == (cfg.num_blocks, NODE_FEATURE_DIM)
    assert np.all(features >= 0.0)
    assert np.all(features <= 1.0)


def test_node_feature_matrix_modes(rng):
    cfg = _example_cfg(rng)
    presence = node_feature_matrix(cfg, mode="presence")
    fraction = node_feature_matrix(cfg, mode="fraction")
    count = node_feature_matrix(cfg, mode="count")
    n_cat = len(CATEGORY_VOCABULARY)
    assert set(np.unique(presence[:, :n_cat])) <= {0.0, 1.0}
    assert np.all(fraction[:, :n_cat] <= 1.0)
    # counts are log1p so they can exceed 1 for busy blocks
    assert count[:, :n_cat].max() > 1.0
    with pytest.raises(ValueError):
        node_feature_matrix(cfg, mode="bogus")


def test_node_feature_matrix_optional_column_groups(rng):
    cfg = _example_cfg(rng)
    no_markers = node_feature_matrix(cfg, include_markers=False)
    no_structural = node_feature_matrix(cfg, include_structural=False)
    bare = node_feature_matrix(cfg, include_markers=False, include_structural=False)
    n_cat = len(CATEGORY_VOCABULARY)
    assert no_markers.shape[1] == n_cat + NUM_STRUCTURAL_FEATURES
    assert no_structural.shape[1] == n_cat + len(SEMANTIC_MARKERS)
    assert bare.shape[1] == n_cat


def test_drainer_blocks_carry_origin_marker(rng):
    cfg = _example_cfg(rng, family="approval_drainer")
    features = node_feature_matrix(cfg)
    names = [name for name, _ in SEMANTIC_MARKERS]
    origin_column = len(CATEGORY_VOCABULARY) + names.index("origin_check")
    assert features[:, origin_column].max() == 1.0


def test_graph_feature_vector_shape_and_distribution(rng):
    cfg = _example_cfg(rng)
    vector = graph_feature_vector(cfg)
    assert vector.shape == (len(CATEGORY_VOCABULARY) + 8,)
    # category proportions sum to 1 over the categories present
    assert np.isclose(vector[:len(CATEGORY_VOCABULARY)].sum(), 1.0)


def test_adjacency_helpers(rng):
    cfg = _example_cfg(rng)
    adjacency = adjacency_with_self_loops(cfg)
    assert adjacency.shape == (cfg.num_blocks, cfg.num_blocks)
    assert np.all(np.diag(adjacency) == 1.0)
    normalized = normalized_adjacency(cfg)
    assert normalized.shape == adjacency.shape
    # symmetric normalization of a symmetric matrix stays symmetric
    assert np.allclose(normalized, normalized.T)
    eigenvalues = np.linalg.eigvalsh(normalized)
    assert eigenvalues.max() <= 1.0 + 1e-9
