"""Tests for risk indicators, model persistence and the CLI."""


import numpy as np
import pytest

from repro import ScamDetectConfig, ScamDetector
from repro.cli import build_parser, main
from repro.core.indicators import extract_indicators, format_indicators
from repro.core.persistence import PersistenceError, load_pipeline, save_pipeline
from repro.core.pipeline import ScamDetectPipeline
from repro.datasets.generator import CorpusGenerator, GeneratorConfig
from repro.evm.cfg_builder import build_cfg
from repro.evm.contracts import TEMPLATES_BY_NAME
from repro.wasm.cfg_builder import build_cfg as build_wasm_cfg
from repro.wasm.contracts import WASM_TEMPLATES_BY_NAME


# -------------------------------------------------------------------------- #
# indicators


def _indicator_names(cfg):
    return {indicator.name for indicator in extract_indicators(cfg)}


def test_drainer_triggers_origin_and_loop_indicators(rng):
    cfg = build_cfg(TEMPLATES_BY_NAME["approval_drainer"].generate(rng))
    names = _indicator_names(cfg)
    assert "origin-gated-control-flow" in names
    assert "external-call-in-loop" in names


def test_backdoor_triggers_delegatecall_indicator(rng):
    cfg = build_cfg(TEMPLATES_BY_NAME["backdoor_proxy"].generate(rng))
    names = _indicator_names(cfg)
    assert "delegated-execution" in names


def test_honeypot_triggers_selfdestruct_indicator(rng):
    cfg = build_cfg(TEMPLATES_BY_NAME["honeypot"].generate(rng))
    assert "self-destruct-path" in _indicator_names(cfg)


def test_benign_token_has_no_critical_indicators(rng):
    cfg = build_cfg(TEMPLATES_BY_NAME["erc20_token"].generate(rng))
    severities = {i.severity for i in extract_indicators(cfg)}
    assert "critical" not in severities


def test_wasm_backdoor_indicator(rng):
    cfg = build_wasm_cfg(WASM_TEMPLATES_BY_NAME["wasm_backdoor"].generate(rng))
    assert "delegated-execution" in _indicator_names(cfg)


def test_format_indicators_strings(rng):
    cfg = build_cfg(TEMPLATES_BY_NAME["honeypot"].generate(rng))
    lines = format_indicators(extract_indicators(cfg))
    assert all(line.startswith("[") for line in lines)
    assert any("self-destruct-path" in line for line in lines)


def test_empty_indicator_fallback():
    from repro.ir.cfg import ControlFlowGraph
    from repro.ir.basic_block import BasicBlock
    from repro.ir.instruction import IRInstruction
    cfg = ControlFlowGraph()
    cfg.add_block(BasicBlock(block_id=0, instructions=[
        IRInstruction(offset=0, mnemonic="ADD", category="arithmetic")]))
    assert _indicator_names(cfg) == {"no-structural-indicators"}


# -------------------------------------------------------------------------- #
# persistence


@pytest.fixture(scope="module")
def fitted_pipeline():
    corpus = CorpusGenerator(GeneratorConfig(num_samples=30, label_noise=0.0,
                                             seed=61)).generate()
    pipeline = ScamDetectPipeline(ScamDetectConfig(epochs=8, hidden_features=16))
    pipeline.fit(corpus)
    return pipeline, corpus


def test_save_load_pipeline_roundtrip(fitted_pipeline, tmp_path):
    pipeline, corpus = fitted_pipeline
    path = tmp_path / "model"
    save_pipeline(pipeline, path)
    restored = load_pipeline(path)
    original_probabilities = pipeline.predict_proba(corpus)
    restored_probabilities = restored.predict_proba(corpus)
    assert np.allclose(original_probabilities, restored_probabilities, atol=1e-9)
    assert restored.config == pipeline.config


def test_save_unfitted_pipeline_rejected(tmp_path):
    with pytest.raises(PersistenceError):
        save_pipeline(ScamDetectPipeline(ScamDetectConfig(epochs=1)), tmp_path / "m")


def test_load_missing_files_rejected(tmp_path):
    with pytest.raises(PersistenceError):
        load_pipeline(tmp_path / "does-not-exist")


def test_detector_save_load_scan_agreement(fitted_pipeline, tmp_path, rng):
    pipeline, _ = fitted_pipeline
    detector = ScamDetector(pipeline.config)
    detector.pipeline = pipeline
    path = tmp_path / "detector-model"
    detector.save(path)
    restored = ScamDetector.load(path)
    code = TEMPLATES_BY_NAME["approval_drainer"].generate(rng)
    assert restored.scan(code).malicious_probability == pytest.approx(
        detector.scan(code).malicious_probability, abs=1e-9)


# -------------------------------------------------------------------------- #
# CLI


def test_cli_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["corpus", "--num-samples", "10"])
    assert args.command == "corpus"
    args = parser.parse_args(["experiment", "--id", "E2"])
    assert args.id == "E2"
    args = parser.parse_args(["experiment", "--id", "E9"])
    assert args.id == "E9"
    args = parser.parse_args(["experiment", "--id", "E10"])
    assert args.id == "E10"
    args = parser.parse_args(["experiment", "--id", "E11"])
    assert args.id == "E11"
    args = parser.parse_args(["experiment", "--id", "E12"])
    assert args.id == "E12"
    args = parser.parse_args(["experiment", "--id", "E13"])
    assert args.id == "E13"
    args = parser.parse_args(["experiment", "--id", "E14"])
    assert args.id == "E14"
    args = parser.parse_args(["experiment", "--id", "E15"])
    assert args.id == "E15"
    args = parser.parse_args(["experiment", "--id", "E16"])
    assert args.id == "E16"
    with pytest.raises(SystemExit):
        parser.parse_args(["experiment", "--id", "E17"])
    args = parser.parse_args(["scan-batch", "--model-path", "m",
                              "--input-dir", "d", "--shards", "4",
                              "--trace-file", "t.jsonl", "--log-json"])
    assert args.shards == 4
    assert args.trace_file == "t.jsonl" and args.log_json
    args = parser.parse_args(["trace", "summarize", "t.jsonl",
                              "--top", "3", "--json"])
    assert (args.command == "trace" and args.trace_file == "t.jsonl"
            and args.top == 3 and args.json)
    args = parser.parse_args(["watch", "feed", "--model-path", "m",
                              "--registry", "r.db", "--max-polls", "3"])
    assert args.command == "watch" and args.max_polls == 3
    args = parser.parse_args(["query", "--registry", "r.db",
                              "--verdict", "malicious", "--json"])
    assert args.verdict == "malicious" and args.json
    args = parser.parse_args(["rules", "check", "triage.toml"])
    assert args.rules_file == "triage.toml"
    args = parser.parse_args(["triage", "triage.toml", "--registry", "r.db",
                              "--fingerprint", "fp", "--dry-run",
                              "--partitioned", "--batch-size", "500"])
    assert (args.command == "triage" and args.rules_file == "triage.toml"
            and args.dry_run and args.partitioned and args.batch_size == 500)
    args = parser.parse_args(["query", "--registry", "r.db",
                              "--page-size", "20", "--cursor", "abc"])
    assert args.page_size == 20 and args.cursor == "abc"
    args = parser.parse_args(["serve", "--model-path", "m", "--shards", "2"])
    assert args.shards == 2


def test_cli_corpus_command(capsys):
    exit_code = main(["corpus", "--num-samples", "12", "--seed", "2"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "generated corpus" in output
    assert "family breakdown" in output


def test_cli_train_and_scan_roundtrip(tmp_path, capsys, rng):
    model_path = str(tmp_path / "cli-model")
    exit_code = main(["train", "--num-samples", "30", "--epochs", "6",
                      "--label-noise", "0.0", "--seed", "3",
                      "--model-path", model_path])
    assert exit_code == 0
    assert "model saved" in capsys.readouterr().out

    drainer_hex = tmp_path / "drainer.hex"
    drainer_hex.write_text("0x" + TEMPLATES_BY_NAME["approval_drainer"].generate(rng).hex())
    exit_code = main(["scan", "--model-path", model_path,
                      "--hex-file", str(drainer_hex), "--sample-id", "drainer"])
    output = capsys.readouterr().out
    assert "drainer" in output
    # verdict-coded exit status: 0 benign, 2 malicious (1 is reserved for
    # errors, so a pipeline can tell "scam found" from "scan failed")
    assert exit_code in (0, 2)
    assert exit_code == (2 if "verdict:     malicious" in output else 0)


def test_cli_scan_requires_input(tmp_path, fitted_pipeline):
    pipeline, _ = fitted_pipeline
    model_path = tmp_path / "m2"
    save_pipeline(pipeline, model_path)
    with pytest.raises(SystemExit):
        main(["scan", "--model-path", str(model_path)])
