"""Tests for the dataset substrate: corpus, generator, dedup, splits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.corpus import ContractSample, Corpus
from repro.datasets.dedup import bytecode_fingerprint, deduplicate
from repro.datasets.generator import (
    CorpusGenerator,
    GeneratorConfig,
    generate_paired_clean_and_obfuscated,
)
from repro.datasets.labels import FAMILIES_BY_NAME, family_label
from repro.datasets.splits import k_fold_indices, stratified_split
from repro.evm.contracts import make_minimal_proxy


def _sample(idx, label=0, bytecode=b"\x60\x01", family="erc20_token"):
    return ContractSample(sample_id=f"s{idx}", platform="evm", bytecode=bytecode,
                          label=label, family=family)


# -------------------------------------------------------------------------- #
# labels


def test_family_catalog_covers_templates():
    from repro.evm.contracts import ALL_TEMPLATES
    from repro.wasm.contracts import WASM_ALL_TEMPLATES
    for template in ALL_TEMPLATES + WASM_ALL_TEMPLATES:
        assert template.name in FAMILIES_BY_NAME
        assert family_label(template.name) == template.label


def test_family_label_unknown_raises():
    with pytest.raises(KeyError):
        family_label("not-a-family")


# -------------------------------------------------------------------------- #
# corpus container


def test_corpus_container_protocol():
    corpus = Corpus([_sample(0), _sample(1, label=1)], name="c")
    assert len(corpus) == 2
    assert corpus[0].sample_id == "s0"
    assert [s.sample_id for s in corpus] == ["s0", "s1"]
    corpus.add(_sample(2))
    assert len(corpus) == 3


def test_corpus_filters_and_views():
    corpus = Corpus([_sample(0, label=0), _sample(1, label=1), _sample(2, label=1)])
    assert corpus.labels() == [0, 1, 1]
    assert len(corpus.by_label(1)) == 2
    assert len(corpus.by_platform("wasm")) == 0
    assert corpus.class_balance() == {"benign": 1, "malicious": 2}
    assert corpus.family_counts() == {"erc20_token": 3}
    subset = corpus.subset([2, 0])
    assert [s.sample_id for s in subset] == ["s2", "s0"]


def test_corpus_map_bytecode_marks_obfuscation():
    corpus = Corpus([_sample(0)])
    mapped = corpus.map_bytecode(lambda s: s.bytecode + b"\x00", intensity=0.7)
    assert mapped[0].bytecode.endswith(b"\x00")
    assert mapped[0].obfuscated
    assert mapped[0].obfuscation_intensity == 0.7
    assert not corpus[0].obfuscated  # original untouched


def test_sample_clean_label_and_hash():
    noisy = ContractSample(sample_id="x", platform="evm", bytecode=b"\x01",
                           label=1, family="erc20_token", true_label=0)
    assert noisy.clean_label == 0
    assert len(noisy.sha256()) == 64
    assert noisy.size == 1


def test_corpus_summary_keys(small_evm_corpus):
    summary = small_evm_corpus.summary()
    assert summary["samples"] == 60
    assert summary["benign"] + summary["malicious"] == 60
    assert summary["families"] > 1


# -------------------------------------------------------------------------- #
# generator


def test_generator_is_deterministic():
    config = GeneratorConfig(num_samples=30, seed=3)
    first = CorpusGenerator(config).generate()
    second = CorpusGenerator(config).generate()
    assert [s.bytecode for s in first] == [s.bytecode for s in second]
    assert first.labels() == second.labels()


def test_generator_respects_class_balance():
    corpus = CorpusGenerator(GeneratorConfig(num_samples=100, malicious_fraction=0.25,
                                             label_noise=0.0, seed=1)).generate()
    balance = corpus.class_balance()
    assert balance["malicious"] == 25
    assert balance["benign"] == 75


def test_generator_label_noise_flips_some_labels():
    corpus = CorpusGenerator(GeneratorConfig(num_samples=200, label_noise=0.1,
                                             seed=2)).generate()
    flipped = sum(1 for s in corpus if s.label != s.clean_label)
    assert 5 <= flipped <= 40


def test_generator_wasm_platform(small_wasm_corpus):
    assert all(s.platform == "wasm" for s in small_wasm_corpus)
    assert all(s.bytecode.startswith(b"\x00asm") for s in small_wasm_corpus)
    assert set(small_wasm_corpus.labels()) == {0, 1}


def test_generator_obfuscation_knob():
    corpus = CorpusGenerator(GeneratorConfig(num_samples=20, seed=4,
                                             obfuscation_intensity=0.6)).generate()
    assert all(s.obfuscated for s in corpus)
    assert all(s.obfuscation_intensity == 0.6 for s in corpus)


def test_generator_duplicate_injection():
    corpus = CorpusGenerator(GeneratorConfig(num_samples=40, seed=5,
                                             proxy_duplicate_fraction=0.5)).generate()
    duplicates = [s for s in corpus if s.is_proxy_duplicate]
    assert len(duplicates) == 20
    originals = {s.bytecode for s in corpus if not s.is_proxy_duplicate}
    assert all(d.bytecode in originals for d in duplicates)


def test_generator_rejects_unknown_platform():
    with pytest.raises(ValueError):
        CorpusGenerator(GeneratorConfig(platform="jvm"))


def test_paired_clean_and_obfuscated_alignment():
    clean, obfuscated = generate_paired_clean_and_obfuscated(
        GeneratorConfig(num_samples=12, seed=6), intensity=0.5)
    assert len(clean) == len(obfuscated)
    assert clean.labels() == obfuscated.labels()
    assert all(o.obfuscated for o in obfuscated)
    assert any(c.bytecode != o.bytecode for c, o in zip(clean, obfuscated))


# -------------------------------------------------------------------------- #
# dedup


def test_dedup_removes_exact_duplicates():
    corpus = Corpus([_sample(0, bytecode=b"\x01\x02"), _sample(1, bytecode=b"\x01\x02"),
                     _sample(2, bytecode=b"\x03")])
    deduplicated, stats = deduplicate(corpus)
    assert len(deduplicated) == 2
    assert stats["exact"] == 1


def test_dedup_collapses_erc1167_proxies():
    proxies = [_sample(i, bytecode=make_minimal_proxy(0x1000 + i)) for i in range(4)]
    corpus = Corpus(proxies + [_sample(9, bytecode=b"\x60\x01\x00")])
    deduplicated, stats = deduplicate(corpus, collapse_proxies=True)
    assert len(deduplicated) == 2
    assert stats["proxy"] == 3
    kept_all, stats_all = deduplicate(corpus, collapse_proxies=False)
    assert len(kept_all) == 5  # distinct implementation addresses => distinct bytecode


def test_fingerprint_distinguishes_labels_for_proxies():
    benign_proxy = _sample(0, bytecode=make_minimal_proxy(1), label=0)
    malicious_proxy = _sample(1, bytecode=make_minimal_proxy(2), label=1)
    assert bytecode_fingerprint(benign_proxy) != bytecode_fingerprint(malicious_proxy)


# -------------------------------------------------------------------------- #
# splits


def test_stratified_split_preserves_balance(small_evm_corpus):
    train, test = stratified_split(small_evm_corpus, test_fraction=0.3, seed=0)
    assert len(train) + len(test) == len(small_evm_corpus)
    test_balance = test.class_balance()
    assert abs(test_balance["benign"] - test_balance["malicious"]) <= 3
    train_ids = {s.sample_id for s in train}
    test_ids = {s.sample_id for s in test}
    assert not train_ids & test_ids


def test_stratified_split_validates_fraction(small_evm_corpus):
    with pytest.raises(ValueError):
        stratified_split(small_evm_corpus, test_fraction=0.0)
    with pytest.raises(ValueError):
        stratified_split(small_evm_corpus, test_fraction=1.5)


def test_k_fold_partitions_every_sample_once():
    labels = [0, 1] * 20
    folds = k_fold_indices(40, labels, k=5, seed=1)
    assert len(folds) == 5
    all_test = sorted(i for _, test in folds for i in test)
    assert all_test == list(range(40))
    for train, test in folds:
        assert not set(train) & set(test)
        assert sorted(train + test) == list(range(40))


def test_k_fold_validates_inputs():
    with pytest.raises(ValueError):
        k_fold_indices(10, [0] * 10, k=1)
    with pytest.raises(ValueError):
        k_fold_indices(10, [0] * 9, k=2)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=10, max_value=80), st.integers(min_value=2, max_value=6),
       st.integers(min_value=0, max_value=1000))
def test_k_fold_property_partition(num_samples, k, seed):
    labels = [i % 2 for i in range(num_samples)]
    folds = k_fold_indices(num_samples, labels, k=k, seed=seed)
    covered = sorted(i for _, test in folds for i in test)
    assert covered == list(range(num_samples))
