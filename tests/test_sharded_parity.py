"""Oracle parity and crash recovery for the multi-process sharded engine.

The contract under test: whatever the shard count, whatever the cache
temperature, whatever workers die along the way, a sharded scan's verdicts
and probabilities are byte-identical to single-process
``ScamDetector.scan`` -- and every input id comes back exactly once.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.config import ScamDetectConfig
from repro.core.detector import ScamDetector
from repro.datasets.generator import CorpusGenerator, GeneratorConfig
from repro.service import BatchScanner, ShardedScanner
from repro.service.sharded import shard_for_bytecode

FAST = ScamDetectConfig(epochs=3, num_layers=1, hidden_features=8)


@pytest.fixture(scope="module")
def mixed_corpus(tiny_evm_corpus):
    """EVM + WASM samples interleaved, so every shard sees both platforms."""
    wasm = CorpusGenerator(GeneratorConfig(
        platform="wasm", num_samples=16, label_noise=0.0,
        seed=29)).generate("tiny-wasm")
    samples = list(tiny_evm_corpus) + list(wasm)
    samples.sort(key=lambda sample: sample.sample_id)
    return samples


@pytest.fixture(scope="module")
def trained_detector(tiny_evm_corpus):
    detector = ScamDetector(FAST, explain=False)
    detector.train(tiny_evm_corpus)
    return detector


@pytest.fixture(scope="module")
def oracle(trained_detector, mixed_corpus):
    """Single-process scan() verdicts, the ground truth for every parity
    assertion below."""
    return [trained_detector.scan(sample.bytecode, platform=sample.platform,
                                  sample_id=sample.sample_id)
            for sample in mixed_corpus]


def assert_reports_identical(oracle_reports, reports):
    assert len(reports) == len(oracle_reports)
    for single, sharded in zip(oracle_reports, reports):
        assert single.to_dict() == sharded.to_dict()


# --------------------------------------------------------------------------- #
# partitioning


def test_shard_partition_deterministic_and_in_range():
    for shards in (1, 2, 4):
        for payload in (b"", b"\x60\x00", b"\x00asm\x01\x00\x00\x00"):
            first = shard_for_bytecode(payload, shards)
            assert 0 <= first < shards
            assert shard_for_bytecode(payload, shards) == first


# --------------------------------------------------------------------------- #
# verdict parity across shard counts


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_verdicts_match_oracle(trained_detector, mixed_corpus,
                                       oracle, shards):
    with ShardedScanner(trained_detector, shards=shards,
                        chunk_size=4) as scanner:
        result = scanner.scan_codes(
            [sample.bytecode for sample in mixed_corpus],
            sample_ids=[sample.sample_id for sample in mixed_corpus])
    assert_reports_identical(oracle, result.reports)
    assert result.num_workers == shards
    assert set(result.shard_stats) == {f"shard-{i}" for i in range(shards)}
    assert sum(entry["contracts"] for entry in result.shard_stats.values()) \
        == len(mixed_corpus)


def test_sharded_warm_cache_parity(trained_detector, mixed_corpus, oracle,
                                   tmp_path):
    """A shared on-disk tier, filled by one pool and read by another (with a
    different shard count), must change throughput only, never verdicts."""
    cache_dir = tmp_path / "shared-cache"
    codes = [sample.bytecode for sample in mixed_corpus]
    ids = [sample.sample_id for sample in mixed_corpus]
    with ShardedScanner(trained_detector, shards=2, chunk_size=4,
                        cache_dir=cache_dir) as scanner:
        cold = scanner.scan_codes(codes, sample_ids=ids)
        warm_same_pool = scanner.scan_codes(codes, sample_ids=ids)
    assert cold.cache_stats.misses == len(mixed_corpus)
    assert warm_same_pool.cache_stats.hit_rate == 1.0
    assert_reports_identical(oracle, cold.reports)
    assert_reports_identical(oracle, warm_same_pool.reports)

    # a *fresh* pool with a different shard count re-reads every entry
    # across a process boundary
    with ShardedScanner(trained_detector, shards=4, chunk_size=4,
                        cache_dir=cache_dir) as scanner:
        warm_cross_process = scanner.scan_codes(codes, sample_ids=ids)
    assert warm_cross_process.cache_stats.disk_hits == len(mixed_corpus)
    assert warm_cross_process.cache_stats.hit_rate == 1.0
    assert_reports_identical(oracle, warm_cross_process.reports)


def test_batch_scanner_shards_path(trained_detector, mixed_corpus, oracle):
    """``BatchScanner(shards=N)`` routes through the pool and reports
    per-shard stats in the shared schema."""
    with BatchScanner(trained_detector, shards=2) as scanner:
        result = scanner.scan_codes(
            [sample.bytecode for sample in mixed_corpus],
            sample_ids=[sample.sample_id for sample in mixed_corpus])
        stats = result.stats_dict()
    assert_reports_identical(oracle, result.reports)
    assert set(stats["shards"]) == {"shard-0", "shard-1"}
    for entry in stats["shards"].values():
        assert {"contracts", "cache", "batches", "restarts"} <= set(entry)


def test_batch_scanner_warns_on_unshareable_memory_cache(trained_detector,
                                                         mixed_corpus):
    """A memory-only cache cannot cross the pool boundary; attaching one
    with shards >= 2 must warn instead of silently scanning cold."""
    from repro.service import GraphCache

    cache = GraphCache.for_config(trained_detector.config)
    with BatchScanner(trained_detector, cache=cache, shards=2) as scanner:
        with pytest.warns(UserWarning, match="no disk tier"):
            scanner.scan_codes([mixed_corpus[0].bytecode])
    trained_detector.pipeline.set_graph_cache(None)


def test_scan_many_shards_roundtrip(trained_detector, mixed_corpus, oracle):
    result = trained_detector.scan_many(
        [sample.bytecode for sample in mixed_corpus],
        sample_ids=[sample.sample_id for sample in mixed_corpus], shards=2)
    assert_reports_identical(oracle, result.reports)


# --------------------------------------------------------------------------- #
# crash recovery


def test_worker_crash_requeues_without_loss(trained_detector, mixed_corpus,
                                            oracle, tmp_path):
    """Kill one worker mid-batch: the chunk it was holding is requeued onto
    a respawned replica; no id is lost, none is duplicated, and every
    verdict still matches the oracle."""
    crash_file = tmp_path / "crash-once"
    crash_file.write_text("die at the next scan chunk")
    codes = [sample.bytecode for sample in mixed_corpus]
    ids = [sample.sample_id for sample in mixed_corpus]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with ShardedScanner(trained_detector, shards=2, chunk_size=4,
                            crash_file=crash_file) as scanner:
            result = scanner.scan_codes(codes, sample_ids=ids)
            assert scanner.restarts == 1
    assert not crash_file.exists()
    assert any("respawning and requeueing" in str(entry.message)
               for entry in caught)
    # exactly the input ids, in input order -- nothing lost or duplicated
    assert [report.sample_id for report in result.reports] == ids
    assert_reports_identical(oracle, result.reports)
    assert sum(entry["restarts"] for entry in result.shard_stats.values()) == 1


def test_repeated_crashes_eventually_fail(trained_detector, tiny_evm_corpus,
                                          tmp_path):
    """A shard that cannot stay alive must stop the scan with an error
    instead of respawning forever."""
    from repro.service import ShardError

    crash_file = tmp_path / "crash-always"
    codes = [sample.bytecode for sample in tiny_evm_corpus[:6]]
    crash_file.write_text("boom")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with ShardedScanner(trained_detector, shards=1, chunk_size=2,
                            crash_file=crash_file,
                            max_restarts=0) as scanner:
            with pytest.raises(ShardError, match="died"):
                scanner.scan_codes(codes)


def test_sharded_scanner_empty_and_validation(trained_detector):
    with ShardedScanner(trained_detector, shards=2) as scanner:
        result = scanner.scan_codes([])
        assert result.reports == [] and result.num_workers == 2
    with pytest.raises(ValueError, match="shards"):
        ShardedScanner(trained_detector, shards=0)
    with pytest.raises(ValueError, match="exactly one"):
        ShardedScanner(trained_detector, bundle_path="/tmp/x")
    with pytest.raises(ValueError, match="exactly one"):
        ShardedScanner()
    with pytest.raises(RuntimeError, match="trained"):
        ShardedScanner(ScamDetector(FAST), shards=2)


def test_sharded_scan_directory(trained_detector, tiny_evm_corpus, oracle,
                                tmp_path):
    """Directory scans shard too, with the same skip rules as BatchScanner."""
    scan_dir = tmp_path / "submissions"
    scan_dir.mkdir()
    for sample in tiny_evm_corpus[:8]:
        (scan_dir / f"{sample.sample_id}.hex").write_text(
            sample.bytecode.hex())
    (scan_dir / "broken.hex").write_text("zz-not-hex")
    with ShardedScanner(trained_detector, shards=2, chunk_size=3) as scanner:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = scanner.scan_directory(scan_dir)
    assert len(result.reports) == 8
    assert result.skipped and "broken.hex" in result.skipped[0]
    expected = {f"{sample.sample_id}.hex" for sample in tiny_evm_corpus[:8]}
    assert {report.sample_id for report in result.reports} == expected


def test_infer_matches_in_process_scoring(trained_detector, mixed_corpus):
    """The round-robin inference path (used by the sharded scan server)
    returns exactly the rows the in-process trainer computes."""
    import numpy as np

    pipeline = trained_detector.pipeline
    graphs = [pipeline.analyse_bytecode(sample.bytecode,
                                        platform=sample.platform)[0]
              for sample in mixed_corpus[:10]]
    expected = pipeline._trainer.predict_proba(graphs)
    with ShardedScanner(trained_detector, shards=2) as scanner:
        rows = scanner.infer(graphs, batch_size=3)
        stats = scanner.shard_stats_dict()
    np.testing.assert_allclose(rows, expected, rtol=0, atol=1e-12)
    assert sum(entry["inference"]["graphs"]
               for entry in stats.values()) == len(graphs)
    assert sum(entry["inference"]["calls"] for entry in stats.values()) == 4
