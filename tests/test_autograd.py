"""Tests for the autograd engine: gradient checks, modules, optimizers, losses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import (
    Adam,
    Linear,
    Parameter,
    SGD,
    Sequential,
    Tensor,
    binary_cross_entropy_with_logits,
    cross_entropy,
    dropout,
    leaky_relu,
    log_softmax,
    no_grad,
    relu,
    sigmoid,
    softmax,
    tanh,
)


def _numerical_gradient(function, tensor, epsilon=1e-6):
    gradient = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    flat_gradient = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = function().item()
        flat[index] = original - epsilon
        minus = function().item()
        flat[index] = original
        flat_gradient[index] = (plus - minus) / (2 * epsilon)
    return gradient


def _check_gradients(build, *tensors, tolerance=1e-5):
    output = build()
    output.backward()
    for tensor in tensors:
        numerical = _numerical_gradient(build, tensor)
        assert np.allclose(tensor.grad, numerical, atol=tolerance), (
            f"analytic {tensor.grad} vs numerical {numerical}")


def test_gradients_arithmetic_chain():
    rng = np.random.default_rng(0)
    a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    _check_gradients(lambda: ((a * b + a - b / 2.0) ** 2).sum(), a, b)


def test_gradients_matmul_and_activations():
    rng = np.random.default_rng(1)
    W = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
    _check_gradients(lambda: (relu(x @ W) + sigmoid(x @ W)).sum(), W, x)


def test_gradients_reductions_and_broadcasting():
    rng = np.random.default_rng(2)
    a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    bias = Tensor(rng.normal(size=(1, 3)), requires_grad=True)
    _check_gradients(lambda: ((a + bias).mean(axis=0) ** 2).sum(), a, bias)


def test_gradients_softmax_cross_entropy():
    rng = np.random.default_rng(3)
    logits = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
    targets = np.array([0, 1, 2, 1, 0, 2])
    _check_gradients(lambda: cross_entropy(logits, targets), logits)


def test_gradients_concatenate_and_getitem():
    rng = np.random.default_rng(4)
    a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    _check_gradients(lambda: (Tensor.concatenate([a, b], axis=0)[1:3] ** 2).sum(), a, b)


def test_gradients_max_and_exp_log():
    rng = np.random.default_rng(5)
    a = Tensor(rng.normal(size=(3, 3)) + 3.0, requires_grad=True)
    _check_gradients(lambda: (a.log() + a.exp() * 1e-2).max(axis=1).sum(), a)


def test_backward_requires_scalar_or_gradient():
    a = Tensor(np.ones((2, 2)), requires_grad=True)
    with pytest.raises(RuntimeError):
        (a * 2).backward()
    with pytest.raises(RuntimeError):
        Tensor(np.ones(2)).backward()


def test_no_grad_disables_graph():
    a = Tensor(np.ones(3), requires_grad=True)
    with no_grad():
        out = (a * 2).sum()
    assert not out.requires_grad


def test_gradient_accumulation_and_zero_grad():
    a = Tensor(np.ones(3), requires_grad=True)
    (a * 2).sum().backward()
    (a * 2).sum().backward()
    assert np.allclose(a.grad, 4.0)
    a.zero_grad()
    assert a.grad is None


def test_activation_values():
    x = Tensor(np.array([-2.0, 0.0, 2.0]))
    assert np.allclose(relu(x).numpy(), [0.0, 0.0, 2.0])
    assert np.allclose(leaky_relu(x, 0.1).numpy(), [-0.2, 0.0, 2.0])
    assert np.allclose(sigmoid(Tensor(np.array([0.0]))).numpy(), [0.5])
    assert np.allclose(tanh(Tensor(np.array([0.0]))).numpy(), [0.0])
    probabilities = softmax(Tensor(np.array([[1.0, 1.0, 1.0]]))).numpy()
    assert np.allclose(probabilities, 1.0 / 3.0)
    assert np.allclose(np.exp(log_softmax(Tensor(np.array([[1.0, 2.0]]))).numpy()).sum(), 1.0)


def test_bce_with_logits_matches_reference():
    logits = Tensor(np.array([0.0, 2.0, -2.0]), requires_grad=True)
    targets = np.array([0.0, 1.0, 0.0])
    loss = binary_cross_entropy_with_logits(logits, targets)
    reference = np.mean([np.log(2.0),
                         np.log1p(np.exp(-2.0)),
                         np.log1p(np.exp(-2.0))])
    assert loss.item() == pytest.approx(reference, rel=1e-6)


def test_dropout_behaviour():
    rng = np.random.default_rng(0)
    x = Tensor(np.ones((100, 10)))
    dropped = dropout(x, 0.5, rng, training=True)
    kept_fraction = (dropped.numpy() != 0).mean()
    assert 0.3 < kept_fraction < 0.7
    assert np.allclose(dropout(x, 0.5, rng, training=False).numpy(), 1.0)


def test_linear_module_shapes_and_parameters():
    layer = Linear(4, 3)
    out = layer(Tensor(np.ones((5, 4))))
    assert out.shape == (5, 3)
    assert layer.num_parameters() == 4 * 3 + 3
    no_bias = Linear(4, 3, bias=False)
    assert no_bias.num_parameters() == 12


def test_module_parameter_discovery_and_modes():
    model = Sequential(Linear(4, 8), Linear(8, 2))
    assert len(model.parameters()) == 4
    model.eval()
    assert not model.training
    model.train()
    assert model.training


def test_state_dict_roundtrip():
    model = Sequential(Linear(3, 3))
    state = model.state_dict()
    for parameter in model.parameters():
        parameter.data += 1.0
    model.load_state_dict(state)
    assert np.allclose(model.parameters()[0].data, state["param_0"])
    with pytest.raises(ValueError):
        model.load_state_dict({"param_0": np.zeros(1)})


@pytest.mark.parametrize("optimizer_factory", [
    lambda params: SGD(params, learning_rate=0.1),
    lambda params: SGD(params, learning_rate=0.05, momentum=0.9),
    lambda params: Adam(params, learning_rate=0.1),
])
def test_optimizers_minimize_quadratic(optimizer_factory):
    parameter = Parameter(np.array([5.0, -3.0]))
    optimizer = optimizer_factory([parameter])
    for _ in range(200):
        loss = (parameter * parameter).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    assert np.all(np.abs(parameter.data) < 1e-2)


def test_weight_decay_shrinks_parameters():
    parameter = Parameter(np.array([1.0]))
    optimizer = Adam([parameter], learning_rate=0.01, weight_decay=1.0)
    for _ in range(50):
        loss = (parameter * 0.0).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    assert abs(parameter.data[0]) < 1.0


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
def test_broadcast_gradients_have_input_shape(rows, columns, batch):
    a = Tensor(np.ones((rows, columns)), requires_grad=True)
    b = Tensor(np.ones((1, columns)), requires_grad=True)
    ((a + b) * 2).sum().backward()
    assert a.grad.shape == a.data.shape
    assert b.grad.shape == b.data.shape
    assert np.allclose(b.grad, 2.0 * rows)
