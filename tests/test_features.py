"""Tests for the feature extractors."""

import numpy as np
import pytest

from repro.datasets.corpus import Corpus
from repro.features import (
    ByteImageExtractor,
    CFGStructureExtractor,
    NgramExtractor,
    OpcodeHistogramExtractor,
    TfidfExtractor,
    normalized_vocabulary,
    opcode_sequence,
)


def test_opcode_sequence_evm(small_evm_corpus):
    sequence = opcode_sequence(small_evm_corpus[0])
    assert sequence
    assert "PUSH" in sequence  # widths are collapsed
    assert not any(token.startswith("PUSH1") for token in sequence)
    categories = opcode_sequence(small_evm_corpus[0], vocabulary="category")
    assert len(categories) == len(sequence)
    assert set(categories) <= set(normalized_vocabulary("both", "category"))


def test_opcode_sequence_wasm(small_wasm_corpus):
    sequence = opcode_sequence(small_wasm_corpus[0])
    assert sequence
    assert any(token in ("ADD", "CONST", "CALL") for token in sequence)


def test_normalized_vocabulary_is_stable_and_sorted():
    vocabulary = normalized_vocabulary("both", "mnemonic")
    assert list(vocabulary) == sorted(vocabulary)
    assert "PUSH" in vocabulary and "SSTORE" in vocabulary
    assert vocabulary == normalized_vocabulary("both", "mnemonic")


def test_histogram_extractor_shapes_and_normalization(small_evm_corpus):
    extractor = OpcodeHistogramExtractor()
    features = extractor.fit_transform(small_evm_corpus)
    assert features.shape == (len(small_evm_corpus), extractor.dimension)
    token_columns = features[:, :-1]
    assert np.all(token_columns >= 0.0)
    assert np.allclose(token_columns.sum(axis=1), 1.0, atol=1e-9)


def test_histogram_extractor_counts_mode(small_evm_corpus):
    extractor = OpcodeHistogramExtractor(normalize=False, include_length=False)
    features = extractor.fit_transform(small_evm_corpus)
    assert features.sum(axis=1).min() > 10  # raw counts


def test_histogram_category_vocabulary_cross_platform(small_evm_corpus, small_wasm_corpus):
    extractor = OpcodeHistogramExtractor(vocabulary="category")
    evm_features = extractor.fit_transform(small_evm_corpus)
    wasm_features = extractor.transform(small_wasm_corpus)
    assert evm_features.shape[1] == wasm_features.shape[1]


def test_ngram_extractor_learns_vocabulary(small_evm_corpus):
    extractor = NgramExtractor(n=2, top_k=64)
    features = extractor.fit_transform(small_evm_corpus)
    assert features.shape == (len(small_evm_corpus), extractor.dimension)
    assert extractor.dimension <= 64
    with pytest.raises(RuntimeError):
        NgramExtractor().transform(small_evm_corpus)


def test_ngram_extractor_rejects_bad_order():
    with pytest.raises(ValueError):
        NgramExtractor(n=0)


def test_tfidf_rows_are_l2_normalized(small_evm_corpus):
    extractor = TfidfExtractor(n=2, top_k=64)
    features = extractor.fit_transform(small_evm_corpus)
    norms = np.linalg.norm(features, axis=1)
    assert np.all((np.isclose(norms, 1.0)) | (norms == 0.0))
    with pytest.raises(RuntimeError):
        TfidfExtractor().transform(small_evm_corpus)


def test_byteimage_extractor_shape_and_range(small_evm_corpus):
    extractor = ByteImageExtractor(side=8)
    features = extractor.fit_transform(small_evm_corpus)
    assert features.shape == (len(small_evm_corpus), extractor.dimension)
    assert np.all(features[:, :64] >= 0.0)
    assert np.all(features[:, :64] <= 1.0)


def test_byteimage_handles_empty_bytecode():
    from repro.datasets.corpus import ContractSample
    empty = Corpus([ContractSample(sample_id="e", platform="evm", bytecode=b"",
                                   label=0, family="erc20_token")])
    features = ByteImageExtractor(side=4).fit_transform(empty)
    assert features.shape[0] == 1
    assert np.all(np.isfinite(features))


def test_byteimage_rejects_tiny_side():
    with pytest.raises(ValueError):
        ByteImageExtractor(side=1)


def test_cfg_structure_extractor(small_evm_corpus, small_wasm_corpus):
    extractor = CFGStructureExtractor()
    evm_features = extractor.fit_transform(small_evm_corpus)
    wasm_features = extractor.transform(small_wasm_corpus)
    assert evm_features.shape[1] == wasm_features.shape[1] == extractor.dimension
    assert np.all(np.isfinite(evm_features))


def test_features_separate_classes(small_evm_corpus):
    """Benign and malicious mean feature vectors must differ measurably."""
    extractor = OpcodeHistogramExtractor()
    features = extractor.fit_transform(small_evm_corpus)
    labels = np.asarray(small_evm_corpus.labels())
    benign_mean = features[labels == 0].mean(axis=0)
    malicious_mean = features[labels == 1].mean(axis=0)
    assert np.linalg.norm(benign_mean - malicious_mean) > 0.01
