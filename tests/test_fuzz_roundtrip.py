"""Seeded property-based round-trip fuzzing of the codec layers.

Multi-process scanning moves bytecode and graphs across process
boundaries, so the codecs underneath everything -- LEB128, the WASM module
encoder/parser and the EVM assembler/disassembler -- must round-trip
*exactly*.  These tests generate ~500 random cases per property from the
stdlib ``random`` module (no external fuzzing dependency) under a fixed
seed, so failures are reproducible; CI runs the suite under two different
seeds each week to keep exploring new input space.

Reproduction: every failure message prints the seed, the case index and a
greedily *shrunk* minimal repro.  Re-run with::

    SCAMDETECT_FUZZ_SEED=<seed> pytest tests/test_fuzz_roundtrip.py

Each case draws from ``random.Random(f"{seed}:{property}:{index}")``, so a
single case can be regenerated without replaying the ones before it.
"""

from __future__ import annotations

import os
import random
from typing import Callable, List, Optional, Sequence, Tuple

import pytest

import numpy as np

from repro.datasets.corpus import ContractSample, Corpus
from repro.evm.assembler import AssemblyError, assemble
from repro.evm.disassembler import disassemble
from repro.evm.opcodes import OPCODES_BY_NAME
from repro.features.ngrams import NgramExtractor
from repro.features.opcode_histogram import OpcodeHistogramExtractor
from repro.wasm.encoder import encode_module
from repro.wasm.leb128 import (
    LEB128Error,
    decode_signed,
    decode_unsigned,
    encode_signed,
    encode_unsigned,
)
from repro.wasm.module import WasmFunction, WasmInstructionEntry, WasmModule
from repro.wasm.opcodes import (
    BLOCKTYPE_VOID,
    IMM_BLOCKTYPE,
    IMM_CALL_INDIRECT,
    IMM_I32,
    IMM_I64,
    IMM_INDEX,
    IMM_MEMARG,
    IMM_NONE,
    VALTYPE_I32,
    VALTYPE_I64,
    WASM_OPCODES_BY_NAME,
)
from repro.wasm.parser import parse_module

#: Cases per property; ~500 each keeps the whole file under a few seconds.
NUM_CASES = 500

FUZZ_SEED = os.environ.get("SCAMDETECT_FUZZ_SEED", "20260727")


def case_rng(prop: str, index: int) -> random.Random:
    """Independent RNG for one generated case (regenerable in isolation)."""
    return random.Random(f"{FUZZ_SEED}:{prop}:{index}")


def fail_with_repro(prop: str, index: int, repro: object,
                    detail: str) -> None:
    pytest.fail(
        f"fuzz property {prop!r} failed (seed={FUZZ_SEED}, case={index}): "
        f"{detail}\n"
        f"shrunk repro: {repro!r}\n"
        f"re-run with SCAMDETECT_FUZZ_SEED={FUZZ_SEED} "
        f"pytest tests/test_fuzz_roundtrip.py")


def shrink_list(items: Sequence, fails: Callable[[List], bool],
                valid: Callable[[List], bool] = lambda _: True) -> List:
    """Greedy delta-debugging: drop elements while the failure persists.

    ``valid`` filters candidates that would violate the generator's own
    invariants (balanced WASM blocks, resolvable EVM labels) -- removing an
    element must not turn a real codec bug into a trivially-invalid input.
    """
    current = list(items)
    changed = True
    while changed:
        changed = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1:]
            if valid(candidate) and fails(candidate):
                current = candidate
                changed = True
                break
    return current


# --------------------------------------------------------------------------- #
# LEB128


def _unsigned_value(rng: random.Random) -> int:
    return rng.getrandbits(rng.randint(0, 66))


def _signed_value(rng: random.Random) -> int:
    magnitude = rng.getrandbits(rng.randint(0, 63))
    return -magnitude if rng.random() < 0.5 else magnitude


def test_fuzz_leb128_unsigned_roundtrip():
    for index in range(NUM_CASES):
        rng = case_rng("leb128u", index)
        value = _unsigned_value(rng)
        encoded = encode_unsigned(value)
        prefix = rng.randbytes(rng.randint(0, 4))
        decoded, offset = decode_unsigned(prefix + encoded, len(prefix),
                                          max_bytes=len(encoded))
        if decoded != value or offset != len(prefix) + len(encoded):
            fail_with_repro("leb128u", index, value,
                            f"decoded {decoded} at offset {offset}")


def test_fuzz_leb128_signed_roundtrip():
    for index in range(NUM_CASES):
        rng = case_rng("leb128s", index)
        value = _signed_value(rng)
        encoded = encode_signed(value)
        prefix = rng.randbytes(rng.randint(0, 4))
        decoded, offset = decode_signed(prefix + encoded, len(prefix),
                                        max_bytes=len(encoded))
        if decoded != value or offset != len(prefix) + len(encoded):
            fail_with_repro("leb128s", index, value,
                            f"decoded {decoded} at offset {offset}")


def test_fuzz_leb128_rejects_truncation():
    """Stripping the final (continuation-bit-free) byte must always raise."""
    for index in range(NUM_CASES):
        rng = case_rng("leb128t", index)
        value = _unsigned_value(rng) | (1 << 30)  # force multi-byte
        encoded = encode_unsigned(value)
        assert len(encoded) > 1
        with pytest.raises(LEB128Error):
            decode_unsigned(encoded[:-1])
        with pytest.raises(LEB128Error):
            decode_signed(bytes([b | 0x80 for b in encode_signed(
                _signed_value(rng))]))  # all-continuation: never terminates


# --------------------------------------------------------------------------- #
# WASM module codec

_WASM_VALTYPES = (0x7C, 0x7D, VALTYPE_I64, VALTYPE_I32)
_WASM_OPS = list(WASM_OPCODES_BY_NAME.values())


def _wasm_operands(rng: random.Random, kind: str) -> Tuple[int, ...]:
    if kind == IMM_NONE:
        return ()
    if kind == IMM_BLOCKTYPE:
        return (rng.choice((BLOCKTYPE_VOID,) + _WASM_VALTYPES),)
    if kind == IMM_INDEX:
        return (rng.getrandbits(rng.randint(0, 24)),)
    if kind == IMM_MEMARG:
        return (rng.randint(0, 4), rng.getrandbits(rng.randint(0, 20)))
    if kind == IMM_I32:
        return (rng.randint(-(1 << 31), (1 << 31) - 1),)
    if kind == IMM_I64:
        return (rng.randint(-(1 << 63), (1 << 63) - 1),)
    assert kind == IMM_CALL_INDIRECT
    return (rng.getrandbits(rng.randint(0, 10)), rng.randint(0, 3))


def _wasm_body(rng: random.Random) -> List[WasmInstructionEntry]:
    body: List[WasmInstructionEntry] = []
    depth = 0
    for _ in range(rng.randint(0, 12)):
        opcode = rng.choice(_WASM_OPS)
        if opcode.name == "end":
            if depth == 0:
                continue  # a bare end would terminate the body early
            depth -= 1
        elif opcode.name in ("block", "loop", "if"):
            depth += 1
        body.append(WasmInstructionEntry(
            name=opcode.name, operands=_wasm_operands(rng, opcode.immediate)))
    while depth:  # close every open block so the terminating end is ours
        body.append(WasmInstructionEntry(name="end"))
        depth -= 1
    return body


def _wasm_body_valid(body: Sequence[WasmInstructionEntry]) -> bool:
    """True when ``body`` keeps its structured blocks balanced."""
    depth = 0
    for entry in body:
        if entry.name in ("block", "loop", "if"):
            depth += 1
        elif entry.name == "end":
            if depth == 0:
                return False
            depth -= 1
    return depth == 0


def _wasm_module(rng: random.Random) -> WasmModule:
    module = WasmModule(name="fuzz")
    for _ in range(rng.randint(1, 3)):
        module.types.append((rng.randint(0, 3), rng.randint(0, 1)))
    for _ in range(rng.randint(1, 4)):
        module.functions.append(WasmFunction(
            type_index=rng.randrange(len(module.types)),
            locals=[(rng.randint(0, 7), rng.choice(_WASM_VALTYPES))
                    for _ in range(rng.randint(0, 2))],
            body=_wasm_body(rng)))
    return module


def _wasm_roundtrip_fails(module: WasmModule) -> Optional[str]:
    """None when encode -> parse -> encode is byte-identical, else why."""
    first = encode_module(module)
    parsed = parse_module(first)
    second = encode_module(parsed)
    if first != second:
        return (f"re-encoded bytes differ: {first.hex()} -> {second.hex()}")
    if [f.body for f in parsed.functions] != [f.body for f in module.functions]:
        return "parsed bodies differ from the originals"
    if parsed.types != module.types:
        return f"types {module.types} parsed as {parsed.types}"
    if ([f.type_index for f in parsed.functions]
            != [f.type_index for f in module.functions]):
        return "function type indices differ"
    if [f.locals for f in parsed.functions] != [f.locals for f in module.functions]:
        return "function locals differ"
    return None


def test_fuzz_wasm_module_roundtrip():
    for index in range(NUM_CASES):
        module = _wasm_module(case_rng("wasm", index))
        detail = _wasm_roundtrip_fails(module)
        if detail is None:
            continue

        def function_fails(functions: List[WasmFunction]) -> bool:
            candidate = WasmModule(types=module.types, functions=functions)
            return bool(functions) and _wasm_roundtrip_fails(candidate)

        shrunk_functions = shrink_list(module.functions, function_fails)
        shrunk = WasmModule(types=module.types, functions=shrunk_functions)
        if len(shrunk.functions) == 1:

            def body_fails(body: List[WasmInstructionEntry]) -> bool:
                candidate = WasmModule(types=module.types, functions=[
                    WasmFunction(type_index=shrunk.functions[0].type_index,
                                 locals=shrunk.functions[0].locals,
                                 body=body)])
                return bool(_wasm_roundtrip_fails(candidate))

            shrunk.functions[0].body = shrink_list(
                shrunk.functions[0].body, body_fails,
                valid=_wasm_body_valid)
        repro = [(f.type_index, f.locals, [str(i) for i in f.body])
                 for f in shrunk.functions]
        fail_with_repro("wasm", index, repro, detail)


# --------------------------------------------------------------------------- #
# EVM assembler/disassembler

#: Everything except UNKNOWN placeholders -- all real, encodable opcodes.
_EVM_OPS = list(OPCODES_BY_NAME.values())

AsmItems = List[Tuple[str, Optional[object]]]


def _evm_items(rng: random.Random) -> AsmItems:
    items: AsmItems = []
    labels = [f"L{i}" for i in range(rng.randint(0, 3))]
    for _ in range(rng.randint(1, 20)):
        if labels and rng.random() < 0.15:
            items.append(("PUSHLABEL", rng.choice(labels)))
            continue
        opcode = rng.choice(_EVM_OPS)
        operand = (rng.getrandbits(8 * opcode.immediate_size)
                   if opcode.immediate_size else None)
        items.append((opcode.name, operand))
    for label in labels:  # definitions at random positions
        items.insert(rng.randint(0, len(items)), ("LABEL", label))
    return items


def _evm_roundtrip_fails(items: AsmItems) -> Optional[str]:
    """None when assemble -> disassemble -> assemble is byte-identical."""
    first = assemble(items)
    listing = [(instruction.name, instruction.operand)
               for instruction in disassemble(first)]
    second = assemble(listing)
    if first != second:
        return (f"re-assembled bytes differ: {first.hex()} -> "
                f"{second.hex()} via {listing}")
    return None


def _evm_items_valid(items: AsmItems) -> bool:
    """Shrink filter: the candidate must still assemble at all."""
    try:
        assemble(items)
    except AssemblyError:
        return False
    return True


def test_fuzz_evm_assembler_roundtrip():
    for index in range(NUM_CASES):
        items = _evm_items(case_rng("evm", index))
        detail = _evm_roundtrip_fails(items)
        if detail is None:
            continue
        shrunk = shrink_list(
            items, lambda candidate: bool(_evm_roundtrip_fails(candidate)),
            valid=_evm_items_valid)
        fail_with_repro("evm", index, shrunk, detail)


def test_fuzz_evm_disassembler_total():
    """The disassembler must accept arbitrary bytes without raising --
    truncated PUSH immediates and undefined opcodes included -- and cover
    every input byte exactly once."""
    for index in range(NUM_CASES):
        rng = case_rng("evmraw", index)
        raw = rng.randbytes(rng.randint(0, 64))
        instructions = disassemble(raw)
        covered = sum(instruction.size for instruction in instructions)
        if covered != len(raw):
            fail_with_repro("evmraw", index, raw.hex(),
                            f"{covered} of {len(raw)} bytes covered")


# --------------------------------------------------------------------------- #
# feature extractors (the cascade pre-filter's input layer)

#: Degenerate contracts every fuzz corpus must contain: empty bytecode, a
#: single opcode (shorter than any n-gram order), an undefined opcode and
#: a truncated PUSH immediate.
_EDGE_BYTECODES = (b"", b"\x00", b"\xfe", b"\x7f\x01")


def _fuzz_contract(rng: random.Random, index: int,
                   case: int) -> ContractSample:
    """A random contract: arbitrary EVM bytes (always decodable, possibly
    full of UNKNOWN mnemonics) or a structurally valid WASM module."""
    if rng.random() < 0.3:
        platform, raw = "wasm", encode_module(_wasm_module(rng))
    else:
        platform, raw = "evm", rng.randbytes(rng.randint(0, 48))
    return ContractSample(sample_id=f"fuzz-{case}-{index}",
                          platform=platform, bytecode=raw,
                          label=rng.randint(0, 1), family="fuzz")


def _fuzz_corpus(rng: random.Random, case: int) -> Corpus:
    samples = [ContractSample(sample_id=f"edge-{case}-{i}", platform="evm",
                              bytecode=raw, label=0, family="edge")
               for i, raw in enumerate(_EDGE_BYTECODES)]
    samples += [_fuzz_contract(rng, i, case) for i in range(rng.randint(1, 4))]
    rng.shuffle(samples)
    return Corpus(samples, name=f"fuzz-{case}")


def _features_invalid(features: np.ndarray, corpus: Corpus,
                      dimension: int) -> Optional[str]:
    """None when the matrix is structurally sound, else why not."""
    if features.shape != (len(corpus), dimension):
        return (f"shape {features.shape} != ({len(corpus)}, {dimension})")
    if not np.isfinite(features).all():
        return "non-finite feature values"
    if (features < 0).any():
        return "negative feature values"
    return None


def test_fuzz_ngram_extractor_total():
    """fit + transform must survive any decodable contract -- empty,
    single-opcode (shorter than the n-gram order, exercising PAD_TOKEN),
    unknown-mnemonic -- and always emit exactly ``dimension`` columns."""
    for index in range(NUM_CASES):
        rng = case_rng("ngram", index)
        extractor = NgramExtractor(
            n=rng.randint(1, 4), top_k=rng.randint(1, 32),
            vocabulary=rng.choice(("mnemonic", "category")),
            normalize=rng.random() < 0.5)
        corpus = _fuzz_corpus(rng, index)
        try:
            features = extractor.fit_transform(corpus)
            # transform of a corpus the fit never saw (vocabulary misses)
            other = extractor.transform(_fuzz_corpus(rng, index + NUM_CASES))
        except Exception as error:  # noqa: BLE001 - the property is totality
            fail_with_repro(
                "ngram", index,
                [sample.bytecode.hex() for sample in corpus],
                f"{type(error).__name__}: {error}")
        detail = _features_invalid(features, corpus, extractor.dimension)
        if detail is None and other.shape[1] != extractor.dimension:
            detail = f"transform width {other.shape[1]} drifted from fit"
        if detail is not None:
            fail_with_repro(
                "ngram", index,
                [sample.bytecode.hex() for sample in corpus], detail)


def test_fuzz_histogram_extractor_total():
    """The histogram's vocabulary is fixed up front, so its width must be
    the declared dimension for *any* input -- including tokens outside the
    vocabulary, which are dropped, never crashed on."""
    for index in range(NUM_CASES):
        rng = case_rng("histogram", index)
        extractor = OpcodeHistogramExtractor(
            vocabulary=rng.choice(("mnemonic", "category")),
            platform=rng.choice(("evm", "wasm", "both")),
            normalize=rng.random() < 0.5,
            include_length=rng.random() < 0.5)
        corpus = _fuzz_corpus(rng, index)
        try:
            features = extractor.fit(corpus).transform(corpus)
        except Exception as error:  # noqa: BLE001 - the property is totality
            fail_with_repro(
                "histogram", index,
                [sample.bytecode.hex() for sample in corpus],
                f"{type(error).__name__}: {error}")
        detail = _features_invalid(features, corpus, extractor.dimension)
        if detail is None and not np.array_equal(
                features, extractor.transform(corpus)):
            detail = "transform is not deterministic"
        if detail is not None:
            fail_with_repro(
                "histogram", index,
                [sample.bytecode.hex() for sample in corpus], detail)
