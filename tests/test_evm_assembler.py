"""Unit tests for the EVM assembler."""

import pytest

from repro.evm.assembler import AssemblyError, EVMAssembler, assemble, assemble_text
from repro.evm.disassembler import disassemble


def test_assemble_simple_program():
    code = assemble([("PUSH1", 0x60), ("PUSH1", 0x40), ("MSTORE", None), ("STOP", None)])
    assert code == bytes.fromhex("6060604052" + "00")[:6]
    assert code.hex() == "60606040" + "52" + "00"


def test_assemble_label_roundtrip():
    asm = EVMAssembler()
    asm.push_label("target").emit("JUMP").label("target").emit("STOP")
    code = asm.assemble()
    instructions = disassemble(code)
    # PUSH2 <offset of JUMPDEST>, JUMP, JUMPDEST, STOP
    assert [ins.name for ins in instructions] == ["PUSH2", "JUMP", "JUMPDEST", "STOP"]
    jumpdest_offset = instructions[2].offset
    assert instructions[0].operand == jumpdest_offset


def test_push_width_is_minimal():
    asm = EVMAssembler()
    asm.push(0x05).push(0x1234).push(0x123456)
    names = [ins.name for ins in disassemble(asm.assemble())]
    assert names == ["PUSH1", "PUSH2", "PUSH3"]


def test_push_value_too_wide_rejected():
    with pytest.raises(AssemblyError):
        assemble([("PUSH1", 0x1FF)])


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblyError):
        assemble([("FROBNICATE", None)])


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError):
        assemble([("LABEL", "a"), ("LABEL", "a")])


def test_missing_label_rejected():
    with pytest.raises(AssemblyError):
        assemble([("PUSHLABEL", "missing"), ("JUMP", None)])


def test_negative_push_rejected():
    asm = EVMAssembler()
    with pytest.raises(AssemblyError):
        asm.push(-1)


def test_operand_on_operandless_opcode_rejected():
    with pytest.raises(AssemblyError):
        assemble([("ADD", 3)])


def test_assemble_text_with_comments():
    code = assemble_text(
        """
        ; dispatcher prologue
        PUSH1 0x80
        PUSH1 0x40
        MSTORE
        LABEL done
        STOP
        """)
    names = [ins.name for ins in disassemble(code)]
    assert names == ["PUSH1", "PUSH1", "MSTORE", "JUMPDEST", "STOP"]


def test_assemble_disassemble_roundtrip_preserves_operands():
    items = [("PUSH4", 0xDEADBEEF), ("PUSH2", 0x0102), ("ADD", None), ("STOP", None)]
    instructions = disassemble(assemble(items))
    assert instructions[0].operand == 0xDEADBEEF
    assert instructions[1].operand == 0x0102
