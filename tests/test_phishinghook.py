"""Tests for the PhishingHook 16-model zoo and evaluation framework."""

import numpy as np

from repro.phishinghook import ModelEvaluation, PhishingHookFramework, build_model_zoo


def test_zoo_has_sixteen_distinct_models():
    zoo = build_model_zoo()
    assert len(zoo) == 16
    assert len({entry.name for entry in zoo}) == 16
    encodings = {entry.encoding for entry in zoo}
    assert encodings == {"histogram", "ngram", "tfidf", "byteimage"}
    # four models per encoding family
    for encoding in encodings:
        assert sum(1 for entry in zoo if entry.encoding == encoding) == 4


def test_zoo_factories_produce_fresh_objects():
    entry = build_model_zoo()[0]
    assert entry.make_extractor() is not entry.make_extractor()
    assert entry.make_classifier() is not entry.make_classifier()


def test_evaluate_entry_returns_fold_metrics(small_evm_corpus):
    framework = PhishingHookFramework(folds=3, seed=0)
    entry = next(e for e in framework.entries if e.name == "histogram+random-forest")
    evaluation = framework.evaluate_entry(entry, small_evm_corpus)
    assert isinstance(evaluation, ModelEvaluation)
    assert len(evaluation.fold_metrics) == 3
    assert 0.7 <= evaluation.accuracy <= 1.0
    assert set(evaluation.mean_metrics) == {"accuracy", "precision", "recall", "f1",
                                            "roc_auc"}


def test_evaluate_selected_entries(small_evm_corpus):
    framework = PhishingHookFramework(folds=3, seed=1)
    names = ["histogram+knn", "byteimage+gaussian-nb"]
    evaluations = framework.evaluate(small_evm_corpus, entry_names=names)
    assert [e.name for e in evaluations] == names
    average = PhishingHookFramework.average_accuracy(evaluations)
    assert 0.5 <= average <= 1.0


def test_average_accuracy_empty():
    assert np.isnan(PhishingHookFramework.average_accuracy([]))
