"""Unit tests for the EVM disassembler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evm.assembler import assemble
from repro.evm.disassembler import (
    disassemble,
    disassemble_to_ir,
    format_disassembly,
    to_mnemonic_sequence,
)


def test_disassemble_hex_string_and_bytes_agree():
    code = bytes.fromhex("6080604052")
    from_bytes = disassemble(code)
    from_hex = disassemble("0x6080604052")
    assert [i.name for i in from_bytes] == [i.name for i in from_hex]
    assert [i.operand for i in from_bytes] == [i.operand for i in from_hex]


def test_disassemble_push_operands():
    instructions = disassemble(bytes.fromhex("6001611234"))
    assert instructions[0].name == "PUSH1"
    assert instructions[0].operand == 1
    assert instructions[1].name == "PUSH2"
    assert instructions[1].operand == 0x1234


def test_offsets_are_cumulative_sizes():
    instructions = disassemble(bytes.fromhex("600160026003"))
    assert [ins.offset for ins in instructions] == [0, 2, 4]
    assert all(ins.size == 2 for ins in instructions)


def test_truncated_push_is_tolerated():
    # PUSH2 with only one immediate byte available
    instructions = disassemble(bytes.fromhex("61ff"))
    assert instructions[0].name == "PUSH2"
    assert instructions[0].operand == 0xFF
    assert instructions[0].size == 2


def test_unknown_opcode_decoded_as_unknown():
    instructions = disassemble(bytes([0xEF, 0x00]))
    assert instructions[0].name == "UNKNOWN"
    assert instructions[0].category == "invalid"
    assert instructions[1].name == "STOP"


def test_ir_lowering_preserves_order_and_platform():
    code = assemble([("PUSH1", 7), ("CALLER", None), ("SSTORE", None), ("STOP", None)])
    lowered = disassemble_to_ir(code)
    assert [ins.mnemonic for ins in lowered] == ["PUSH1", "CALLER", "SSTORE", "STOP"]
    assert all(ins.platform == "evm" for ins in lowered)
    assert lowered[2].category == "storage"


def test_mnemonic_sequence_and_formatting():
    code = assemble([("PUSH1", 1), ("STOP", None)])
    assert to_mnemonic_sequence(code) == ["PUSH1", "STOP"]
    listing = format_disassembly(code)
    assert "PUSH1" in listing and "STOP" in listing


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=0, max_size=400))
def test_disassembly_is_total_and_covers_every_byte(data):
    """Disassembly never raises and instruction sizes tile the input exactly."""
    instructions = disassemble(data)
    assert sum(ins.size for ins in instructions) == len(data)
    offsets = [ins.offset for ins in instructions]
    assert offsets == sorted(offsets)
