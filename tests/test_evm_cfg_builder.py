"""Unit tests for EVM CFG construction."""

import random


from repro.evm.assembler import EVMAssembler
from repro.evm.cfg_builder import EVMCFGBuilder, build_cfg
from repro.evm.contracts import ALL_TEMPLATES


def _linear_program():
    asm = EVMAssembler()
    asm.push(1).push(2).emit("ADD").emit("POP").emit("STOP")
    return asm.assemble()


def _branching_program():
    asm = EVMAssembler()
    asm.emit("CALLVALUE")
    asm.push_label("payable").emit("JUMPI")
    asm.push(0).push(0).emit("REVERT")
    asm.label("payable")
    asm.emit("STOP")
    return asm.assemble()


def _loop_program():
    asm = EVMAssembler()
    asm.push(3)                       # counter
    asm.label("head")
    asm.push(1).emit("SWAP1").emit("SUB")
    asm.emit("DUP1")
    asm.push_label("head").emit("JUMPI")
    asm.emit("POP").emit("STOP")
    return asm.assemble()


def test_linear_program_is_single_block():
    cfg = build_cfg(_linear_program())
    assert cfg.num_blocks == 1
    assert cfg.num_edges == 0
    assert cfg.terminal_blocks() == [cfg.entry_id]


def test_conditional_branch_has_two_successors():
    cfg = build_cfg(_branching_program())
    cfg.validate()
    entry_successors = cfg.successors(cfg.entry_id)
    assert len(entry_successors) == 2
    kinds = {edge.kind for edge in cfg.edges if edge.source == cfg.entry_id}
    assert kinds == {"branch", "fallthrough"}


def test_loop_produces_back_edge():
    cfg = build_cfg(_loop_program())
    cfg.validate()
    has_back_edge = any(edge.target <= edge.source for edge in cfg.edges
                        if edge.kind in ("branch", "jump"))
    assert has_back_edge
    assert cfg.cyclomatic_complexity() >= 2


def test_jumpdest_starts_new_block():
    cfg = build_cfg(_branching_program())
    jumpdest_blocks = [block for block in cfg.blocks
                       if block.instructions[0].mnemonic == "JUMPDEST"]
    assert len(jumpdest_blocks) == 1


def test_block_ids_match_first_instruction_offsets():
    for template in ALL_TEMPLATES[:4]:
        cfg = build_cfg(template.generate(random.Random(3)))
        for block in cfg.blocks:
            assert block.block_id == block.instructions[0].offset


def test_all_templates_produce_valid_multi_block_cfgs(rng):
    for template in ALL_TEMPLATES:
        code = template.generate(rng)
        cfg = build_cfg(code, name=template.name)
        cfg.validate()
        assert cfg.num_blocks > 5, template.name
        assert cfg.num_edges > 0, template.name
        # the dispatcher must reach every function entry: most blocks reachable
        reachable = cfg.reachable_blocks()
        assert len(reachable) >= cfg.num_blocks * 0.5, template.name


def test_dispatcher_entry_is_reachable_root(rng):
    code = ALL_TEMPLATES[0].generate(rng)
    cfg = build_cfg(code)
    assert cfg.entry_id == 0
    assert cfg.entry_block().is_entry


def test_empty_bytecode_gives_empty_cfg():
    cfg = build_cfg(b"")
    assert cfg.num_blocks == 0
    assert cfg.num_edges == 0


def test_unresolved_dynamic_jump_gets_conservative_edges():
    # JUMP whose target comes from calldata cannot be resolved statically
    asm = EVMAssembler()
    asm.push(0).emit("CALLDATALOAD").emit("JUMP")
    asm.label("a").emit("STOP")
    asm.label("b").emit("STOP")
    cfg = EVMCFGBuilder(resolve_dynamic_jumps=True).build(asm.assemble())
    dynamic_edges = [edge for edge in cfg.edges if edge.kind == "dynamic"]
    assert len(dynamic_edges) == 2
    cfg_without = EVMCFGBuilder(resolve_dynamic_jumps=False).build(asm.assemble())
    assert not [edge for edge in cfg_without.edges if edge.kind == "dynamic"]


def test_depth_first_order_starts_at_entry(rng):
    cfg = build_cfg(ALL_TEMPLATES[1].generate(rng))
    order = cfg.depth_first_order()
    assert order[0] == cfg.entry_id
    assert len(order) == len(set(order))
