"""Tests for WASM CFG construction and contract templates."""


from repro.wasm.cfg_builder import WasmCFGBuilder, build_cfg
from repro.wasm.contracts import (
    WASM_ALL_TEMPLATES,
    WASM_BENIGN_TEMPLATES,
    WASM_MALICIOUS_TEMPLATES,
    WASM_TEMPLATES_BY_NAME,
)
from repro.wasm.module import WasmFunction, WasmModule, instr
from repro.wasm.opcodes import BLOCKTYPE_VOID


def _single_function_cfg(body):
    module = WasmModule()
    type_index = module.add_type(0, 0)
    module.add_function(WasmFunction(type_index=type_index, body=body))
    return WasmCFGBuilder(interprocedural=False).build_from_module(module)


def test_straightline_body_is_one_block():
    cfg = _single_function_cfg([instr("i64.const", 1), instr("drop"), instr("nop")])
    assert cfg.num_blocks == 1
    assert cfg.num_edges == 0


def test_if_else_produces_branching_blocks():
    cfg = _single_function_cfg([
        instr("i32.const", 1),
        instr("if", BLOCKTYPE_VOID),
        instr("i64.const", 1),
        instr("drop"),
        instr("else"),
        instr("i64.const", 2),
        instr("drop"),
        instr("end"),
        instr("nop"),
    ])
    cfg.validate()
    assert cfg.num_blocks >= 3
    branching = [b for b in cfg.blocks if cfg.out_degree(b.block_id) == 2]
    assert branching, "the if block must have two successors"


def test_loop_with_br_if_has_back_edge():
    cfg = _single_function_cfg([
        instr("loop", BLOCKTYPE_VOID),
        instr("i32.const", 1),
        instr("br_if", 0),
        instr("end"),
        instr("nop"),
    ])
    cfg.validate()
    back_edges = [edge for edge in cfg.edges if edge.target <= edge.source]
    assert back_edges


def test_br_out_of_block_is_forward_edge():
    cfg = _single_function_cfg([
        instr("block", BLOCKTYPE_VOID),
        instr("br", 0),
        instr("i64.const", 9),
        instr("drop"),
        instr("end"),
        instr("nop"),
    ])
    cfg.validate()
    jump_edges = [edge for edge in cfg.edges if edge.kind == "jump"]
    assert jump_edges
    assert all(edge.target > edge.source for edge in jump_edges)


def test_return_terminates_block_without_successors():
    cfg = _single_function_cfg([
        instr("i32.const", 1),
        instr("if", BLOCKTYPE_VOID),
        instr("return"),
        instr("end"),
        instr("nop"),
    ])
    return_blocks = [b for b in cfg.blocks
                     if b.instructions[-1].mnemonic == "return"]
    assert return_blocks
    assert all(cfg.out_degree(b.block_id) == 0 for b in return_blocks)


def test_interprocedural_call_edges(rng):
    binary = WASM_TEMPLATES_BY_NAME["wasm_token"].generate(rng)
    with_calls = WasmCFGBuilder(interprocedural=True).build(binary)
    without_calls = WasmCFGBuilder(interprocedural=False).build(binary)
    call_edges = [edge for edge in with_calls.edges if edge.kind == "call"]
    assert call_edges
    assert with_calls.num_edges > without_calls.num_edges


def test_all_templates_produce_valid_cfgs(rng):
    for template in WASM_ALL_TEMPLATES:
        cfg = build_cfg(template.generate(rng), name=template.name)
        cfg.validate()
        assert cfg.num_blocks >= 5, template.name
        assert cfg.platform == "wasm"


def test_template_registries():
    assert len(WASM_BENIGN_TEMPLATES) == 3
    assert len(WASM_MALICIOUS_TEMPLATES) == 4
    assert all(t.label == 0 for t in WASM_BENIGN_TEMPLATES)
    assert all(t.label == 1 for t in WASM_MALICIOUS_TEMPLATES)


def test_generation_is_deterministic(rng):
    import random
    for template in WASM_ALL_TEMPLATES:
        assert (template.generate(random.Random(5))
                == template.generate(random.Random(5))), template.name


def test_malicious_wasm_signatures(rng):
    from repro.wasm.parser import parse_module

    def mnemonics(name):
        module = parse_module(WASM_TEMPLATES_BY_NAME[name].generate(rng))
        return [entry.name for function in module.functions for entry in function.body]

    assert "call_indirect" in mnemonics("wasm_backdoor")
    assert "unreachable" in mnemonics("wasm_honeypot")
    assert mnemonics("wasm_drainer").count("call") >= 4


def test_empty_function_gets_placeholder_block():
    module = WasmModule()
    type_index = module.add_type(0, 0)
    module.add_function(WasmFunction(type_index=type_index, body=[]))
    cfg = WasmCFGBuilder().build_from_module(module)
    assert cfg.num_blocks == 1
