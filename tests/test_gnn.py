"""Tests for the GNN library: data prep, layers, model, trainer."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.gnn import (
    GNN_ARCHITECTURES,
    ContractGraph,
    GNNTrainer,
    GraphClassifier,
    corpus_to_graphs,
    make_conv,
    readout,
    sample_to_graph,
)
from repro.gnn.layers import GATConv, GCNConv, GINConv, SAGEConv, TAGConv
from repro.ir.features import NODE_FEATURE_DIM


def _toy_graph(num_nodes=5, feature_dim=8, label=1, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.random((num_nodes, feature_dim))
    adjacency = (rng.random((num_nodes, num_nodes)) > 0.6).astype(float)
    adjacency = np.maximum(adjacency, adjacency.T)
    np.fill_diagonal(adjacency, 1.0)
    degrees = adjacency.sum(axis=1)
    inverse_sqrt = 1.0 / np.sqrt(degrees)
    normalized = adjacency * inverse_sqrt[:, None] * inverse_sqrt[None, :]
    return ContractGraph(node_features=features, adjacency=adjacency,
                         normalized_adjacency=normalized, label=label)


# -------------------------------------------------------------------------- #
# data preparation


def test_sample_to_graph_dimensions(small_evm_corpus):
    graph = sample_to_graph(small_evm_corpus[0])
    assert graph.feature_dim == NODE_FEATURE_DIM
    assert graph.adjacency.shape == (graph.num_nodes, graph.num_nodes)
    assert graph.normalized_adjacency.shape == graph.adjacency.shape
    assert graph.label == small_evm_corpus[0].label


def test_corpus_to_graphs_cross_platform(small_evm_corpus, small_wasm_corpus):
    evm_graphs = corpus_to_graphs(small_evm_corpus)
    wasm_graphs = corpus_to_graphs(small_wasm_corpus)
    assert len(evm_graphs) == len(small_evm_corpus)
    assert evm_graphs[0].feature_dim == wasm_graphs[0].feature_dim
    assert {g.platform for g in wasm_graphs} == {"wasm"}


def test_graph_truncation_by_max_nodes(small_evm_corpus):
    graph = sample_to_graph(small_evm_corpus[0], max_nodes=4)
    assert graph.num_nodes <= 4
    assert graph.adjacency.shape == (graph.num_nodes, graph.num_nodes)


# -------------------------------------------------------------------------- #
# layers


@pytest.mark.parametrize("layer_class", [GCNConv, GATConv, GINConv, TAGConv, SAGEConv])
def test_layer_output_shapes(layer_class):
    graph = _toy_graph()
    layer = layer_class(8, 16)
    output = layer(Tensor(graph.node_features), graph)
    assert output.shape == (5, 16)
    assert np.all(np.isfinite(output.numpy()))


@pytest.mark.parametrize("layer_class", [GCNConv, GATConv, GINConv, TAGConv, SAGEConv])
def test_layer_gradients_flow_to_parameters(layer_class):
    graph = _toy_graph()
    layer = layer_class(8, 4)
    loss = (layer(Tensor(graph.node_features), graph) ** 2).sum()
    loss.backward()
    grads = [p.grad for p in layer.parameters()]
    assert any(g is not None and np.abs(g).sum() > 0 for g in grads)


def test_make_conv_registry():
    for name in GNN_ARCHITECTURES:
        conv = make_conv(name, 8, 8)
        assert conv is not None
    with pytest.raises(ValueError):
        make_conv("transformer", 8, 8)


def test_gat_attention_ignores_non_edges():
    """Perturbing a non-neighbour's features must not change a node's output."""
    graph = _toy_graph(num_nodes=4, seed=1)
    # make node 3 isolated except for its self loop
    graph.adjacency[3, :] = 0.0
    graph.adjacency[:, 3] = 0.0
    graph.adjacency[3, 3] = 1.0
    layer = GATConv(8, 6)
    out_before = layer(Tensor(graph.node_features), graph).numpy()[0].copy()
    graph.node_features[3] += 10.0
    out_after = layer(Tensor(graph.node_features), graph).numpy()[0]
    assert np.allclose(out_before, out_after, atol=1e-9)


def test_readout_kinds():
    embeddings = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
    assert np.allclose(readout(embeddings, "mean").numpy(), [[2.0, 3.0]])
    assert np.allclose(readout(embeddings, "sum").numpy(), [[4.0, 6.0]])
    assert np.allclose(readout(embeddings, "max").numpy(), [[3.0, 4.0]])
    with pytest.raises(ValueError):
        readout(embeddings, "median")


# -------------------------------------------------------------------------- #
# model + training


def test_graph_classifier_forward_and_describe():
    model = GraphClassifier(architecture="gcn", in_features=8, hidden_features=16,
                            num_layers=2)
    graph = _toy_graph()
    logits = model(graph)
    assert logits.shape == (1, 2)
    probabilities = model.predict_proba_graph(graph)
    assert probabilities.shape == (2,)
    assert probabilities.sum() == pytest.approx(1.0)
    assert "gcn" in model.describe()


def test_graph_classifier_validates_configuration():
    with pytest.raises(ValueError):
        GraphClassifier(num_layers=0)
    with pytest.raises(ValueError):
        GraphClassifier(readout_kind="median")
    with pytest.raises(ValueError):
        GraphClassifier(architecture="cnn")


def test_trainer_learns_separable_toy_graphs():
    graphs = []
    for index in range(40):
        label = index % 2
        graph = _toy_graph(num_nodes=6, seed=index, label=label)
        # make the signal obvious: class-1 graphs have a feature column set high
        graph.node_features[:, 0] = 3.0 * label
        graphs.append(graph)
    model = GraphClassifier(architecture="gcn", in_features=8, hidden_features=8,
                            num_layers=1, dropout_rate=0.0)
    trainer = GNNTrainer(model, epochs=25, learning_rate=1e-2, seed=0)
    trainer.fit(graphs)
    assert trainer.score(graphs) >= 0.95
    assert trainer.history.losses[0] > trainer.history.losses[-1]


def test_trainer_on_real_corpus_all_architectures(tiny_evm_corpus):
    graphs = corpus_to_graphs(tiny_evm_corpus)
    labels = [g.label for g in graphs]
    for architecture in GNN_ARCHITECTURES:
        model = GraphClassifier(architecture=architecture,
                                in_features=graphs[0].feature_dim,
                                hidden_features=16, num_layers=2, seed=0)
        trainer = GNNTrainer(model, epochs=20, seed=0)
        trainer.fit(graphs)
        assert trainer.score(graphs, labels) >= 0.65, architecture


def test_trainer_early_stopping_with_validation(tiny_evm_corpus):
    graphs = corpus_to_graphs(tiny_evm_corpus)
    model = GraphClassifier(architecture="gcn", in_features=graphs[0].feature_dim,
                            hidden_features=8, num_layers=1)
    trainer = GNNTrainer(model, epochs=50, seed=0, patience=2)
    trainer.fit(graphs, validation_graphs=graphs,
                validation_labels=[g.label for g in graphs])
    assert len(trainer.history.validation_accuracies) <= 50


def test_trainer_label_length_mismatch(tiny_evm_corpus):
    graphs = corpus_to_graphs(tiny_evm_corpus)
    model = GraphClassifier(in_features=graphs[0].feature_dim)
    with pytest.raises(ValueError):
        GNNTrainer(model, epochs=1).fit(graphs, labels=[0])


def test_predictions_are_deterministic_after_training(tiny_evm_corpus):
    graphs = corpus_to_graphs(tiny_evm_corpus)
    model = GraphClassifier(architecture="gin", in_features=graphs[0].feature_dim,
                            hidden_features=8, seed=3)
    trainer = GNNTrainer(model, epochs=4, seed=3).fit(graphs)
    first = trainer.predict_proba(graphs)
    second = trainer.predict_proba(graphs)
    assert np.allclose(first, second)
