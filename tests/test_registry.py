"""Tests for the persistent verdict registry (store layer).

Covers the durability contracts the continuous-scanning stack leans on:
WAL-mode concurrency (including two *processes* upserting the same row),
schema versioning with a v1 -> v2 migration round-trip, corrupted-database
recovery to a warned rebuild, upsert-on-rescan history, and the query API.
"""

from __future__ import annotations

import json
import multiprocessing
import sqlite3

import pytest

from repro.core.report import VerdictReport
from repro.registry import RegistryError, ScanRegistry, content_sha256
from repro.registry.store import _MIGRATIONS, SCHEMA_VERSION

FP = "fp-test-0001"
OTHER_FP = "fp-other-9999"


def make_report(sample_id="contract-0", platform="evm", label=0,
                probability=0.25, notes=None):
    return VerdictReport(
        sample_id=sample_id, platform=platform, label=label,
        malicious_probability=probability, cfg_blocks=3, cfg_edges=4,
        num_instructions=40, model="scamdetect-test",
        notes=list(notes or []))


@pytest.fixture()
def registry(tmp_path):
    with ScanRegistry(tmp_path / "verdicts.db", fingerprint=FP) as reg:
        yield reg


# --------------------------------------------------------------------------- #
# basics


def test_registry_opens_wal_mode_at_current_schema(registry):
    assert registry.journal_mode == "wal"
    assert registry.schema_version == SCHEMA_VERSION


def test_record_and_get_roundtrip_exact(registry):
    report = make_report(probability=0.123456789012345,
                         notes=["indicator: DELEGATECALL"])
    sha = content_sha256(b"\x60\x60")
    assert registry.record(sha, report, source_path="feed/a.bin") is True
    row = registry.get(sha)
    assert row is not None
    assert row.source_path == "feed/a.bin"
    assert row.scan_count == 1
    # the stored report reconstructs byte-identically (REAL is an 8-byte
    # IEEE double, so the probability round-trips exactly)
    assert row.to_report().to_dict() == report.to_dict()
    # a rebind serves another path with identical bytecode
    assert row.to_report(sample_id="feed/b.bin").sample_id == "feed/b.bin"


def test_get_unknown_and_other_fingerprint_miss(registry):
    sha = content_sha256(b"\x01")
    registry.record(sha, make_report())
    assert registry.get("0" * 64) is None
    assert registry.get(sha, fingerprint=OTHER_FP) is None


def test_upsert_on_rescan_keeps_history(registry):
    sha = content_sha256(b"\x02")
    assert registry.record(sha, make_report(probability=0.2),
                           scanned_at=100.0) is True
    assert registry.record(sha, make_report(probability=0.9, label=1),
                           scanned_at=200.0) is False
    row = registry.get(sha)
    assert row.scan_count == 2
    assert row.malicious_probability == 0.9
    assert row.first_seen_at == 100.0
    assert row.last_scanned_at == 200.0
    history = registry.history(sha)
    assert [entry["malicious_probability"] for entry in history] == [0.2, 0.9]
    assert [entry["scanned_at"] for entry in history] == [100.0, 200.0]


def test_record_many_single_transaction(registry):
    entries = [(content_sha256(bytes([i])), make_report(f"c-{i}"), f"p/{i}")
               for i in range(10)]
    fresh = registry.record_many(entries)
    assert fresh == [True] * 10
    assert registry.counts()["verdicts"] == 10
    found = registry.get_many([sha for sha, _, _ in entries])
    assert len(found) == 10


def test_add_tags_merges_and_requires_known_row(registry):
    sha = content_sha256(b"\x03")
    registry.record(sha, make_report())
    assert registry.add_tags(sha, ["hot", "review"]) == ["hot", "review"]
    assert registry.add_tags(sha, ["hot", "alpha"]) == \
        ["alpha", "hot", "review"]
    assert registry.get(sha).tags == ["alpha", "hot", "review"]
    with pytest.raises(RegistryError):
        registry.add_tags("f" * 64, ["x"])


def test_scope_required_for_unscoped_registry(tmp_path):
    with ScanRegistry(tmp_path / "v.db") as reg:
        with pytest.raises(RegistryError):
            reg.record(content_sha256(b"\x04"), make_report())
        # explicit fingerprint always works
        reg.record(content_sha256(b"\x04"), make_report(), fingerprint=FP)
        assert reg.get(content_sha256(b"\x04"), fingerprint=FP) is not None


# --------------------------------------------------------------------------- #
# query API


@pytest.fixture()
def populated(registry):
    rows = [
        ("a", "evm", 0, 0.10, "inbox/a.bin", 100.0),
        ("b", "evm", 1, 0.80, "inbox/b.bin", 200.0),
        ("c", "wasm", 1, 0.95, "archive/c.wasm", 300.0),
        ("d", "evm", 0, 0.40, "archive/d.bin", 400.0),
    ]
    for name, platform, label, probability, path, when in rows:
        registry.record(content_sha256(name.encode()),
                        make_report(name, platform, label, probability),
                        source_path=path, scanned_at=when)
    return registry


def test_query_by_verdict(populated):
    assert {row.sample_id for row in populated.query(verdict="malicious")} \
        == {"b", "c"}
    assert {row.sample_id for row in populated.query(verdict="benign")} \
        == {"a", "d"}
    with pytest.raises(RegistryError):
        populated.query(verdict="suspicious")


def test_query_by_score_range(populated):
    assert {row.sample_id
            for row in populated.query(min_score=0.4, max_score=0.9)} \
        == {"b", "d"}


def test_query_by_platform_and_time_window(populated):
    assert {row.sample_id for row in populated.query(platform="wasm")} \
        == {"c"}
    assert {row.sample_id
            for row in populated.query(since=150.0, until=350.0)} \
        == {"b", "c"}


def test_query_by_path_glob(populated):
    assert {row.sample_id for row in populated.query(path_glob="inbox/*")} \
        == {"a", "b"}
    assert {row.sample_id for row in populated.query(path_glob="*.wasm")} \
        == {"c"}


def test_query_order_and_limit(populated):
    rows = populated.query(limit=2)
    # newest first
    assert [row.sample_id for row in rows] == ["d", "c"]
    with pytest.raises(RegistryError):
        populated.query(limit=0)


def test_query_by_tag(populated):
    sha = content_sha256(b"b")
    populated.add_tags(sha, ["hot"])
    assert [row.sample_id for row in populated.query(tag="hot")] == ["b"]
    assert populated.query(tag="cold") == []
    # tag matching is exact, not substring: "hot" must not match "hotter"
    populated.add_tags(content_sha256(b"a"), ["hotter"])
    assert [row.sample_id for row in populated.query(tag="hot")] == ["b"]


def test_query_tag_filter_applies_before_limit(registry):
    # 30 rows; only the OLDEST one is tagged.  A limited query must still
    # find it (the filter runs in SQL before LIMIT, not on the first page).
    for index in range(30):
        registry.record(content_sha256(bytes([index])),
                        make_report(f"c-{index}"),
                        scanned_at=float(index))
    registry.add_tags(content_sha256(bytes([0])), ["needle"])
    rows = registry.query(tag="needle", limit=5)
    assert [row.sample_id for row in rows] == ["c-0"]


def test_query_by_sha256_prefix_before_limit(registry):
    for index in range(30):
        registry.record(content_sha256(bytes([index])),
                        make_report(f"c-{index}"),
                        scanned_at=float(index))
    oldest = content_sha256(bytes([0]))
    rows = registry.query(sha256_prefix=oldest[:10], limit=5)
    assert [row.sha256 for row in rows] == [oldest]
    # prefixes are validated hex, so LIKE wildcards cannot be injected
    with pytest.raises(RegistryError, match="must be hex"):
        registry.query(sha256_prefix="ab%")


# --------------------------------------------------------------------------- #
# fingerprint scoping


def test_fingerprint_change_invalidates_only_stale_rows(registry):
    sha = content_sha256(b"\x05")
    registry.record(sha, make_report(probability=0.3))
    # the same bytecode under a different lowering config is a distinct row
    registry.record(sha, make_report(probability=0.7),
                    fingerprint=OTHER_FP)
    assert registry.get(sha).malicious_probability == 0.3
    assert registry.get(sha, fingerprint=OTHER_FP) \
        .malicious_probability == 0.7
    assert len(registry.query(all_fingerprints=True)) == 2
    assert registry.fingerprints() == sorted([FP, OTHER_FP])
    # purging stale fingerprints keeps the current one untouched
    assert registry.purge_stale() == 1
    assert registry.get(sha).malicious_probability == 0.3
    assert registry.get(sha, fingerprint=OTHER_FP) is None


# --------------------------------------------------------------------------- #
# schema versioning + migrations


def _build_v1_registry(path):
    """Create a registry the way the v1 code would have left it on disk."""
    conn = sqlite3.connect(path)
    with conn:
        conn.executescript(_MIGRATIONS[1])
        conn.execute("PRAGMA user_version = 1")
        conn.execute(
            "INSERT INTO verdicts (sha256, fingerprint, sample_id,"
            " source_path, platform, label, malicious_probability,"
            " cfg_blocks, cfg_edges, num_instructions, model,"
            " model_identity, notes, explained, first_seen_at,"
            " last_scanned_at, scan_count) "
            "VALUES (?, ?, 'old', 'old.bin', 'evm', 1, 0.77, 2, 2, 10,"
            " 'scamdetect-test', 'id-v1', '[\"note\"]', 0, 50.0, 60.0, 3)",
            ("ab" * 32, FP))
        conn.execute(
            "INSERT INTO watched_files (path, fingerprint, sha256, size,"
            " mtime_ns, first_seen_at, last_seen_at) "
            "VALUES ('old.bin', ?, ?, 10, 123, 50.0, 60.0)",
            (FP, "ab" * 32))
    conn.close()


def test_v1_to_v2_migration_roundtrip(tmp_path):
    path = tmp_path / "old.db"
    _build_v1_registry(path)
    with ScanRegistry(path, fingerprint=FP) as registry:
        assert registry.schema_version == SCHEMA_VERSION
        # v1 rows survive the migration verbatim, with v2 defaults applied
        row = registry.get("ab" * 32)
        assert row.malicious_probability == 0.77
        assert row.scan_count == 3
        assert row.tags == []
        assert registry.watched_files()["old.bin"].sha256 == "ab" * 32
        # v2 features work on the migrated database
        registry.add_tags("ab" * 32, ["legacy"])
        registry.record("ab" * 32, make_report(probability=0.9),
                        scanned_at=70.0)
        assert registry.get("ab" * 32).scan_count == 4
        assert len(registry.history("ab" * 32)) == 1  # history is v2-only
    # and the upgrade is persistent
    with ScanRegistry(path, fingerprint=FP) as registry:
        assert registry.schema_version == SCHEMA_VERSION
        assert registry.get("ab" * 32).tags == ["legacy"]


def test_future_schema_version_refuses(tmp_path):
    path = tmp_path / "future.db"
    conn = sqlite3.connect(path)
    conn.execute("PRAGMA user_version = 99")
    conn.close()
    with pytest.raises(RegistryError, match="newer than this build"):
        ScanRegistry(path, fingerprint=FP)


# --------------------------------------------------------------------------- #
# corruption recovery


def test_corrupt_database_rebuilds_with_warning(tmp_path):
    path = tmp_path / "verdicts.db"
    path.write_bytes(b"this is definitely not a sqlite database" * 100)
    with pytest.warns(UserWarning, match="corrupt"):
        registry = ScanRegistry(path, fingerprint=FP)
    try:
        # the damaged file was quarantined, a fresh registry works
        quarantined = list(tmp_path.glob("verdicts.db.corrupt-*"))
        assert len(quarantined) == 1
        assert b"not a sqlite" in quarantined[0].read_bytes()
        sha = content_sha256(b"\x06")
        registry.record(sha, make_report())
        assert registry.get(sha) is not None
        assert registry.schema_version == SCHEMA_VERSION
    finally:
        registry.close()


def test_corrupt_quarantine_names_do_not_collide(tmp_path):
    path = tmp_path / "verdicts.db"
    for expected in ("corrupt-0", "corrupt-1"):
        path.write_bytes(b"garbage" * 1000)
        with pytest.warns(UserWarning, match="corrupt"):
            ScanRegistry(path, fingerprint=FP).close()
        assert (tmp_path / f"verdicts.db.{expected}").exists()
        path.unlink()  # fresh rebuild next round


# --------------------------------------------------------------------------- #
# cross-process concurrency under WAL


def _hammer_upserts(path, sha, worker, rounds):
    with ScanRegistry(path, fingerprint=FP) as registry:
        for index in range(rounds):
            registry.record(
                sha,
                make_report(f"w{worker}-r{index}",
                            probability=(worker + 1) / 10),
                source_path=f"worker-{worker}.bin",
                scanned_at=float(index))


def test_two_processes_upsert_same_sha_under_wal(tmp_path):
    path = tmp_path / "shared.db"
    sha = content_sha256(b"contended")
    # parent opens (and migrates) first, then two writers contend
    ScanRegistry(path, fingerprint=FP).close()
    rounds = 25
    workers = [
        multiprocessing.Process(target=_hammer_upserts,
                                args=(path, sha, worker, rounds))
        for worker in range(2)
    ]
    for process in workers:
        process.start()
    for process in workers:
        process.join(timeout=120)
        assert process.exitcode == 0, "writer crashed (locked database?)"
    with ScanRegistry(path, fingerprint=FP) as registry:
        row = registry.get(sha)
        # every upsert from both processes landed: no lost updates
        assert row.scan_count == 2 * rounds
        assert len(registry.history(sha)) == 2 * rounds
        assert registry.counts()["verdicts"] == 1


def test_concurrent_reader_during_writes(tmp_path):
    # WAL lets a reader hold its own connection open while a writer commits
    path = tmp_path / "rw.db"
    writer = ScanRegistry(path, fingerprint=FP)
    reader = ScanRegistry(path, fingerprint=FP)
    try:
        for index in range(20):
            writer.record(content_sha256(bytes([index])),
                          make_report(f"c-{index}"))
            assert len(reader.query(limit=None)) == index + 1
    finally:
        writer.close()
        reader.close()


# --------------------------------------------------------------------------- #
# watched-files index


def test_watched_files_upsert_delete_and_resurrect(registry):
    registry.upsert_watched_files([("a.bin", "ab" * 32, 10, 111)],
                                  seen_at=1.0)
    assert registry.watched_files()["a.bin"].mtime_ns == 111
    registry.mark_deleted(["a.bin"], deleted_at=2.0)
    assert registry.watched_files() == {}
    deleted = registry.watched_files(include_deleted=True)["a.bin"]
    assert deleted.deleted_at == 2.0
    # the path coming back un-deletes the row
    registry.upsert_watched_files([("a.bin", "cd" * 32, 12, 222)],
                                  seen_at=3.0)
    entry = registry.watched_files()["a.bin"]
    assert entry.deleted_at is None and entry.sha256 == "cd" * 32
    assert registry.counts()["watched_files"] == 1


def test_verdict_row_to_dict_shape(registry):
    sha = content_sha256(b"\x07")
    registry.record(sha, make_report(notes=["n1"]), source_path="x.bin")
    payload = registry.get(sha).to_dict()
    assert payload["sha256"] == sha
    assert payload["report"]["notes"] == ["n1"]
    json.dumps(payload)  # JSON-ready end to end
