"""Tests of the scan server: coalescing, verdict parity, metrics, shutdown.

The server fixtures bind to port 0 (a free ephemeral port), so the suite can
run in parallel with anything else on the host.
"""

import concurrent.futures
import threading
import time
import warnings

import pytest

from repro.core.config import ScamDetectConfig
from repro.core.detector import ScamDetector
from repro.service import ServerClient, ServerClientError
from repro.service.server import (
    RequestCoalescer,
    ScanServer,
    ServerMetrics,
    _percentile,
)

FAST = ScamDetectConfig(epochs=3, num_layers=1, hidden_features=8)


@pytest.fixture(scope="module")
def trained_detector(tiny_evm_corpus):
    # explain stays at the default (True) so server verdicts carry the same
    # indicator notes as a default ScamDetector.scan
    return ScamDetector(FAST).train(tiny_evm_corpus)


@pytest.fixture()
def server(trained_detector):
    with ScanServer(trained_detector, port=0, workers=16, max_batch=16,
                    max_wait_ms=25.0) as running:
        yield running
    # shutdown hands the detector back with its original (absent) cache
    assert trained_detector.pipeline.graph_cache is None


@pytest.fixture()
def client(server):
    probe = ServerClient(port=server.port)
    probe.wait_until_ready(timeout=10.0)
    return probe


# --------------------------------------------------------------------------- #
# endpoints


def test_healthz_reports_configuration(server, client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["workers"] == 16
    assert health["max_batch"] == 16
    assert "scamdetect-" in health["model"]
    assert health["uptime_seconds"] >= 0.0


def test_unknown_paths_are_404(client):
    for method, path in (("GET", "/nope"), ("POST", "/nope")):
        with pytest.raises(ServerClientError) as caught:
            client._request(method, path, {} if method == "POST" else None)
        assert caught.value.status == 404


def test_bad_requests_are_400(client):
    cases = [
        {"bytecode": "zz-not-hex"},
        {"bytecode": "6001", "encoding": "rot13"},
        {"bytecode": "6001", "platform": "solana"},
        {"bytecode": ""},
        {"bytecode": "6001", "sample_id": 7},
        "not an object",
    ]
    for payload in cases:
        with pytest.raises(ServerClientError) as caught:
            client._request("POST", "/scan", payload)
        assert caught.value.status == 400, payload
    with pytest.raises(ServerClientError) as caught:
        client._request("POST", "/scan-batch", {"contracts": "nope"})
    assert caught.value.status == 400


def test_scan_verdict_parity_with_detector_scan(trained_detector, client,
                                                tiny_evm_corpus):
    for sample in tiny_evm_corpus[:8]:
        served = client.scan(sample.bytecode, sample_id=sample.sample_id)
        direct = trained_detector.scan(sample.bytecode,
                                       sample_id=sample.sample_id)
        assert served == direct.to_dict()


def test_scan_accepts_base64_and_hex_string(trained_detector, client,
                                            tiny_evm_corpus):
    code = tiny_evm_corpus[0].bytecode
    direct = trained_detector.scan(code).to_dict()
    assert client.scan(code, encoding="base64") == direct
    assert client.scan("0x" + code.hex()) == direct
    # a hex *string* sent over base64 transport must describe the same
    # bytes, not have its hex digits misread as base64 alphabet
    assert client.scan(code.hex(), encoding="base64") == direct


def test_undecodable_bytecode_is_client_error_not_500(client):
    # decodes fine as hex, then fails inside the WASM frontend: still a 400
    bad_wasm = b"\x00asm\x01\x00\x00\x00" + b"\xff" * 20
    with pytest.raises(ServerClientError) as caught:
        client.scan(bad_wasm)
    assert caught.value.status == 400
    assert "rejected" in str(caught.value)


def test_negative_content_length_is_400(server):
    import http.client

    connection = http.client.HTTPConnection(server.host, server.port,
                                            timeout=10)
    try:
        connection.putrequest("POST", "/scan", skip_host=False)
        connection.putheader("Content-Length", "-1")
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 400
        response.read()
    finally:
        connection.close()


def test_scan_batch_endpoint_orders_and_summarises(trained_detector, client,
                                                   tiny_evm_corpus):
    samples = tiny_evm_corpus[:6]
    response = client.scan_batch(
        [sample.bytecode for sample in samples],
        sample_ids=[sample.sample_id for sample in samples])
    assert response["contracts"] == 6
    assert response["malicious"] + response["benign"] == 6
    assert [report["sample_id"] for report in response["reports"]] == \
        [sample.sample_id for sample in samples]
    for sample, report in zip(samples, response["reports"]):
        assert report == trained_detector.scan(
            sample.bytecode, sample_id=sample.sample_id).to_dict()


# --------------------------------------------------------------------------- #
# coalescing under concurrency (the acceptance scenario)


def test_64_concurrent_scans_coalesce_and_match_single_shot(
        trained_detector, server, client, tiny_evm_corpus):
    codes = [sample.bytecode for sample in tiny_evm_corpus] * 3  # 72 scans
    codes = codes[:64]
    with concurrent.futures.ThreadPoolExecutor(max_workers=32) as pool:
        served = list(pool.map(client.scan, codes))
    direct = [trained_detector.scan(code).to_dict() for code in codes]
    assert served == direct

    metrics = client.metrics()
    batches = metrics["scans"]["batches"]
    assert batches["count"] >= 1
    # coalescing engaged: at least one inference batch held >1 request
    assert batches["max_size"] > 1
    assert batches["coalesced"] >= 1
    assert sum(int(size) * count
               for size, count in batches["histogram"].items()) == \
        metrics["scans"]["contracts"]


def test_metrics_counters_advance(client, tiny_evm_corpus):
    before = client.metrics()
    client.scan(tiny_evm_corpus[0].bytecode)
    client.scan(tiny_evm_corpus[1].bytecode)
    after = client.metrics()
    assert after["requests"]["scan"] == before["requests"].get("scan", 0) + 2
    assert after["requests"]["metrics"] == before["requests"]["metrics"] + 1
    assert after["scans"]["contracts"] == before["scans"]["contracts"] + 2
    assert after["latency"]["scan"]["count"] >= 2
    assert after["latency"]["scan"]["p50_ms"] > 0.0
    assert after["scans"]["cache"]["lookups"] >= \
        before["scans"]["cache"]["lookups"] + 2
    assert after["errors"] == before["errors"]


def test_errors_counted_not_latency(client):
    before = client.metrics()
    with pytest.raises(ServerClientError):
        client._request("POST", "/scan", {"bytecode": "zz"})
    after = client.metrics()
    assert after["errors"] == before["errors"] + 1


# --------------------------------------------------------------------------- #
# graceful shutdown


def test_shutdown_drains_inflight_http_requests(trained_detector,
                                                tiny_evm_corpus):
    # long hold window + big batch budget: requests pile up in the coalescer
    # and are still unanswered when shutdown starts
    server = ScanServer(trained_detector, port=0, workers=16, max_batch=64,
                        max_wait_ms=400.0).start()
    try:
        client = ServerClient(port=server.port)
        client.wait_until_ready()
        codes = [sample.bytecode for sample in tiny_evm_corpus[:12]]
        with concurrent.futures.ThreadPoolExecutor(max_workers=12) as pool:
            futures = [pool.submit(client.scan, code) for code in codes]
            # wait until every request reached a handler (the coalescer's
            # 400ms hold window keeps them all unanswered) -- sleeping
            # instead would race the accept loop under a loaded test host
            deadline = time.monotonic() + 10.0
            while server.metrics.requests.get("scan", 0) < len(codes):
                assert time.monotonic() < deadline, "requests never accepted"
                time.sleep(0.01)
            server.shutdown()         # must drain, not drop
            served = [future.result(timeout=10.0) for future in futures]
    finally:
        server.shutdown()
    assert trained_detector.pipeline.graph_cache is None  # cache restored
    direct = [trained_detector.scan(code).to_dict() for code in codes]
    assert served == direct


def test_coalescer_close_drains_queue(trained_detector, tiny_evm_corpus):
    pipeline = trained_detector.pipeline
    graphs = [pipeline.analyse_bytecode(sample.bytecode)[0]
              for sample in tiny_evm_corpus[:8]]
    coalescer = RequestCoalescer(pipeline._trainer, ServerMetrics(),
                                 max_batch=64, max_wait_ms=500.0)
    coalescer.start()
    results = {}
    threads = [threading.Thread(target=lambda i=i: results.update(
        {i: coalescer.submit([graphs[i]])})) for i in range(len(graphs))]
    for thread in threads:
        thread.start()
    time.sleep(0.1)                   # everything queued, window still open
    coalescer.close()                 # drains before stopping
    for thread in threads:
        thread.join(timeout=10.0)
    assert sorted(results) == list(range(len(graphs)))
    expected = pipeline._trainer.predict_proba(graphs)
    for index, probabilities in results.items():
        assert probabilities[0] == pytest.approx(
            float(expected[index][1]), abs=1e-9)

    with pytest.raises(RuntimeError, match="shutting down"):
        coalescer.submit([graphs[0]])


def test_server_refuses_untrained_detector():
    with pytest.raises(RuntimeError, match="trained"):
        ScanServer(ScamDetector(FAST))


def test_coalescer_validates_parameters(trained_detector):
    with pytest.raises(ValueError, match="max_batch"):
        RequestCoalescer(trained_detector.pipeline._trainer, ServerMetrics(),
                         max_batch=0)
    with pytest.raises(ValueError, match="max_wait_ms"):
        RequestCoalescer(trained_detector.pipeline._trainer, ServerMetrics(),
                         max_wait_ms=-1.0)


def test_percentile_nearest_rank():
    assert _percentile([], 0.5) == 0.0
    assert _percentile([3.0], 0.99) == 3.0
    values = list(range(1, 101))
    assert _percentile(values, 0.0) == 1
    assert _percentile(values, 0.5) == 51
    assert _percentile(values, 1.0) == 100


# --------------------------------------------------------------------------- #
# CLI startup errors


def test_client_scan_batch_rejects_mismatched_sample_ids(client,
                                                         tiny_evm_corpus):
    with pytest.raises(ValueError, match="sample_ids length"):
        client.scan_batch([s.bytecode for s in tiny_evm_corpus[:2]],
                          sample_ids=["only-one"])


def test_cli_serve_missing_bundle_exits_nonzero(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit) as caught:
        main(["serve", "--model-path", str(tmp_path / "missing")])
    assert "cannot load model bundle" in str(caught.value)


def test_cli_serve_bad_port_exits_nonzero(trained_detector, tmp_path):
    from repro.cli import main

    model_path = tmp_path / "model"
    trained_detector.save(model_path)
    with pytest.raises(SystemExit) as caught:
        main(["serve", "--model-path", str(model_path), "--port", "99999"])
    assert "cannot bind" in str(caught.value)


def test_cli_serve_bad_parameters_name_the_parameter(trained_detector,
                                                     tmp_path):
    from repro.cli import main

    model_path = tmp_path / "model"
    trained_detector.save(model_path)
    for flags, fragment in ((["--workers", "0"], "workers"),
                            (["--max-batch", "0"], "max_batch"),
                            (["--cache-capacity", "0"], "capacity")):
        with pytest.raises(SystemExit) as caught:
            main(["serve", "--model-path", str(model_path), *flags])
        message = str(caught.value)
        assert "invalid parameters" in message and fragment in message


# --------------------------------------------------------------------------- #
# sharded serving


def test_sharded_server_parity_and_metrics(trained_detector, tiny_evm_corpus):
    """A ``shards=2`` server scores through the process pool: verdicts stay
    byte-identical to ``scan`` and ``/metrics`` grows a per-shard section."""
    with ScanServer(trained_detector, port=0, workers=8, max_batch=8,
                    max_wait_ms=10.0, shards=2) as server:
        client = ServerClient(port=server.port)
        health = client.wait_until_ready(timeout=10.0)
        assert health["shards"] == 2

        samples = tiny_evm_corpus[:8]
        batch = client.scan_batch([s.bytecode for s in samples],
                                  sample_ids=[s.sample_id for s in samples])
        singles = [client.scan(s.bytecode, sample_id=s.sample_id)
                   for s in samples]
        metrics = client.metrics()

    for sample, report in zip(samples, batch["reports"]):
        assert report == trained_detector.scan(
            sample.bytecode, sample_id=sample.sample_id).to_dict()
    for sample, report in zip(samples, singles):
        assert report == trained_detector.scan(
            sample.bytecode, sample_id=sample.sample_id).to_dict()

    assert set(metrics["shards"]) == {"shard-0", "shard-1"}
    inference = [entry["inference"] for entry in metrics["shards"].values()]
    assert sum(entry["graphs"] for entry in inference) >= 16
    assert all(entry["seconds"] >= 0.0 for entry in inference)
    assert all(entry["restarts"] == 0
               for entry in metrics["shards"].values())
    # unsharded servers must not grow the section
    with ScanServer(trained_detector, port=0, workers=2) as server:
        client = ServerClient(port=server.port)
        client.wait_until_ready(timeout=10.0)
        assert "shards" not in client.metrics()
        assert client.healthz()["shards"] == 1


def test_shard_pool_start_failure_does_not_hang_shutdown(trained_detector):
    """If the shard pool fails to come up, start() must leave the server in
    a state whose shutdown() returns promptly (the full shutdown path would
    block forever on an accept loop that never ran)."""
    from repro.service import ShardError

    server = ScanServer(trained_detector, port=0, workers=2, shards=2)

    def refuse_to_start():
        raise ShardError("replica failed to load")

    server.sharded.start = refuse_to_start
    with pytest.raises(ShardError):
        server.start()
    server.shutdown()  # regression: this used to deadlock
    assert trained_detector.pipeline.graph_cache is None


# --------------------------------------------------------------------------- #
# verdict registry endpoints


@pytest.fixture()
def registry_server(trained_detector, tmp_path):
    from repro.registry import ScanRegistry

    registry = ScanRegistry.for_config(tmp_path / "verdicts.db",
                                       trained_detector.config)
    with ScanServer(trained_detector, port=0, workers=4, max_batch=8,
                    max_wait_ms=5.0, registry=registry) as running:
        yield running, registry
    registry.close()


def test_verdicts_endpoint_serves_recorded_scans(registry_server,
                                                 tiny_evm_corpus):
    from repro.registry import content_sha256

    server, registry = registry_server
    client = ServerClient(port=server.port)
    client.wait_until_ready(timeout=10.0)
    codes = [sample.bytecode for sample in tiny_evm_corpus[:5]]
    direct = [client.scan(code, sample_id=f"c-{index}")
              for index, code in enumerate(codes)]

    listing = client.verdicts(limit=10)
    assert listing["count"] == len({content_sha256(code) for code in codes})
    by_sha = {row["sha256"]: row for row in listing["verdicts"]}
    for code, report in zip(codes, direct):
        row = by_sha[content_sha256(code)]
        assert row["report"]["malicious_probability"] == \
            report["malicious_probability"]

    # point lookup + history
    sha = content_sha256(codes[0])
    detail = client.verdict(sha)
    assert detail["sha256"] == sha
    assert len(detail["history"]) >= 1
    with pytest.raises(ServerClientError) as excinfo:
        client.verdict("0" * 64)
    assert excinfo.value.status == 404

    # filters pass through to the registry query API
    malicious = client.verdicts(verdict="malicious")
    assert all(row["report"]["verdict"] == "malicious"
               for row in malicious["verdicts"])
    with pytest.raises(ServerClientError) as excinfo:
        client.verdicts(min_score="not-a-number")
    assert excinfo.value.status == 400
    with pytest.raises(ServerClientError) as excinfo:
        client._request("GET", "/verdicts?bogus=1")
    assert excinfo.value.status == 400

    # health grows registry counts
    health = client.healthz()
    assert health["registry"]["verdicts"] == listing["count"]


def test_server_registry_hits_skip_inference(registry_server,
                                             tiny_evm_corpus):
    server, registry = registry_server
    client = ServerClient(port=server.port)
    client.wait_until_ready(timeout=10.0)
    code = tiny_evm_corpus[0].bytecode

    first = client.scan(code, sample_id="first")
    inference_before = sum(
        server.metrics.batch_sizes.get(size, 0) * size
        for size in server.metrics.batch_sizes)
    second = client.scan(code, sample_id="second")
    inference_after = sum(
        server.metrics.batch_sizes.get(size, 0) * size
        for size in server.metrics.batch_sizes)

    # verdicts identical (apart from the requested sample id), no new model
    # work for the repeat, and the metrics surface the registry hit
    assert second["malicious_probability"] == first["malicious_probability"]
    assert second["sample_id"] == "second"
    assert inference_after == inference_before
    scans = client.metrics()["scans"]
    assert scans["registry"]["hits"] >= 1
    # scan-batch mixes hits and fresh contracts in one request
    fresh = tiny_evm_corpus[1].bytecode
    batch = client.scan_batch([code, fresh], sample_ids=["again", "new"])
    assert batch["contracts"] == 2
    direct = server.detector.scan(fresh, sample_id="new")
    assert batch["reports"][1]["malicious_probability"] == \
        direct.malicious_probability


def test_verdicts_without_registry_is_503(client):
    with pytest.raises(ServerClientError) as excinfo:
        client.verdicts()
    assert excinfo.value.status == 503
    assert "no verdict registry" in str(excinfo.value)
    assert excinfo.value.code == "no_registry"


# --------------------------------------------------------------------------- #
# /v1 versioning, error envelope, cursor pagination


def _raw_get(port, path):
    import json as _json
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=10.0) as response:
            return (response.status, dict(response.headers),
                    _json.loads(response.read() or b"{}"))
    except urllib.error.HTTPError as error:
        return (error.code, dict(error.headers),
                _json.loads(error.read() or b"{}"))


def test_legacy_paths_alias_v1_with_deprecation_headers(server, client):
    versioned = _raw_get(server.port, "/v1/healthz")
    legacy = _raw_get(server.port, "/healthz")
    assert versioned[0] == legacy[0] == 200
    # same payload from both paths (uptime is the one moving part)
    stable = lambda body: {key: value for key, value in body.items()
                           if key not in ("uptime_seconds", "uptime_s")}
    assert stable(versioned[2]) == stable(legacy[2])
    assert versioned[2]["api_version"] == "v1"
    assert "Deprecation" not in versioned[1]
    assert legacy[1]["Deprecation"] == "true"
    assert legacy[1]["Link"] == '</v1/healthz>; rel="successor-version"'
    # the deprecated-traffic counter advanced for the legacy hit only
    requests = client.metrics()["requests"]
    assert requests["deprecated"] >= 1
    # the default client speaks /v1 (its own requests are not deprecated)
    before = requests["deprecated"]
    client.healthz()
    assert client.metrics()["requests"]["deprecated"] == before


def test_error_envelope_shape_and_typed_client_errors(server, client):
    status, _, body = _raw_get(server.port, "/v1/nope")
    assert status == 404
    assert set(body["error"]) == {"code", "message", "retry_after"}
    assert body["error"]["code"] == "not_found"
    assert body["error"]["retry_after"] is None
    with pytest.raises(ServerClientError) as excinfo:
        client._request("GET", "/nope")
    assert excinfo.value.status == 404
    assert excinfo.value.code == "not_found"
    # client-side connection failures are typed too
    from repro.resilience import RetryPolicy

    dead = ServerClient(port=1, timeout=0.2,
                        retry=RetryPolicy(max_attempts=1))
    with pytest.raises(ServerClientError) as dead_error:
        dead.healthz()
    assert dead_error.value.code == "unreachable"


def test_verdicts_cursor_pagination_via_client(registry_server,
                                               tiny_evm_corpus):
    server, registry = registry_server
    client = ServerClient(port=server.port)
    client.wait_until_ready(timeout=10.0)
    codes = [sample.bytecode for sample in tiny_evm_corpus[:6]]
    client.scan_batch(codes, sample_ids=[f"p-{i}" for i in range(6)])
    total = client.verdicts(page_size=1000)
    assert total["next_cursor"] is None

    # page-by-page walk covers the listing exactly, in order
    walked, cursor = [], None
    while True:
        page = client.verdicts(cursor=cursor, page_size=2)
        assert len(page["verdicts"]) <= 2
        walked.extend(page["verdicts"])
        cursor = page["next_cursor"]
        if cursor is None:
            break
    assert walked == total["verdicts"]

    # and the convenience walker agrees
    assert list(client.verdicts_all(page_size=2)) == total["verdicts"]

    # a foreign cursor is a typed 400, not a 500
    with pytest.raises(ServerClientError) as excinfo:
        client.verdicts(cursor="garbage-cursor")
    assert excinfo.value.status == 400
    assert excinfo.value.code == "invalid_cursor"
    # page_size bounds are validated
    with pytest.raises(ServerClientError) as bounds:
        client.verdicts(page_size=0)
    assert bounds.value.status == 400


# --------------------------------------------------------------------------- #
# drain + recovery under injected faults


def test_shutdown_drains_requests_slowed_by_injected_faults(
        trained_detector, tiny_evm_corpus):
    from repro.resilience import FaultPlan, FaultSpec, fault_plan

    server = ScanServer(trained_detector, port=0, workers=8).start()
    try:
        client = ServerClient(port=server.port)
        client.wait_until_ready()
        codes = [sample.bytecode for sample in tiny_evm_corpus[:6]]
        # every handler sleeps mid-request, so shutdown starts while all
        # six requests are still unanswered inside their handler threads
        with fault_plan(FaultPlan(specs=(
                FaultSpec(site="server.handler", kind="delay",
                          delay_s=0.3),))):
            with concurrent.futures.ThreadPoolExecutor(max_workers=6) as pool:
                futures = [pool.submit(client.scan, code) for code in codes]
                deadline = time.monotonic() + 10.0
                while server.metrics.requests.get("scan", 0) < len(codes):
                    assert time.monotonic() < deadline, \
                        "requests never accepted"
                    time.sleep(0.01)
                server.shutdown()         # must drain, not drop
                served = [future.result(timeout=10.0) for future in futures]
    finally:
        server.shutdown()
    direct = [trained_detector.scan(code).to_dict() for code in codes]
    assert served == direct


def test_scan_batch_survives_midbatch_worker_crash(trained_detector,
                                                   tiny_evm_corpus):
    from repro.resilience import FaultPlan, FaultSpec, fault_plan

    codes = [sample.bytecode for sample in tiny_evm_corpus[:10]]
    ids = [f"c{index}" for index in range(len(codes))]
    direct = [trained_detector.scan(code, sample_id=sample_id).to_dict()
              for code, sample_id in zip(codes, ids)]
    # the coalescer dispatches the whole batch as one infer task, so the
    # crash must fire on the first shard.worker.* dispatch
    plan = FaultPlan(specs=(
        FaultSpec(site="shard.worker.*", kind="crash", max_fires=1),))
    with fault_plan(plan), warnings.catch_warnings():
        warnings.simplefilter("ignore")   # the heal loop's respawn warning
        server = ScanServer(trained_detector, port=0, workers=4,
                            shards=2).start()
        try:
            client = ServerClient(port=server.port)
            client.wait_until_ready()
            batch = client.scan_batch(codes, sample_ids=ids)
            assert batch["reports"] == direct
            # the crash really happened and was healed, not skipped
            assert server.sharded.restarts == 1
        finally:
            server.shutdown()


# --------------------------------------------------------------------------- #
# observability: latency windows, Prometheus exposition, /v1 client hygiene


def _raw_get_text(port, path):
    import urllib.request

    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10.0) as response:
        return (response.status, dict(response.headers),
                response.read().decode("utf-8"))


def test_server_metrics_latency_window_edges():
    from repro.service.cache import CacheStats
    from repro.service.server import _LATENCY_WINDOW

    metrics = ServerMetrics()
    # empty window: no latency section at all, not a zero-filled one
    assert metrics.snapshot(CacheStats())["latency"] == {}
    # single sample: every percentile is that sample
    metrics.record_latency("scan", 0.020)
    window = metrics.snapshot(CacheStats())["latency"]["scan"]
    assert window["count"] == 1
    assert window["p50_ms"] == window["p90_ms"] == window["p99_ms"] \
        == pytest.approx(20.0)
    # rollover: the deque caps the window and evicts the oldest samples
    for index in range(_LATENCY_WINDOW + 1):
        metrics.record_latency("scan", float(index))
    window = metrics.snapshot(CacheStats())["latency"]["scan"]
    assert window["count"] == _LATENCY_WINDOW
    # sample 0.0s (and the single 0.020s) fell out; the window now holds
    # 1.0 .. 4096.0 seconds, whose nearest-rank p50 is sample 2049
    assert window["p50_ms"] == pytest.approx(2049.0 * 1e3)


def test_latency_endpoint_labels_stable_across_v1_and_legacy(server, client):
    _raw_get(server.port, "/healthz")
    _raw_get(server.port, "/v1/healthz")
    metrics = client.metrics()
    # one canonical label per endpoint: the legacy alias records under the
    # same key as /v1, so dashboards never see a split family
    assert metrics["requests"]["healthz"] >= 2
    assert not any("v1" in key for key in metrics["requests"])
    assert not any("v1" in key for key in metrics["latency"])
    assert not any(key.startswith("/") for key in metrics["latency"])


def test_client_traffic_is_never_deprecated(registry_server, tiny_evm_corpus):
    """Regression: every ServerClient method must speak /v1 -- full client
    traffic advances the deprecated-request counter by exactly zero."""
    import contextlib

    from repro.registry import content_sha256

    server, _ = registry_server
    probe = ServerClient(port=server.port)
    probe.wait_until_ready(timeout=10.0)
    probe.healthz()
    code = tiny_evm_corpus[0].bytecode
    probe.scan(code, sample_id="dep-audit")
    probe.scan_batch([code, tiny_evm_corpus[1].bytecode],
                     sample_ids=["dep-a", "dep-b"])
    probe.verdicts(limit=5)
    probe.verdict(content_sha256(code))
    list(probe.verdicts_all(page_size=2))
    with contextlib.suppress(ServerClientError):
        probe.ingest(code)        # 503 without an ingest tier; still /v1
    assert probe.metrics()["requests"]["deprecated"] == 0
    assert server.metrics.deprecated_requests == 0


def test_metrics_prometheus_exposition(server, client, tiny_evm_corpus):
    from repro.obs import validate_exposition

    client.scan(tiny_evm_corpus[0].bytecode, sample_id="prom")
    status, headers, text = _raw_get_text(
        server.port, "/v1/metrics?format=prometheus")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    assert "version=0.0.4" in headers["Content-Type"]
    assert "Deprecation" not in headers
    errors = validate_exposition(text)
    assert errors == [], errors
    assert 'scamdetect_requests_total{endpoint="scan"}' in text
    assert "scamdetect_tracing_armed 0" in text
    assert "scamdetect_fault_injection_armed 0" in text
    # explicit json and the default agree
    assert _raw_get(server.port, "/v1/metrics?format=json")[0] == 200
    # unknown formats are a typed 400, not a silent json fallback
    status, _, body = _raw_get(server.port, "/v1/metrics?format=xml")
    assert status == 400
    assert body["error"]["code"] == "bad_request"
    # the legacy alias still answers, flagged deprecated
    status, headers, text = _raw_get_text(
        server.port, "/metrics?format=prometheus")
    assert status == 200
    assert headers["Deprecation"] == "true"
    assert validate_exposition(text) == []


def test_healthz_reports_observability_state(server, client):
    from repro import __version__
    from repro.obs import tracing

    health = client.healthz()
    assert health["version"] == __version__
    assert health["uptime_s"] >= 0.0
    assert health["uptime_s"] == pytest.approx(health["uptime_seconds"])
    assert health["tracing"] == "disarmed"
    assert health["fault_injection"] == "disarmed"
    # arming a tracer in-process flips the reported state (fleet probes
    # treat a long-lived armed node as degraded tooling)
    with tracing():
        assert client.healthz()["tracing"] == "armed"
    assert client.healthz()["tracing"] == "disarmed"
    status, _, text = _raw_get_text(
        server.port, "/v1/metrics?format=prometheus")
    assert status == 200
    assert "scamdetect_tracing_armed 0" in text
