"""Integration tests exercising the whole pipeline across module boundaries."""

import numpy as np

from repro import ScamDetectConfig, ScamDetector
from repro.datasets.corpus import Corpus
from repro.datasets.dedup import deduplicate
from repro.datasets.generator import CorpusGenerator, GeneratorConfig
from repro.datasets.splits import stratified_split
from repro.features.opcode_histogram import OpcodeHistogramExtractor
from repro.ml.random_forest import RandomForestClassifier
from repro.obfuscation.pipeline import EVMObfuscator
from repro.phishinghook.framework import PhishingHookFramework


def test_generate_split_train_evaluate_scan_roundtrip():
    """The full README quickstart path: generate -> split -> train -> scan."""
    corpus = CorpusGenerator(GeneratorConfig(num_samples=70, label_noise=0.0,
                                             seed=41)).generate()
    train, test = stratified_split(corpus, test_fraction=0.3, seed=0)
    detector = ScamDetector(ScamDetectConfig(epochs=25, hidden_features=32))
    detector.train(train)
    metrics = detector.evaluate(test)
    assert metrics["accuracy"] >= 0.75

    summary = detector.scan_corpus(test)
    predicted_malicious = {r.sample_id for r in summary.malicious_reports()}
    actually_malicious = {s.sample_id for s in test if s.label == 1}
    overlap = len(predicted_malicious & actually_malicious)
    assert overlap >= len(actually_malicious) * 0.6


def test_baseline_and_gnn_agree_on_clean_data():
    """On clean data the opcode baseline and the GNN should both be strong."""
    corpus = CorpusGenerator(GeneratorConfig(num_samples=60, label_noise=0.0,
                                             seed=43)).generate()
    train, test = stratified_split(corpus, test_fraction=0.3, seed=1)
    labels_train = np.asarray(train.labels())
    labels_test = np.asarray(test.labels())

    extractor = OpcodeHistogramExtractor()
    features_train = extractor.fit_transform(train)
    features_test = extractor.transform(test)
    baseline = RandomForestClassifier(n_estimators=20, random_state=0)
    baseline.fit(features_train, labels_train)
    baseline_accuracy = float(np.mean(baseline.predict(features_test) == labels_test))

    detector = ScamDetector(ScamDetectConfig(epochs=12, hidden_features=16))
    detector.train(train)
    gnn_accuracy = detector.evaluate(test)["accuracy"]

    assert baseline_accuracy >= 0.85
    assert gnn_accuracy >= 0.85


def test_obfuscation_does_not_change_ground_truth_detectability():
    """Obfuscated malicious contracts keep their semantic markers end to end."""
    corpus = CorpusGenerator(GeneratorConfig(num_samples=20, label_noise=0.0,
                                             seed=47)).generate()
    obfuscator = EVMObfuscator(intensity=0.7, seed=5)
    obfuscated = corpus.map_bytecode(lambda s: obfuscator.obfuscate(s.bytecode),
                                     intensity=0.7)
    assert obfuscated.labels() == corpus.labels()
    from repro.core.frontends import get_frontend
    frontend = get_frontend("evm")
    for original, transformed in zip(corpus, obfuscated):
        original_cfg = frontend.build_cfg(original.bytecode)
        transformed_cfg = frontend.build_cfg(transformed.bytecode)
        transformed_cfg.validate()
        assert transformed_cfg.num_blocks >= original_cfg.num_blocks


def test_dedup_then_train_pipeline():
    corpus = CorpusGenerator(GeneratorConfig(num_samples=40, seed=49,
                                             proxy_duplicate_fraction=0.4,
                                             label_noise=0.0)).generate()
    deduplicated, stats = deduplicate(corpus)
    assert stats["exact"] + stats["proxy"] > 0
    framework = PhishingHookFramework(folds=3, seed=0)
    entry = next(e for e in framework.entries if e.name == "histogram+random-forest")
    evaluation = framework.evaluate_entry(entry, deduplicated)
    assert evaluation.accuracy >= 0.8


def test_cross_platform_detector_single_model():
    """One detector instance trained on a mixed EVM+WASM corpus serves both."""
    evm = CorpusGenerator(GeneratorConfig(num_samples=36, label_noise=0.0,
                                          seed=51)).generate()
    wasm = CorpusGenerator(GeneratorConfig(platform="wasm", num_samples=36,
                                           label_noise=0.0, seed=52)).generate()
    mixed = Corpus(list(evm) + list(wasm), name="mixed")
    detector = ScamDetector(ScamDetectConfig(epochs=25, hidden_features=32))
    detector.train(mixed)
    evm_accuracy = detector.evaluate(evm)["accuracy"]
    wasm_accuracy = detector.evaluate(wasm)["accuracy"]
    assert evm_accuracy >= 0.7
    assert wasm_accuracy >= 0.7
