"""Tests for the EVM and WASM obfuscation engines."""

import random

import pytest

from repro.evm.assembler import assemble
from repro.evm.cfg_builder import build_cfg
from repro.evm.contracts import TEMPLATES_BY_NAME
from repro.evm.disassembler import to_mnemonic_sequence
from repro.obfuscation import (
    ConstantBlinding,
    ControlFlowFlattening,
    DeadCodeInjection,
    EVMObfuscator,
    InstructionSubstitution,
    JunkSelectorInsertion,
    ObfuscationReport,
    OpaquePredicateInsertion,
    WasmObfuscator,
    obfuscate_sample,
)
from repro.obfuscation.evm_lift import lift_bytecode_to_items
from repro.wasm.cfg_builder import build_cfg as build_wasm_cfg
from repro.wasm.contracts import WASM_TEMPLATES_BY_NAME
from repro.wasm.parser import parse_module


@pytest.fixture(scope="module")
def evm_code():
    return TEMPLATES_BY_NAME["erc20_token"].generate(random.Random(7))


@pytest.fixture(scope="module")
def wasm_code():
    return WASM_TEMPLATES_BY_NAME["wasm_token"].generate(random.Random(7))


# -------------------------------------------------------------------------- #
# lifting


def test_lift_reassemble_is_semantically_stable(evm_code):
    """Lifting and reassembling without passes preserves the mnemonic stream."""
    items = lift_bytecode_to_items(evm_code)
    reassembled = assemble(items)
    original = [name for name in to_mnemonic_sequence(evm_code)]
    roundtripped = to_mnemonic_sequence(reassembled)
    # PUSH widths of jump targets may change (PUSH2 for labels); normalize
    normalize = lambda names: ["PUSH" if name.startswith("PUSH") else name
                               for name in names]
    assert normalize(original) == normalize(roundtripped)


def test_lift_preserves_jump_structure(evm_code):
    cfg_before = build_cfg(evm_code)
    cfg_after = build_cfg(assemble(lift_bytecode_to_items(evm_code)))
    assert cfg_before.num_blocks == cfg_after.num_blocks
    assert cfg_before.num_edges == cfg_after.num_edges


# -------------------------------------------------------------------------- #
# individual passes


def _apply(pass_, evm_code, intensity=0.8, seed=3):
    items = lift_bytecode_to_items(evm_code)
    transformed = pass_.apply(items, random.Random(seed), intensity)
    return items, transformed


def test_dead_code_injection_grows_program(evm_code):
    items, transformed = _apply(DeadCodeInjection(), evm_code)
    assert len(transformed) > len(items)
    assemble(transformed)  # must remain assemblable


def test_instruction_substitution_preserves_non_targets(evm_code):
    items, transformed = _apply(InstructionSubstitution(), evm_code, intensity=1.0)
    assert len(transformed) >= len(items)
    originals = [item[0] for item in items if item[0] == "SSTORE"]
    substituted = [item[0] for item in transformed if item[0] == "SSTORE"]
    assert originals == substituted  # storage writes never touched


def test_opaque_predicates_add_branches(evm_code):
    _, transformed = _apply(OpaquePredicateInsertion(rate=0.3), evm_code, intensity=1.0)
    cfg = build_cfg(assemble(transformed))
    cfg.validate()
    assert any(item[0] == "JUMPI" for item in transformed)


def test_flattening_adds_jumps_and_blocks(evm_code):
    items, transformed = _apply(ControlFlowFlattening(rate=0.3), evm_code, intensity=1.0)
    before = build_cfg(assemble(items)).num_blocks
    after = build_cfg(assemble(transformed)).num_blocks
    assert after > before


def test_junk_selectors_prepend_comparisons(evm_code):
    _, transformed = _apply(JunkSelectorInsertion(max_selectors=4), evm_code,
                            intensity=1.0)
    head = [item[0] for item in transformed[:8]]
    assert "PUSH4" in head and "EQ" in head


def test_constant_blinding_replaces_pushes(evm_code):
    items, transformed = _apply(ConstantBlinding(), evm_code, intensity=1.0)
    assert sum(1 for item in transformed if item[0] == "XOR") > \
        sum(1 for item in items if item[0] == "XOR")


def test_zero_intensity_is_identity(evm_code):
    for pass_ in (DeadCodeInjection(), InstructionSubstitution(),
                  OpaquePredicateInsertion(), ControlFlowFlattening(),
                  ConstantBlinding()):
        items, transformed = _apply(pass_, evm_code, intensity=0.0)
        assert transformed == items, type(pass_).__name__


# -------------------------------------------------------------------------- #
# pipelines


def test_evm_obfuscator_is_deterministic_and_reports(evm_code):
    report = ObfuscationReport()
    first = EVMObfuscator(intensity=0.6, seed=11).obfuscate(evm_code, report)
    second = EVMObfuscator(intensity=0.6, seed=11).obfuscate(evm_code)
    assert first == second
    assert report.growth_factor > 1.0
    assert len(report.passes_applied) == 6
    assert build_cfg(first).num_blocks > build_cfg(evm_code).num_blocks


def test_evm_obfuscator_intensity_scales_growth(evm_code):
    sizes = [len(EVMObfuscator(intensity=i, seed=5).obfuscate(evm_code))
             for i in (0.0, 0.4, 0.9)]
    assert sizes[0] == len(evm_code)
    assert sizes[0] < sizes[1] < sizes[2]


def test_wasm_obfuscator_preserves_decodability(wasm_code):
    report = ObfuscationReport()
    obfuscated = WasmObfuscator(intensity=0.8, seed=2).obfuscate(wasm_code, report)
    module = parse_module(obfuscated)
    assert module.num_instructions > parse_module(wasm_code).num_instructions
    build_wasm_cfg(obfuscated).validate()
    assert report.growth_factor > 1.0


def test_wasm_obfuscator_zero_intensity_identity(wasm_code):
    assert WasmObfuscator(intensity=0.0).obfuscate(wasm_code) == wasm_code


def test_obfuscate_sample_dispatches_platform(evm_code, wasm_code):
    assert obfuscate_sample(evm_code, "evm", 0.5, seed=1) != evm_code
    assert obfuscate_sample(wasm_code, "wasm", 0.5, seed=1) != wasm_code
    with pytest.raises(ValueError):
        obfuscate_sample(evm_code, "jvm", 0.5)


def test_obfuscation_preserves_semantic_markers(evm_code):
    """The security-relevant opcodes are never removed by obfuscation."""
    drainer = TEMPLATES_BY_NAME["approval_drainer"].generate(random.Random(9))
    obfuscated = EVMObfuscator(intensity=1.0, seed=4).obfuscate(drainer)
    before = to_mnemonic_sequence(drainer)
    after = to_mnemonic_sequence(obfuscated)
    for marker in ("ORIGIN", "SSTORE", "SLOAD"):
        assert after.count(marker) >= before.count(marker), marker
    assert after.count("CALL") >= before.count("CALL")
