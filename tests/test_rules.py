"""Tests for the TOML triage rules engine."""

from __future__ import annotations

import io
import json
import urllib.error

import pytest

from repro.core.report import VerdictReport
from repro.registry import RuleParseError, RulesEngine, parse_rules

VALID = """
[[rules]]
name = "hot-scams"

[rules.match]
verdict = "malicious"
min_score = 0.9
platform = "evm"
indicators = ["DELEGATECALL"]
path_glob = "inbox/*"

[rules.actions]
tag = ["hot"]
alert = true
webhook = "http://hooks.test/scam"
exit_nonzero = true

[[rules]]
name = "sweep-benign"

[rules.match]
verdict = "benign"
max_score = 0.1

[rules.actions]
tag = ["clean"]
"""


def report(verdict=1, probability=0.95, platform="evm",
           sample_id="inbox/a.bin", notes=("note: DELEGATECALL at 0x10",)):
    return VerdictReport(sample_id=sample_id, platform=platform,
                         label=verdict,
                         malicious_probability=probability,
                         model="m", notes=list(notes))


# --------------------------------------------------------------------------- #
# parsing + validation


def test_parse_valid_rules():
    rules = parse_rules(VALID)
    assert [rule.name for rule in rules] == ["hot-scams", "sweep-benign"]
    hot = rules[0]
    assert hot.verdict == "malicious" and hot.min_score == 0.9
    assert hot.indicators == ("DELEGATECALL",)
    assert hot.tag == ("hot",) and hot.alert and hot.exit_nonzero
    assert hot.webhook == "http://hooks.test/scam"
    assert "hot-scams" in hot.describe()


@pytest.mark.parametrize("text, match", [
    ("not [valid toml", "invalid TOML"),
    ("", "no \\[\\[rules\\]\\] tables"),
    ("[[rules]]\n[rules.actions]\ntag = ['x']", "non-empty string 'name'"),
    ("[[rules]]\nname = 'a'\nbogus = 1\n[rules.actions]\ntag = ['x']",
     "unknown keys"),
    ("[[rules]]\nname = 'a'\n[rules.match]\ncolour = 'red'\n"
     "[rules.actions]\ntag = ['x']", "unknown match keys"),
    ("[[rules]]\nname = 'a'\n[rules.actions]\npage = true", "unknown action"),
    ("[[rules]]\nname = 'a'\n[rules.match]\nverdict = 'sus'\n"
     "[rules.actions]\ntag = ['x']", "verdict must be"),
    ("[[rules]]\nname = 'a'\n[rules.match]\nmin_score = 1.5\n"
     "[rules.actions]\ntag = ['x']", "probability in"),
    ("[[rules]]\nname = 'a'\n[rules.match]\nmin_score = 0.9\n"
     "max_score = 0.1\n[rules.actions]\ntag = ['x']",
     "min_score must not exceed"),
    ("[[rules]]\nname = 'a'\n[rules.match]\nplatform = 'solana'\n"
     "[rules.actions]\ntag = ['x']", "platform must be"),
    ("[[rules]]\nname = 'a'\n[rules.match]\nverdict = 'benign'",
     "no actions"),
    ("[[rules]]\nname = 'a'\n[rules.actions]\nwebhook = 'ftp://x'",
     "http\\(s\\) URL"),
    ("[[rules]]\nname = 'a'\n[rules.actions]\ntag = ['x']\n"
     "[[rules]]\nname = 'a'\n[rules.actions]\ntag = ['y']",
     "duplicate rule name"),
    ("top = 1\n[[rules]]\nname = 'a'\n[rules.actions]\ntag = ['x']",
     "unknown top-level keys"),
])
def test_parse_rejects_invalid_documents(text, match):
    with pytest.raises(RuleParseError, match=match):
        parse_rules(text)


# --------------------------------------------------------------------------- #
# matching semantics


def test_match_requires_every_condition():
    rule = parse_rules(VALID)[0]
    assert rule.matches(report(), "inbox/a.bin")
    assert not rule.matches(report(verdict=0), "inbox/a.bin")
    assert not rule.matches(report(probability=0.5), "inbox/a.bin")
    assert not rule.matches(report(platform="wasm"), "inbox/a.bin")
    assert not rule.matches(report(notes=()), "inbox/a.bin")
    assert not rule.matches(report(), "archive/a.bin")


def test_match_falls_back_to_sample_id_without_source_path():
    rule = parse_rules(VALID)[0]
    assert rule.matches(report(sample_id="inbox/z.bin"), None)
    assert not rule.matches(report(sample_id="outbox/z.bin"), None)


def test_score_bounds_are_inclusive():
    rules = parse_rules(
        "[[rules]]\nname = 'band'\n[rules.match]\n"
        "min_score = 0.25\nmax_score = 0.75\n"
        "[rules.actions]\ntag = ['band']")
    rule = rules[0]
    assert rule.matches(report(probability=0.25), None)
    assert rule.matches(report(probability=0.75), None)
    assert not rule.matches(report(probability=0.76), None)


# --------------------------------------------------------------------------- #
# actions


def test_engine_tags_alerts_and_exit_flag(tmp_path):
    sink = tmp_path / "alerts.jsonl"
    engine = RulesEngine(parse_rules(VALID), alert_path=sink,
                         opener=_opener_recording([]))
    outcome = engine.evaluate(report(), "a" * 64,
                              source_path="inbox/a.bin", fired_at=123.0)
    assert outcome.matched == ["hot-scams"]
    assert outcome.tags == ["hot"]
    assert outcome.alerts == 1
    assert outcome.exit_nonzero
    lines = sink.read_text().splitlines()
    assert len(lines) == 1
    alert = json.loads(lines[0])
    assert alert["rule"] == "hot-scams"
    assert alert["sha256"] == "a" * 64
    assert alert["fired_at"] == 123.0
    # a non-matching verdict leaves the sink untouched
    outcome = engine.evaluate(report(probability=0.5), "b" * 64,
                              source_path="inbox/a.bin")
    assert outcome.matched == [] and not outcome.exit_nonzero
    assert len(sink.read_text().splitlines()) == 1


def _opener_recording(calls):
    def opener(request, timeout=None):
        calls.append((request.full_url, request.data, timeout))
        return io.BytesIO(b"ok")
    return opener


def test_engine_posts_webhook_payload(tmp_path):
    calls = []
    engine = RulesEngine(parse_rules(VALID),
                         alert_path=tmp_path / "alerts.jsonl",
                         opener=_opener_recording(calls))
    engine.evaluate(report(), "c" * 64, source_path="inbox/a.bin")
    assert len(calls) == 1
    url, body, timeout = calls[0]
    assert url == "http://hooks.test/scam"
    assert timeout is not None
    payload = json.loads(body)
    assert payload["verdict"] == "malicious"
    assert payload["sha256"] == "c" * 64


def test_webhook_failure_warns_and_continues(tmp_path):
    def broken_opener(request, timeout=None):
        raise urllib.error.URLError("connection refused")

    engine = RulesEngine(parse_rules(VALID),
                         alert_path=tmp_path / "alerts.jsonl",
                         opener=broken_opener)
    with pytest.warns(UserWarning, match="webhook POST .* failed"):
        outcome = engine.evaluate(report(), "d" * 64,
                                  source_path="inbox/a.bin")
    # the failure is counted but the rest of the rule still ran
    assert engine.webhook_failures == 1
    assert outcome.alerts == 1 and outcome.exit_nonzero


def test_alert_without_sink_warns_once():
    engine = RulesEngine(parse_rules(VALID), alert_path=None,
                         opener=_opener_recording([]))
    with pytest.warns(UserWarning, match="no alert sink"):
        engine.evaluate(report(), "e" * 64, source_path="inbox/a.bin")
    # second evaluation stays quiet (warning is once per engine)
    engine.evaluate(report(), "f" * 64, source_path="inbox/a.bin")
    assert engine.alerts_emitted == 0


def test_multiple_matching_rules_merge_tags():
    text = """
[[rules]]
name = "one"
[rules.match]
verdict = "malicious"
[rules.actions]
tag = ["b", "a"]

[[rules]]
name = "two"
[rules.match]
min_score = 0.5
[rules.actions]
tag = ["a", "c"]
"""
    engine = RulesEngine(parse_rules(text))
    outcome = engine.evaluate(report(), "a" * 64)
    assert outcome.matched == ["one", "two"]
    assert outcome.tags == ["a", "b", "c"]
