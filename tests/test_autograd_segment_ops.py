"""Tests for the batched-graph autograd primitives: segment ops + CSR matmul."""

import numpy as np
import pytest

from repro.autograd import (
    CSRMatrix,
    Tensor,
    gather_rows,
    scatter_sum,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
    sparse_matmul,
)

SEGMENT_IDS = np.array([0, 0, 1, 2, 2, 2])
NUM_SEGMENTS = 3


def _finite_difference_check(build_loss, tensor, epsilon=1e-6, atol=1e-6):
    """Compare autograd gradients of a scalar loss against central differences."""
    loss = build_loss()
    loss.backward()
    analytic = tensor.grad.copy()
    numeric = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = build_loss().item()
        flat[index] = original - epsilon
        lower = build_loss().item()
        flat[index] = original
        numeric.reshape(-1)[index] = (upper - lower) / (2 * epsilon)
    np.testing.assert_allclose(analytic, numeric, atol=atol)


# -------------------------------------------------------------------------- #
# segment reductions: forward


def test_segment_sum_mean_max_forward_match_loops():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((6, 4))
    summed = segment_sum(Tensor(x), SEGMENT_IDS, NUM_SEGMENTS).numpy()
    averaged = segment_mean(Tensor(x), SEGMENT_IDS, NUM_SEGMENTS).numpy()
    maxed = segment_max(Tensor(x), SEGMENT_IDS, NUM_SEGMENTS).numpy()
    for segment in range(NUM_SEGMENTS):
        rows = x[SEGMENT_IDS == segment]
        np.testing.assert_allclose(summed[segment], rows.sum(axis=0))
        np.testing.assert_allclose(averaged[segment], rows.mean(axis=0))
        np.testing.assert_allclose(maxed[segment], rows.max(axis=0))


def test_segment_sum_handles_empty_segments():
    x = Tensor(np.ones((2, 3)))
    result = segment_sum(x, np.array([0, 3]), 5).numpy()
    np.testing.assert_allclose(result[[0, 3]], np.ones((2, 3)))
    np.testing.assert_allclose(result[[1, 2, 4]], 0.0)
    # mean over an empty segment is defined as zero, not NaN
    averaged = segment_mean(x, np.array([0, 3]), 5).numpy()
    assert np.all(np.isfinite(averaged))


def test_segment_ops_validate_inputs():
    x = Tensor(np.ones((3, 2)))
    with pytest.raises(ValueError, match="sorted"):
        segment_sum(x, np.array([1, 0, 1]), 2)
    with pytest.raises(ValueError, match="num_segments"):
        segment_sum(x, np.array([0, 1, 5]), 2)
    with pytest.raises(ValueError, match="non-empty"):
        segment_max(x, np.array([0, 0, 2]), 3)
    with pytest.raises(ValueError, match="non-empty"):
        segment_softmax(x, np.array([0, 0, 2]), 3)


# -------------------------------------------------------------------------- #
# segment reductions: gradients vs finite differences


@pytest.mark.parametrize("operation", [segment_sum, segment_mean, segment_softmax])
def test_segment_op_gradients_match_finite_differences(operation):
    rng = np.random.default_rng(1)
    x = Tensor(rng.standard_normal((6, 3)), requires_grad=True)
    weights = rng.standard_normal((NUM_SEGMENTS if operation is not segment_softmax
                                   else 6, 3))

    def loss():
        x.zero_grad()
        return (operation(x, SEGMENT_IDS, NUM_SEGMENTS) * Tensor(weights)).sum()

    _finite_difference_check(loss, x)


def test_segment_max_gradient_matches_finite_differences():
    # distinct values keep the max unique, so central differences are valid
    x = Tensor(np.arange(18, dtype=float).reshape(6, 3) ** 1.1,
               requires_grad=True)
    weights = np.random.default_rng(2).standard_normal((NUM_SEGMENTS, 3))

    def loss():
        x.zero_grad()
        return (segment_max(x, SEGMENT_IDS, NUM_SEGMENTS) * Tensor(weights)).sum()

    _finite_difference_check(loss, x)


def test_segment_max_splits_gradient_among_ties():
    x = Tensor(np.array([[2.0], [2.0], [5.0]]), requires_grad=True)
    segment_max(x, np.array([0, 0, 1]), 2).sum().backward()
    np.testing.assert_allclose(x.grad, [[0.5], [0.5], [1.0]])


def test_segment_softmax_normalizes_per_segment():
    rng = np.random.default_rng(3)
    x = Tensor(rng.standard_normal((6, 1)))
    weights = segment_softmax(x, SEGMENT_IDS, NUM_SEGMENTS).numpy()
    for segment in range(NUM_SEGMENTS):
        assert weights[SEGMENT_IDS == segment].sum() == pytest.approx(1.0)


# -------------------------------------------------------------------------- #
# gather / scatter


def test_gather_rows_forward_and_gradient():
    rng = np.random.default_rng(4)
    x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
    indices = np.array([0, 2, 2, 3])
    gathered = gather_rows(x, indices)
    np.testing.assert_allclose(gathered.numpy(), x.data[indices])
    weights = rng.standard_normal((4, 3))

    def loss():
        x.zero_grad()
        return (gather_rows(x, indices) * Tensor(weights)).sum()

    _finite_difference_check(loss, x)


def test_scatter_sum_forward_and_gradient():
    rng = np.random.default_rng(5)
    x = Tensor(rng.standard_normal((5, 2)), requires_grad=True)
    indices = np.array([3, 0, 3, 1, 0])  # unsorted with duplicates
    scattered = scatter_sum(x, indices, 4).numpy()
    expected = np.zeros((4, 2))
    for row, target in enumerate(indices):
        expected[target] += x.data[row]
    np.testing.assert_allclose(scattered, expected)
    weights = rng.standard_normal((4, 2))

    def loss():
        x.zero_grad()
        return (scatter_sum(x, indices, 4) * Tensor(weights)).sum()

    _finite_difference_check(loss, x)

    with pytest.raises(ValueError, match="num_rows"):
        scatter_sum(x, np.array([0, 1, 2, 3, 9]), 4)


# -------------------------------------------------------------------------- #
# CSR matrices


def _random_sparse(rng, rows, cols, density=0.3):
    dense = rng.standard_normal((rows, cols))
    dense[rng.random((rows, cols)) > density] = 0.0
    return dense


def test_csr_from_dense_roundtrip_and_matmul():
    rng = np.random.default_rng(6)
    dense = _random_sparse(rng, 7, 5)
    matrix = CSRMatrix.from_dense(dense)
    np.testing.assert_allclose(matrix.to_dense(), dense)
    operand = rng.standard_normal((5, 3))
    np.testing.assert_allclose(matrix.matmul_dense(operand), dense @ operand,
                               atol=1e-12)
    # the pure-NumPy fallback agrees with the (possibly SciPy) default path
    np.testing.assert_allclose(matrix._matmul_dense_numpy(operand),
                               dense @ operand, atol=1e-12)


def test_csr_matmul_handles_empty_rows_and_empty_matrix():
    dense = np.zeros((4, 4))
    dense[1, 2] = 3.0
    matrix = CSRMatrix.from_dense(dense)
    operand = np.ones((4, 2))
    np.testing.assert_allclose(matrix.matmul_dense(operand), dense @ operand)
    np.testing.assert_allclose(matrix._matmul_dense_numpy(operand),
                               dense @ operand)
    empty = CSRMatrix.from_dense(np.zeros((3, 3)))
    np.testing.assert_allclose(empty.matmul_dense(operand[:3]), 0.0)


def test_csr_transpose_and_symmetric_shortcut():
    rng = np.random.default_rng(7)
    dense = _random_sparse(rng, 6, 4)
    matrix = CSRMatrix.from_dense(dense)
    assert not matrix.symmetric
    np.testing.assert_allclose(matrix.transpose().to_dense(), dense.T)

    symmetric_dense = dense[:4] + dense[:4].T
    symmetric = CSRMatrix.from_dense(symmetric_dense)
    assert symmetric.symmetric
    assert symmetric.transpose() is symmetric


def test_csr_block_diagonal_matches_dense_blocks():
    rng = np.random.default_rng(8)
    blocks = [_random_sparse(rng, size, size) for size in (3, 1, 5)]
    stacked = CSRMatrix.block_diagonal([CSRMatrix.from_dense(b) for b in blocks])
    assert stacked.shape == (9, 9)
    expected = np.zeros((9, 9))
    offset = 0
    for block in blocks:
        expected[offset:offset + len(block), offset:offset + len(block)] = block
        offset += len(block)
    np.testing.assert_allclose(stacked.to_dense(), expected)
    operand = rng.standard_normal((9, 2))
    np.testing.assert_allclose(stacked.matmul_dense(operand),
                               expected @ operand, atol=1e-12)


def test_sparse_matmul_gradient_matches_dense_matmul():
    rng = np.random.default_rng(9)
    dense = _random_sparse(rng, 5, 5)
    matrix = CSRMatrix.from_dense(dense)
    x_sparse = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
    x_dense = Tensor(x_sparse.data.copy(), requires_grad=True)
    weights = rng.standard_normal((5, 3))

    (sparse_matmul(matrix, x_sparse) * Tensor(weights)).sum().backward()
    ((Tensor(dense) @ x_dense) * Tensor(weights)).sum().backward()
    np.testing.assert_allclose(x_sparse.grad, x_dense.grad, atol=1e-12)

    def loss():
        x_sparse.zero_grad()
        return (sparse_matmul(matrix, x_sparse) * Tensor(weights)).sum()

    _finite_difference_check(loss, x_sparse)
