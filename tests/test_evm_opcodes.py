"""Unit tests for the EVM opcode table."""

import pytest

from repro.evm.opcodes import (
    OPCODES,
    OPCODES_BY_NAME,
    is_block_end,
    is_push,
    is_terminator,
    opcode_by_name,
    opcode_by_value,
    push_size,
)


def test_core_opcodes_present():
    for name in ("STOP", "ADD", "SHA3", "CALLER", "SSTORE", "JUMP", "JUMPI",
                 "JUMPDEST", "CALL", "DELEGATECALL", "RETURN", "REVERT",
                 "SELFDESTRUCT", "PUSH1", "PUSH32", "DUP1", "DUP16", "SWAP1",
                 "SWAP16", "LOG0", "LOG4", "PUSH0"):
        assert name in OPCODES_BY_NAME, name


def test_opcode_values_match_specification():
    assert OPCODES_BY_NAME["STOP"].value == 0x00
    assert OPCODES_BY_NAME["ADD"].value == 0x01
    assert OPCODES_BY_NAME["SHA3"].value == 0x20
    assert OPCODES_BY_NAME["CALLER"].value == 0x33
    assert OPCODES_BY_NAME["SSTORE"].value == 0x55
    assert OPCODES_BY_NAME["JUMPDEST"].value == 0x5B
    assert OPCODES_BY_NAME["PUSH1"].value == 0x60
    assert OPCODES_BY_NAME["PUSH32"].value == 0x7F
    assert OPCODES_BY_NAME["DUP1"].value == 0x80
    assert OPCODES_BY_NAME["SWAP1"].value == 0x90
    assert OPCODES_BY_NAME["SELFDESTRUCT"].value == 0xFF


def test_push_immediate_sizes():
    for width in range(1, 33):
        opcode = OPCODES_BY_NAME[f"PUSH{width}"]
        assert opcode.immediate_size == width
        assert push_size(opcode.value) == width


def test_push0_has_no_immediate():
    assert OPCODES_BY_NAME["PUSH0"].immediate_size == 0
    assert push_size(0x5F) == 0


def test_is_push_range():
    assert is_push(0x5F)
    assert is_push(0x60)
    assert is_push(0x7F)
    assert not is_push(0x5B)
    assert not is_push(0x80)


def test_push_size_rejects_non_push():
    with pytest.raises(ValueError):
        push_size(0x01)


def test_dup_swap_stack_arity():
    for depth in range(1, 17):
        dup = OPCODES_BY_NAME[f"DUP{depth}"]
        swap = OPCODES_BY_NAME[f"SWAP{depth}"]
        assert dup.pushes == dup.pops + 1
        assert swap.pops == swap.pushes == depth + 1


def test_terminators():
    for name in ("STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT", "JUMP"):
        assert is_terminator(name)
    assert not is_terminator("JUMPI")
    assert is_block_end("JUMPI")
    assert not is_block_end("ADD")


def test_lookup_helpers():
    assert opcode_by_value(0x01).name == "ADD"
    assert opcode_by_value(0xEF) is None
    assert opcode_by_name("add").value == 0x01
    with pytest.raises(KeyError):
        opcode_by_name("NOTANOPCODE")


def test_no_duplicate_values_or_names():
    assert len(OPCODES) == len({op.value for op in OPCODES.values()})
    assert len(OPCODES_BY_NAME) == len(OPCODES)


def test_categories_are_normalizable():
    from repro.ir.normalization import CATEGORY_VOCABULARY, normalize_category
    for opcode in OPCODES.values():
        assert normalize_category(opcode.category) in CATEGORY_VOCABULARY
