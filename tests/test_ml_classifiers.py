"""Tests for the from-scratch classical classifiers.

Each classifier is checked on (a) a linearly-separable blob problem it must
solve nearly perfectly, (b) probability-output sanity, and (c) guard rails
(use before fit, label encoding).
"""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    GaussianNaiveBayes,
    GradientBoostingClassifier,
    KNearestNeighbors,
    LinearSVM,
    LogisticRegression,
    MLPClassifier,
    MultinomialNaiveBayes,
    RandomForestClassifier,
)

ALL_CLASSIFIERS = [
    LogisticRegression(epochs=200),
    GaussianNaiveBayes(),
    KNearestNeighbors(k=3),
    KNearestNeighbors(k=3, metric="cosine", weighted=True),
    DecisionTreeClassifier(max_depth=6),
    RandomForestClassifier(n_estimators=15, random_state=0),
    GradientBoostingClassifier(n_estimators=25, random_state=0),
    LinearSVM(epochs=60),
    MLPClassifier(hidden_sizes=(16,), epochs=60),
]


def _blobs(seed=0, n=120, separation=4.0):
    rng = np.random.default_rng(seed)
    benign = rng.normal(0.0, 1.0, size=(n // 2, 4))
    malicious = rng.normal(separation, 1.0, size=(n // 2, 4))
    X = np.vstack([benign, malicious])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    order = rng.permutation(n)
    return X[order], y[order]


@pytest.mark.parametrize("classifier", ALL_CLASSIFIERS,
                         ids=[type(c).__name__ + str(i) for i, c in enumerate(ALL_CLASSIFIERS)])
def test_separable_problem_is_solved(classifier):
    X, y = _blobs()
    classifier.fit(X[:90], y[:90])
    assert classifier.score(X[90:], y[90:]) >= 0.85


@pytest.mark.parametrize("classifier", ALL_CLASSIFIERS,
                         ids=[type(c).__name__ + str(i) for i, c in enumerate(ALL_CLASSIFIERS)])
def test_probabilities_are_valid(classifier):
    X, y = _blobs(seed=1)
    classifier.fit(X, y)
    probabilities = classifier.predict_proba(X[:10])
    assert probabilities.shape == (10, 2)
    assert np.all(probabilities >= -1e-9)
    assert np.allclose(probabilities.sum(axis=1), 1.0, atol=1e-6)


def test_multinomial_nb_on_count_features():
    rng = np.random.default_rng(2)
    benign = rng.poisson([8, 1, 3, 1], size=(60, 4))
    malicious = rng.poisson([1, 8, 1, 3], size=(60, 4))
    X = np.vstack([benign, malicious]).astype(float)
    y = np.array([0] * 60 + [1] * 60)
    model = MultinomialNaiveBayes(alpha=0.5).fit(X, y)
    assert model.score(X, y) > 0.9


def test_label_encoding_preserves_original_labels():
    X, y = _blobs()
    y_named = np.where(y == 1, 7, 3)  # non-contiguous labels
    model = LogisticRegression(epochs=100).fit(X, y_named)
    predictions = model.predict(X)
    assert set(np.unique(predictions)) <= {3, 7}


def test_use_before_fit_raises():
    X, _ = _blobs()
    for classifier in (LogisticRegression(), GaussianNaiveBayes(), KNearestNeighbors(),
                       DecisionTreeClassifier(), RandomForestClassifier(),
                       GradientBoostingClassifier(), LinearSVM(),
                       MLPClassifier(), MultinomialNaiveBayes()):
        with pytest.raises(RuntimeError):
            classifier.predict(X[:2])


def test_input_validation():
    with pytest.raises(ValueError):
        LogisticRegression().fit(np.ones(5), np.ones(5))  # 1-D X
    with pytest.raises(ValueError):
        LogisticRegression().fit(np.ones((5, 2)), np.ones(4))  # length mismatch


def test_decision_tree_respects_max_depth():
    X, y = _blobs(n=200, separation=1.0)
    tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
    assert tree.depth() <= 3


def test_decision_tree_pure_node_is_leaf():
    X = np.array([[0.0], [1.0], [2.0]])
    y = np.array([1, 1, 1])
    tree = DecisionTreeClassifier().fit(X, y)
    assert tree.depth() == 0
    assert np.all(tree.predict(X) == 1)


def test_random_forest_improves_over_single_tree_on_noise():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(200, 10))
    y = (X[:, 0] + X[:, 1] + 0.5 * rng.normal(size=200) > 0).astype(int)
    split = 150
    tree = DecisionTreeClassifier(max_depth=None).fit(X[:split], y[:split])
    forest = RandomForestClassifier(n_estimators=30, random_state=0).fit(X[:split], y[:split])
    assert forest.score(X[split:], y[split:]) >= tree.score(X[split:], y[split:]) - 0.05


def test_gradient_boosting_rejects_multiclass():
    X = np.random.default_rng(0).normal(size=(30, 3))
    y = np.array([0, 1, 2] * 10)
    with pytest.raises(ValueError):
        GradientBoostingClassifier().fit(X, y)


def test_linear_svm_rejects_multiclass():
    X = np.random.default_rng(0).normal(size=(30, 3))
    y = np.array([0, 1, 2] * 10)
    with pytest.raises(ValueError):
        LinearSVM().fit(X, y)


def test_svm_decision_function_sign_matches_prediction():
    X, y = _blobs(seed=4)
    model = LinearSVM(epochs=80).fit(X, y)
    margins = model.decision_function(X)
    predictions = model.predict(X)
    assert np.all((margins > 0) == (predictions == 1))


def test_knn_k_larger_than_dataset_is_safe():
    X = np.array([[0.0], [1.0], [10.0]])
    y = np.array([0, 0, 1])
    model = KNearestNeighbors(k=10).fit(X, y)
    assert model.predict(np.array([[0.5]]))[0] == 0


def test_mlp_learns_xor():
    X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 30, dtype=float)
    y = np.array([0, 1, 1, 0] * 30)
    model = MLPClassifier(hidden_sizes=(16, 16), epochs=300, learning_rate=2e-2,
                          random_state=1).fit(X, y)
    assert model.score(X, y) >= 0.95


def test_deterministic_given_random_state():
    X, y = _blobs(seed=5)
    first = RandomForestClassifier(n_estimators=10, random_state=7).fit(X, y)
    second = RandomForestClassifier(n_estimators=10, random_state=7).fit(X, y)
    assert np.allclose(first.predict_proba(X), second.predict_proba(X))
