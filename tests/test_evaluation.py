"""Tests for the evaluation harness: reporting, cross-validation, experiments."""

import pytest

from repro.evaluation import (
    E1Config,
    E2Config,
    E3Config,
    E5Config,
    E6Config,
    E7Config,
    ExperimentResult,
    cross_validate,
    format_series,
    format_table,
    run_e1_phishinghook_zoo,
    run_e2_obfuscation_degradation,
    run_e3_gnn_vs_baseline,
    run_e5_cross_platform,
    run_e6_dedup_ablation,
    run_e7_gnn_ablation,
)
from repro.evaluation.experiments import obfuscate_corpus
from repro.features.opcode_histogram import OpcodeHistogramExtractor
from repro.ml.logistic_regression import LogisticRegression


# -------------------------------------------------------------------------- #
# reporting


def test_format_table_alignment_and_values():
    rows = [{"model": "gcn", "accuracy": 0.9123}, {"model": "histogram-rf", "accuracy": 0.5}]
    text = format_table(rows)
    assert "model" in text and "accuracy" in text
    assert "0.912" in text and "histogram-rf" in text
    assert format_table([]) == "(no rows)"


def test_format_series_renders_bars():
    text = format_series({"gnn": [0.9, 0.8], "baseline": [0.9, 0.5]},
                         x_values=[0.0, 1.0], title="robustness")
    assert "robustness" in text
    assert "[gnn]" in text and "[baseline]" in text
    assert text.count("|") >= 8


def test_experiment_result_format():
    result = ExperimentResult(experiment_id="EX", title="demo",
                              rows=[{"a": 1.0}], summary={"mean": 1.0},
                              notes=["hello"])
    text = result.format()
    assert "EX" in text and "demo" in text and "hello" in text
    assert result.column_names() == ["a"]


# -------------------------------------------------------------------------- #
# cross-validation helper


def test_cross_validate_returns_mean_metrics(small_evm_corpus):
    metrics = cross_validate(small_evm_corpus,
                             make_extractor=lambda: OpcodeHistogramExtractor(),
                             make_classifier=lambda: LogisticRegression(epochs=120),
                             folds=3, scale_features=True)
    assert set(metrics) == {"accuracy", "precision", "recall", "f1", "roc_auc"}
    assert metrics["accuracy"] >= 0.8


# -------------------------------------------------------------------------- #
# experiment drivers (tiny configurations to keep the suite fast)


def test_obfuscate_corpus_helper(small_evm_corpus):
    subset = small_evm_corpus.subset(range(6))
    obfuscated = obfuscate_corpus(subset, 0.5, seed=1)
    assert len(obfuscated) == 6
    assert all(o.obfuscated for o in obfuscated)
    assert obfuscate_corpus(subset, 0.0, seed=1) is subset


def test_e1_small_run_matches_paper_band():
    result = run_e1_phishinghook_zoo(E1Config(
        num_samples=90, folds=3,
        entry_names=["histogram+random-forest", "histogram+knn", "2gram+random-forest"]))
    assert result.experiment_id == "E1"
    assert len(result.rows) == 3
    assert 0.75 <= result.summary["average_accuracy"] <= 1.0
    assert result.summary["best_accuracy"] >= result.summary["average_accuracy"] - 1e-9


def test_e2_degradation_is_monotone_in_the_large():
    result = run_e2_obfuscation_degradation(E2Config(
        num_samples=100, intensities=(0.0, 0.75)))
    clean = result.rows[0]["histogram_rf_accuracy"]
    obfuscated = result.rows[-1]["histogram_rf_accuracy"]
    assert clean >= 0.9
    assert obfuscated <= clean - 0.2
    assert result.summary["histogram_drop"] >= 0.2


def test_e3_small_run_produces_all_rows():
    result = run_e3_gnn_vs_baseline(E3Config(
        num_samples=60, epochs=4, architectures=("gcn",), test_intensity=0.5))
    models = [row["model"] for row in result.rows]
    assert "histogram+random-forest" in models
    assert "scamdetect-gcn" in models
    for row in result.rows:
        assert 0.0 <= row["obfuscated_accuracy"] <= 1.0
        assert row["accuracy_drop"] == pytest.approx(
            row["clean_accuracy"] - row["obfuscated_accuracy"])


def test_e5_cross_platform_rows():
    result = run_e5_cross_platform(E5Config(num_samples_per_platform=50, epochs=4))
    platforms = {row["platform"] for row in result.rows}
    assert platforms == {"evm", "wasm"}
    assert "cross_platform_gap" in result.summary
    assert 0.0 <= result.summary["cross_platform_gap"] <= 1.0


def test_e6_dedup_reports_inflation_sign():
    result = run_e6_dedup_ablation(E6Config(num_samples=100,
                                            proxy_duplicate_fraction=0.5))
    raw_row, dedup_row = result.rows
    assert raw_row["corpus_size"] > dedup_row["corpus_size"]
    assert result.summary["duplicates_removed"] > 0


def test_e7_ablation_covers_variants():
    result = run_e7_gnn_ablation(E7Config(num_samples=50, epochs=3,
                                          depths=(1, 2), readouts=("mean",)))
    variants = [row["variant"] for row in result.rows]
    assert "depth=1" in variants and "depth=2" in variants
    assert any(v.startswith("features=") for v in variants)
    assert result.summary["num_variants"] == len(result.rows)
