"""Unit tests for the synthetic EVM contract templates."""

import random

import pytest

from repro.evm.contracts import (
    ALL_TEMPLATES,
    BENIGN_TEMPLATES,
    MALICIOUS_TEMPLATES,
    TEMPLATES_BY_NAME,
    is_minimal_proxy,
    make_minimal_proxy,
    proxy_implementation_address,
)
from repro.evm.disassembler import to_mnemonic_sequence


def test_registries_are_consistent():
    assert len(BENIGN_TEMPLATES) == 5
    assert len(MALICIOUS_TEMPLATES) == 5
    assert len(ALL_TEMPLATES) == 10
    assert all(t.label == 0 for t in BENIGN_TEMPLATES)
    assert all(t.label == 1 for t in MALICIOUS_TEMPLATES)
    assert set(TEMPLATES_BY_NAME) == {t.name for t in ALL_TEMPLATES}


def test_generation_is_deterministic_given_seed():
    for template in ALL_TEMPLATES:
        first = template.generate(random.Random(42))
        second = template.generate(random.Random(42))
        assert first == second, template.name


def test_generation_varies_across_seeds():
    template = TEMPLATES_BY_NAME["erc20_token"]
    outputs = {template.generate(random.Random(seed)) for seed in range(8)}
    assert len(outputs) > 1


def test_all_templates_emit_dispatcher_pattern(rng):
    for template in ALL_TEMPLATES:
        mnemonics = to_mnemonic_sequence(template.generate(rng))
        assert "CALLDATASIZE" in mnemonics, template.name
        assert "SHR" in mnemonics, template.name
        assert "JUMPDEST" in mnemonics, template.name
        assert mnemonics.count("EQ") >= 2, template.name


def test_malicious_families_carry_their_signature_opcodes(rng):
    drainer = to_mnemonic_sequence(TEMPLATES_BY_NAME["approval_drainer"].generate(rng))
    assert "ORIGIN" in drainer
    assert drainer.count("CALL") >= 2

    honeypot = to_mnemonic_sequence(TEMPLATES_BY_NAME["honeypot"].generate(rng))
    assert "SELFDESTRUCT" in honeypot
    assert "SELFBALANCE" in honeypot

    backdoor = to_mnemonic_sequence(TEMPLATES_BY_NAME["backdoor_proxy"].generate(rng))
    assert "DELEGATECALL" in backdoor

    rugpull = to_mnemonic_sequence(TEMPLATES_BY_NAME["rugpull_token"].generate(rng))
    assert "SELFDESTRUCT" in rugpull


def test_benign_families_do_not_selfdestruct(rng):
    for template in BENIGN_TEMPLATES:
        mnemonics = to_mnemonic_sequence(template.generate(rng))
        assert "SELFDESTRUCT" not in mnemonics, template.name
        assert "DELEGATECALL" not in mnemonics, template.name


def test_minimal_proxy_roundtrip():
    address = 0x1234567890ABCDEF1234567890ABCDEF12345678
    proxy = make_minimal_proxy(address)
    assert len(proxy) == 45
    assert is_minimal_proxy(proxy)
    assert proxy_implementation_address(proxy) == address


def test_minimal_proxy_rejects_bad_inputs():
    with pytest.raises(ValueError):
        make_minimal_proxy(1 << 160)
    with pytest.raises(ValueError):
        proxy_implementation_address(b"\x00" * 45)
    assert not is_minimal_proxy(b"\x60\x80")


def test_generated_code_sizes_are_contract_like(rng):
    for template in ALL_TEMPLATES:
        size = len(template.generate(rng))
        assert 100 < size < 2000, template.name
