"""Tests of the event-driven ingest tier: watcher, queue, drain, HTTP.

Locks the PR's acceptance invariants: the event path records verdicts
byte-identical to the polling daemon over the same corpus; a full queue
backpressures (503 + Retry-After over HTTP, a stalled pump on the watch
path) instead of buffering; an identical-contract flood coalesces to one
scan; and stopping the service drains every admitted item -- SIGTERM
never strands work the queue accepted.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.config import ScamDetectConfig
from repro.core.detector import ScamDetector
from repro.ingest import (
    EVENT_DELETE,
    EVENT_RMDIR,
    EVENT_UPSERT,
    EventIngestService,
    IngestItem,
    IngestQueue,
    IngestQueueFull,
    InotifyWatcher,
    PollWatcher,
    PRIORITY_CHANGED,
    PRIORITY_NEW,
    PRIORITY_RESEEN,
    open_watcher,
)
from repro.registry import RulesEngine, ScanRegistry, WatchDaemon, \
    content_sha256, parse_rules
from repro.resilience import FaultPlan, FaultSpec, fault_plan

FAST = ScamDetectConfig(epochs=3, num_layers=1, hidden_features=8)

needs_inotify = pytest.mark.skipif(
    not InotifyWatcher.available(), reason="inotify unavailable")


@pytest.fixture(scope="module")
def trained_detector(tiny_evm_corpus):
    detector = ScamDetector(FAST, explain=False)
    detector.train(tiny_evm_corpus)
    return detector


@pytest.fixture()
def feed(tmp_path, tiny_evm_corpus):
    directory = tmp_path / "feed"
    directory.mkdir()
    for sample in tiny_evm_corpus:
        (directory / f"{sample.sample_id}.bin").write_bytes(sample.bytecode)
    return directory


@pytest.fixture()
def registry(tmp_path, trained_detector):
    with ScanRegistry.for_config(tmp_path / "verdicts.db",
                                 trained_detector.config) as reg:
        yield reg


def item(sha: str, priority: int = PRIORITY_NEW, **kwargs) -> IngestItem:
    defaults = dict(raw=sha.encode(), sample_id=f"id-{sha}")
    defaults.update(kwargs)
    return IngestItem(priority=priority, sha256=sha, **defaults)


# --------------------------------------------------------------------------- #
# the bounded priority queue


def test_queue_orders_by_priority_then_fifo():
    queue = IngestQueue(capacity=10)
    queue.put(item("a", PRIORITY_RESEEN))
    queue.put(item("b", PRIORITY_NEW))
    queue.put(item("c", PRIORITY_CHANGED))
    queue.put(item("d", PRIORITY_NEW))
    order = [queue.get().sha256 for _ in range(4)]
    assert order == ["c", "b", "d", "a"]
    assert queue.get(timeout=0.0) is None


def test_queue_coalesces_duplicate_content():
    queue = IngestQueue(capacity=10)
    assert queue.put(item("x", sightings=[("a.bin", "x", 1, 1)])) == "queued"
    assert queue.put(item("x", sample_id="id-x2",
                          sightings=[("b.bin", "x", 1, 2)])) == "deduped"
    assert queue.depth() == 1
    merged = queue.get()
    assert merged.sample_ids == ["id-x", "id-x2"]
    assert [s[0] for s in merged.sightings] == ["a.bin", "b.bin"]
    snapshot = queue.snapshot()
    assert snapshot["enqueued"] == 1 and snapshot["deduped"] == 1


def test_queue_duplicate_promotes_priority():
    queue = IngestQueue(capacity=10)
    queue.put(item("slow", PRIORITY_RESEEN))
    queue.put(item("other", PRIORITY_NEW))
    # a changed-class sighting of the same content jumps the line
    assert queue.put(item("slow", PRIORITY_CHANGED)) == "deduped"
    assert queue.get().sha256 == "slow"
    assert queue.get().sha256 == "other"
    # the stale re-seen heap entry was skipped, not double-served
    assert queue.get(timeout=0.0) is None
    assert queue.snapshot()["drained"] == 2


def test_queue_full_raises_and_counts_drops():
    queue = IngestQueue(capacity=2, retry_after_s=7.5)
    queue.put(item("a"))
    queue.put(item("b"))
    with pytest.raises(IngestQueueFull) as exc:
        queue.put(item("c"))
    assert exc.value.capacity == 2
    assert exc.value.retry_after_s == 7.5
    # coalescing is NOT bounded: a duplicate costs no slot
    assert queue.put(item("a")) == "deduped"
    snapshot = queue.snapshot()
    assert snapshot["dropped"] == 1 and snapshot["depth"] == 2


def test_queue_requeue_bypasses_capacity():
    queue = IngestQueue(capacity=1)
    first = item("a")
    queue.put(first)
    popped = queue.get()
    queue.put(item("b"))  # at capacity again
    queue.requeue([popped])  # fault recovery must never drop verdicts
    assert queue.depth() == 2
    assert {queue.get().sha256, queue.get().sha256} == {"a", "b"}
    assert queue.snapshot()["drained"] == 2  # requeue undid the first pop


def test_queue_close_wakes_getters_and_refuses_puts():
    queue = IngestQueue(capacity=2)
    queue.put(item("a"))
    queue.close()
    with pytest.raises(RuntimeError, match="closed"):
        queue.put(item("b"))
    # what was admitted is still drained; then a blocking get returns None
    assert queue.get(timeout=None).sha256 == "a"
    assert queue.get(timeout=None) is None


def test_queue_get_batch_waits_for_first_item_only():
    queue = IngestQueue(capacity=10)
    started = time.perf_counter()
    assert queue.get_batch(8, timeout=0.05) == []
    assert time.perf_counter() - started >= 0.04
    for sha in "abc":
        queue.put(item(sha))
    batch = queue.get_batch(8, timeout=0.0)
    assert [entry.sha256 for entry in batch] == ["a", "b", "c"]


# --------------------------------------------------------------------------- #
# event backends


@needs_inotify
def test_inotify_watcher_reports_upsert_delete(tmp_path):
    root = tmp_path / "watched"
    root.mkdir()
    (root / "before.bin").write_bytes(b"\x60\x00")
    with InotifyWatcher([root], "*") as watcher:
        # startup catch-up: pre-existing files surface as upserts
        kinds = {(e.kind, e.path.name) for e in watcher.poll(0.2)}
        assert (EVENT_UPSERT, "before.bin") in kinds

        (root / "fresh.bin").write_bytes(b"\x60\x01")
        events = watcher.poll(2.0)
        assert any(e.kind == EVENT_UPSERT and e.path.name == "fresh.bin"
                   for e in events)

        (root / "fresh.bin").unlink()
        events = watcher.poll(2.0)
        assert any(e.kind == EVENT_DELETE and e.path.name == "fresh.bin"
                   for e in events)


@needs_inotify
def test_inotify_watcher_follows_new_subdirectories(tmp_path):
    root = tmp_path / "watched"
    root.mkdir()
    with InotifyWatcher([root], "*") as watcher:
        watcher.poll(0.1)
        nested = root / "deep"
        nested.mkdir()
        (nested / "late.bin").write_bytes(b"\x60\x02")
        deadline = time.monotonic() + 5.0
        seen = []
        while time.monotonic() < deadline:
            seen.extend(watcher.poll(0.2))
            if any(e.kind == EVENT_UPSERT and e.path.name == "late.bin"
                   for e in seen):
                break
        else:
            pytest.fail(f"no upsert for nested file; saw {seen}")

        import shutil
        shutil.rmtree(nested)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if any(e.kind == EVENT_RMDIR for e in watcher.poll(0.2)):
                break
        else:
            pytest.fail("directory removal never produced an rmdir event")


def test_poll_watcher_diffs_snapshots(tmp_path):
    root = tmp_path / "watched"
    root.mkdir()
    (root / "a.bin").write_bytes(b"\x60\x00")
    watcher = PollWatcher([root], "*")
    assert {(e.kind, e.path.name) for e in watcher.poll(0.0)} == \
        {(EVENT_UPSERT, "a.bin")}
    assert watcher.poll(0.0) == []  # unchanged: no events

    (root / "b.bin").write_bytes(b"\x60\x01")
    (root / "a.bin").unlink()
    kinds = {(e.kind, e.path.name) for e in watcher.poll(0.0)}
    assert kinds == {(EVENT_UPSERT, "b.bin"), (EVENT_DELETE, "a.bin")}


def test_open_watcher_backend_selection(tmp_path):
    assert open_watcher([tmp_path], backend="poll").backend == "poll"
    auto = open_watcher([tmp_path], backend="auto")
    assert auto.backend == (
        "inotify" if InotifyWatcher.available() else "poll")
    auto.close()
    with pytest.raises(ValueError, match="backend"):
        open_watcher([tmp_path], backend="carrier-pigeon")


# --------------------------------------------------------------------------- #
# the acceptance invariant: event path == poll path, byte for byte


def report_rows(registry):
    return {row.sample_id: row.to_report().to_dict()
            for row in registry.query(limit=None)}


def test_event_ingest_matches_poll_daemon_byte_identical(
        trained_detector, feed, tmp_path):
    with ScanRegistry.for_config(tmp_path / "poll.db",
                                 trained_detector.config) as poll_registry:
        WatchDaemon(trained_detector, poll_registry, feed).poll_once()
        poll_rows = report_rows(poll_registry)
        poll_index = poll_registry.watched_files()
    assert poll_rows

    with ScanRegistry.for_config(tmp_path / "event.db",
                                 trained_detector.config) as event_registry:
        with EventIngestService(trained_detector, event_registry,
                                roots=[feed]) as service:
            service.backfill()
            event_rows = report_rows(event_registry)
            event_index = event_registry.watched_files()
            assert event_rows == poll_rows
            assert set(event_index) == set(poll_index)
            for rel, entry in poll_index.items():
                assert (event_index[rel].sha256, event_index[rel].size,
                        event_index[rel].mtime_ns) == \
                    (entry.sha256, entry.size, entry.mtime_ns)

            # live change + delete flow through events with poll semantics
            target = sorted(feed.glob("*.bin"))[0]
            mutated = target.read_bytes() + b"\x00"
            target.write_bytes(mutated)
            removed = sorted(feed.glob("*.bin"))[1]
            removed.unlink()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                service.cycle(timeout=0.1)
                index = event_registry.watched_files()
                if (removed.name not in index
                        and index.get(target.name) is not None
                        and index[target.name].sha256
                        == content_sha256(mutated)):
                    break
            else:
                pytest.fail("event service never caught up with the "
                            "change + delete")
            assert event_registry.get(content_sha256(mutated)) is not None
            assert service.stats.deletes >= 1


def test_event_ingest_triage_rules_fire(trained_detector, feed, registry,
                                        tmp_path):
    spicy = ScamDetector(FAST, threshold=0.05, explain=False)
    spicy.pipeline = trained_detector.pipeline
    sink = tmp_path / "alerts.jsonl"
    engine = RulesEngine(parse_rules("""
[[rules]]
name = "page-on-scam"
[rules.match]
verdict = "malicious"
[rules.actions]
alert = true
exit_nonzero = true
"""), alert_path=sink)
    with EventIngestService(spicy, registry, roots=[feed],
                            rules=engine) as service:
        service.backfill()
        assert service.stats.malicious > 0
        assert service.stats.alerts == service.stats.malicious
        assert service.exit_nonzero and service.stats.exit_nonzero
    alerts = [json.loads(line) for line in sink.read_text().splitlines()]
    assert len(alerts) == service.stats.malicious


def test_enqueue_dedupe_flood_costs_one_scan(trained_detector, registry,
                                             tiny_evm_corpus):
    raw = tiny_evm_corpus[0].bytecode
    with EventIngestService(trained_detector, registry,
                            queue_capacity=4) as service:
        assert service.submit_bytes(raw, sample_id="flood-0") == "queued"
        for index in range(1, 50):
            assert service.submit_bytes(
                raw, sample_id=f"flood-{index}") == "deduped"
        assert service.queue.depth() == 1  # 50 submissions, one slot
        assert service.stats.deduped == 49
        drained = service.drain()
        assert drained == 1
        assert service.stats.scanned == 1
        assert service.stats.inference_calls >= 1
    assert registry.get(content_sha256(raw)) is not None
    assert registry.query(limit=None)[0].scan_count == 1


def test_shutdown_drains_admitted_queue(trained_detector, registry,
                                        tiny_evm_corpus):
    # SIGTERM contract: stop() + shutdown() scans everything the queue
    # admitted before the stop -- no verdict is stranded
    service = EventIngestService(trained_detector, registry,
                                 queue_capacity=64)
    try:
        shas = []
        for sample in tiny_evm_corpus[:6]:
            service.submit_bytes(sample.bytecode, sample_id=sample.sample_id)
            shas.append(content_sha256(sample.bytecode))
        assert service.queue.depth() == len(set(shas))
        service.start()
        service.stop()
        service.shutdown(drain=True)
        assert service.queue.depth() == 0
        for sha in shas:
            assert registry.get(sha) is not None, "verdict lost on shutdown"
    finally:
        service.close()


def test_drain_fault_requeues_without_losing_verdicts(
        trained_detector, registry, tiny_evm_corpus):
    with EventIngestService(trained_detector, registry,
                            queue_capacity=16) as service:
        shas = []
        for sample in tiny_evm_corpus[:4]:
            service.submit_bytes(sample.bytecode, sample_id=sample.sample_id)
            shas.append(content_sha256(sample.bytecode))
        depth = service.queue.depth()
        with fault_plan(FaultPlan(specs=(
                FaultSpec(site="ingest.drain", kind="exception",
                          max_fires=1),))):
            assert service.drain() == 0  # the faulted batch went back
            assert service.stats.faulted_drains == 1
            assert service.queue.depth() == depth
            service.drain()
        assert service.queue.depth() == 0
        for sha in shas:
            assert registry.get(sha) is not None, "fault dropped a verdict"


def test_backpressure_stalls_event_pump(trained_detector, registry, feed):
    # capacity 2 cannot hold the backfill of a 24-file corpus in one go:
    # the walk interleaves draining, admits everything, loses nothing
    with EventIngestService(trained_detector, registry, roots=[feed],
                            queue_capacity=2) as service:
        service.backfill()
    rows = report_rows(registry)
    oracle = trained_detector.scan_directory(feed)
    assert len(rows) == oracle.num_scanned
    for report in oracle.reports:
        assert rows[report.sample_id] == report.to_dict()


# --------------------------------------------------------------------------- #
# POST /v1/ingest


@pytest.fixture()
def ingest_server(trained_detector, tmp_path):
    from repro.service.server import ScanServer

    with ScanRegistry.for_config(tmp_path / "server.db",
                                 trained_detector.config) as registry:
        server = ScanServer(trained_detector, port=0, workers=4,
                            ingest_queue=8, registry=registry)
        server.start()
        try:
            yield server, registry
        finally:
            server.shutdown()


def wait_for_rows(registry, count, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        rows = registry.query(limit=None)
        if len(rows) >= count:
            return rows
        time.sleep(0.02)
    raise AssertionError(
        f"registry never reached {count} rows ({len(registry.query(limit=None))})")


def test_server_ingest_records_verdicts(ingest_server, tiny_evm_corpus):
    from repro.service import ServerClient

    server, registry = ingest_server
    client = ServerClient(port=server.port)
    codes = [sample.bytecode for sample in tiny_evm_corpus[:3]]
    ids = [f"push-{index}" for index in range(3)]

    response = client.ingest(codes, sample_ids=ids)
    assert response["accepted"] == 3 and response["rejected"] == 0
    rows = wait_for_rows(registry, 3)
    by_sha = {row.sha256: row for row in rows}
    oracle = {content_sha256(code): server.detector.scan(code)
              for code in codes}
    for sha, report in oracle.items():
        stored = by_sha[sha].to_report(sample_id=report.sample_id)
        assert stored.to_dict() == report.to_dict()

    # re-pushing identical content coalesces or answers from the registry;
    # either way no second scan is recorded
    response = client.ingest(codes, sample_ids=ids)
    assert response["accepted"] + response["deduped"] == 3
    health = client.healthz()
    assert health["ingest"]["capacity"] == 8
    assert health["ingest"]["backend"] == "push"
    metrics = client.metrics()
    assert metrics["ingest"]["queue"]["capacity"] == 8
    assert metrics["ingest"]["stats"]["drained"] >= 3


def test_server_ingest_ndjson_and_base64(ingest_server, tiny_evm_corpus):
    from repro.service import ServerClient

    server, registry = ingest_server
    client = ServerClient(port=server.port)
    codes = [sample.bytecode for sample in tiny_evm_corpus[3:6]]
    response = client.ingest(codes, encoding="base64", ndjson=True,
                             sample_ids=[f"nd-{i}" for i in range(3)])
    assert response["accepted"] == 3
    rows = wait_for_rows(registry, 3)
    assert {content_sha256(code) for code in codes} <= \
        {row.sha256 for row in rows}


def test_server_ingest_chunked_transfer_encoding(ingest_server,
                                                 tiny_evm_corpus):
    import http.client

    server, registry = ingest_server
    before = len(registry.query(limit=None))
    payload = json.dumps({
        "bytecode": tiny_evm_corpus[6].bytecode.hex(),
        "sample_id": "chunked-one",
    }).encode()
    chunks = [payload[i:i + 7] for i in range(0, len(payload), 7)]
    connection = http.client.HTTPConnection(server.host, server.port,
                                            timeout=10.0)
    try:
        connection.request("POST", "/v1/ingest", body=iter(chunks),
                           headers={"Content-Type": "application/json"},
                           encode_chunked=True)
        response = connection.getresponse()
        body = json.loads(response.read())
        assert response.status == 202, body
        assert body["accepted"] == 1
    finally:
        connection.close()
    wait_for_rows(registry, before + 1)


def test_server_ingest_bad_requests(ingest_server):
    server, _ = ingest_server

    def post(body: bytes, content_type="application/json"):
        request = urllib.request.Request(
            f"{server.url}/v1/ingest", data=body,
            headers={"Content-Type": content_type}, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=10.0) as reply:
                return reply.status, json.loads(reply.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    status, body = post(b"{not json")
    assert status == 400 and "error" in body
    status, body = post(json.dumps({"bytecode": "zz-not-hex"}).encode())
    assert status == 400 and "bytecode" in body["error"]["message"]
    status, body = post(json.dumps({"contracts": []}).encode())
    assert status == 400
    status, body = post(b'{"bytecode": "6000"}\n{not json}\n',
                        content_type="application/x-ndjson")
    assert status == 400 and "line 2" in body["error"]["message"]


def test_server_ingest_disabled_returns_404(trained_detector):
    from repro.service.server import ScanServer

    with ScanServer(trained_detector, port=0, workers=2) as server:
        request = urllib.request.Request(
            f"{server.url}/v1/ingest",
            data=json.dumps({"bytecode": "6000"}).encode(),
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=10.0)
        assert exc.value.code == 404
        assert json.loads(exc.value.read())["error"]["code"] == \
            "ingest_disabled"


def test_server_ingest_requires_registry(trained_detector):
    from repro.service.server import ScanServer

    with pytest.raises(ValueError, match="registry"):
        ScanServer(trained_detector, port=0, ingest_queue=4)
    with pytest.raises(ValueError, match="ingest_queue"):
        ScanServer(trained_detector, port=0, ingest_queue=0)


def test_server_ingest_full_queue_answers_503(ingest_server,
                                              tiny_evm_corpus):
    from repro.service import ServerClient, ServerClientError
    from repro.resilience.retry import RetryPolicy

    server, registry = ingest_server
    # park the drain worker: the first batch blocks on the scan lock, the
    # queue then fills to capacity and stays full
    with server.ingest._scan_lock:
        rejected = None
        for index, sample in enumerate(tiny_evm_corpus):
            request = urllib.request.Request(
                f"{server.url}/v1/ingest",
                data=json.dumps({
                    "bytecode": sample.bytecode.hex(),
                    "sample_id": f"flood-{index}",
                }).encode(),
                headers={"Content-Type": "application/json"},
                method="POST")
            try:
                urllib.request.urlopen(request, timeout=10.0).read()
            except urllib.error.HTTPError as error:
                rejected = error
                break
        assert rejected is not None, "queue never filled"
        assert rejected.code == 503
        assert rejected.headers["Retry-After"] == "1"
        envelope = json.loads(rejected.read())["error"]
        assert envelope["code"] == "overloaded"
        assert envelope["retry_after"] == 1

        # the client's retry loop honors Retry-After before giving up
        client = ServerClient(port=server.port,
                              retry=RetryPolicy(max_attempts=2,
                                                base_delay_s=0.01))
        started = time.perf_counter()
        with pytest.raises(ServerClientError) as exc:
            client.ingest([tiny_evm_corpus[-1].bytecode],
                          sample_ids=["latecomer"])
        elapsed = time.perf_counter() - started
        assert exc.value.code == "overloaded"
        assert exc.value.status == 503
        assert elapsed >= 0.9, "client did not honor Retry-After"

    # lock released: the drain catches up and nothing admitted was lost
    accepted = server.ingest.queue.enqueued
    wait_for_rows(registry, accepted)


# --------------------------------------------------------------------------- #
# CLI: watch --event-driven


@needs_inotify
def test_watch_event_driven_cli_roundtrip(trained_detector, feed, tmp_path,
                                          tiny_evm_corpus, capsys):
    from repro.cli import main

    model_path = tmp_path / "model"
    trained_detector.save(model_path)
    registry_path = tmp_path / "cli-event.db"
    extra_root = tmp_path / "second-root"
    extra_root.mkdir()
    (extra_root / "other.bin").write_bytes(
        tiny_evm_corpus[0].bytecode + b"\x00")

    exit_code = main(["watch", str(feed), "--event-driven",
                      "--root", str(extra_root),
                      "--model-path", str(model_path),
                      "--registry", str(registry_path),
                      "--interval", "0.05", "--max-polls", "3", "--json"])
    assert exit_code == 0
    out = capsys.readouterr().out
    payloads = [json.loads(line) for line in out.splitlines()
                if line.startswith("{")]
    assert payloads, out
    # satellite: the JSON stream surfaces the fault/exit counters
    assert all("exit_nonzero" in p and "faulted_cycles" in p
               for p in payloads)

    with ScanRegistry.for_config(registry_path,
                                 trained_detector.config) as registry:
        rows = registry.query(limit=None)
        oracle = trained_detector.scan_directory(feed)
        # both roots were ingested: the single-root corpus plus the extra
        assert len(rows) == oracle.num_scanned + 1
        index = registry.watched_files()
    assert any(rel.endswith("other.bin") for rel in index)


def test_watch_root_flag_requires_event_driven(trained_detector, feed,
                                               tmp_path):
    from repro.cli import main

    model_path = tmp_path / "model2"
    trained_detector.save(model_path)
    with pytest.raises(SystemExit, match="event-driven"):
        main(["watch", str(feed), "--root", str(tmp_path),
              "--model-path", str(model_path),
              "--registry", str(tmp_path / "x.db")])
