"""Unit tests for the observability package (``repro.obs``).

Covers the tracer's arming contract (disarmed sites are shared no-ops,
no orphan roots from helper threads), span linkage (root / child /
follows), the JSONL export round-trip, the span-accounting verifier,
the Prometheus renderer + exposition validator, structured JSON logging,
and trace-carrier propagation through the ingest queue.
"""

from __future__ import annotations

import io
import json
import threading
import time
import warnings

import pytest

from repro.obs import (
    JsonlTraceWriter,
    Tracer,
    armed,
    carrier,
    disable_json_logs,
    emit_span,
    enable_json_logs,
    format_summary,
    json_log,
    json_logs_enabled,
    load_trace_file,
    render_prometheus,
    summarize_traces,
    trace,
    trace_from,
    tracing,
    validate_exposition,
    verify_traces,
)
from repro.obs.trace import _NOOP
from repro.ingest.queue import IngestItem, IngestQueue, PRIORITY_NEW
from repro.service.cache import CacheStats
from repro.service.server import ServerMetrics


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with tracing and JSON logs disarmed."""
    assert not armed(), "a previous test leaked an armed tracer"
    yield
    from repro.obs.trace import disarm

    disarm()
    disable_json_logs()


# ---------------------------------------------------------------------- #
# tracer: arming contract


def test_disarmed_sites_are_shared_noop():
    assert not armed()
    span = trace("cache.lookup", root=True)
    assert span is _NOOP
    assert trace_from({"trace_id": "t", "span_id": "s"}, "x") is _NOOP
    assert carrier() is None
    # the no-op span is inert and chainable
    with span as inner:
        assert inner.set(result="hit") is inner
    # emit_span silently drops when disarmed
    emit_span({"trace_id": "t", "span_id": "s"}, "x", 0.0, 1.0)


def test_trace_without_root_or_context_records_nothing():
    with tracing() as tracer:
        with trace("cache.lookup"):  # helper-thread pattern: no context
            pass
        assert tracer.drain() == []


def test_root_span_then_children_nest():
    with tracing() as tracer:
        with trace("batch.scan", root=True, items=3):
            with trace("lowering"):
                pass
            with trace("gnn.infer") as span:
                span.set(batch=3)
        records = tracer.drain()
    by_site = {record["site"]: record for record in records}
    root = by_site["batch.scan"]
    assert root["link"] == "root"
    assert root["parent_id"] is None
    assert root["attrs"] == {"items": 3}
    for site in ("lowering", "gnn.infer"):
        child = by_site[site]
        assert child["link"] == "child"
        assert child["trace_id"] == root["trace_id"]
        assert child["parent_id"] == root["span_id"]
    assert by_site["gnn.infer"]["attrs"] == {"batch": 3}
    assert verify_traces(records) == {
        "traces": 1,
        "spans": 3,
        "accounting_mismatches": 0,
        "orphan_spans": 0,
        "nesting_mismatches": 0,
    }


def test_root_true_inside_existing_context_records_child():
    """``root=True`` marks an entry point, not a forced new trace."""
    with tracing() as tracer:
        with trace("server.request", root=True):
            with trace("ingest.enqueue", root=True):
                pass
        records = tracer.drain()
    links = {record["site"]: record["link"] for record in records}
    assert links == {"server.request": "root", "ingest.enqueue": "child"}
    assert len({record["trace_id"] for record in records}) == 1


def test_error_is_recorded_on_span():
    with tracing() as tracer:
        with pytest.raises(ValueError):
            with trace("registry.write", root=True):
                raise ValueError("boom")
        (record,) = tracer.drain()
    assert record["error"] == "ValueError"


def test_trace_from_crosses_threads_as_follows():
    with tracing() as tracer:
        captured = {}
        with trace("server.request", root=True):
            captured["carrier"] = carrier()

        def worker():
            with trace_from(captured["carrier"], "shard.chunk", shard="s0"):
                # a follows span establishes context on its thread too
                with trace("cache.lookup"):
                    pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        records = tracer.drain()
    by_site = {record["site"]: record for record in records}
    root = by_site["server.request"]
    follows = by_site["shard.chunk"]
    assert follows["link"] == "follows"
    assert follows["trace_id"] == root["trace_id"]
    assert follows["parent_id"] == root["span_id"]
    assert by_site["cache.lookup"]["parent_id"] == follows["span_id"]
    invariants = verify_traces(records)
    assert invariants["accounting_mismatches"] == 0
    assert invariants["orphan_spans"] == 0


def test_trace_from_none_carrier_is_noop():
    with tracing() as tracer:
        assert trace_from(None, "shard.chunk") is _NOOP
        assert trace_from({"trace_id": None}, "shard.chunk") is _NOOP
        assert tracer.drain() == []


def test_emit_span_records_premeasured_follows():
    with tracing() as tracer:
        with trace("ingest.enqueue", root=True):
            parent = carrier()
        emit_span(parent, "ingest.drained", time.time(), 12.5, batch=4)
        records = tracer.drain()
    drained = next(r for r in records if r["site"] == "ingest.drained")
    assert drained["link"] == "follows"
    assert drained["dur_ms"] == 12.5
    assert drained["attrs"] == {"batch": 4}
    assert drained["parent_id"] == parent["span_id"]


def test_tracer_capacity_drops_oldest():
    with tracing(capacity=2) as tracer:
        for index in range(4):
            with trace("batch.scan", root=True, index=index):
                pass
        records = tracer.drain()
    assert tracer.recorded == 4
    assert tracer.dropped == 2
    assert [record["attrs"]["index"] for record in records] == [2, 3]


def test_tracing_restores_previous_tracer():
    outer = Tracer()
    from repro.obs.trace import active_tracer, arm, disarm

    arm(outer)
    try:
        with tracing() as inner:
            assert active_tracer() is inner
        assert active_tracer() is outer
    finally:
        disarm()


# ---------------------------------------------------------------------- #
# JSONL round-trip


def test_jsonl_writer_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlTraceWriter(path) as writer:
        with tracing(sink=writer):
            with trace("batch.scan", root=True):
                with trace("gnn.infer"):
                    pass
        assert writer.written == 2
    records = load_trace_file(path)
    assert [record["site"] for record in records] == [
        "gnn.infer",
        "batch.scan",
    ]
    invariants = verify_traces(records)
    assert invariants["traces"] == 1
    assert invariants["accounting_mismatches"] == 0


def test_load_trace_file_rejects_bad_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"trace_id": "t"}\nnot json\n')
    with pytest.raises(ValueError, match="invalid JSON"):
        load_trace_file(path)
    path.write_text('["a", "list"]\n')
    with pytest.raises(ValueError, match="not an object"):
        load_trace_file(path)


# ---------------------------------------------------------------------- #
# span-accounting verifier negatives


def _span(trace_id, span_id, parent_id, link, start=0.0, dur_ms=10.0):
    return {
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "site": "x",
        "link": link,
        "start": start,
        "dur_ms": dur_ms,
        "pid": 1,
        "thread": "t",
        "attrs": {},
    }


def test_verify_traces_flags_double_root():
    records = [
        _span("t1", "a", None, "root"),
        _span("t1", "b", None, "root"),
    ]
    assert verify_traces(records)["accounting_mismatches"] == 1


def test_verify_traces_flags_orphan():
    records = [
        _span("t1", "a", None, "root"),
        _span("t1", "b", "missing", "child"),
    ]
    assert verify_traces(records)["orphan_spans"] == 1


def test_verify_traces_flags_nesting_violation():
    records = [
        _span("t1", "a", None, "root", start=100.0, dur_ms=10.0),
        _span("t1", "b", "a", "child", start=100.5, dur_ms=5000.0),
    ]
    assert verify_traces(records)["nesting_mismatches"] == 1
    # a follows span with the same interval is exempt (cross-clock)
    records[1]["link"] = "follows"
    assert verify_traces(records)["nesting_mismatches"] == 0


# ---------------------------------------------------------------------- #
# trace summary


def test_summarize_traces_and_format():
    with tracing() as tracer:
        for _ in range(3):
            with trace("batch.scan", root=True):
                with trace("gnn.infer"):
                    pass
        records = tracer.drain()
    summary = summarize_traces(records, top=2)
    assert summary["traces"] == 3
    assert summary["spans"] == 6
    assert summary["sites"]["batch.scan"]["count"] == 3
    assert len(summary["slowest"]) == 2
    assert summary["critical_path"][0]["site"] == "batch.scan"
    rendered = format_summary(summary)
    assert "batch.scan" in rendered
    assert "p99" in rendered


# ---------------------------------------------------------------------- #
# Prometheus exposition


def _populated_snapshot():
    metrics = ServerMetrics()
    for endpoint, n in (("scan", 5), ("healthz", 2), ("metrics", 1)):
        for _ in range(n):
            metrics.record_request(endpoint)
            metrics.record_latency(endpoint, 0.012)
    metrics.record_request("scan", deprecated=True)
    metrics.record_error()
    metrics.record_verdicts(6, 2)
    metrics.record_batch(4)
    metrics.record_batch(1)
    metrics.record_registry(hit=True)
    metrics.record_registry(hit=False)
    metrics.record_cascade(3, 2, 0)
    cache = CacheStats(hits=10, misses=4, disk_hits=1)
    queue = IngestQueue(capacity=8)
    queue.put(IngestItem(PRIORITY_NEW, "a" * 64, b"\x60", "s1"))
    ingest = {
        "backend": "push",
        "queue": queue.snapshot(),
        "stats": {"scanned": 1, "malicious": 0, "alerts": 0},
    }
    shard_stats = {
        "shard-0": {
            "contracts": 6,
            "inference": {"calls": 2, "mean_latency_ms": 3.5},
            "restarts": 0,
            "quarantined": False,
        }
    }
    return metrics.snapshot(
        cache,
        shard_stats=shard_stats,
        cascade_enabled=True,
        registry_busy_retries=0,
        ingest=ingest,
    )


def test_render_prometheus_is_valid_exposition():
    text = render_prometheus(
        _populated_snapshot(), tracing_armed=True, fault_injection_armed=False
    )
    assert validate_exposition(text) == [], validate_exposition(text)
    for family in (
        "scamdetect_uptime_seconds",
        "scamdetect_tracing_armed 1",
        "scamdetect_fault_injection_armed 0",
        'scamdetect_requests_total{endpoint="scan"} 6',
        "scamdetect_requests_deprecated_total 1",
        "scamdetect_errors_total 1",
        'scamdetect_request_latency_ms{endpoint="scan",quantile="0.99"}',
        "scamdetect_contracts_scanned_total 6",
        "scamdetect_contracts_malicious_total 2",
        'scamdetect_cache_lookups_total{result="hit"} 10',
        "scamdetect_inference_batches_total 2",
        'scamdetect_inference_batch_size_total{size="4"} 1',
        'scamdetect_registry_lookups_total{result="miss"} 1',
        "scamdetect_registry_busy_retries_total 0",
        'scamdetect_cascade_contracts_total{outcome="short_circuit"} 3',
        "scamdetect_cascade_disagreements_total 0",
        'scamdetect_shard_contracts_total{shard="shard-0"} 6',
        'scamdetect_shard_quarantined{shard="shard-0"} 0',
        "scamdetect_ingest_queue_depth 1",
        "scamdetect_ingest_queue_capacity 8",
        "scamdetect_ingest_queue_enqueued_total 1",
        "scamdetect_ingest_scanned_total 1",
    ):
        assert family in text, f"missing {family!r} in exposition"


def test_render_prometheus_minimal_snapshot_valid():
    metrics = ServerMetrics()
    text = render_prometheus(metrics.snapshot(CacheStats()))
    assert validate_exposition(text) == []
    assert "scamdetect_ingest_queue_depth" not in text
    assert "scamdetect_shard_contracts_total" not in text
    assert "scamdetect_cascade_contracts_total" not in text


def test_validate_exposition_catches_errors():
    assert validate_exposition(
        "# TYPE a counter\n# TYPE a counter\na 1\n"
    ) != []  # duplicate TYPE
    assert validate_exposition("orphan_metric 1\n") != []  # no TYPE
    assert validate_exposition(
        "# TYPE a counter\na 1\na 2\n"
    ) != []  # duplicate sample
    assert validate_exposition(
        "# TYPE a counter\na notanumber\n"
    ) != []  # bad value
    assert validate_exposition(
        "# TYPE a wibble\na 1\n"
    ) != []  # bad type
    assert validate_exposition(
        '# TYPE a counter\na{9bad="x"} 1\n'
    ) != []  # bad label name
    # a healthy document with labels, escapes and +Inf passes
    healthy = (
        "# HELP a help text\n# TYPE a counter\n"
        'a{l="x\\"y"} 1\na{l="z"} +Inf\n'
    )
    assert validate_exposition(healthy) == []


# ---------------------------------------------------------------------- #
# structured JSON logging


def test_json_logs_stamp_trace_ids():
    stream = io.StringIO()
    enable_json_logs(stream)
    assert json_logs_enabled()
    with tracing():
        with trace("batch.scan", root=True):
            context = carrier()
            warnings.warn("skipped 1 unreadable file", RuntimeWarning)
            json_log("info", "drain complete", items=3)
    disable_json_logs()
    assert not json_logs_enabled()
    lines = [json.loads(line) for line in stream.getvalue().splitlines()]
    assert len(lines) == 2
    warn_line, info_line = lines
    assert warn_line["level"] == "warning"
    assert warn_line["category"] == "RuntimeWarning"
    assert warn_line["message"] == "skipped 1 unreadable file"
    assert warn_line["trace_id"] == context["trace_id"]
    assert info_line["level"] == "info"
    assert info_line["items"] == 3
    assert info_line["trace_id"] == context["trace_id"]


def test_json_logs_without_trace_context_omit_ids():
    stream = io.StringIO()
    enable_json_logs(stream)
    json_log("info", "no trace armed")
    disable_json_logs()
    (line,) = [json.loads(line) for line in stream.getvalue().splitlines()]
    assert "trace_id" not in line
    # plain warnings go back through the stock path after disable
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        warnings.warn("plain again")
    assert len(caught) == 1
    assert stream.getvalue().count("\n") == 1


# ---------------------------------------------------------------------- #
# carrier propagation through the ingest queue


def test_ingest_coalesce_keeps_first_carrier():
    queue = IngestQueue(capacity=4)
    first = IngestItem(
        PRIORITY_NEW, "c" * 64, b"\x60", "s1",
        trace={"trace_id": "t1", "span_id": "a"},
    )
    duplicate = IngestItem(
        PRIORITY_NEW, "c" * 64, b"\x60", "s2",
        trace={"trace_id": "t2", "span_id": "b"},
    )
    assert queue.put(first) == "queued"
    assert queue.put(duplicate) == "deduped"
    item = queue.get()
    assert item.trace == {"trace_id": "t1", "span_id": "a"}
    assert item.sample_ids == ["s1", "s2"]
