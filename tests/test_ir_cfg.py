"""Unit tests for the platform-agnostic CFG model."""

import pytest

from repro.ir.basic_block import BasicBlock
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instruction import IRInstruction


def _instruction(offset, mnemonic="ADD", category="arithmetic"):
    return IRInstruction(offset=offset, mnemonic=mnemonic, category=category)


def _block(block_id, size=2, is_entry=False):
    instructions = [_instruction(block_id + i) for i in range(size)]
    return BasicBlock(block_id=block_id, instructions=instructions, is_entry=is_entry)


def _diamond():
    """entry -> (left | right) -> join"""
    cfg = ControlFlowGraph(platform="evm", name="diamond")
    cfg.add_block(_block(0, is_entry=True))
    cfg.add_block(_block(10))
    cfg.add_block(_block(20))
    cfg.add_block(_block(30))
    cfg.add_edge(0, 10, kind="branch")
    cfg.add_edge(0, 20, kind="fallthrough")
    cfg.add_edge(10, 30)
    cfg.add_edge(20, 30)
    return cfg


def test_basic_properties():
    cfg = _diamond()
    assert cfg.num_blocks == 4
    assert cfg.num_edges == 4
    assert cfg.num_instructions == 8
    assert len(cfg) == 4
    assert 10 in cfg and 99 not in cfg


def test_entry_and_terminals():
    cfg = _diamond()
    assert cfg.entry_id == 0
    assert cfg.entry_block().is_entry
    assert cfg.terminal_blocks() == [30]


def test_successors_predecessors_degrees():
    cfg = _diamond()
    assert sorted(cfg.successors(0)) == [10, 20]
    assert sorted(cfg.predecessors(30)) == [10, 20]
    assert cfg.out_degree(0) == 2
    assert cfg.in_degree(30) == 2


def test_duplicate_block_rejected():
    cfg = _diamond()
    with pytest.raises(ValueError):
        cfg.add_block(_block(0))


def test_edge_to_unknown_block_rejected():
    cfg = _diamond()
    with pytest.raises(KeyError):
        cfg.add_edge(0, 999)
    with pytest.raises(KeyError):
        cfg.add_edge(999, 0)


def test_duplicate_edges_are_ignored():
    cfg = _diamond()
    before = cfg.num_edges
    cfg.add_edge(10, 30)
    assert cfg.num_edges == before


def test_reachability_and_dfs():
    cfg = _diamond()
    assert cfg.reachable_blocks() == {0, 10, 20, 30}
    order = cfg.depth_first_order()
    assert order[0] == 0
    assert set(order) == {0, 10, 20, 30}


def test_adjacency_matrix_matches_edges():
    cfg = _diamond()
    matrix = cfg.adjacency_matrix()
    order = [b.block_id for b in cfg.blocks]
    index = {bid: i for i, bid in enumerate(order)}
    assert matrix[index[0]][index[10]] == 1
    assert matrix[index[0]][index[20]] == 1
    assert matrix[index[10]][index[30]] == 1
    assert matrix[index[30]][index[0]] == 0


def test_networkx_export():
    graph = _diamond().to_networkx()
    assert graph.number_of_nodes() == 4
    assert graph.number_of_edges() == 4
    assert graph.nodes[0]["size"] == 2


def test_cyclomatic_complexity():
    assert _diamond().cyclomatic_complexity() == 2
    empty = ControlFlowGraph()
    assert empty.cyclomatic_complexity() == 0


def test_validate_catches_mismatched_block_id():
    cfg = ControlFlowGraph()
    bad = BasicBlock(block_id=5, instructions=[_instruction(7)])
    cfg.add_block(bad)
    with pytest.raises(ValueError):
        cfg.validate()


def test_block_helpers():
    block = _block(0, size=3)
    assert len(block) == 3
    assert block.mnemonics() == ["ADD", "ADD", "ADD"]
    assert block.categories() == ["arithmetic"] * 3
    assert block.category_counts() == {"arithmetic": 3}
    assert block.terminator is block.instructions[-1]
    assert block.start_offset == 0
    assert block.end_offset == 3


def test_summary_keys():
    summary = _diamond().summary()
    assert set(summary) == {"blocks", "edges", "instructions", "exits",
                            "cyclomatic_complexity"}
