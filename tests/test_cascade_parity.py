"""Cascade fidelity: tier-0 short-circuits must never change a verdict.

The contract under test, across every scan entry point (single-contract
``scan``, ``BatchScanner``, the sharded pool at 1 and 2 shards, the scan
server's coalesced batch path, and a watch cycle followed by a registry
query):

* every contract the cascade escalates produces a report *byte-identical*
  to the GNN-only report for the same bytecode;
* every contract the cascade short-circuits is one the GNN would have
  called benign anyway (equal recall -- zero disagreements);
* escalated contracts are GNN-scored exactly once (no double inference);
* ``stage: "prefilter"`` survives a round-trip through the SQLite registry.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import ScamDetectConfig
from repro.core.detector import ScamDetector
from repro.datasets.corpus import Corpus
from repro.datasets.generator import CorpusGenerator, GeneratorConfig
from repro.registry import ScanRegistry, WatchDaemon, content_sha256
from repro.service import BatchScanner, ServerClient, ShardedScanner
from repro.service.server import ScanServer

#: Strong enough that the tiny GNN actually separates its training set --
#: an under-trained model whose scores all hover at 0.5 would flip labels
#: on noise, which is a model-quality problem, not a cascade bug.
PARITY = ScamDetectConfig(epochs=15, num_layers=1, hidden_features=16)


def canonical(report_dict):
    """The byte-level form parity is asserted on."""
    return json.dumps(report_dict, sort_keys=True)


@pytest.fixture(scope="module")
def training_corpus():
    evm = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=36, label_noise=0.0,
        seed=17)).generate("parity-evm")
    wasm = CorpusGenerator(GeneratorConfig(
        platform="wasm", num_samples=24, label_noise=0.0,
        seed=29)).generate("parity-wasm")
    return Corpus(list(evm) + list(wasm), name="parity-train")


@pytest.fixture(scope="module")
def scan_corpus(training_corpus):
    """Scans run over the calibration corpus itself (the E12 protocol):
    threshold-at-target-recall only *guarantees* zero short-circuited
    positives on the corpus the thresholds were fitted to, so that is
    where the zero-disagreement fidelity claim is a hard invariant rather
    than a statistical one.  Entry-point parity (every cascade-on path
    byte-identical to cascade-on ``scan``) must hold for any corpus."""
    return list(training_corpus)


@pytest.fixture(scope="module")
def detector(training_corpus):
    built = ScamDetector(PARITY, explain=False, cascade=True)
    built.train(training_corpus, cascade=True)
    return built


@pytest.fixture(scope="module")
def cascade_oracle(detector, scan_corpus):
    """Single-contract ``scan`` verdicts with the cascade on: the ground
    truth every other cascade entry point is compared against."""
    assert detector.cascade
    return [detector.scan(sample.bytecode, platform=sample.platform,
                          sample_id=sample.sample_id)
            for sample in scan_corpus]


@pytest.fixture(scope="module")
def gnn_oracle(detector, scan_corpus):
    """The same scans with the cascade toggled off (identical weights and
    thresholds -- only tier 0 differs)."""
    detector.cascade = False
    try:
        return [detector.scan(sample.bytecode, platform=sample.platform,
                              sample_id=sample.sample_id)
                for sample in scan_corpus]
    finally:
        detector.cascade = True


def assert_byte_identical(oracle_reports, reports):
    assert len(reports) == len(oracle_reports)
    for expected, actual in zip(oracle_reports, reports):
        expected = expected if isinstance(expected, dict) else \
            expected.to_dict()
        actual = actual if isinstance(actual, dict) else actual.to_dict()
        assert canonical(actual) == canonical(expected)


# --------------------------------------------------------------------------- #
# cascade-on vs cascade-off


def test_both_cascade_paths_are_exercised(cascade_oracle):
    stages = {report.stage for report in cascade_oracle}
    assert stages == {"prefilter", "gnn"}  # corpus hits both tiers


def test_cascade_never_changes_a_verdict(cascade_oracle, gnn_oracle,
                                         detector):
    """Equal recall: label parity on every contract, and escalated reports
    are byte-identical to the GNN-only run."""
    for with_cascade, gnn_only in zip(cascade_oracle, gnn_oracle):
        assert with_cascade.label == gnn_only.label
        if with_cascade.stage == "gnn":
            # the escalated band went through the exact same scoring path
            assert canonical(with_cascade.to_dict()) == \
                canonical(gnn_only.to_dict())
        else:
            # short-circuited: confident-benign by construction, and the
            # GNN agrees (that is the zero-disagreement fidelity claim)
            assert with_cascade.label == 0 == gnn_only.label
            assert with_cascade.malicious_probability < detector.threshold
            assert with_cascade.cfg_blocks == 0  # no lowering happened


# --------------------------------------------------------------------------- #
# batch scanner


def test_batch_scanner_parity_and_single_scoring(detector, scan_corpus,
                                                 cascade_oracle):
    with BatchScanner(detector) as scanner:
        result = scanner.scan_codes(
            [sample.bytecode for sample in scan_corpus],
            sample_ids=[sample.sample_id for sample in scan_corpus])
    assert_byte_identical(cascade_oracle, result.reports)

    short_circuits = sum(
        1 for report in cascade_oracle if report.stage == "prefilter")
    stats = result.cascade_stats
    assert stats == {
        "short_circuits": short_circuits,
        "escalations": len(scan_corpus) - short_circuits,
        "disagreements": 0,
    }
    assert result.stats_dict()["cascade"] == stats
    # escalated contracts are GNN-scored exactly once: the graphs pushed
    # through inference add up to the escalation count, nothing more
    inferred = sum(int(size) * count
                   for size, count in result.batch_sizes.items())
    assert inferred == stats["escalations"]


def test_batch_scanner_without_cascade_reports_no_stats(detector,
                                                        scan_corpus,
                                                        gnn_oracle):
    detector.cascade = False
    try:
        with BatchScanner(detector) as scanner:
            result = scanner.scan_codes(
                [sample.bytecode for sample in scan_corpus],
                sample_ids=[sample.sample_id for sample in scan_corpus])
    finally:
        detector.cascade = True
    assert result.cascade_stats is None
    assert "cascade" not in result.stats_dict()
    assert_byte_identical(gnn_oracle, result.reports)


# --------------------------------------------------------------------------- #
# sharded pool


@pytest.mark.parametrize("shards", [1, 2])
def test_sharded_parity(detector, scan_corpus, cascade_oracle, shards):
    with ShardedScanner(detector, shards=shards, chunk_size=4) as scanner:
        result = scanner.scan_codes(
            [sample.bytecode for sample in scan_corpus],
            sample_ids=[sample.sample_id for sample in scan_corpus])
    assert_byte_identical(cascade_oracle, result.reports)
    short_circuits = sum(
        1 for report in cascade_oracle if report.stage == "prefilter")
    assert result.cascade_stats == {
        "short_circuits": short_circuits,
        "escalations": len(scan_corpus) - short_circuits,
        "disagreements": 0,
    }


def test_scan_many_shards_roundtrip(detector, scan_corpus, cascade_oracle):
    """The high-level entry point threads the cascade flags through
    BatchScanner into the pool."""
    result = detector.scan_many(
        [sample.bytecode for sample in scan_corpus],
        sample_ids=[sample.sample_id for sample in scan_corpus], shards=2)
    assert_byte_identical(cascade_oracle, result.reports)
    assert result.cascade_stats["disagreements"] == 0


# --------------------------------------------------------------------------- #
# scan server (coalesced batch path)


def test_server_coalesced_parity_and_metrics(detector, scan_corpus,
                                             cascade_oracle):
    with ScanServer(detector, port=0, workers=8, max_batch=8,
                    max_wait_ms=25.0) as server:
        client = ServerClient(port=server.port)
        client.wait_until_ready(timeout=10.0)
        health = client.healthz()
        assert health["cascade"]["margin"] == \
            detector.effective_cascade_margin()
        response = client.scan_batch(
            [sample.bytecode for sample in scan_corpus],
            sample_ids=[sample.sample_id for sample in scan_corpus])
        assert_byte_identical(cascade_oracle, response["reports"])

        short_circuits = sum(
            1 for report in cascade_oracle if report.stage == "prefilter")
        scans = client.metrics()["scans"]
        assert scans["cascade"] == {
            "short_circuits": short_circuits,
            "escalations": len(scan_corpus) - short_circuits,
            "disagreements": 0,
        }
        # single-contract requests agree with the batch endpoint too
        sample = scan_corpus[0]
        served = client.scan(sample.bytecode, sample_id=sample.sample_id)
        assert canonical(served) == canonical(cascade_oracle[0].to_dict())


# --------------------------------------------------------------------------- #
# watch daemon -> registry query


def test_watch_then_query_byte_identical(detector, scan_corpus, tmp_path):
    feed = tmp_path / "feed"
    feed.mkdir()
    for sample in scan_corpus:
        (feed / f"{sample.sample_id}.bin").write_bytes(sample.bytecode)

    with ScanRegistry.for_config(tmp_path / "verdicts.db",
                                 detector.config) as registry:
        with WatchDaemon(detector, registry, feed) as daemon:
            stats = daemon.poll_once()
        assert stats.scanned == len(scan_corpus)
        assert stats.cascade is not None
        assert stats.cascade["short_circuits"] > 0
        assert stats.cascade["disagreements"] == 0
        assert "cascade" in stats.format()

        oracle = {f"{sample.sample_id}.bin": detector.scan(
            sample.bytecode, platform=sample.platform,
            sample_id=f"{sample.sample_id}.bin") for sample in scan_corpus}
        rows = {row.source_path: row for row in registry.query(limit=None)}
        assert len(rows) == len(oracle)
        stages = set()
        for source_path, report in oracle.items():
            stored = rows[source_path].to_report()
            assert canonical(stored.to_dict()) == canonical(report.to_dict())
            stages.add(stored.stage)
        # schema v3: the stage column round-trips both provenances
        assert stages == {"prefilter", "gnn"}


def test_registry_stage_column_roundtrip(detector, scan_corpus, tmp_path):
    """A prefilter verdict recorded today is served back as a prefilter
    verdict forever -- byte-identical, stage included."""
    sample = scan_corpus[0]
    report = detector.build_prefilter_report(
        sample.bytecode, sample.sample_id, sample.platform, 0.01)
    assert report.stage == "prefilter"
    with ScanRegistry.for_config(tmp_path / "stage.db",
                                 detector.config) as registry:
        sha = content_sha256(sample.bytecode)
        assert registry.record(sha, report,
                               model_identity=detector.model_identity())
        row = registry.get(sha)
        assert row.stage == "prefilter"
        assert canonical(row.to_report().to_dict()) == \
            canonical(report.to_dict())
        # and the default stage for pre-v3 rows stays "gnn"
        gnn_report = detector.scan(scan_corpus[1].bytecode,
                                   platform=scan_corpus[1].platform,
                                   sample_id=scan_corpus[1].sample_id)
        if gnn_report.stage == "gnn":
            sha_gnn = content_sha256(scan_corpus[1].bytecode)
            registry.record(sha_gnn, gnn_report,
                            model_identity=detector.model_identity())
            assert registry.get(sha_gnn).stage == "gnn"
