"""The calibrated linear pre-filter head (tier 0 of the cascade).

:class:`CascadeHead` scores raw bytecode with TF-IDF-weighted opcode
n-grams plus opcode histograms through a logistic head
(:class:`~repro.ml.logistic_regression.LogisticRegression`), calibrates the
score into a probability (Platt or isotonic, see
:mod:`repro.cascade.calibration`), and picks **per-platform short-circuit
thresholds at a configured target recall**: the threshold for platform *p*
is the largest calibrated score that still keeps ``target_recall`` of the
training malicious samples of *p* at or above it.  At scan time a contract
short-circuits as confident-benign only when its calibrated score falls
below ``threshold - margin``; everything else escalates to graph lowering
and the GNN, so the margin is the knob trading throughput for fidelity
headroom.

Training is deterministic: feature extraction, the full-batch logistic fit
and both calibrators are RNG-free, so one config + one corpus always
produces the same head bit-for-bit (``config.seed`` exists purely as an
identity salt folded into the fingerprint).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cascade.calibration import (
    apply_isotonic,
    apply_platt,
    fit_isotonic,
    fit_platt,
)
from repro.datasets.corpus import ContractSample, Corpus
from repro.features.opcode_histogram import OpcodeHistogramExtractor
from repro.features.tfidf import TfidfExtractor
from repro.ml.logistic_regression import LogisticRegression

#: Decimals the calibrated score is quantized to before any decision is
#: taken or report written -- same batch-invariance argument as
#: :meth:`repro.core.detector.ScamDetector.build_report`.
SCORE_DECIMALS = 9


class CascadeError(RuntimeError):
    """A cascade-head problem the caller must deal with (untrained head,
    unusable corpus, corrupt persisted state)."""


@dataclass
class CascadeConfig:
    """Hyper-parameters of the pre-filter head.

    Attributes:
        ngram_order: n-gram order of the TF-IDF block.
        top_k: Vocabulary size kept by the n-gram extractor.
        vocabulary: Token vocabulary (``"mnemonic"`` or ``"category"``).
        calibration: ``"platt"`` or ``"isotonic"``.
        target_recall: Fraction of training malicious samples the
            per-platform thresholds must keep above the short-circuit line.
        margin: Default safety margin subtracted from each platform
            threshold at decision time (overridable per scan via
            ``--cascade-margin``); larger = fewer short-circuits.
        learning_rate / epochs / l2: Logistic-head training knobs.
        seed: Identity salt folded into :meth:`CascadeHead.fingerprint`
            (training itself is deterministic and never consumes it).
    """

    ngram_order: int = 2
    top_k: int = 128
    vocabulary: str = "mnemonic"
    calibration: str = "platt"
    target_recall: float = 1.0
    margin: float = 0.1
    learning_rate: float = 0.5
    epochs: int = 200
    l2: float = 1e-3
    seed: int = 0

    def validate(self) -> None:
        if self.ngram_order < 1:
            raise ValueError("ngram_order must be >= 1")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.calibration not in ("platt", "isotonic"):
            raise ValueError(
                f"unknown calibration {self.calibration!r}; "
                f"use 'platt' or 'isotonic'"
            )
        if not 0.0 < self.target_recall <= 1.0:
            raise ValueError("target_recall must be in (0, 1]")
        if self.margin < 0.0:
            raise ValueError("margin must be >= 0")

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CascadeConfig":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class CascadeDecision:
    """Tier-0 outcome for one contract.

    Attributes:
        probability: Calibrated malicious probability, quantized to
            :data:`SCORE_DECIMALS` decimals.
        short_circuit: True when the contract is confident-benign and may
            skip lowering + GNN inference.
        platform_threshold: The at-target-recall threshold of the
            contract's platform (None when the platform had no malicious
            training samples, in which case the head never short-circuits).
    """

    probability: float
    short_circuit: bool
    platform_threshold: Optional[float] = None

    @property
    def near_miss(self) -> bool:
        """True when only the margin kept this contract out of the
        short-circuit band (its score fell below the raw threshold)."""
        return (
            not self.short_circuit
            and self.platform_threshold is not None
            and self.probability < self.platform_threshold
        )


class CascadeHead:
    """Trainable tier-0 pre-filter (see module docstring).

    Args:
        config: Hyper-parameters; defaults are tuned for the synthetic
            corpora used throughout the experiments.
    """

    def __init__(self, config: Optional[CascadeConfig] = None) -> None:
        self.config = config or CascadeConfig()
        self.config.validate()
        self._tfidf = TfidfExtractor(
            n=self.config.ngram_order,
            top_k=self.config.top_k,
            vocabulary=self.config.vocabulary,
        )
        self._histogram = OpcodeHistogramExtractor(
            vocabulary=self.config.vocabulary, platform="both"
        )
        self._classifier = LogisticRegression(
            learning_rate=self.config.learning_rate,
            epochs=self.config.epochs,
            l2=self.config.l2,
        )
        self._calibration: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._thresholds: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # training

    @property
    def is_fitted(self) -> bool:
        return self._calibration is not None

    @property
    def thresholds(self) -> Dict[str, float]:
        """Per-platform short-circuit thresholds (copy)."""
        return dict(self._thresholds)

    def fit(self, corpus: Corpus) -> "CascadeHead":
        """Train head + calibration + per-platform thresholds on a
        labelled corpus; returns self."""
        labels = np.asarray(corpus.labels())
        if len(set(labels.tolist())) < 2:
            raise CascadeError(
                "cascade training needs both benign and malicious samples"
            )
        features = np.hstack(
            [
                self._tfidf.fit_transform(corpus),
                self._histogram.fit_transform(corpus),
            ]
        )
        self._classifier.fit(features, labels)
        raw_scores = self._classifier.predict_proba(features)[:, 1]
        if self.config.calibration == "platt":
            a, b = fit_platt(raw_scores, labels)
            self._calibration = (np.asarray([a]), np.asarray([b]))
        else:
            self._calibration = fit_isotonic(raw_scores, labels)
        # thresholds are picked from the same quantized scores decisions
        # use, so a re-scored training positive can never fall below the
        # threshold derived from itself
        calibrated = np.round(self._calibrate(raw_scores), SCORE_DECIMALS)
        self._thresholds = {}
        for platform in sorted({sample.platform for sample in corpus}):
            mask = np.asarray(
                [
                    sample.platform == platform and sample.label == 1
                    for sample in corpus
                ]
            )
            if not mask.any():
                continue  # no positives: this platform never short-circuits
            self._thresholds[platform] = threshold_at_recall(
                calibrated[mask], self.config.target_recall
            )
        return self

    # ------------------------------------------------------------------ #
    # scoring + decisions

    def _calibrate(self, raw_scores: np.ndarray) -> np.ndarray:
        if self._calibration is None:
            raise CascadeError("CascadeHead used before fit")
        first, second = self._calibration
        if self.config.calibration == "platt":
            return apply_platt(raw_scores, float(first[0]), float(second[0]))
        return apply_isotonic(raw_scores, first, second)

    def score_corpus(self, corpus: Corpus) -> np.ndarray:
        """Calibrated malicious probability per sample, quantized to
        :data:`SCORE_DECIMALS` decimals (batch-invariant)."""
        if not self.is_fitted:
            raise CascadeError("CascadeHead used before fit")
        features = np.hstack(
            [
                self._tfidf.transform(corpus),
                self._histogram.transform(corpus),
            ]
        )
        raw_scores = self._classifier.predict_proba(features)[:, 1]
        return np.round(self._calibrate(raw_scores), SCORE_DECIMALS)

    def score_bytes(
        self, raw_codes: Sequence[bytes], platforms: Sequence[str]
    ) -> np.ndarray:
        """Score raw bytecode (platforms must already be resolved)."""
        corpus = Corpus(
            (
                ContractSample(
                    sample_id=f"cascade-{index:04d}",
                    platform=platform,
                    bytecode=bytes(raw),
                    label=0,
                    family="unknown",
                )
                for index, (raw, platform) in enumerate(zip(raw_codes, platforms))
            ),
            name="cascade-scoring",
        )

        return self.score_corpus(corpus)

    def effective_margin(self, margin: Optional[float] = None) -> float:
        """The margin in force: an explicit override or the config's."""
        value = self.config.margin if margin is None else float(margin)
        if value < 0.0:
            raise ValueError("cascade margin must be >= 0")
        return value

    def decide(
        self,
        raw_codes: Sequence[bytes],
        platforms: Sequence[str],
        margin: Optional[float] = None,
        benign_ceiling: Optional[float] = None,
    ) -> List[CascadeDecision]:
        """Tier-0 decisions for a batch of contracts.

        A contract short-circuits iff its platform has a fitted threshold
        ``tau`` and its quantized calibrated score is below
        ``max(0, tau - margin)`` *and* below ``benign_ceiling`` (the
        detector's own verdict threshold -- guarantees a short-circuited
        report is always labelled benign, whatever threshold the caller
        scans with).
        """
        value = self.effective_margin(margin)
        decisions: List[CascadeDecision] = []
        scores = self.score_bytes(raw_codes, platforms)
        for score, platform in zip(scores, platforms):
            threshold = self._thresholds.get(platform)
            cutoff = None if threshold is None else max(0.0, threshold - value)
            short = (
                cutoff is not None
                and score < cutoff
                and (benign_ceiling is None or score < benign_ceiling)
            )
            decisions.append(
                CascadeDecision(
                    probability=float(score),
                    short_circuit=short,
                    platform_threshold=threshold,
                )
            )
        return decisions

    # ------------------------------------------------------------------ #
    # identity + persistence

    def fingerprint(self) -> str:
        """Content identity of the trained head: config plus a digest of
        the learned vocabulary, weights, calibration and thresholds.

        Folded into
        :meth:`~repro.core.pipeline.ScamDetectPipeline.model_fingerprint`,
        so registry rows and caches recorded under one cascade generation
        are never served to another.
        """
        if not self.is_fitted:
            raise CascadeError("cannot fingerprint an unfitted cascade head")
        digest = hashlib.sha256(
            json.dumps(self.metadata(), sort_keys=True).encode("utf-8")
        )
        for key, array in sorted(self.state_arrays().items()):
            digest.update(key.encode("utf-8"))
            digest.update(str(array.shape).encode("utf-8"))
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()[:16]

    def metadata(self) -> Dict[str, object]:
        """JSON-ready state (everything except the numeric arrays)."""
        if not self.is_fitted:
            raise CascadeError("cannot serialize an unfitted cascade head")
        return {
            "config": self.config.to_dict(),
            "ngram_vocabulary": [
                list(ngram) for ngram in self._tfidf.vocabulary_ngrams()
            ],
            "classes": [int(label) for label in self._classifier.classes_],
            "thresholds": {
                platform: float(threshold)
                for platform, threshold in sorted(self._thresholds.items())
            },
        }

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """The numeric arrays, keyed for storage inside the bundle npz."""
        if not self.is_fitted:
            raise CascadeError("cannot serialize an unfitted cascade head")
        first, second = self._calibration
        return {
            "weights": np.asarray(self._classifier.weights_),
            "bias": np.asarray(self._classifier.bias_),
            "idf": np.asarray(self._tfidf.idf),
            "calibration_first": np.asarray(first),
            "calibration_second": np.asarray(second),
        }

    @classmethod
    def from_state(
        cls, metadata: Dict[str, object], arrays: Dict[str, np.ndarray]
    ) -> "CascadeHead":
        """Rebuild a trained head from :meth:`metadata` +
        :meth:`state_arrays` output."""
        try:
            config = CascadeConfig.from_dict(metadata["config"])
            head = cls(config)
            head._tfidf.restore(
                [tuple(ngram) for ngram in metadata["ngram_vocabulary"]],
                np.asarray(arrays["idf"], dtype=np.float64),
            )
            head._classifier.weights_ = np.asarray(arrays["weights"], dtype=np.float64)
            head._classifier.bias_ = np.asarray(arrays["bias"], dtype=np.float64)
            head._classifier.classes_ = np.asarray(metadata["classes"])
            head._calibration = (
                np.asarray(arrays["calibration_first"], dtype=np.float64),
                np.asarray(arrays["calibration_second"], dtype=np.float64),
            )
            head._thresholds = {
                str(platform): float(threshold)
                for platform, threshold in metadata["thresholds"].items()
            }
        except (KeyError, TypeError, ValueError) as error:
            raise CascadeError(f"corrupt cascade state in bundle: {error}") from error
        return head

    def describe(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return (
            f"cascade-{self.config.calibration}"
            f"({self.config.ngram_order}gram+histogram, "
            f"top_k={self.config.top_k}, {state})"
        )

    def __repr__(self) -> str:
        return f"CascadeHead({self.describe()})"


def threshold_at_recall(positive_scores: np.ndarray, target_recall: float) -> float:
    """The largest threshold keeping ``target_recall`` of the positive
    scores at or above it.

    Flagging ``score >= threshold`` then reaches at least the target
    recall on the fitting set; ``target_recall=1.0`` returns the minimum
    positive score (no training positive may ever fall below the line).
    """
    if not 0.0 < target_recall <= 1.0:
        raise ValueError("target_recall must be in (0, 1]")
    ordered = np.sort(np.asarray(positive_scores, dtype=np.float64).ravel())
    if len(ordered) == 0:
        raise ValueError("threshold_at_recall needs at least one positive")
    allowed_misses = int(np.floor((1.0 - target_recall) * len(ordered)))
    return float(ordered[min(allowed_misses, len(ordered) - 1)])
