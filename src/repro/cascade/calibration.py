"""Probability calibration for the cascade pre-filter.

Two classic post-hoc calibrators over a 1-D score:

* **Platt scaling** -- fit ``sigmoid(a * score + b)`` by Newton's method on
  the regularized log-loss, using Platt's smoothed targets
  ``t+ = (n+ + 1) / (n+ + 2)`` and ``t- = 1 / (n- + 2)`` so the calibrated
  probabilities never saturate at exactly 0/1.
* **Isotonic regression** -- pool-adjacent-violators over the sorted
  scores; monotone by construction, predictions interpolate linearly
  between the fitted knots.

Both fits are closed, deterministic numpy procedures (no RNG), which is
what makes cascade training reproducible bit-for-bit under a fixed config.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # evaluate on the negative half-line only so exp never overflows
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exponent = np.exp(z[~positive])
    out[~positive] = exponent / (1.0 + exponent)
    return out


def fit_platt(
    scores: np.ndarray,
    labels: np.ndarray,
    iterations: int = 50,
    ridge: float = 1e-9,
) -> Tuple[float, float]:
    """Fit Platt's sigmoid ``p = sigmoid(a * score + b)``; returns (a, b).

    Newton iterations on the log-loss with Platt's smoothed targets; the
    tiny ``ridge`` keeps the 2x2 Hessian invertible when the scores are
    (near-)constant.
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    labels = np.asarray(labels).ravel()
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must have the same length")
    num_positive = float((labels == 1).sum())
    num_negative = float(len(labels)) - num_positive
    if num_positive == 0 or num_negative == 0:
        raise ValueError("Platt scaling needs both classes present")
    target_positive = (num_positive + 1.0) / (num_positive + 2.0)
    target_negative = 1.0 / (num_negative + 2.0)
    targets = np.where(labels == 1, target_positive, target_negative)

    a, b = 1.0, 0.0
    for _ in range(iterations):
        z = a * scores + b
        p = _sigmoid(z)
        residual = p - targets
        gradient = np.array(
            [
                float((residual * scores).sum()),
                float(residual.sum()),
            ]
        )
        weight = p * (1.0 - p)
        hessian = np.array(
            [
                [
                    float((weight * scores * scores).sum()),
                    float((weight * scores).sum()),
                ],
                [float((weight * scores).sum()), float(weight.sum())],
            ]
        )
        hessian[0, 0] += ridge
        hessian[1, 1] += ridge
        step = np.linalg.solve(hessian, gradient)
        a -= float(step[0])
        b -= float(step[1])
        if float(np.abs(step).max()) < 1e-12:
            break
    return float(a), float(b)


def apply_platt(scores: np.ndarray, a: float, b: float) -> np.ndarray:
    """Calibrated probabilities under fitted Platt parameters."""
    scores = np.asarray(scores, dtype=np.float64)
    return _sigmoid(a * scores + b)


def fit_isotonic(
    scores: np.ndarray, labels: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Isotonic (PAV) fit of ``P(label=1 | score)``; returns knot arrays.

    The returned ``(x, y)`` arrays are strictly increasing in ``x`` with
    non-decreasing ``y``; predict with :func:`apply_isotonic`.
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must have the same length")
    if len(scores) == 0:
        raise ValueError("isotonic regression needs at least one sample")
    # deterministic order: by score, ties broken by label
    order = np.lexsort((labels, scores))
    xs = scores[order]
    ys = labels[order]

    # pool adjacent violators: each block holds (value_sum, weight)
    block_value: list = []
    block_weight: list = []
    block_start: list = []
    for index in range(len(ys)):
        block_value.append(float(ys[index]))
        block_weight.append(1.0)
        block_start.append(index)
        while (
            len(block_value) > 1
            and block_value[-2] / block_weight[-2]
            >= block_value[-1] / block_weight[-1]
        ):
            value = block_value.pop() + block_value[-1]
            weight = block_weight.pop() + block_weight[-1]
            block_start.pop()
            block_value[-1] = value
            block_weight[-1] = weight

    fitted = np.empty(len(ys), dtype=np.float64)
    boundaries = block_start + [len(ys)]
    for block, start in enumerate(block_start):
        fitted[start : boundaries[block + 1]] = (
            block_value[block] / block_weight[block]
        )

    # collapse duplicate x so the knot axis is strictly increasing (keep
    # the last fitted value per x: PAV already made it monotone)
    knots_x: list = []
    knots_y: list = []
    for index in range(len(xs)):
        if knots_x and xs[index] == knots_x[-1]:
            knots_y[-1] = fitted[index]
        else:
            knots_x.append(float(xs[index]))
            knots_y.append(float(fitted[index]))
    return np.asarray(knots_x), np.asarray(knots_y)


def apply_isotonic(
    scores: np.ndarray, knots_x: np.ndarray, knots_y: np.ndarray
) -> np.ndarray:
    """Predict under a fitted isotonic model (linear between knots,
    clamped to the end values outside the fitted range)."""
    scores = np.asarray(scores, dtype=np.float64)
    return np.interp(scores, knots_x, knots_y)
