"""Two-stage cascade scoring: a calibrated linear pre-filter (tier 0).

The cascade puts a cheap, calibrated logistic head over TF-IDF opcode
n-grams + opcode histograms in front of the GNN (tier 1).  Confident-benign
contracts short-circuit before graph lowering -- the dominant per-contract
cost -- while everything in the uncertain band pays the full pipeline
price, so verdict fidelity is preserved by construction of the margin.
"""

from repro.cascade.calibration import (
    apply_isotonic,
    apply_platt,
    fit_isotonic,
    fit_platt,
)
from repro.cascade.head import (
    CascadeConfig,
    CascadeDecision,
    CascadeError,
    CascadeHead,
)

__all__ = [
    "CascadeConfig",
    "CascadeDecision",
    "CascadeError",
    "CascadeHead",
    "apply_isotonic",
    "apply_platt",
    "fit_isotonic",
    "fit_platt",
]
