"""Synthetic WASM smart-contract templates.

Analogous to :mod:`repro.evm.contracts`, these templates stand in for real
NEAR/Polkadot/EOS contract binaries (unavailable offline).  Each template
emits a :class:`~repro.wasm.module.WasmModule` whose functions follow the
shapes produced by contract SDKs: guard checks on the caller, state held in
globals/linear memory, host interaction through ``call``, bounded loops and
arithmetic.  The malicious families mirror the EVM ones so the
cross-platform experiment (E5) compares like with like.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.wasm.encoder import encode_module
from repro.wasm.module import WasmFunction, WasmInstructionEntry, WasmModule, instr
from repro.wasm.opcodes import BLOCKTYPE_VOID, VALTYPE_I64

# Host-function index convention used by the templates: the first few defined
# functions act as "host shims" (storage read/write, transfer, log), the way
# contract SDKs wrap imported host functions.
HOST_STORAGE_READ = 0
HOST_STORAGE_WRITE = 1
HOST_TRANSFER = 2
HOST_LOG_EVENT = 3
NUM_HOST_SHIMS = 4


class WasmContractBuilder:
    """Composable instruction-sequence snippets for WASM contract bodies."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng or random.Random(0)
        self.module = WasmModule()
        self._void_type = self.module.add_type(0, 0)
        self._unary_type = self.module.add_type(1, 1)
        self._emit_host_shims()

    # -- host shims ------------------------------------------------------- #

    def _emit_host_shims(self) -> None:
        """Small helper functions standing in for imported host functions."""
        for shim in range(NUM_HOST_SHIMS):
            body = [
                instr("local.get", 0),
                instr("i64.const", shim + 1),
                instr("i64.add"),
            ]
            if shim in (HOST_STORAGE_READ,):
                body.append(instr("global.get", 0))
                body.append(instr("i64.add"))
            elif shim in (HOST_STORAGE_WRITE,):
                body.insert(0, instr("global.set", 0))
                body.insert(0, instr("local.get", 0))
            body.append(instr("drop"))
            self.module.add_function(WasmFunction(
                type_index=self._unary_type,
                locals=[(1, VALTYPE_I64)],
                body=body,
                name=f"host_shim_{shim}"))

    # -- snippets ---------------------------------------------------------- #

    def snippet_guard_caller(self, owner_global: int = 1) -> List[WasmInstructionEntry]:
        """if (caller != owner) return -- SDK-style access control check."""
        return [
            instr("local.get", 0),
            instr("global.get", owner_global),
            instr("i64.ne"),
            instr("if", BLOCKTYPE_VOID),
            instr("return"),
            instr("end"),
        ]

    def snippet_storage_update(self, slot: int, add: bool = True) -> List[WasmInstructionEntry]:
        """storage[slot] ±= arg -- via host shims and a global mirror."""
        return [
            instr("i64.const", slot),
            instr("call", HOST_STORAGE_READ),
            instr("local.get", 0),
            instr("global.get", slot % 4),
            instr("i64.add" if add else "i64.sub"),
            instr("global.set", slot % 4),
            instr("i64.const", slot),
            instr("call", HOST_STORAGE_WRITE),
        ]

    def snippet_arith_burst(self, depth: Optional[int] = None) -> List[WasmInstructionEntry]:
        depth = depth if depth is not None else self.rng.randint(2, 6)
        body = [instr("local.get", 0)]
        for _ in range(depth):
            body.append(instr("i64.const", self.rng.randrange(1, 1 << 16)))
            body.append(instr(self.rng.choice(
                ["i64.add", "i64.sub", "i64.mul", "i64.and", "i64.or", "i64.xor"])))
        body.append(instr("drop"))
        return body

    def snippet_memory_touch(self) -> List[WasmInstructionEntry]:
        offset = self.rng.randrange(0, 1024)
        return [
            instr("i32.const", offset),
            instr("i32.const", self.rng.randrange(1, 1 << 20)),
            instr("i32.store", 2, offset),
            instr("i32.const", offset),
            instr("i32.load", 2, offset),
            instr("drop"),
        ]

    def snippet_log_event(self) -> List[WasmInstructionEntry]:
        return [
            instr("local.get", 0),
            instr("call", HOST_LOG_EVENT),
        ]

    def snippet_transfer(self) -> List[WasmInstructionEntry]:
        return [
            instr("local.get", 0),
            instr("call", HOST_TRANSFER),
        ]

    def snippet_bounded_loop(self, body: List[WasmInstructionEntry],
                             bound_local: int = 1) -> List[WasmInstructionEntry]:
        """loop { body; i++; br_if i < bound }"""
        return ([instr("i64.const", 0), instr("local.set", bound_local),
                 instr("loop", BLOCKTYPE_VOID)]
                + body
                + [
                    instr("local.get", bound_local),
                    instr("i64.const", 1),
                    instr("i64.add"),
                    instr("local.tee", bound_local),
                    instr("local.get", 0),
                    instr("i64.lt_s"),
                    instr("br_if", 0),
                    instr("end"),
                ])

    def snippet_conditional(self, then_body: List[WasmInstructionEntry],
                            else_body: Optional[List[WasmInstructionEntry]] = None
                            ) -> List[WasmInstructionEntry]:
        result = [
            instr("local.get", 0),
            instr("i64.const", self.rng.randrange(1, 1 << 8)),
            instr("i64.gt_s"),
            instr("if", BLOCKTYPE_VOID),
        ] + then_body
        if else_body is not None:
            result.append(instr("else"))
            result.extend(else_body)
        result.append(instr("end"))
        return result

    # -- function / module assembly ---------------------------------------- #

    def add_export_function(self, body: List[WasmInstructionEntry], name: str = "") -> int:
        function = WasmFunction(type_index=self._unary_type,
                                locals=[(2, VALTYPE_I64)],
                                body=list(body), name=name, is_export=True)
        return self.module.add_function(function)

    def binary(self) -> bytes:
        return encode_module(self.module)


# --------------------------------------------------------------------------- #
# templates


@dataclass(frozen=True)
class WasmContractTemplate:
    """A named WASM contract family generator (same contract as the EVM one)."""

    name: str
    label: int
    family_kind: str
    generator: Callable[[random.Random], bytes]

    def generate(self, rng: Optional[random.Random] = None) -> bytes:
        return self.generator(rng or random.Random())


def generate_wasm_token(rng: random.Random) -> bytes:
    """Fungible token: transfer / balance_of / mint with owner guard."""
    b = WasmContractBuilder(rng)
    transfer = (b.snippet_guard_caller()
                + b.snippet_storage_update(2, add=False)
                + b.snippet_storage_update(3, add=True)
                + b.snippet_log_event()
                + [instr("local.get", 0)])
    balance_of = (b.snippet_arith_burst()
                  + [instr("i64.const", 2), instr("call", HOST_STORAGE_READ),
                     instr("local.get", 0)])
    mint = (b.snippet_guard_caller()
            + b.snippet_storage_update(1, add=True)
            + b.snippet_log_event()
            + [instr("local.get", 0)])
    b.add_export_function(transfer, "ft_transfer")
    b.add_export_function(balance_of, "ft_balance_of")
    b.add_export_function(mint, "ft_mint")
    if rng.random() < 0.5:
        b.add_export_function(b.snippet_arith_burst() + [instr("local.get", 0)],
                              "ft_metadata")
    return b.binary()


def generate_wasm_staking_vault(rng: random.Random) -> bytes:
    """Staking vault: deposit / withdraw / accrue with bounded reward loop."""
    b = WasmContractBuilder(rng)
    deposit = (b.snippet_memory_touch()
               + b.snippet_storage_update(2, add=True)
               + b.snippet_log_event()
               + [instr("local.get", 0)])
    withdraw = (b.snippet_guard_caller()
                + b.snippet_storage_update(2, add=False)
                + b.snippet_transfer()
                + b.snippet_log_event()
                + [instr("local.get", 0)])
    accrue = (b.snippet_bounded_loop(b.snippet_arith_burst(3)
                                     + b.snippet_storage_update(3, add=True))
              + [instr("local.get", 0)])
    b.add_export_function(deposit, "deposit")
    b.add_export_function(withdraw, "withdraw")
    b.add_export_function(accrue, "accrue_rewards")
    return b.binary()


def generate_wasm_registry(rng: random.Random) -> bytes:
    """A name/asset registry: register / resolve / update with owner checks."""
    b = WasmContractBuilder(rng)
    register = (b.snippet_conditional(b.snippet_storage_update(2, add=True),
                                      [instr("return")])
                + b.snippet_log_event()
                + [instr("local.get", 0)])
    resolve = (b.snippet_memory_touch()
               + [instr("i64.const", 2), instr("call", HOST_STORAGE_READ),
                  instr("local.get", 0)])
    update = (b.snippet_guard_caller()
              + b.snippet_storage_update(3, add=True)
              + [instr("local.get", 0)])
    b.add_export_function(register, "register")
    b.add_export_function(resolve, "resolve")
    b.add_export_function(update, "update")
    if rng.random() < 0.5:
        b.add_export_function(b.snippet_memory_touch() + [instr("local.get", 0)],
                              "stats")
    return b.binary()


def generate_wasm_drainer(rng: random.Random) -> bytes:
    """Approval drainer: bait entrypoint plus a sweep loop of transfers."""
    b = WasmContractBuilder(rng)
    sweep_body = (b.snippet_transfer() + b.snippet_transfer()
                  + b.snippet_storage_update(2, add=False))
    sweep = ([instr("local.get", 0), instr("global.get", 1), instr("i64.eq"),
              instr("if", BLOCKTYPE_VOID)]
             + b.snippet_bounded_loop(sweep_body)
             + [instr("end"), instr("local.get", 0)])
    register_victim = (b.snippet_storage_update(3, add=True)
                       + b.snippet_transfer()
                       + [instr("local.get", 0)])
    set_attacker = ([instr("local.get", 0), instr("global.set", 1),
                     instr("local.get", 0)])
    decoy = b.snippet_arith_burst() + [instr("local.get", 0)]
    b.add_export_function(register_victim, "claim_airdrop")
    b.add_export_function(sweep, "sweep")
    b.add_export_function(set_attacker, "init")
    for _ in range(rng.randint(1, 2)):
        b.add_export_function(list(decoy), "view_stats")
    return b.binary()


def generate_wasm_honeypot(rng: random.Random) -> bytes:
    """Honeypot: payout gated on an unsatisfiable secret, hidden owner drain."""
    b = WasmContractBuilder(rng)
    magic = rng.randrange(1 << 32, 1 << 48)
    deposit = (b.snippet_storage_update(2, add=True)
               + b.snippet_storage_update(0, add=True)  # secret silently grows
               + b.snippet_log_event()
               + [instr("local.get", 0)])
    withdraw = ([instr("local.get", 0), instr("global.get", 0),
                 instr("i64.const", magic), instr("i64.add"), instr("i64.eq"),
                 instr("if", BLOCKTYPE_VOID)]
                + b.snippet_transfer()
                + [instr("end"), instr("local.get", 0)])
    drain = (b.snippet_guard_caller()
             + b.snippet_transfer() + b.snippet_transfer()
             + [instr("unreachable")])
    b.add_export_function(deposit, "deposit")
    b.add_export_function(withdraw, "withdraw")
    b.add_export_function(drain, "collect")
    b.add_export_function(b.snippet_arith_burst() + [instr("local.get", 0)], "stats")
    return b.binary()


def generate_wasm_backdoor(rng: random.Random) -> bytes:
    """Backdoor: every path funnels into a call_indirect on an unguarded global."""
    b = WasmContractBuilder(rng)
    execute = ([instr("global.get", 2), instr("i32.wrap_i64"), instr("drop"),
                instr("local.get", 0), instr("i32.wrap_i64"),
                instr("call_indirect", 0, 0),
                instr("local.get", 0)])
    upgrade = ([instr("local.get", 0), instr("global.set", 2),
                instr("local.get", 0)])  # no access control
    deposit = (b.snippet_storage_update(1, add=True)
               + [instr("local.get", 0), instr("i32.wrap_i64"),
                  instr("call_indirect", 0, 0)]
               + [instr("local.get", 0)])
    probe = (b.snippet_memory_touch()
             + [instr("memory.size", 0), instr("drop"), instr("local.get", 0)])
    b.add_export_function(execute, "execute")
    b.add_export_function(upgrade, "set_impl")
    b.add_export_function(deposit, "deposit")
    b.add_export_function(probe, "probe")
    return b.binary()


def generate_wasm_rugpull(rng: random.Random) -> bytes:
    """Rug-pull token: hidden unbounded fee, owner mint and liquidity drain."""
    b = WasmContractBuilder(rng)
    transfer = (b.snippet_arith_burst(2)
                + [instr("global.get", 3), instr("i64.const", 100), instr("i64.sub"),
                   instr("i64.mul"), instr("i64.const", 100), instr("i64.div_s"),
                   instr("drop")]
                + b.snippet_storage_update(2, add=False)
                + b.snippet_storage_update(3, add=True)
                + [instr("local.get", 0)])
    set_fee = ([instr("local.get", 0), instr("global.set", 3),
                instr("local.get", 0)])  # unbounded fee, no guard on range
    hidden_mint = (b.snippet_guard_caller()
                   + b.snippet_storage_update(1, add=True)
                   + b.snippet_storage_update(2, add=True)
                   + [instr("local.get", 0)])
    drain = (b.snippet_guard_caller()
             + b.snippet_transfer() + b.snippet_transfer()
             + [instr("unreachable")])
    b.add_export_function(transfer, "transfer")
    b.add_export_function(set_fee, "set_fee")
    b.add_export_function(hidden_mint, "mint")
    b.add_export_function(drain, "remove_liquidity")
    return b.binary()


WASM_BENIGN_TEMPLATES: List[WasmContractTemplate] = [
    WasmContractTemplate("wasm_token", 0, "token", generate_wasm_token),
    WasmContractTemplate("wasm_staking_vault", 0, "defi", generate_wasm_staking_vault),
    WasmContractTemplate("wasm_registry", 0, "registry", generate_wasm_registry),
]

WASM_MALICIOUS_TEMPLATES: List[WasmContractTemplate] = [
    WasmContractTemplate("wasm_drainer", 1, "phishing", generate_wasm_drainer),
    WasmContractTemplate("wasm_honeypot", 1, "honeypot", generate_wasm_honeypot),
    WasmContractTemplate("wasm_backdoor", 1, "backdoor", generate_wasm_backdoor),
    WasmContractTemplate("wasm_rugpull", 1, "rugpull", generate_wasm_rugpull),
]

WASM_ALL_TEMPLATES: List[WasmContractTemplate] = (
    WASM_BENIGN_TEMPLATES + WASM_MALICIOUS_TEMPLATES)

WASM_TEMPLATES_BY_NAME: Dict[str, WasmContractTemplate] = {
    t.name: t for t in WASM_ALL_TEMPLATES}
