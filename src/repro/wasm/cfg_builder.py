"""Control-flow graph construction for the WASM subset.

WASM control flow is structured (``block`` / ``loop`` / ``if`` / ``else`` /
``end`` with relative branch labels), so CFG construction differs from the
EVM: instead of resolving stack-held jump targets, the builder matches each
structured construct with its ``end`` (and ``else``), turns branch labels
into concrete instruction indices, and then splits basic blocks at leaders.

The module-level CFG is the union of the per-function CFGs plus ``call``
edges from every block containing a direct ``call`` to the entry block of the
callee, giving the GNN an interprocedural view comparable to the EVM
whole-contract graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.basic_block import BasicBlock
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instruction import IRInstruction
from repro.wasm.module import WasmFunction, WasmInstructionEntry, WasmModule
from repro.wasm.parser import parse_module

#: Spacing between the offset ranges assigned to consecutive functions, so
#: block ids from different functions never collide.
_FUNCTION_OFFSET_STRIDE = 100000


@dataclass
class _Frame:
    kind: str          # "block" | "loop" | "if"
    start: int         # index of the block/loop/if instruction
    end: int = -1      # index of the matching end
    else_index: int = -1


def _match_structures(body: List[WasmInstructionEntry]) -> Dict[int, _Frame]:
    """Map the index of each block/loop/if instruction to its matched frame."""
    frames: Dict[int, _Frame] = {}
    stack: List[_Frame] = []
    for index, entry in enumerate(body):
        if entry.name in ("block", "loop", "if"):
            frame = _Frame(kind=entry.name, start=index)
            frames[index] = frame
            stack.append(frame)
        elif entry.name == "else":
            if stack:
                stack[-1].else_index = index
        elif entry.name == "end":
            if stack:
                stack.pop().end = index
    # unterminated frames (malformed body): close at the end of the body
    for frame in frames.values():
        if frame.end < 0:
            frame.end = len(body) - 1
    return frames


def _branch_target(frames: Dict[int, _Frame], enclosing: List[int],
                   label: int, body_len: int) -> int:
    """Instruction index a ``br``/``br_if`` with ``label`` transfers to."""
    if label >= len(enclosing):
        return body_len  # branching out of the function: treat as exit
    frame = frames[enclosing[-1 - label]]
    if frame.kind == "loop":
        return frame.start  # back-edge to the loop header
    return frame.end + 1    # forward edge to after the construct


class WasmCFGBuilder:
    """Builds :class:`ControlFlowGraph` objects from WASM modules or binaries."""

    def __init__(self, interprocedural: bool = True) -> None:
        self.interprocedural = interprocedural

    # ------------------------------------------------------------------ #

    def build_from_module(self, module: WasmModule, name: str = "") -> ControlFlowGraph:
        cfg = ControlFlowGraph(platform="wasm", name=name or module.name)
        function_entry: Dict[int, int] = {}
        call_sites: List[Tuple[int, int]] = []  # (block_id, callee_index)

        for func_index, function in enumerate(module.functions):
            base = func_index * _FUNCTION_OFFSET_STRIDE
            entry_id = self._build_function(cfg, function, base,
                                            is_entry=(func_index == 0),
                                            call_sites=call_sites)
            if entry_id is not None:
                function_entry[func_index] = entry_id

        if self.interprocedural:
            for block_id, callee in call_sites:
                target = function_entry.get(callee)
                if target is not None and target != block_id:
                    cfg.add_edge(block_id, target, kind="call")
        return cfg

    def build(self, data: bytes, name: str = "") -> ControlFlowGraph:
        """Build the CFG of a binary module."""
        return self.build_from_module(parse_module(data, name=name), name=name)

    # ------------------------------------------------------------------ #

    def _build_function(self, cfg: ControlFlowGraph, function: WasmFunction,
                        base: int, is_entry: bool,
                        call_sites: List[Tuple[int, int]]) -> Optional[int]:
        body = function.body
        if not body:
            block = BasicBlock(block_id=base, is_entry=is_entry, instructions=[
                IRInstruction(offset=base, mnemonic="nop", category="stack",
                              platform="wasm")])
            cfg.add_block(block)
            return base

        frames = _match_structures(body)

        # leaders: entry, loop headers, instruction after control transfers,
        # and branch targets.
        leaders: Set[int] = {0}
        enclosing: List[int] = []
        for index, entry in enumerate(body):
            if entry.name in ("block", "loop", "if"):
                enclosing.append(index)
                if entry.name == "loop":
                    leaders.add(index)
                if entry.name == "if":
                    leaders.add(index + 1)
                    frame = frames[index]
                    false_target = (frame.else_index + 1 if frame.else_index >= 0
                                    else frame.end + 1)
                    leaders.add(min(false_target, len(body)))
            elif entry.name == "end":
                if enclosing:
                    enclosing.pop()
                leaders.add(index + 1)
            elif entry.name == "else":
                leaders.add(index + 1)
                frame = frames[enclosing[-1]] if enclosing else None
                if frame is not None:
                    leaders.add(min(frame.end + 1, len(body)))
            elif entry.name in ("br", "br_if"):
                label = entry.operands[0] if entry.operands else 0
                leaders.add(index + 1)
                leaders.add(min(_branch_target(frames, enclosing, label, len(body)),
                                len(body)))
            elif entry.name in ("return", "unreachable"):
                leaders.add(index + 1)
        leaders = {leader for leader in leaders if leader < len(body)}

        # build blocks
        ordered_leaders = sorted(leaders)
        block_of_index: Dict[int, int] = {}
        blocks: List[Tuple[int, int, int]] = []  # (block_id, start, end_exclusive)
        for pos, start in enumerate(ordered_leaders):
            end = ordered_leaders[pos + 1] if pos + 1 < len(ordered_leaders) else len(body)
            block_id = base + start
            blocks.append((block_id, start, end))
            for index in range(start, end):
                block_of_index[index] = block_id
            instructions = [
                IRInstruction(offset=base + index, mnemonic=body[index].name,
                              category=body[index].opcode.category,
                              operand=(body[index].operands[0]
                                       if body[index].operands else None),
                              platform="wasm")
                for index in range(start, end)
            ]
            cfg.add_block(BasicBlock(block_id=block_id, instructions=instructions,
                                     is_entry=(is_entry and pos == 0)))

        # record call sites
        for index, entry in enumerate(body):
            if entry.name == "call" and entry.operands:
                call_sites.append((block_of_index[index], entry.operands[0]))

        # edges
        enclosing = []
        # recompute enclosing chain per index for target resolution
        enclosing_at: List[List[int]] = []
        current: List[int] = []
        for index, entry in enumerate(body):
            if entry.name in ("block", "loop", "if"):
                current.append(index)
                enclosing_at.append(list(current))
            elif entry.name == "end":
                enclosing_at.append(list(current))
                if current:
                    current.pop()
            else:
                enclosing_at.append(list(current))

        def block_at(index: int) -> Optional[int]:
            if index >= len(body):
                return None
            return block_of_index.get(index)

        for block_id, start, end in blocks:
            last_index = end - 1
            last = body[last_index]
            chain = enclosing_at[last_index]
            if last.name == "br":
                label = last.operands[0] if last.operands else 0
                target = block_at(_branch_target(frames, chain, label, len(body)))
                if target is not None:
                    cfg.add_edge(block_id, target, kind="jump")
            elif last.name == "br_if":
                label = last.operands[0] if last.operands else 0
                target = block_at(_branch_target(frames, chain, label, len(body)))
                if target is not None:
                    cfg.add_edge(block_id, target, kind="branch")
                fall = block_at(end)
                if fall is not None:
                    cfg.add_edge(block_id, fall, kind="fallthrough")
            elif last.name == "if":
                then_block = block_at(end)
                if then_block is not None:
                    cfg.add_edge(block_id, then_block, kind="branch")
                frame = frames[last_index]
                false_target = (frame.else_index + 1 if frame.else_index >= 0
                                else frame.end + 1)
                false_block = block_at(false_target)
                if false_block is not None and false_block != block_id:
                    cfg.add_edge(block_id, false_block, kind="fallthrough")
            elif last.name == "else":
                # end of the "then" region: control skips to after the construct
                frame_index = chain[-1] if chain else None
                if frame_index is not None:
                    target = block_at(frames[frame_index].end + 1)
                    if target is not None:
                        cfg.add_edge(block_id, target, kind="jump")
            elif last.name in ("return", "unreachable"):
                pass
            else:
                fall = block_at(end)
                if fall is not None:
                    cfg.add_edge(block_id, fall, kind="fallthrough")

        return blocks[0][0] if blocks else None


def build_cfg(data: bytes, name: str = "") -> ControlFlowGraph:
    """Convenience wrapper: build a WASM CFG from a binary module."""
    return WasmCFGBuilder().build(data, name=name)
