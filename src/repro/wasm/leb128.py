"""LEB128 variable-length integer encoding used by the WASM binary format."""

from __future__ import annotations

from typing import Tuple


class LEB128Error(ValueError):
    """Raised on malformed LEB128 sequences."""


def encode_unsigned(value: int) -> bytes:
    """Encode a non-negative integer as unsigned LEB128."""
    if value < 0:
        raise LEB128Error(f"cannot encode negative value {value} as unsigned LEB128")
    output = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            output.append(byte | 0x80)
        else:
            output.append(byte)
            return bytes(output)


def encode_signed(value: int) -> bytes:
    """Encode a (possibly negative) integer as signed LEB128."""
    output = bytearray()
    more = True
    while more:
        byte = value & 0x7F
        value >>= 7
        sign_bit = bool(byte & 0x40)
        if (value == 0 and not sign_bit) or (value == -1 and sign_bit):
            more = False
        else:
            byte |= 0x80
        output.append(byte)
    return bytes(output)


def decode_unsigned(data: bytes, offset: int = 0, max_bytes: int = 10) -> Tuple[int, int]:
    """Decode an unsigned LEB128 value.

    Returns:
        ``(value, new_offset)`` where ``new_offset`` points past the last byte
        consumed.

    Raises:
        LEB128Error: if the sequence is truncated or longer than ``max_bytes``.
    """
    result = 0
    shift = 0
    position = offset
    for _ in range(max_bytes):
        if position >= len(data):
            raise LEB128Error("truncated unsigned LEB128")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7
    raise LEB128Error("unsigned LEB128 too long")


def decode_signed(data: bytes, offset: int = 0, max_bytes: int = 10) -> Tuple[int, int]:
    """Decode a signed LEB128 value; see :func:`decode_unsigned` for the contract."""
    result = 0
    shift = 0
    position = offset
    for _ in range(max_bytes):
        if position >= len(data):
            raise LEB128Error("truncated signed LEB128")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            # sign-extend whenever the final byte's sign bit is set; a
            # shift cap here would mis-decode 10-byte encodings (negative
            # values near the int64 boundary reach shift 70), found by the
            # seeded round-trip fuzzer
            if byte & 0x40:
                result |= -(1 << shift)
            return result, position
    raise LEB128Error("signed LEB128 too long")
