"""Binary parser for the WASM module subset (inverse of the encoder)."""

from __future__ import annotations

from typing import List, Tuple

from repro.wasm.encoder import MAGIC, SECTION_CODE, SECTION_FUNCTION, SECTION_TYPE, VERSION
from repro.wasm.leb128 import decode_signed, decode_unsigned
from repro.wasm.module import WasmFunction, WasmInstructionEntry, WasmModule
from repro.wasm.opcodes import (
    IMM_BLOCKTYPE,
    IMM_CALL_INDIRECT,
    IMM_I32,
    IMM_I64,
    IMM_INDEX,
    IMM_MEMARG,
    IMM_NONE,
    WASM_OPCODES,
)


class WasmParseError(ValueError):
    """Raised on malformed module binaries."""


def decode_instruction(data: bytes, offset: int) -> Tuple[WasmInstructionEntry, int]:
    """Decode one instruction at ``offset``; returns (entry, new_offset)."""
    if offset >= len(data):
        raise WasmParseError("truncated instruction stream")
    opcode = WASM_OPCODES.get(data[offset])
    if opcode is None:
        raise WasmParseError(f"unknown opcode byte 0x{data[offset]:02x} at {offset}")
    offset += 1
    kind = opcode.immediate
    operands: Tuple[int, ...] = ()
    if kind == IMM_NONE:
        pass
    elif kind == IMM_BLOCKTYPE:
        if offset >= len(data):
            raise WasmParseError("truncated blocktype")
        operands = (data[offset],)
        offset += 1
    elif kind == IMM_INDEX:
        value, offset = decode_unsigned(data, offset)
        operands = (value,)
    elif kind == IMM_MEMARG:
        align, offset = decode_unsigned(data, offset)
        mem_offset, offset = decode_unsigned(data, offset)
        operands = (align, mem_offset)
    elif kind in (IMM_I32, IMM_I64):
        value, offset = decode_signed(data, offset)
        operands = (value,)
    elif kind == IMM_CALL_INDIRECT:
        type_index, offset = decode_unsigned(data, offset)
        table_index, offset = decode_unsigned(data, offset)
        operands = (type_index, table_index)
    else:  # pragma: no cover - defensive
        raise WasmParseError(f"unhandled immediate kind {kind!r}")
    return WasmInstructionEntry(name=opcode.name, operands=operands), offset


def _parse_type_section(payload: bytes) -> List[Tuple[int, int]]:
    types: List[Tuple[int, int]] = []
    count, offset = decode_unsigned(payload, 0)
    for _ in range(count):
        if payload[offset] != 0x60:
            raise WasmParseError("expected functype marker 0x60")
        offset += 1
        params, offset = decode_unsigned(payload, offset)
        offset += params  # skip valtypes
        results, offset = decode_unsigned(payload, offset)
        offset += results
        types.append((params, results))
    return types


def _parse_function_section(payload: bytes) -> List[int]:
    indices: List[int] = []
    count, offset = decode_unsigned(payload, 0)
    for _ in range(count):
        index, offset = decode_unsigned(payload, offset)
        indices.append(index)
    return indices


def _parse_code_section(payload: bytes) -> List[WasmFunction]:
    functions: List[WasmFunction] = []
    count, offset = decode_unsigned(payload, 0)
    for _ in range(count):
        body_size, offset = decode_unsigned(payload, offset)
        body_end = offset + body_size
        local_groups, offset = decode_unsigned(payload, offset)
        locals_list: List[Tuple[int, int]] = []
        for _ in range(local_groups):
            local_count, offset = decode_unsigned(payload, offset)
            valtype = payload[offset]
            offset += 1
            locals_list.append((local_count, valtype))
        instructions: List[WasmInstructionEntry] = []
        depth = 0
        while offset < body_end:
            entry, offset = decode_instruction(payload, offset)
            if entry.name in ("block", "loop", "if"):
                depth += 1
            elif entry.name == "end":
                if depth == 0:
                    break  # function-terminating end: not part of the body
                depth -= 1
            instructions.append(entry)
        offset = body_end
        functions.append(WasmFunction(type_index=0, locals=locals_list, body=instructions))
    return functions


def parse_module(data: bytes, name: str = "") -> WasmModule:
    """Parse a binary module produced by :func:`repro.wasm.encoder.encode_module`.

    Unknown sections are skipped, mirroring the lenient behaviour of real
    decoders towards custom sections.
    """
    if len(data) < 8 or data[:4] != MAGIC:
        raise WasmParseError("missing \\0asm magic header")
    if data[4:8] != VERSION:
        raise WasmParseError("unsupported WASM version")

    module = WasmModule(name=name)
    type_indices: List[int] = []
    offset = 8
    while offset < len(data):
        section_id = data[offset]
        offset += 1
        size, offset = decode_unsigned(data, offset)
        payload = data[offset:offset + size]
        if len(payload) != size:
            raise WasmParseError("truncated section payload")
        offset += size
        if section_id == SECTION_TYPE:
            module.types = _parse_type_section(payload)
        elif section_id == SECTION_FUNCTION:
            type_indices = _parse_function_section(payload)
        elif section_id == SECTION_CODE:
            module.functions = _parse_code_section(payload)
        # other sections are ignored

    for index, function in enumerate(module.functions):
        if index < len(type_indices):
            function.type_index = type_indices[index]
    if not module.types and module.functions:
        module.types = [(0, 0)]
    return module
