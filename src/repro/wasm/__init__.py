"""WASM substrate: a WebAssembly subset sufficient for smart-contract analysis.

The WASM frontend mirrors the EVM frontend: it can encode and decode binary
modules (magic header, type/function/code sections, LEB128 immediates),
disassemble function bodies, and lower structured control flow into the same
platform-agnostic :class:`~repro.ir.cfg.ControlFlowGraph` the rest of the
pipeline consumes.  Contract templates analogous to the EVM families allow
the cross-platform experiments (E5) to run without access to real
NEAR/Polkadot/EOS contract binaries (see DESIGN.md substitutions).
"""

from repro.wasm.opcodes import WASM_OPCODES, WASM_OPCODES_BY_NAME, WasmOpcode
from repro.wasm.leb128 import encode_unsigned, encode_signed, decode_unsigned, decode_signed
from repro.wasm.module import WasmFunction, WasmModule, WasmInstructionEntry
from repro.wasm.encoder import encode_module
from repro.wasm.parser import parse_module
from repro.wasm.cfg_builder import WasmCFGBuilder, build_cfg
from repro.wasm.contracts import (
    WasmContractTemplate,
    WASM_BENIGN_TEMPLATES,
    WASM_MALICIOUS_TEMPLATES,
    WASM_ALL_TEMPLATES,
)

__all__ = [
    "WasmOpcode",
    "WASM_OPCODES",
    "WASM_OPCODES_BY_NAME",
    "encode_unsigned",
    "encode_signed",
    "decode_unsigned",
    "decode_signed",
    "WasmFunction",
    "WasmModule",
    "WasmInstructionEntry",
    "encode_module",
    "parse_module",
    "WasmCFGBuilder",
    "build_cfg",
    "WasmContractTemplate",
    "WASM_BENIGN_TEMPLATES",
    "WASM_MALICIOUS_TEMPLATES",
    "WASM_ALL_TEMPLATES",
]
