"""Binary encoder for the WASM module subset."""

from __future__ import annotations


from repro.wasm.leb128 import encode_signed, encode_unsigned
from repro.wasm.module import WasmFunction, WasmInstructionEntry, WasmModule
from repro.wasm.opcodes import (
    IMM_BLOCKTYPE,
    IMM_CALL_INDIRECT,
    IMM_I32,
    IMM_I64,
    IMM_INDEX,
    IMM_MEMARG,
    IMM_NONE,
    VALTYPE_I64,
    WASM_OPCODES_BY_NAME,
)

MAGIC = b"\x00asm"
VERSION = b"\x01\x00\x00\x00"

SECTION_TYPE = 1
SECTION_FUNCTION = 3
SECTION_CODE = 10


class WasmEncodeError(ValueError):
    """Raised when a module cannot be encoded."""


def encode_instruction(entry: WasmInstructionEntry) -> bytes:
    """Encode one instruction (opcode byte + immediates)."""
    opcode = WASM_OPCODES_BY_NAME.get(entry.name)
    if opcode is None:
        raise WasmEncodeError(f"unknown mnemonic {entry.name!r}")
    output = bytearray([opcode.value])
    kind = opcode.immediate
    operands = entry.operands
    if kind == IMM_NONE:
        if operands:
            raise WasmEncodeError(f"{entry.name} takes no operands")
    elif kind == IMM_BLOCKTYPE:
        output.append(operands[0] if operands else 0x40)
    elif kind == IMM_INDEX:
        output += encode_unsigned(operands[0] if operands else 0)
    elif kind == IMM_MEMARG:
        align = operands[0] if len(operands) > 0 else 2
        offset = operands[1] if len(operands) > 1 else 0
        output += encode_unsigned(align) + encode_unsigned(offset)
    elif kind == IMM_I32 or kind == IMM_I64:
        output += encode_signed(operands[0] if operands else 0)
    elif kind == IMM_CALL_INDIRECT:
        type_index = operands[0] if len(operands) > 0 else 0
        table_index = operands[1] if len(operands) > 1 else 0
        output += encode_unsigned(type_index) + encode_unsigned(table_index)
    else:  # pragma: no cover - defensive
        raise WasmEncodeError(f"unhandled immediate kind {kind!r}")
    return bytes(output)


def _encode_function_body(function: WasmFunction) -> bytes:
    body = bytearray()
    body += encode_unsigned(len(function.locals))
    for count, valtype in function.locals:
        body += encode_unsigned(count)
        body.append(valtype)
    for entry in function.body:
        body += encode_instruction(entry)
    body.append(WASM_OPCODES_BY_NAME["end"].value)
    return encode_unsigned(len(body)) + bytes(body)


def _section(section_id: int, payload: bytes) -> bytes:
    return bytes([section_id]) + encode_unsigned(len(payload)) + payload


def encode_module(module: WasmModule) -> bytes:
    """Encode a :class:`WasmModule` into its binary representation."""
    # type section: (param_count, result_count) with all-i64 params/results
    type_payload = bytearray(encode_unsigned(len(module.types)))
    for params, results in module.types:
        type_payload.append(0x60)  # functype
        type_payload += encode_unsigned(params)
        type_payload += bytes([VALTYPE_I64]) * params
        type_payload += encode_unsigned(results)
        type_payload += bytes([VALTYPE_I64]) * results

    func_payload = bytearray(encode_unsigned(len(module.functions)))
    for function in module.functions:
        func_payload += encode_unsigned(function.type_index)

    code_payload = bytearray(encode_unsigned(len(module.functions)))
    for function in module.functions:
        code_payload += _encode_function_body(function)

    return (MAGIC + VERSION
            + _section(SECTION_TYPE, bytes(type_payload))
            + _section(SECTION_FUNCTION, bytes(func_payload))
            + _section(SECTION_CODE, bytes(code_payload)))
