"""The WASM opcode subset used by the frontend.

The subset covers the instructions emitted by smart-contract toolchains that
matter for control-flow and category analysis: structured control flow,
branches, calls, locals, globals, linear-memory access, constants, integer
arithmetic/comparison and conversions.  Each opcode carries the normalized
semantic category shared with the EVM frontend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Immediate kinds understood by the encoder/parser.
IMM_NONE = "none"
IMM_BLOCKTYPE = "blocktype"   # single byte (0x40 = void, or a valtype)
IMM_INDEX = "index"           # one unsigned LEB128 (label/function/local/global index)
IMM_MEMARG = "memarg"         # two unsigned LEB128s (alignment, offset)
IMM_I32 = "i32"               # one signed LEB128
IMM_I64 = "i64"               # one signed LEB128
IMM_CALL_INDIRECT = "call_indirect"  # type index + table index (two LEB128s)


@dataclass(frozen=True)
class WasmOpcode:
    """A WASM opcode: byte value, mnemonic, immediate kind and category."""

    value: int
    name: str
    immediate: str
    category: str


def _w(value: int, name: str, immediate: str, category: str) -> WasmOpcode:
    return WasmOpcode(value=value, name=name, immediate=immediate, category=category)


_OPCODE_LIST = [
    # control
    _w(0x00, "unreachable", IMM_NONE, "terminator"),
    _w(0x01, "nop", IMM_NONE, "stack"),
    _w(0x02, "block", IMM_BLOCKTYPE, "control"),
    _w(0x03, "loop", IMM_BLOCKTYPE, "control"),
    _w(0x04, "if", IMM_BLOCKTYPE, "control"),
    _w(0x05, "else", IMM_NONE, "control"),
    _w(0x0B, "end", IMM_NONE, "control"),
    _w(0x0C, "br", IMM_INDEX, "control"),
    _w(0x0D, "br_if", IMM_INDEX, "control"),
    _w(0x0F, "return", IMM_NONE, "terminator"),
    _w(0x10, "call", IMM_INDEX, "call"),
    _w(0x11, "call_indirect", IMM_CALL_INDIRECT, "call"),
    # parametric
    _w(0x1A, "drop", IMM_NONE, "stack"),
    _w(0x1B, "select", IMM_NONE, "stack"),
    # variables
    _w(0x20, "local.get", IMM_INDEX, "local"),
    _w(0x21, "local.set", IMM_INDEX, "local"),
    _w(0x22, "local.tee", IMM_INDEX, "local"),
    _w(0x23, "global.get", IMM_INDEX, "storage"),
    _w(0x24, "global.set", IMM_INDEX, "storage"),
    # memory
    _w(0x28, "i32.load", IMM_MEMARG, "memory"),
    _w(0x29, "i64.load", IMM_MEMARG, "memory"),
    _w(0x2D, "i32.load8_u", IMM_MEMARG, "memory"),
    _w(0x36, "i32.store", IMM_MEMARG, "memory"),
    _w(0x37, "i64.store", IMM_MEMARG, "memory"),
    _w(0x3A, "i32.store8", IMM_MEMARG, "memory"),
    _w(0x3F, "memory.size", IMM_INDEX, "memory"),
    _w(0x40, "memory.grow", IMM_INDEX, "memory"),
    # constants
    _w(0x41, "i32.const", IMM_I32, "constant"),
    _w(0x42, "i64.const", IMM_I64, "constant"),
    # i32 comparison
    _w(0x45, "i32.eqz", IMM_NONE, "comparison"),
    _w(0x46, "i32.eq", IMM_NONE, "comparison"),
    _w(0x47, "i32.ne", IMM_NONE, "comparison"),
    _w(0x48, "i32.lt_s", IMM_NONE, "comparison"),
    _w(0x49, "i32.lt_u", IMM_NONE, "comparison"),
    _w(0x4A, "i32.gt_s", IMM_NONE, "comparison"),
    _w(0x4B, "i32.gt_u", IMM_NONE, "comparison"),
    _w(0x4C, "i32.le_s", IMM_NONE, "comparison"),
    _w(0x4E, "i32.ge_s", IMM_NONE, "comparison"),
    # i64 comparison
    _w(0x50, "i64.eqz", IMM_NONE, "comparison"),
    _w(0x51, "i64.eq", IMM_NONE, "comparison"),
    _w(0x52, "i64.ne", IMM_NONE, "comparison"),
    _w(0x53, "i64.lt_s", IMM_NONE, "comparison"),
    _w(0x55, "i64.gt_s", IMM_NONE, "comparison"),
    # i32 arithmetic / bitwise
    _w(0x6A, "i32.add", IMM_NONE, "arithmetic"),
    _w(0x6B, "i32.sub", IMM_NONE, "arithmetic"),
    _w(0x6C, "i32.mul", IMM_NONE, "arithmetic"),
    _w(0x6D, "i32.div_s", IMM_NONE, "arithmetic"),
    _w(0x6E, "i32.div_u", IMM_NONE, "arithmetic"),
    _w(0x6F, "i32.rem_s", IMM_NONE, "arithmetic"),
    _w(0x71, "i32.and", IMM_NONE, "bitwise"),
    _w(0x72, "i32.or", IMM_NONE, "bitwise"),
    _w(0x73, "i32.xor", IMM_NONE, "bitwise"),
    _w(0x74, "i32.shl", IMM_NONE, "bitwise"),
    _w(0x75, "i32.shr_s", IMM_NONE, "bitwise"),
    _w(0x76, "i32.shr_u", IMM_NONE, "bitwise"),
    _w(0x77, "i32.rotl", IMM_NONE, "bitwise"),
    # i64 arithmetic / bitwise
    _w(0x7C, "i64.add", IMM_NONE, "arithmetic"),
    _w(0x7D, "i64.sub", IMM_NONE, "arithmetic"),
    _w(0x7E, "i64.mul", IMM_NONE, "arithmetic"),
    _w(0x7F, "i64.div_s", IMM_NONE, "arithmetic"),
    _w(0x83, "i64.and", IMM_NONE, "bitwise"),
    _w(0x84, "i64.or", IMM_NONE, "bitwise"),
    _w(0x85, "i64.xor", IMM_NONE, "bitwise"),
    # conversions
    _w(0xA7, "i32.wrap_i64", IMM_NONE, "conversion"),
    _w(0xAC, "i64.extend_i32_s", IMM_NONE, "conversion"),
    _w(0xAD, "i64.extend_i32_u", IMM_NONE, "conversion"),
]

#: byte value -> opcode
WASM_OPCODES: Dict[int, WasmOpcode] = {op.value: op for op in _OPCODE_LIST}

#: mnemonic -> opcode
WASM_OPCODES_BY_NAME: Dict[str, WasmOpcode] = {op.name: op for op in _OPCODE_LIST}

#: valtype byte values
VALTYPE_I32 = 0x7F
VALTYPE_I64 = 0x7E
BLOCKTYPE_VOID = 0x40
