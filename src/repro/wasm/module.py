"""In-memory model of a (subset) WASM module."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.wasm.opcodes import WASM_OPCODES_BY_NAME, WasmOpcode


@dataclass(frozen=True)
class WasmInstructionEntry:
    """One instruction of a function body.

    Attributes:
        name: Opcode mnemonic (must exist in the opcode table).
        operands: Immediate operands, already decoded as a tuple of ints.  The
            number and meaning of operands depends on the opcode's immediate
            kind (see :mod:`repro.wasm.opcodes`).
    """

    name: str
    operands: Tuple[int, ...] = ()

    @property
    def opcode(self) -> WasmOpcode:
        return WASM_OPCODES_BY_NAME[self.name]

    def __str__(self) -> str:
        if self.operands:
            return f"{self.name} " + " ".join(str(o) for o in self.operands)
        return self.name


def instr(name: str, *operands: int) -> WasmInstructionEntry:
    """Convenience constructor used by the contract templates."""
    if name not in WASM_OPCODES_BY_NAME:
        raise ValueError(f"unknown WASM mnemonic {name!r}")
    return WasmInstructionEntry(name=name, operands=tuple(operands))


@dataclass
class WasmFunction:
    """A function: its type signature index, local declarations and body.

    The body excludes the final ``end`` terminating the function expression;
    the encoder appends it automatically, and the parser strips it.
    """

    type_index: int
    locals: List[Tuple[int, int]] = field(default_factory=list)  # (count, valtype)
    body: List[WasmInstructionEntry] = field(default_factory=list)
    name: str = ""
    is_export: bool = False

    @property
    def num_instructions(self) -> int:
        return len(self.body)


@dataclass
class WasmModule:
    """A minimal module: function type signatures and function definitions.

    Attributes:
        types: list of (param_count, result_count) pairs -- parameter and
            result types are all i64 in this subset, so arity is sufficient.
        functions: defined functions, in index order.
        name: Optional module name used in reports.
    """

    types: List[Tuple[int, int]] = field(default_factory=list)
    functions: List[WasmFunction] = field(default_factory=list)
    name: str = ""

    def add_type(self, params: int, results: int) -> int:
        """Register (or reuse) a function type; returns its index."""
        signature = (params, results)
        if signature in self.types:
            return self.types.index(signature)
        self.types.append(signature)
        return len(self.types) - 1

    def add_function(self, function: WasmFunction) -> int:
        """Append a function; returns its function index."""
        if function.type_index >= len(self.types):
            raise ValueError(f"type index {function.type_index} out of range")
        self.functions.append(function)
        return len(self.functions) - 1

    @property
    def num_functions(self) -> int:
        return len(self.functions)

    @property
    def num_instructions(self) -> int:
        return sum(f.num_instructions for f in self.functions)
