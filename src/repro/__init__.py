"""ScamDetect reproduction: platform-agnostic smart-contract malware detection.

The package reproduces the system envisioned by *"ScamDetect: Towards a
Robust, Agnostic Framework to Uncover Threats in Smart Contracts"* (DSN-S
2025) and the PhishingHook baseline it builds on:

* :mod:`repro.evm`, :mod:`repro.wasm` -- platform substrates (opcode models,
  (dis)assemblers, CFG builders, synthetic contract templates).
* :mod:`repro.ir` -- the shared platform-agnostic IR.
* :mod:`repro.obfuscation` -- BOSC/BiAn/wasm-mutate-style obfuscators.
* :mod:`repro.datasets`, :mod:`repro.features` -- corpus generation and
  classical feature encodings.
* :mod:`repro.autograd`, :mod:`repro.ml`, :mod:`repro.gnn` -- the learning
  substrates (reverse-mode AD, classical classifiers, the five GNNs).
* :mod:`repro.phishinghook` -- the 16-model baseline zoo.
* :mod:`repro.core` -- the ScamDetect pipeline and :class:`ScamDetector` API.
* :mod:`repro.service` -- the batch scanning service layer (content-addressed
  graph cache, parallel lowering, batched inference).
* :mod:`repro.registry` -- the persistent layer: SQLite verdict registry,
  continuous watch daemon and the TOML triage rules engine.
* :mod:`repro.evaluation` -- the E1-E11 experiment drivers and reporting.

Quickstart::

    from repro import ScamDetector
    from repro.datasets import CorpusGenerator, GeneratorConfig, stratified_split

    corpus = CorpusGenerator(GeneratorConfig(num_samples=300, seed=0)).generate()
    train, test = stratified_split(corpus, test_fraction=0.3)
    detector = ScamDetector().train(train)
    print(detector.evaluate(test))
    print(detector.scan(test[0].bytecode).format())
"""

from repro.core.config import ScamDetectConfig
from repro.core.detector import ScamDetector
from repro.core.pipeline import ScamDetectPipeline
from repro.core.report import ScanSummary, VerdictReport

__version__ = "1.0.0"

__all__ = [
    "ScamDetector",
    "ScamDetectConfig",
    "ScamDetectPipeline",
    "VerdictReport",
    "ScanSummary",
    "__version__",
]
