"""A small EVM assembler.

The assembler turns a list of ``(mnemonic, operand)`` pairs -- or a textual
assembly listing -- into runtime bytecode.  It supports symbolic labels so the
contract templates in :mod:`repro.evm.contracts` can express jumps without
computing byte offsets by hand.

Label model:
  * ``("LABEL", "name")`` pseudo-instruction marks a position and emits a
    ``JUMPDEST``.
  * ``("PUSHLABEL", "name")`` emits a ``PUSH2`` whose immediate is patched to
    the byte offset of the label in a second pass.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.evm.opcodes import OPCODES_BY_NAME

AsmItem = Tuple[str, Optional[Union[int, str]]]


class AssemblyError(ValueError):
    """Raised when a program cannot be assembled."""


def _push_width(value: int) -> int:
    """Minimal PUSH width (in bytes) able to hold ``value``."""
    if value < 0:
        raise AssemblyError(f"cannot PUSH negative value {value}")
    if value == 0:
        return 1
    width = (value.bit_length() + 7) // 8
    if width > 32:
        raise AssemblyError(f"value {value:#x} does not fit in PUSH32")
    return width


class EVMAssembler:
    """Two-pass assembler with label support."""

    def __init__(self) -> None:
        self._items: List[AsmItem] = []

    # ------------------------------------------------------------------ #
    # program construction helpers

    def emit(self, mnemonic: str, operand: Optional[Union[int, str]] = None) -> "EVMAssembler":
        """Append one instruction (or pseudo-instruction) and return self."""
        self._items.append((mnemonic.upper(), operand))
        return self

    def push(self, value: int, width: Optional[int] = None) -> "EVMAssembler":
        """Append a PUSH of ``value`` using the minimal (or given) width."""
        width = width or _push_width(value)
        return self.emit(f"PUSH{width}", value)

    def label(self, name: str) -> "EVMAssembler":
        """Mark a jump destination."""
        return self.emit("LABEL", name)

    def push_label(self, name: str) -> "EVMAssembler":
        """Push the byte offset of a label (always a PUSH2)."""
        return self.emit("PUSHLABEL", name)

    def extend(self, items: Iterable[AsmItem]) -> "EVMAssembler":
        for mnemonic, operand in items:
            self.emit(mnemonic, operand)
        return self

    @property
    def items(self) -> List[AsmItem]:
        return list(self._items)

    # ------------------------------------------------------------------ #
    # assembly

    def assemble(self) -> bytes:
        """Assemble the accumulated program into bytecode."""
        return assemble(self._items)


def _item_size(mnemonic: str, operand: Optional[Union[int, str]]) -> int:
    if mnemonic == "LABEL":
        return 1  # JUMPDEST
    if mnemonic == "PUSHLABEL":
        return 3  # PUSH2 + 2 bytes
    op = OPCODES_BY_NAME.get(mnemonic)
    if op is None:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}")
    return 1 + op.immediate_size


def assemble(items: Sequence[AsmItem]) -> bytes:
    """Assemble ``items`` (mnemonic/operand pairs with label pseudo-ops).

    Args:
        items: sequence of ``(mnemonic, operand)`` pairs.  ``operand`` is an
            int for PUSH immediates, a label name for LABEL / PUSHLABEL, and
            None otherwise.

    Returns:
        The runtime bytecode.

    Raises:
        AssemblyError: on unknown mnemonics, missing labels, or immediates
            that do not fit the PUSH width.
    """
    # pass 1: compute label offsets
    labels: Dict[str, int] = {}
    offset = 0
    for mnemonic, operand in items:
        mnemonic = mnemonic.upper()
        if mnemonic == "LABEL":
            if not isinstance(operand, str):
                raise AssemblyError("LABEL requires a string name")
            if operand in labels:
                raise AssemblyError(f"duplicate label {operand!r}")
            labels[operand] = offset
        offset += _item_size(mnemonic, operand)

    # pass 2: emit bytes
    output = bytearray()
    for mnemonic, operand in items:
        mnemonic = mnemonic.upper()
        if mnemonic == "LABEL":
            output.append(OPCODES_BY_NAME["JUMPDEST"].value)
            continue
        if mnemonic == "PUSHLABEL":
            if not isinstance(operand, str) or operand not in labels:
                raise AssemblyError(f"unknown label {operand!r}")
            target = labels[operand]
            output.append(OPCODES_BY_NAME["PUSH2"].value)
            output.extend(target.to_bytes(2, "big"))
            continue
        op = OPCODES_BY_NAME.get(mnemonic)
        if op is None:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}")
        output.append(op.value)
        if op.immediate_size:
            if operand is None:
                operand = 0
            if not isinstance(operand, int):
                raise AssemblyError(f"{mnemonic} requires an integer immediate")
            if operand < 0 or operand >= (1 << (8 * op.immediate_size)):
                raise AssemblyError(
                    f"immediate {operand:#x} does not fit in {mnemonic}")
            output.extend(operand.to_bytes(op.immediate_size, "big"))
        elif operand is not None and not isinstance(operand, str):
            raise AssemblyError(f"{mnemonic} takes no operand (got {operand!r})")
    return bytes(output)


def assemble_text(text: str) -> bytes:
    """Assemble a textual listing: one instruction per line, ``;`` comments.

    Example::

        PUSH1 0x04
        CALLDATASIZE
        LT
        PUSHLABEL fallback
        JUMPI
        LABEL fallback
        STOP
    """
    items: List[AsmItem] = []
    for raw_line in text.splitlines():
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        mnemonic = parts[0].upper()
        operand: Optional[Union[int, str]] = None
        if len(parts) > 1:
            token = parts[1]
            if mnemonic in ("LABEL", "PUSHLABEL"):
                operand = token
            else:
                operand = int(token, 0)
        items.append((mnemonic, operand))
    return assemble(items)
