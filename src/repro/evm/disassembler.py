"""EVM disassembler: runtime bytecode -> instruction stream / IR."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.evm.opcodes import OPCODES, UNKNOWN_OPCODE_NAME, Opcode
from repro.ir.instruction import IRInstruction


@dataclass(frozen=True)
class EVMInstruction:
    """A decoded EVM instruction.

    Attributes:
        offset: Byte offset of the opcode within the bytecode.
        opcode: The :class:`~repro.evm.opcodes.Opcode`, or None for undefined
            byte values.
        raw_byte: The raw opcode byte (meaningful when ``opcode`` is None).
        operand: Immediate operand for PUSH instructions (big-endian int).
        operand_bytes: Raw immediate bytes (may be shorter than declared when
            the bytecode is truncated).
    """

    offset: int
    opcode: Optional[Opcode]
    raw_byte: int
    operand: Optional[int] = None
    operand_bytes: bytes = b""

    @property
    def name(self) -> str:
        return self.opcode.name if self.opcode is not None else UNKNOWN_OPCODE_NAME

    @property
    def category(self) -> str:
        return self.opcode.category if self.opcode is not None else "invalid"

    @property
    def size(self) -> int:
        return 1 + len(self.operand_bytes)

    @property
    def end_offset(self) -> int:
        return self.offset + self.size

    def __str__(self) -> str:
        if self.operand is not None:
            return f"{self.offset:#06x}: {self.name} {self.operand:#x}"
        return f"{self.offset:#06x}: {self.name}"


def _normalize_bytecode(bytecode: Union[bytes, bytearray, str]) -> bytes:
    """Accept bytes or a hex string (optionally 0x-prefixed)."""
    if isinstance(bytecode, (bytes, bytearray)):
        return bytes(bytecode)
    text = bytecode.strip()
    if text.startswith(("0x", "0X")):
        text = text[2:]
    if len(text) % 2:
        text = "0" + text
    return bytes.fromhex(text)


def disassemble(bytecode: Union[bytes, bytearray, str]) -> List[EVMInstruction]:
    """Linearly disassemble runtime bytecode into EVM instructions.

    Truncated PUSH immediates at the end of the stream are tolerated (the
    operand is decoded from the available bytes), matching the behaviour of
    on-chain explorers.
    """
    code = _normalize_bytecode(bytecode)
    instructions: List[EVMInstruction] = []
    offset = 0
    while offset < len(code):
        raw = code[offset]
        opcode = OPCODES.get(raw)
        operand: Optional[int] = None
        operand_bytes = b""
        if opcode is not None and opcode.immediate_size:
            operand_bytes = code[offset + 1: offset + 1 + opcode.immediate_size]
            operand = int.from_bytes(operand_bytes, "big") if operand_bytes else 0
        instructions.append(EVMInstruction(offset=offset, opcode=opcode, raw_byte=raw,
                                           operand=operand, operand_bytes=operand_bytes))
        offset += 1 + len(operand_bytes)
    return instructions


def disassemble_to_ir(bytecode: Union[bytes, bytearray, str]) -> List[IRInstruction]:
    """Disassemble and lower into platform-agnostic IR instructions."""
    return [
        IRInstruction(offset=ins.offset, mnemonic=ins.name, category=ins.category,
                      operand=ins.operand, size=ins.size, platform="evm")
        for ins in disassemble(bytecode)
    ]


def to_mnemonic_sequence(bytecode: Union[bytes, bytearray, str]) -> List[str]:
    """Opcode mnemonic sequence of the bytecode (PhishingHook's raw view)."""
    return [ins.name for ins in disassemble(bytecode)]


def format_disassembly(bytecode: Union[bytes, bytearray, str]) -> str:
    """Human-readable disassembly listing."""
    return "\n".join(str(ins) for ins in disassemble(bytecode))
