"""EVM substrate: opcode model, (dis)assembler, CFG construction, contract templates.

This package implements everything the ScamDetect pipeline needs to consume
raw Ethereum Virtual Machine runtime bytecode:

* :mod:`repro.evm.opcodes` -- the full EVM opcode table (Shanghai-era set) with
  stack arity, immediate sizes and semantic categories.
* :mod:`repro.evm.assembler` / :mod:`repro.evm.disassembler` -- translate
  between mnemonic programs and hex bytecode.
* :mod:`repro.evm.stack` -- a bounded symbolic stack used to resolve static
  jump targets.
* :mod:`repro.evm.cfg_builder` -- builds platform-agnostic control-flow graphs
  (:class:`repro.ir.cfg.ControlFlowGraph`) from bytecode.
* :mod:`repro.evm.contracts` -- a synthetic contract template compiler that
  emits realistic benign and malicious runtime bytecode used by the dataset
  generator (standing in for Etherscan-scraped corpora, see DESIGN.md).
"""

from repro.evm.opcodes import (
    Opcode,
    OPCODES,
    OPCODES_BY_NAME,
    opcode_by_value,
    opcode_by_name,
    is_push,
    push_size,
    is_terminator,
)
from repro.evm.assembler import EVMAssembler, assemble
from repro.evm.disassembler import EVMInstruction, disassemble, disassemble_to_ir
from repro.evm.cfg_builder import EVMCFGBuilder, build_cfg
from repro.evm.contracts import (
    ContractTemplate,
    ContractBuilder,
    BENIGN_TEMPLATES,
    MALICIOUS_TEMPLATES,
    ALL_TEMPLATES,
    make_minimal_proxy,
)

__all__ = [
    "Opcode",
    "OPCODES",
    "OPCODES_BY_NAME",
    "opcode_by_value",
    "opcode_by_name",
    "is_push",
    "push_size",
    "is_terminator",
    "EVMAssembler",
    "assemble",
    "EVMInstruction",
    "disassemble",
    "disassemble_to_ir",
    "EVMCFGBuilder",
    "build_cfg",
    "ContractTemplate",
    "ContractBuilder",
    "BENIGN_TEMPLATES",
    "MALICIOUS_TEMPLATES",
    "ALL_TEMPLATES",
    "make_minimal_proxy",
]
