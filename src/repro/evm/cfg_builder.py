"""Control-flow graph construction for EVM bytecode.

The builder performs three steps:

1. Linear disassembly (:mod:`repro.evm.disassembler`).
2. Basic-block splitting: a new block starts at offset 0, at every
   ``JUMPDEST`` and after every block-ending instruction (``JUMP``,
   ``JUMPI``, ``STOP``, ``RETURN``, ``REVERT``, ``INVALID``,
   ``SELFDESTRUCT``, undefined opcodes).
3. Edge construction with jump-target resolution.  Targets are resolved with
   a bounded abstract interpretation over the
   :class:`~repro.evm.stack.SymbolicStack`: block entry stacks are propagated
   along discovered edges in a worklist until a fixpoint (or an iteration
   bound) is reached.  Jumps whose target remains unknown receive
   conservative ``"dynamic"`` edges to every ``JUMPDEST`` block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.evm.disassembler import EVMInstruction, disassemble
from repro.evm.opcodes import is_block_end
from repro.evm.stack import SymbolicStack, UNKNOWN
from repro.ir.basic_block import BasicBlock
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instruction import IRInstruction

#: Maximum number of times a block's entry stack may be re-propagated.
_MAX_VISITS_PER_BLOCK = 8

#: If more than this many dynamic edges would be added for a single
#: unresolved jump, the jump is left without successors instead (keeps
#: adversarially-obfuscated graphs from degenerating into cliques).
_MAX_DYNAMIC_FANOUT = 16


def _to_ir(instruction: EVMInstruction) -> IRInstruction:
    return IRInstruction(offset=instruction.offset, mnemonic=instruction.name,
                         category=instruction.category, operand=instruction.operand,
                         size=instruction.size, platform="evm")


class EVMCFGBuilder:
    """Builds :class:`ControlFlowGraph` objects from EVM runtime bytecode."""

    def __init__(self, resolve_dynamic_jumps: bool = True,
                 max_visits_per_block: int = _MAX_VISITS_PER_BLOCK) -> None:
        self.resolve_dynamic_jumps = resolve_dynamic_jumps
        self.max_visits_per_block = max_visits_per_block

    # ------------------------------------------------------------------ #

    def build(self, bytecode: Union[bytes, bytearray, str], name: str = "") -> ControlFlowGraph:
        """Build the CFG of ``bytecode``."""
        instructions = disassemble(bytecode)
        blocks = self._split_blocks(instructions)
        cfg = ControlFlowGraph(platform="evm", name=name)
        for index, block_instructions in enumerate(blocks):
            block = BasicBlock(block_id=block_instructions[0].offset,
                               instructions=[_to_ir(i) for i in block_instructions],
                               is_entry=(index == 0))
            cfg.add_block(block)
        if cfg.num_blocks:
            self._add_edges(cfg, blocks)
        return cfg

    # ------------------------------------------------------------------ #
    # step 2: block splitting

    @staticmethod
    def _split_blocks(instructions: Sequence[EVMInstruction]) -> List[List[EVMInstruction]]:
        if not instructions:
            return []
        leaders: Set[int] = {instructions[0].offset}
        for index, ins in enumerate(instructions):
            if ins.name == "JUMPDEST":
                leaders.add(ins.offset)
            if is_block_end(ins.name) and index + 1 < len(instructions):
                leaders.add(instructions[index + 1].offset)
        blocks: List[List[EVMInstruction]] = []
        current: List[EVMInstruction] = []
        for ins in instructions:
            if ins.offset in leaders and current:
                blocks.append(current)
                current = []
            current.append(ins)
        if current:
            blocks.append(current)
        return blocks

    # ------------------------------------------------------------------ #
    # step 3: edges with jump resolution

    def _add_edges(self, cfg: ControlFlowGraph,
                   blocks: List[List[EVMInstruction]]) -> None:
        block_ids = [b[0].offset for b in blocks]
        block_by_id: Dict[int, List[EVMInstruction]] = {
            b[0].offset: b for b in blocks}
        jumpdest_ids = [bid for bid, instrs in block_by_id.items()
                        if instrs[0].name == "JUMPDEST"]
        next_block: Dict[int, Optional[int]] = {}
        for i, bid in enumerate(block_ids):
            next_block[bid] = block_ids[i + 1] if i + 1 < len(block_ids) else None

        entry_stacks: Dict[int, SymbolicStack] = {block_ids[0]: SymbolicStack()}
        visits: Dict[int, int] = {}
        unresolved_jumps: List[int] = []  # block ids whose JUMP/JUMPI target is unknown
        worklist: List[int] = [block_ids[0]]

        while worklist:
            bid = worklist.pop()
            visits[bid] = visits.get(bid, 0) + 1
            if visits[bid] > self.max_visits_per_block:
                continue
            stack = entry_stacks.get(bid, SymbolicStack()).copy()
            instrs = block_by_id[bid]
            target: Optional[int] = None
            last = instrs[-1]
            for ins in instrs:
                if ins.name in ("JUMP", "JUMPI"):
                    target = stack.jump_target()
                stack.apply(ins)

            successors: List[Tuple[int, str]] = []
            if last.name == "JUMP":
                if target is not None and target in block_by_id:
                    successors.append((target, "jump"))
                else:
                    unresolved_jumps.append(bid)
            elif last.name == "JUMPI":
                if target is not None and target in block_by_id:
                    successors.append((target, "branch"))
                else:
                    unresolved_jumps.append(bid)
                fall = next_block[bid]
                if fall is not None:
                    successors.append((fall, "fallthrough"))
            elif last.name in ("STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT"):
                pass  # terminal block
            else:
                fall = next_block[bid]
                if fall is not None:
                    successors.append((fall, "fallthrough"))

            for succ, kind in successors:
                cfg.add_edge(bid, succ, kind=kind)
                # propagate the abstract stack along the edge; merge = keep the
                # first seen stack unless the new one is shorter (conservative).
                propagated = stack.copy()
                previous = entry_stacks.get(succ)
                if previous is None:
                    entry_stacks[succ] = propagated
                    worklist.append(succ)
                elif len(previous) != len(propagated):
                    entry_stacks[succ] = SymbolicStack([UNKNOWN] * min(len(previous),
                                                                       len(propagated)))
                    worklist.append(succ)

        # conservative edges for unresolved indirect jumps
        if self.resolve_dynamic_jumps:
            for bid in set(unresolved_jumps):
                if 0 < len(jumpdest_ids) <= _MAX_DYNAMIC_FANOUT:
                    for dest in jumpdest_ids:
                        if dest != bid:
                            cfg.add_edge(bid, dest, kind="dynamic")

        # blocks never reached by the worklist (data blobs, dead code) still
        # need their intra-procedural fallthrough edges so the graph does not
        # silently drop structure that obfuscators insert on purpose.
        for bid in block_ids:
            if bid in visits:
                continue
            last = block_by_id[bid][-1]
            if not is_block_end(last.name):
                fall = next_block[bid]
                if fall is not None:
                    cfg.add_edge(bid, fall, kind="fallthrough")


def build_cfg(bytecode: Union[bytes, bytearray, str], name: str = "") -> ControlFlowGraph:
    """Convenience wrapper: build an EVM CFG with default settings."""
    return EVMCFGBuilder().build(bytecode, name=name)
