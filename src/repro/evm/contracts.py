"""Synthetic EVM contract templates.

The original PhishingHook/ScamDetect corpora are scraped from Etherscan and
labelled via abuse databases; neither is reachable offline.  This module is
the substitution documented in DESIGN.md: a template compiler that emits
*realistic runtime bytecode* for benign and malicious contract families.  The
bytecode follows the structure produced by solc (4-byte selector dispatcher,
``JUMPDEST``-delimited function bodies, ``CALLVALUE`` guards, storage access
via ``SHA3`` of slot keys, ``LOG`` events) so the disassembler, CFG builder,
feature extractors and models are exercised exactly as they would be on real
contracts.

Every template exposes a ``generate(rng)`` hook that randomizes the number of
functions, selectors, storage layout and the presence of optional snippets, so
samples within a family are diverse and the classification task is learnable
but not trivial.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.evm.assembler import EVMAssembler

# --------------------------------------------------------------------------- #
# low-level snippet helpers


class ContractBuilder:
    """A higher-level layer over :class:`EVMAssembler` for contract bodies.

    The builder mimics the code shapes emitted by solc: a selector dispatcher
    at the top of the runtime code, one labelled body per external function,
    and a shared fallback/revert block.
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.asm = EVMAssembler()
        self.rng = rng or random.Random(0)
        self._label_counter = 0
        self._functions: List[Tuple[int, str]] = []  # (selector, body label)

    # -- naming ---------------------------------------------------------- #

    def fresh_label(self, prefix: str = "L") -> str:
        self._label_counter += 1
        return f"{prefix}_{self._label_counter}"

    def random_selector(self) -> int:
        return self.rng.randrange(1, 0xFFFFFFFF)

    def random_address(self) -> int:
        return self.rng.randrange(1, (1 << 160) - 1)

    # -- dispatcher ------------------------------------------------------ #

    def register_function(self, selector: Optional[int] = None) -> Tuple[int, str]:
        """Reserve a selector and a body label; returns (selector, label)."""
        selector = selector if selector is not None else self.random_selector()
        label = self.fresh_label("fn")
        self._functions.append((selector, label))
        return selector, label

    def emit_dispatcher(self, fallback_label: str) -> None:
        """Emit the solc-style selector dispatcher.

        Loads the first 4 bytes of calldata, compares them against every
        registered selector, and falls through to ``fallback_label``.
        """
        asm = self.asm
        # free memory pointer initialisation (solc idiom)
        asm.push(0x80).push(0x40).emit("MSTORE")
        # if calldatasize < 4 goto fallback
        asm.push(4).emit("CALLDATASIZE").emit("LT")
        asm.push_label(fallback_label).emit("JUMPI")
        # selector = calldataload(0) >> 224
        asm.push(0).emit("CALLDATALOAD").push(0xE0).emit("SHR")
        for selector, label in self._functions:
            asm.emit("DUP1").push(selector).emit("EQ")
            asm.push_label(label).emit("JUMPI")
        asm.push_label(fallback_label).emit("JUMP")

    # -- common statement snippets ---------------------------------------- #

    def emit_fallback(self, label: str, revert: bool = True) -> None:
        asm = self.asm
        asm.label(label)
        if revert:
            asm.push(0).push(0).emit("REVERT")
        else:
            asm.emit("STOP")

    def emit_calldata_arg(self, index: int) -> None:
        """Push calldata argument ``index`` (ABI encoded at 4 + 32*index)."""
        self.asm.push(4 + 32 * index).emit("CALLDATALOAD")

    def emit_sload(self, slot: int) -> None:
        self.asm.push(slot).emit("SLOAD")

    def emit_sstore_constant(self, slot: int, value: int) -> None:
        self.asm.push(value).push(slot).emit("SSTORE")

    def emit_mapping_slot(self, base_slot: int) -> None:
        """Compute keccak(key . base_slot) for a mapping access.

        Expects the key on top of the stack; leaves the storage slot.
        """
        asm = self.asm
        asm.push(0).emit("MSTORE")                 # mem[0] = key
        asm.push(base_slot).push(0x20).emit("MSTORE")  # mem[32] = base slot
        asm.push(0x40).push(0).emit("SHA3")

    def emit_caller_is_owner_check(self, owner_slot: int, fail_label: str) -> None:
        """require(msg.sender == owner) -- jump to fail_label otherwise."""
        asm = self.asm
        asm.emit("CALLER")
        self.emit_sload(owner_slot)
        asm.emit("EQ").emit("ISZERO")
        asm.push_label(fail_label).emit("JUMPI")

    def emit_nonpayable_guard(self, fail_label: str) -> None:
        """require(msg.value == 0)."""
        asm = self.asm
        asm.emit("CALLVALUE")
        asm.push_label(fail_label).emit("JUMPI")

    def emit_transfer_event(self, topic_seed: Optional[int] = None) -> None:
        """LOG3 with a Transfer-like topic layout."""
        asm = self.asm
        topic = topic_seed if topic_seed is not None else self.rng.randrange(1, 1 << 64)
        asm.push(0).push(0)               # data: offset, size 0
        asm.push(topic)                    # topic0 (event signature hash)
        asm.emit("CALLER")                 # topic1
        self.emit_calldata_arg(0)          # topic2
        asm.emit("LOG3")

    def emit_balance_update(self, base_slot: int, add: bool = True) -> None:
        """balances[msg.sender] ±= amount(arg1)."""
        asm = self.asm
        asm.emit("CALLER")
        self.emit_mapping_slot(base_slot)          # slot
        asm.emit("DUP1").emit("SLOAD")             # slot, old
        self.emit_calldata_arg(1)                  # slot, old, amount
        asm.emit("ADD" if add else "SWAP1")
        if not add:
            asm.emit("SUB")
        asm.emit("SWAP1").emit("SSTORE")

    def emit_external_call(self, value_from_stack: bool = False,
                           gas_limited: bool = True) -> None:
        """CALL to the address in calldata arg0, forwarding no data."""
        asm = self.asm
        asm.push(0).push(0).push(0).push(0)        # retSize retOffset argSize argOffset
        if value_from_stack:
            self.emit_calldata_arg(1)              # value
        else:
            asm.push(0)
        self.emit_calldata_arg(0)                  # address
        if gas_limited:
            asm.push(0x5208)
        else:
            asm.emit("GAS")
        asm.emit("CALL").emit("POP")

    def emit_delegatecall_to_storage(self, slot: int) -> None:
        """DELEGATECALL to the address stored at ``slot`` forwarding calldata."""
        asm = self.asm
        asm.emit("CALLDATASIZE").push(0).push(0).emit("CALLDATACOPY")
        asm.push(0).push(0)                        # retSize retOffset
        asm.emit("CALLDATASIZE").push(0)           # argSize argOffset
        self.emit_sload(slot)                      # address
        asm.emit("GAS").emit("DELEGATECALL").emit("POP")

    def emit_return_uint(self, from_storage_slot: Optional[int] = None) -> None:
        """Return a single 32-byte word (from storage or a constant)."""
        asm = self.asm
        if from_storage_slot is not None:
            self.emit_sload(from_storage_slot)
        else:
            asm.push(1)
        asm.push(0).emit("MSTORE")
        asm.push(0x20).push(0).emit("RETURN")

    def emit_stop(self) -> None:
        self.asm.emit("STOP")

    def emit_counted_loop(self, body: Callable[[], None], bound_slot: int) -> None:
        """for (i = 0; i < sload(bound_slot); i++) { body() } -- bounded loop."""
        asm = self.asm
        head = self.fresh_label("loop_head")
        exit_label = self.fresh_label("loop_exit")
        asm.push(0)                                     # i
        asm.label(head)
        asm.emit("DUP1")
        self.emit_sload(bound_slot)
        asm.emit("GT").emit("ISZERO")                   # !(bound > i)
        asm.push_label(exit_label).emit("JUMPI")
        body()
        asm.push(1).emit("ADD")                         # i++
        asm.push_label(head).emit("JUMP")
        asm.label(exit_label)
        asm.emit("POP")

    def emit_benign_math(self, depth: Optional[int] = None) -> None:
        """A short burst of pure arithmetic (simulates fee / interest maths)."""
        asm = self.asm
        depth = depth if depth is not None else self.rng.randint(2, 6)
        self.emit_calldata_arg(1)
        for _ in range(depth):
            op = self.rng.choice(["ADD", "MUL", "SUB", "DIV", "AND", "OR", "SHR"])
            asm.push(self.rng.randrange(1, 1 << 16))
            if op == "DIV":
                asm.emit("SWAP1")
            asm.emit(op)
        asm.emit("POP")

    # -- finalisation ------------------------------------------------------ #

    def bytecode(self) -> bytes:
        return self.asm.assemble()


# --------------------------------------------------------------------------- #
# contract templates


@dataclass(frozen=True)
class ContractTemplate:
    """A named generator for one contract family.

    Attributes:
        name: Family name, e.g. ``"erc20_token"`` or ``"approval_drainer"``.
        label: 1 for malicious, 0 for benign.
        family_kind: Coarse kind used in reports ("token", "defi", "phishing",
            "honeypot", ...).
        generator: Callable producing runtime bytecode from an RNG.
    """

    name: str
    label: int
    family_kind: str
    generator: Callable[[random.Random], bytes]

    def generate(self, rng: Optional[random.Random] = None) -> bytes:
        """Generate one randomized bytecode sample of this family."""
        return self.generator(rng or random.Random())


def _finish(builder: ContractBuilder, bodies: Sequence[Callable[[str], None]],
            payable_fallback: bool = False) -> bytes:
    """Emit dispatcher + registered bodies + fallback and assemble."""
    fallback = builder.fresh_label("fallback")
    builder.emit_dispatcher(fallback)
    fail = builder.fresh_label("revert")
    for body, (_, label) in zip(bodies, builder._functions):
        builder.asm.label(label)
        body(fail)
    builder.emit_fallback(fallback, revert=not payable_fallback)
    builder.emit_fallback(fail, revert=True)
    return builder.bytecode()


# ----------------------------- benign families ----------------------------- #


def generate_erc20_token(rng: random.Random) -> bytes:
    """A plain ERC-20-style token: transfer/approve/balanceOf/totalSupply."""
    b = ContractBuilder(rng)
    owner_slot, supply_slot, balances_slot, allow_slot = 0, 1, 2, 3
    n_views = rng.randint(1, 3)

    def transfer(fail: str) -> None:
        b.emit_nonpayable_guard(fail)
        b.emit_balance_update(balances_slot, add=False)
        b.emit_balance_update(balances_slot, add=True)
        b.emit_transfer_event()
        b.emit_return_uint()

    def approve(fail: str) -> None:
        b.emit_nonpayable_guard(fail)
        b.emit_calldata_arg(0)
        b.emit_mapping_slot(allow_slot)
        b.emit_calldata_arg(1)
        b.asm.emit("SWAP1").emit("SSTORE")
        b.emit_transfer_event()
        b.emit_return_uint()

    def mint(fail: str) -> None:
        b.emit_caller_is_owner_check(owner_slot, fail)
        b.emit_sload(supply_slot)
        b.emit_calldata_arg(0)
        b.asm.emit("ADD")
        b.asm.push(supply_slot).emit("SSTORE")
        b.emit_balance_update(balances_slot, add=True)
        b.emit_stop()

    def view(fail: str) -> None:
        b.emit_benign_math()
        b.emit_return_uint(from_storage_slot=rng.choice([supply_slot, balances_slot]))

    bodies: List[Callable[[str], None]] = [transfer, approve, mint]
    bodies.extend([view] * n_views)
    for _ in bodies:
        b.register_function()
    return _finish(b, bodies)


def generate_staking_vault(rng: random.Random) -> bytes:
    """A staking vault: deposit/withdraw/claim with owner-managed parameters."""
    b = ContractBuilder(rng)
    owner_slot, rate_slot, stakes_slot, total_slot = 0, 1, 2, 3

    def deposit(fail: str) -> None:
        b.asm.emit("CALLVALUE").emit("ISZERO")
        b.asm.push_label(fail).emit("JUMPI")
        b.emit_balance_update(stakes_slot, add=True)
        b.emit_sload(total_slot)
        b.asm.emit("CALLVALUE").emit("ADD")
        b.asm.push(total_slot).emit("SSTORE")
        b.emit_transfer_event()
        b.emit_stop()

    def withdraw(fail: str) -> None:
        b.emit_nonpayable_guard(fail)
        b.emit_balance_update(stakes_slot, add=False)
        b.emit_external_call(value_from_stack=True, gas_limited=True)
        b.emit_transfer_event()
        b.emit_stop()

    def claim(fail: str) -> None:
        b.emit_nonpayable_guard(fail)
        b.emit_benign_math()
        b.emit_sload(rate_slot)
        b.emit_calldata_arg(0)
        b.asm.emit("MUL").push(10000).emit("SWAP1").emit("DIV").emit("POP")
        b.emit_return_uint(from_storage_slot=rate_slot)

    def set_rate(fail: str) -> None:
        b.emit_caller_is_owner_check(owner_slot, fail)
        b.emit_calldata_arg(0)
        b.asm.push(rate_slot).emit("SSTORE")
        b.emit_stop()

    bodies = [deposit, withdraw, claim, set_rate]
    if rng.random() < 0.5:
        bodies.append(lambda fail: b.emit_return_uint(from_storage_slot=total_slot))
    for _ in bodies:
        b.register_function()
    return _finish(b, bodies, payable_fallback=True)


def generate_dex_pair(rng: random.Random) -> bytes:
    """A constant-product AMM pair: swap/addLiquidity/removeLiquidity/getReserves."""
    b = ContractBuilder(rng)
    reserve0_slot, reserve1_slot, lp_slot, fee_slot = 0, 1, 2, 3

    def swap(fail: str) -> None:
        b.emit_nonpayable_guard(fail)
        b.emit_sload(reserve0_slot)
        b.emit_sload(reserve1_slot)
        b.asm.emit("MUL")                          # k = r0*r1
        b.emit_calldata_arg(1)
        b.asm.emit("DUP1").emit("ISZERO")
        b.asm.push_label(fail).emit("JUMPI")
        b.asm.emit("SWAP1").emit("DIV")            # out = k / amountIn
        b.asm.push(reserve1_slot).emit("SSTORE")
        b.emit_transfer_event()
        b.emit_return_uint(from_storage_slot=reserve1_slot)

    def add_liquidity(fail: str) -> None:
        b.emit_nonpayable_guard(fail)
        b.emit_balance_update(lp_slot, add=True)
        b.emit_sload(reserve0_slot)
        b.emit_calldata_arg(1)
        b.asm.emit("ADD").push(reserve0_slot).emit("SSTORE")
        b.emit_transfer_event()
        b.emit_stop()

    def remove_liquidity(fail: str) -> None:
        b.emit_nonpayable_guard(fail)
        b.emit_balance_update(lp_slot, add=False)
        b.emit_external_call(value_from_stack=False, gas_limited=True)
        b.emit_transfer_event()
        b.emit_stop()

    def get_reserves(fail: str) -> None:
        b.emit_benign_math()
        b.emit_return_uint(from_storage_slot=reserve0_slot)

    def set_fee(fail: str) -> None:
        b.emit_caller_is_owner_check(fee_slot, fail)
        b.emit_calldata_arg(0)
        b.asm.push(30).emit("GT")                  # fee must stay <= 30 bps
        b.asm.push_label(fail).emit("JUMPI")
        b.emit_calldata_arg(0)
        b.asm.push(fee_slot).emit("SSTORE")
        b.emit_stop()

    bodies = [swap, add_liquidity, remove_liquidity, get_reserves]
    if rng.random() < 0.6:
        bodies.append(set_fee)
    for _ in bodies:
        b.register_function()
    return _finish(b, bodies)


def generate_airdrop_distributor(rng: random.Random) -> bytes:
    """A batched airdrop distributor with a bounded loop and owner funding."""
    b = ContractBuilder(rng)
    owner_slot, count_slot, claimed_slot = 0, 1, 2

    def distribute(fail: str) -> None:
        b.emit_caller_is_owner_check(owner_slot, fail)

        def body() -> None:
            b.emit_balance_update(claimed_slot, add=True)
            b.emit_transfer_event()

        b.emit_counted_loop(body, count_slot)
        b.emit_stop()

    def claim(fail: str) -> None:
        b.emit_nonpayable_guard(fail)
        b.asm.emit("CALLER")
        b.emit_mapping_slot(claimed_slot)
        b.asm.emit("SLOAD").emit("ISZERO").emit("ISZERO")
        b.asm.push_label(fail).emit("JUMPI")
        b.asm.emit("CALLER")
        b.emit_mapping_slot(claimed_slot)
        b.asm.push(1).emit("SWAP1").emit("SSTORE")
        b.emit_transfer_event()
        b.emit_stop()

    def fund(fail: str) -> None:
        b.emit_caller_is_owner_check(owner_slot, fail)
        b.emit_calldata_arg(0)
        b.asm.push(count_slot).emit("SSTORE")
        b.emit_stop()

    bodies = [distribute, claim, fund]
    if rng.random() < 0.5:
        bodies.append(lambda fail: b.emit_return_uint(from_storage_slot=count_slot))
    for _ in bodies:
        b.register_function()
    return _finish(b, bodies)


def generate_multisig_wallet(rng: random.Random) -> bytes:
    """A 2-of-N multisig wallet: submit/confirm/execute with quorum checks."""
    b = ContractBuilder(rng)
    quorum_slot, owners_slot, tx_slot, confirm_slot = 0, 1, 2, 3

    def submit(fail: str) -> None:
        b.asm.emit("CALLER")
        b.emit_mapping_slot(owners_slot)
        b.asm.emit("SLOAD").emit("ISZERO")
        b.asm.push_label(fail).emit("JUMPI")
        b.emit_calldata_arg(0)
        b.asm.push(tx_slot).emit("SSTORE")
        b.emit_transfer_event()
        b.emit_stop()

    def confirm(fail: str) -> None:
        b.asm.emit("CALLER")
        b.emit_mapping_slot(owners_slot)
        b.asm.emit("SLOAD").emit("ISZERO")
        b.asm.push_label(fail).emit("JUMPI")
        b.emit_sload(confirm_slot)
        b.asm.push(1).emit("ADD").push(confirm_slot).emit("SSTORE")
        b.emit_stop()

    def execute(fail: str) -> None:
        b.emit_sload(confirm_slot)
        b.emit_sload(quorum_slot)
        b.asm.emit("GT")
        b.asm.push_label(fail).emit("JUMPI")
        b.emit_external_call(value_from_stack=True, gas_limited=True)
        b.emit_transfer_event()
        b.emit_stop()

    def is_owner(fail: str) -> None:
        b.emit_calldata_arg(0)
        b.emit_mapping_slot(owners_slot)
        b.asm.emit("SLOAD")
        b.asm.push(0).emit("MSTORE")
        b.asm.push(0x20).push(0).emit("RETURN")

    bodies = [submit, confirm, execute, is_owner]
    for _ in bodies:
        b.register_function()
    return _finish(b, bodies, payable_fallback=True)


# ---------------------------- malicious families ---------------------------- #


def generate_approval_drainer(rng: random.Random) -> bytes:
    """Phishing approval drainer.

    The contract masquerades as a token helper but its main entrypoint loops
    over victim addresses held in storage and issues ``transferFrom``-style
    external calls to sweep previously-granted allowances to the attacker,
    keyed on ``tx.origin`` rather than ``msg.sender``.
    """
    b = ContractBuilder(rng)
    attacker_slot, victims_slot, count_slot = 0, 1, 2
    n_decoys = rng.randint(1, 3)

    def sweep(fail: str) -> None:
        # attacker gate on tx.origin (typical of drainer kits)
        b.asm.emit("ORIGIN")
        b.emit_sload(attacker_slot)
        b.asm.emit("EQ").emit("ISZERO")
        b.asm.push_label(fail).emit("JUMPI")

        def body() -> None:
            # victim = victims[i]; token.transferFrom(victim, attacker, max)
            b.asm.emit("DUP1")
            b.emit_mapping_slot(victims_slot)
            b.asm.emit("SLOAD").emit("POP")
            b.emit_external_call(value_from_stack=False, gas_limited=False)
            b.emit_external_call(value_from_stack=False, gas_limited=False)

        b.emit_counted_loop(body, count_slot)
        b.emit_stop()

    def register_victim(fail: str) -> None:
        # "claim airdrop" style bait that records the caller as a victim
        b.asm.emit("CALLER")
        b.emit_mapping_slot(victims_slot)
        b.asm.push(1).emit("SWAP1").emit("SSTORE")
        b.emit_sload(count_slot)
        b.asm.push(1).emit("ADD").push(count_slot).emit("SSTORE")
        b.emit_stop()

    def decoy(fail: str) -> None:
        # looks like a view function so explorers show "token-like" behaviour
        b.emit_benign_math()
        b.emit_return_uint(from_storage_slot=count_slot)

    def set_attacker(fail: str) -> None:
        b.asm.emit("ORIGIN")
        b.asm.push(attacker_slot).emit("SSTORE")
        b.emit_stop()

    bodies: List[Callable[[str], None]] = [sweep, register_victim, set_attacker]
    bodies.extend([decoy] * n_decoys)
    for _ in bodies:
        b.register_function()
    return _finish(b, bodies)


def generate_honeypot(rng: random.Random) -> bytes:
    """Honeypot: advertises a payout path that can never execute for victims.

    The visible "withdraw" function compares a storage secret against a value
    derived from calldata in a way only the deployer can satisfy, and the
    deposit path quietly escalates the threshold.  A hidden drain function
    sends the whole balance to the deployer and self-destructs.
    """
    b = ContractBuilder(rng)
    secret_slot, owner_slot, deposits_slot = 0, 1, 2
    magic = rng.randrange(1 << 32, 1 << 64)

    def deposit(fail: str) -> None:
        b.asm.emit("CALLVALUE").emit("ISZERO")
        b.asm.push_label(fail).emit("JUMPI")
        b.emit_balance_update(deposits_slot, add=True)
        # quietly raise the secret so the payout check keeps failing
        b.emit_sload(secret_slot)
        b.asm.emit("CALLVALUE").emit("ADD").push(secret_slot).emit("SSTORE")
        b.emit_transfer_event()
        b.emit_stop()

    def withdraw(fail: str) -> None:
        # require(keccak-free "guess" == secret + magic) -- unsatisfiable for victims
        b.emit_calldata_arg(0)
        b.emit_sload(secret_slot)
        b.asm.push(magic).emit("ADD")
        b.asm.emit("EQ").emit("ISZERO")
        b.asm.push_label(fail).emit("JUMPI")
        b.asm.emit("SELFBALANCE")
        b.emit_external_call(value_from_stack=False, gas_limited=False)
        b.asm.emit("POP")
        b.emit_stop()

    def drain(fail: str) -> None:
        b.emit_caller_is_owner_check(owner_slot, fail)
        b.emit_sload(owner_slot)
        b.asm.emit("SELFDESTRUCT")

    def bait_view(fail: str) -> None:
        b.emit_benign_math()
        b.emit_return_uint(from_storage_slot=deposits_slot)

    bodies = [deposit, withdraw, drain, bait_view]
    for _ in bodies:
        b.register_function()
    return _finish(b, bodies, payable_fallback=True)


def generate_ponzi_scheme(rng: random.Random) -> bytes:
    """Ponzi: payouts to earlier investors are funded from new deposits only."""
    b = ContractBuilder(rng)
    queue_slot, index_slot, payout_slot, owner_slot = 0, 1, 2, 3

    def invest(fail: str) -> None:
        b.asm.emit("CALLVALUE").emit("ISZERO")
        b.asm.push_label(fail).emit("JUMPI")
        b.asm.emit("CALLER")
        b.emit_mapping_slot(queue_slot)
        b.asm.emit("CALLVALUE").emit("SWAP1").emit("SSTORE")
        # payout loop over earlier investors, 10% cut to owner
        b.asm.emit("CALLVALUE").push(10).emit("SWAP1").emit("DIV")
        b.emit_sload(owner_slot)
        b.asm.emit("POP").emit("POP")

        def body() -> None:
            b.emit_external_call(value_from_stack=False, gas_limited=False)
            b.asm.emit("TIMESTAMP").emit("POP")

        b.emit_counted_loop(body, index_slot)
        b.emit_sload(index_slot)
        b.asm.push(1).emit("ADD").push(index_slot).emit("SSTORE")
        b.emit_transfer_event()
        b.emit_stop()

    def claim_returns(fail: str) -> None:
        b.asm.emit("CALLER")
        b.emit_mapping_slot(queue_slot)
        b.asm.emit("SLOAD")
        b.asm.push(150).emit("MUL").push(100).emit("SWAP1").emit("DIV")
        b.asm.emit("TIMESTAMP").emit("AND").emit("POP")
        b.emit_external_call(value_from_stack=False, gas_limited=False)
        b.emit_stop()

    def owner_exit(fail: str) -> None:
        b.emit_caller_is_owner_check(owner_slot, fail)
        b.emit_sload(owner_slot)
        b.asm.emit("SELFDESTRUCT")

    def stats(fail: str) -> None:
        b.emit_return_uint(from_storage_slot=payout_slot)

    bodies = [invest, claim_returns, owner_exit, stats]
    for _ in bodies:
        b.register_function()
    return _finish(b, bodies, payable_fallback=True)


def generate_rugpull_token(rng: random.Random) -> bytes:
    """Rug-pull token: looks like an ERC-20 but has hidden owner escape hatches.

    Alongside normal transfer/approve bodies it hides (a) a fee that the
    owner can silently set to 100%, (b) an owner-only unrestricted mint, and
    (c) a liquidity-drain function transferring the entire contract balance.
    """
    b = ContractBuilder(rng)
    owner_slot, fee_slot, balances_slot, supply_slot = 0, 1, 2, 3

    def transfer(fail: str) -> None:
        b.emit_nonpayable_guard(fail)
        # amount_after_fee = amount * (100 - fee) / 100
        b.emit_calldata_arg(1)
        b.emit_sload(fee_slot)
        b.asm.push(100).emit("SUB").emit("MUL").push(100).emit("SWAP1").emit("DIV")
        b.asm.emit("POP")
        b.emit_balance_update(balances_slot, add=False)
        b.emit_balance_update(balances_slot, add=True)
        b.emit_transfer_event()
        b.emit_return_uint()

    def approve(fail: str) -> None:
        b.emit_nonpayable_guard(fail)
        b.emit_calldata_arg(0)
        b.emit_mapping_slot(balances_slot)
        b.emit_calldata_arg(1)
        b.asm.emit("SWAP1").emit("SSTORE")
        b.emit_return_uint()

    def set_fee_unbounded(fail: str) -> None:
        # no upper bound on the fee: owner can set 100% and block exits
        b.emit_caller_is_owner_check(owner_slot, fail)
        b.emit_calldata_arg(0)
        b.asm.push(fee_slot).emit("SSTORE")
        b.emit_stop()

    def hidden_mint(fail: str) -> None:
        b.emit_caller_is_owner_check(owner_slot, fail)
        b.emit_sload(supply_slot)
        b.emit_calldata_arg(0)
        b.asm.emit("ADD").push(supply_slot).emit("SSTORE")
        b.emit_balance_update(balances_slot, add=True)
        b.emit_stop()

    def drain_liquidity(fail: str) -> None:
        b.emit_caller_is_owner_check(owner_slot, fail)
        b.asm.emit("SELFBALANCE").emit("POP")
        b.emit_external_call(value_from_stack=False, gas_limited=False)
        b.emit_sload(owner_slot)
        b.asm.emit("SELFDESTRUCT")

    bodies = [transfer, approve, set_fee_unbounded, hidden_mint, drain_liquidity]
    if rng.random() < 0.5:
        bodies.append(lambda fail: b.emit_return_uint(from_storage_slot=supply_slot))
    for _ in bodies:
        b.register_function()
    return _finish(b, bodies)


def generate_backdoor_proxy(rng: random.Random) -> bytes:
    """Hidden-backdoor contract: delegatecalls into an attacker-controlled slot.

    The public functions look like a wallet, but every path funnels through a
    DELEGATECALL whose target address lives in an innocuous storage slot the
    deployer can rewrite, handing full control of the contract's storage and
    funds to an external implementation.
    """
    b = ContractBuilder(rng)
    impl_slot = rng.randrange(10, 200)
    owner_slot = 0

    def execute(fail: str) -> None:
        b.emit_delegatecall_to_storage(impl_slot)
        b.emit_stop()

    def deposit(fail: str) -> None:
        b.emit_balance_update(1, add=True)
        b.emit_delegatecall_to_storage(impl_slot)
        b.emit_transfer_event()
        b.emit_stop()

    def upgrade(fail: str) -> None:
        # no owner check at all -- anyone aware of the selector can re-point it
        b.emit_calldata_arg(0)
        b.asm.push(impl_slot).emit("SSTORE")
        b.emit_stop()

    def probe(fail: str) -> None:
        b.emit_calldata_arg(0)
        b.asm.emit("EXTCODESIZE").emit("ISZERO")
        b.asm.push_label(fail).emit("JUMPI")
        b.emit_calldata_arg(0)
        b.asm.emit("EXTCODEHASH").emit("POP")
        b.emit_return_uint(from_storage_slot=owner_slot)

    bodies = [execute, deposit, upgrade, probe]
    for _ in bodies:
        b.register_function()
    return _finish(b, bodies, payable_fallback=True)


# --------------------------------------------------------------------------- #
# ERC-1167 minimal proxies (dedup ablation, E6)

_ERC1167_PREFIX = bytes.fromhex("363d3d373d3d3d363d73")
_ERC1167_SUFFIX = bytes.fromhex("5af43d82803e903d91602b57fd5bf3")


def make_minimal_proxy(implementation_address: int) -> bytes:
    """Return ERC-1167 minimal-proxy runtime bytecode for ``implementation_address``."""
    if not 0 <= implementation_address < (1 << 160):
        raise ValueError("implementation address must fit in 160 bits")
    return _ERC1167_PREFIX + implementation_address.to_bytes(20, "big") + _ERC1167_SUFFIX


def is_minimal_proxy(bytecode: bytes) -> bool:
    """True if ``bytecode`` is an ERC-1167 minimal proxy."""
    return (len(bytecode) == len(_ERC1167_PREFIX) + 20 + len(_ERC1167_SUFFIX)
            and bytecode.startswith(_ERC1167_PREFIX)
            and bytecode.endswith(_ERC1167_SUFFIX))


def proxy_implementation_address(bytecode: bytes) -> int:
    """Extract the implementation address from an ERC-1167 proxy."""
    if not is_minimal_proxy(bytecode):
        raise ValueError("not an ERC-1167 minimal proxy")
    start = len(_ERC1167_PREFIX)
    return int.from_bytes(bytecode[start:start + 20], "big")


# --------------------------------------------------------------------------- #
# template registries

BENIGN_TEMPLATES: List[ContractTemplate] = [
    ContractTemplate("erc20_token", 0, "token", generate_erc20_token),
    ContractTemplate("staking_vault", 0, "defi", generate_staking_vault),
    ContractTemplate("dex_pair", 0, "defi", generate_dex_pair),
    ContractTemplate("airdrop_distributor", 0, "distribution", generate_airdrop_distributor),
    ContractTemplate("multisig_wallet", 0, "wallet", generate_multisig_wallet),
]

MALICIOUS_TEMPLATES: List[ContractTemplate] = [
    ContractTemplate("approval_drainer", 1, "phishing", generate_approval_drainer),
    ContractTemplate("honeypot", 1, "honeypot", generate_honeypot),
    ContractTemplate("ponzi_scheme", 1, "ponzi", generate_ponzi_scheme),
    ContractTemplate("rugpull_token", 1, "rugpull", generate_rugpull_token),
    ContractTemplate("backdoor_proxy", 1, "backdoor", generate_backdoor_proxy),
]

ALL_TEMPLATES: List[ContractTemplate] = BENIGN_TEMPLATES + MALICIOUS_TEMPLATES

TEMPLATES_BY_NAME: Dict[str, ContractTemplate] = {t.name: t for t in ALL_TEMPLATES}
