"""Bounded symbolic stack used for static jump-target resolution.

The EVM expresses jump targets as ordinary stack values, so a CFG builder
must recover, for every ``JUMP``/``JUMPI``, the set of concrete targets that
can reach it.  Full-blown symbolic execution is overkill for the detection
pipeline; instead we track a small abstract stack per basic block where each
slot is either a known constant (produced by a PUSH and propagated through
DUP/SWAP/AND-masking) or ``UNKNOWN``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.evm.disassembler import EVMInstruction

#: Sentinel for a stack slot whose value is not statically known.
UNKNOWN = None

#: Maximum tracked stack depth; deeper values are discarded (EVM limit is 1024
#: but jump targets in practice live in the top few slots).
MAX_TRACKED_DEPTH = 64


class SymbolicStack:
    """An abstract EVM stack tracking constants where statically derivable."""

    def __init__(self, values: Optional[List[Optional[int]]] = None) -> None:
        self._values: List[Optional[int]] = list(values or [])

    def copy(self) -> "SymbolicStack":
        return SymbolicStack(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def push(self, value: Optional[int]) -> None:
        self._values.append(value)
        if len(self._values) > MAX_TRACKED_DEPTH:
            del self._values[0]

    def pop(self) -> Optional[int]:
        if not self._values:
            return UNKNOWN
        return self._values.pop()

    def peek(self, depth: int = 0) -> Optional[int]:
        """Value ``depth`` slots below the top (0 == top), UNKNOWN when absent."""
        if depth >= len(self._values):
            return UNKNOWN
        return self._values[-1 - depth]

    def apply(self, instruction: EVMInstruction) -> None:
        """Update the abstract stack with the effect of one instruction.

        PUSH propagates its constant; DUPn/SWAPn move tracked values around;
        every other opcode pops its arguments and pushes UNKNOWN results.
        """
        opcode = instruction.opcode
        if opcode is None:
            self._values.clear()
            return
        name = opcode.name
        if name.startswith("PUSH"):
            self.push(instruction.operand if instruction.operand is not None else 0)
            return
        if name.startswith("DUP"):
            depth = int(name[3:]) - 1
            self.push(self.peek(depth))
            return
        if name.startswith("SWAP"):
            depth = int(name[4:])
            if depth < len(self._values):
                top_index = len(self._values) - 1
                other_index = top_index - depth
                self._values[top_index], self._values[other_index] = (
                    self._values[other_index], self._values[top_index])
            else:
                # cannot see that deep: conservatively forget everything we
                # would have swapped with.
                self._values = [UNKNOWN] * len(self._values)
            return
        # AND against a constant mask preserves small jump-target constants
        # (a pattern emitted by solc for function pointers); other ops lose
        # precision.
        if name == "AND" and len(self._values) >= 2:
            a = self.pop()
            b = self.pop()
            if a is not None and b is not None:
                self.push(a & b)
            else:
                self.push(UNKNOWN)
            return
        for _ in range(opcode.pops):
            self.pop()
        for _ in range(opcode.pushes):
            self.push(UNKNOWN)

    def jump_target(self) -> Optional[int]:
        """The statically-known jump target sitting on top of the stack, if any."""
        return self.peek(0)
