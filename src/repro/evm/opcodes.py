"""The EVM opcode table.

Every opcode of the Shanghai-era Ethereum Virtual Machine is modelled as an
:class:`Opcode` record carrying its byte value, mnemonic, stack arity
(items popped / pushed), immediate operand width (only ``PUSH1``..``PUSH32``
carry immediates), an approximate static gas cost and a *semantic category*.

The semantic category is the platform-agnostic vocabulary shared with the
WASM frontend (see :mod:`repro.ir.normalization`): models that operate on the
intermediate representation never see raw byte values, only categories, which
is what makes the ScamDetect pipeline platform-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Opcode:
    """A single EVM opcode.

    Attributes:
        value: The byte value of the opcode (0x00 - 0xFF).
        name: Canonical mnemonic, e.g. ``"PUSH1"`` or ``"SSTORE"``.
        pops: Number of stack items consumed.
        pushes: Number of stack items produced.
        immediate_size: Number of immediate operand bytes following the opcode
            in the bytecode stream (non-zero only for PUSH1..PUSH32).
        gas: Approximate static gas cost (dynamic components ignored).
        category: Semantic category used by the platform-agnostic IR.
    """

    value: int
    name: str
    pops: int
    pushes: int
    immediate_size: int
    gas: int
    category: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


# Semantic categories shared with the WASM frontend.
CATEGORIES = (
    "arithmetic",
    "comparison",
    "bitwise",
    "crypto",
    "environment",
    "block",
    "stack",
    "memory",
    "storage",
    "control",
    "call",
    "create",
    "log",
    "terminator",
    "invalid",
)


def _op(value: int, name: str, pops: int, pushes: int, gas: int, category: str,
        immediate_size: int = 0) -> Opcode:
    return Opcode(value=value, name=name, pops=pops, pushes=pushes,
                  immediate_size=immediate_size, gas=gas, category=category)


_BASE_OPCODES: List[Opcode] = [
    # 0x00 - 0x0B: stop and arithmetic
    _op(0x00, "STOP", 0, 0, 0, "terminator"),
    _op(0x01, "ADD", 2, 1, 3, "arithmetic"),
    _op(0x02, "MUL", 2, 1, 5, "arithmetic"),
    _op(0x03, "SUB", 2, 1, 3, "arithmetic"),
    _op(0x04, "DIV", 2, 1, 5, "arithmetic"),
    _op(0x05, "SDIV", 2, 1, 5, "arithmetic"),
    _op(0x06, "MOD", 2, 1, 5, "arithmetic"),
    _op(0x07, "SMOD", 2, 1, 5, "arithmetic"),
    _op(0x08, "ADDMOD", 3, 1, 8, "arithmetic"),
    _op(0x09, "MULMOD", 3, 1, 8, "arithmetic"),
    _op(0x0A, "EXP", 2, 1, 10, "arithmetic"),
    _op(0x0B, "SIGNEXTEND", 2, 1, 5, "arithmetic"),
    # 0x10 - 0x1D: comparison & bitwise
    _op(0x10, "LT", 2, 1, 3, "comparison"),
    _op(0x11, "GT", 2, 1, 3, "comparison"),
    _op(0x12, "SLT", 2, 1, 3, "comparison"),
    _op(0x13, "SGT", 2, 1, 3, "comparison"),
    _op(0x14, "EQ", 2, 1, 3, "comparison"),
    _op(0x15, "ISZERO", 1, 1, 3, "comparison"),
    _op(0x16, "AND", 2, 1, 3, "bitwise"),
    _op(0x17, "OR", 2, 1, 3, "bitwise"),
    _op(0x18, "XOR", 2, 1, 3, "bitwise"),
    _op(0x19, "NOT", 1, 1, 3, "bitwise"),
    _op(0x1A, "BYTE", 2, 1, 3, "bitwise"),
    _op(0x1B, "SHL", 2, 1, 3, "bitwise"),
    _op(0x1C, "SHR", 2, 1, 3, "bitwise"),
    _op(0x1D, "SAR", 2, 1, 3, "bitwise"),
    # 0x20: keccak
    _op(0x20, "SHA3", 2, 1, 30, "crypto"),
    # 0x30 - 0x3F: environment
    _op(0x30, "ADDRESS", 0, 1, 2, "environment"),
    _op(0x31, "BALANCE", 1, 1, 100, "environment"),
    _op(0x32, "ORIGIN", 0, 1, 2, "environment"),
    _op(0x33, "CALLER", 0, 1, 2, "environment"),
    _op(0x34, "CALLVALUE", 0, 1, 2, "environment"),
    _op(0x35, "CALLDATALOAD", 1, 1, 3, "environment"),
    _op(0x36, "CALLDATASIZE", 0, 1, 2, "environment"),
    _op(0x37, "CALLDATACOPY", 3, 0, 3, "environment"),
    _op(0x38, "CODESIZE", 0, 1, 2, "environment"),
    _op(0x39, "CODECOPY", 3, 0, 3, "environment"),
    _op(0x3A, "GASPRICE", 0, 1, 2, "environment"),
    _op(0x3B, "EXTCODESIZE", 1, 1, 100, "environment"),
    _op(0x3C, "EXTCODECOPY", 4, 0, 100, "environment"),
    _op(0x3D, "RETURNDATASIZE", 0, 1, 2, "environment"),
    _op(0x3E, "RETURNDATACOPY", 3, 0, 3, "environment"),
    _op(0x3F, "EXTCODEHASH", 1, 1, 100, "environment"),
    # 0x40 - 0x4A: block information
    _op(0x40, "BLOCKHASH", 1, 1, 20, "block"),
    _op(0x41, "COINBASE", 0, 1, 2, "block"),
    _op(0x42, "TIMESTAMP", 0, 1, 2, "block"),
    _op(0x43, "NUMBER", 0, 1, 2, "block"),
    _op(0x44, "PREVRANDAO", 0, 1, 2, "block"),
    _op(0x45, "GASLIMIT", 0, 1, 2, "block"),
    _op(0x46, "CHAINID", 0, 1, 2, "block"),
    _op(0x47, "SELFBALANCE", 0, 1, 5, "block"),
    _op(0x48, "BASEFEE", 0, 1, 2, "block"),
    # 0x50 - 0x5B: stack, memory, storage and flow
    _op(0x50, "POP", 1, 0, 2, "stack"),
    _op(0x51, "MLOAD", 1, 1, 3, "memory"),
    _op(0x52, "MSTORE", 2, 0, 3, "memory"),
    _op(0x53, "MSTORE8", 2, 0, 3, "memory"),
    _op(0x54, "SLOAD", 1, 1, 100, "storage"),
    _op(0x55, "SSTORE", 2, 0, 100, "storage"),
    _op(0x56, "JUMP", 1, 0, 8, "control"),
    _op(0x57, "JUMPI", 2, 0, 10, "control"),
    _op(0x58, "PC", 0, 1, 2, "stack"),
    _op(0x59, "MSIZE", 0, 1, 2, "memory"),
    _op(0x5A, "GAS", 0, 1, 2, "environment"),
    _op(0x5B, "JUMPDEST", 0, 0, 1, "control"),
    _op(0x5F, "PUSH0", 0, 1, 2, "stack"),
    # 0xA0 - 0xA4: logging
    _op(0xA0, "LOG0", 2, 0, 375, "log"),
    _op(0xA1, "LOG1", 3, 0, 750, "log"),
    _op(0xA2, "LOG2", 4, 0, 1125, "log"),
    _op(0xA3, "LOG3", 5, 0, 1500, "log"),
    _op(0xA4, "LOG4", 6, 0, 1875, "log"),
    # 0xF0 - 0xFF: system operations
    _op(0xF0, "CREATE", 3, 1, 32000, "create"),
    _op(0xF1, "CALL", 7, 1, 100, "call"),
    _op(0xF2, "CALLCODE", 7, 1, 100, "call"),
    _op(0xF3, "RETURN", 2, 0, 0, "terminator"),
    _op(0xF4, "DELEGATECALL", 6, 1, 100, "call"),
    _op(0xF5, "CREATE2", 4, 1, 32000, "create"),
    _op(0xFA, "STATICCALL", 6, 1, 100, "call"),
    _op(0xFD, "REVERT", 2, 0, 0, "terminator"),
    _op(0xFE, "INVALID", 0, 0, 0, "invalid"),
    _op(0xFF, "SELFDESTRUCT", 1, 0, 5000, "terminator"),
]


def _generate_push_dup_swap() -> List[Opcode]:
    ops: List[Opcode] = []
    for n in range(1, 33):
        ops.append(Opcode(value=0x60 + n - 1, name=f"PUSH{n}", pops=0, pushes=1,
                          immediate_size=n, gas=3, category="stack"))
    for n in range(1, 17):
        ops.append(Opcode(value=0x80 + n - 1, name=f"DUP{n}", pops=n, pushes=n + 1,
                          immediate_size=0, gas=3, category="stack"))
    for n in range(1, 17):
        ops.append(Opcode(value=0x90 + n - 1, name=f"SWAP{n}", pops=n + 1, pushes=n + 1,
                          immediate_size=0, gas=3, category="stack"))
    return ops


#: Mapping byte value -> Opcode for every defined opcode.
OPCODES: Dict[int, Opcode] = {op.value: op for op in _BASE_OPCODES + _generate_push_dup_swap()}

#: Mapping mnemonic -> Opcode.
OPCODES_BY_NAME: Dict[str, Opcode] = {op.name: op for op in OPCODES.values()}

#: Opcode returned for undefined byte values.
UNKNOWN_OPCODE_NAME = "UNKNOWN"


def opcode_by_value(value: int) -> Optional[Opcode]:
    """Return the :class:`Opcode` for ``value``, or ``None`` if undefined."""
    return OPCODES.get(value)


def opcode_by_name(name: str) -> Opcode:
    """Return the :class:`Opcode` with mnemonic ``name``.

    Raises:
        KeyError: if the mnemonic is not a defined EVM opcode.
    """
    return OPCODES_BY_NAME[name.upper()]


def is_push(value: int) -> bool:
    """Return True if ``value`` is one of PUSH1..PUSH32 (or PUSH0)."""
    return 0x5F <= value <= 0x7F


def push_size(value: int) -> int:
    """Number of immediate bytes carried by a PUSH opcode (0 for PUSH0)."""
    if not is_push(value):
        raise ValueError(f"opcode 0x{value:02x} is not a PUSH")
    return value - 0x5F


def is_terminator(name: str) -> bool:
    """Return True if the mnemonic unconditionally ends a basic block."""
    return name in ("STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT", "JUMP")


def is_block_end(name: str) -> bool:
    """Return True if the mnemonic ends a basic block (including fallthrough JUMPI)."""
    return is_terminator(name) or name == "JUMPI" or name == UNKNOWN_OPCODE_NAME
