"""Base protocol for feature extractors."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.datasets.corpus import Corpus


class FeatureExtractor(abc.ABC):
    """fit/transform feature extractor over contract corpora.

    Extractors must be usable in cross-validation loops: ``fit`` learns any
    vocabulary/statistics from the training corpus only, and ``transform``
    can then be applied to unseen corpora.
    """

    #: Short name used in experiment tables.
    name: str = "extractor"

    @abc.abstractmethod
    def fit(self, corpus: Corpus) -> "FeatureExtractor":
        """Learn extraction state from ``corpus``; returns self."""

    @abc.abstractmethod
    def transform(self, corpus: Corpus) -> np.ndarray:
        """Return the feature matrix of ``corpus`` (one row per sample)."""

    def fit_transform(self, corpus: Corpus) -> np.ndarray:
        """Fit on ``corpus`` and transform it in one call."""
        return self.fit(corpus).transform(corpus)

    @property
    def dimension(self) -> Optional[int]:
        """Dimensionality of the produced feature vectors, if known after fit."""
        return None
