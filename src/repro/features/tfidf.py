"""TF-IDF re-weighted opcode n-gram features."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.corpus import Corpus
from repro.features.base import FeatureExtractor
from repro.features.ngrams import NgramExtractor


class TfidfExtractor(FeatureExtractor):
    """TF-IDF weighting over opcode n-gram counts.

    The term-frequency part reuses :class:`NgramExtractor` (unnormalized
    counts); inverse document frequencies are learned during fit with the
    standard smoothed formulation ``idf = ln((1 + N) / (1 + df)) + 1`` and
    rows are L2-normalized.
    """

    def __init__(self, n: int = 2, top_k: int = 256,
                 vocabulary: str = "mnemonic") -> None:
        self._counts = NgramExtractor(n=n, top_k=top_k, vocabulary=vocabulary,
                                      normalize=False)
        self._idf: Optional[np.ndarray] = None
        self.name = f"tfidf-{n}gram"

    def fit(self, corpus: Corpus) -> "TfidfExtractor":
        counts = self._counts.fit(corpus).transform(corpus)
        document_frequency = (counts > 0).sum(axis=0)
        num_documents = max(len(corpus), 1)
        self._idf = np.log((1.0 + num_documents) / (1.0 + document_frequency)) + 1.0
        return self

    def transform(self, corpus: Corpus) -> np.ndarray:
        if self._idf is None:
            raise RuntimeError("TfidfExtractor.transform called before fit")
        counts = self._counts.transform(corpus)
        weighted = counts * self._idf[None, :]
        norms = np.linalg.norm(weighted, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return weighted / norms

    @property
    def dimension(self) -> Optional[int]:
        return self._counts.dimension
