"""TF-IDF re-weighted opcode n-gram features."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.corpus import Corpus
from repro.features.base import FeatureExtractor
from repro.features.ngrams import NgramExtractor


class TfidfExtractor(FeatureExtractor):
    """TF-IDF weighting over opcode n-gram counts.

    The term-frequency part reuses :class:`NgramExtractor` (unnormalized
    counts); inverse document frequencies are learned during fit with the
    standard smoothed formulation ``idf = ln((1 + N) / (1 + df)) + 1`` and
    rows are L2-normalized.
    """

    def __init__(self, n: int = 2, top_k: int = 256,
                 vocabulary: str = "mnemonic") -> None:
        self._counts = NgramExtractor(n=n, top_k=top_k, vocabulary=vocabulary,
                                      normalize=False)
        self._idf: Optional[np.ndarray] = None
        self.name = f"tfidf-{n}gram"

    def fit(self, corpus: Corpus) -> "TfidfExtractor":
        counts = self._counts.fit(corpus).transform(corpus)
        document_frequency = (counts > 0).sum(axis=0)
        num_documents = max(len(corpus), 1)
        self._idf = np.log((1.0 + num_documents) / (1.0 + document_frequency)) + 1.0
        return self

    def transform(self, corpus: Corpus) -> np.ndarray:
        if self._idf is None:
            raise RuntimeError("TfidfExtractor.transform called before fit")
        counts = self._counts.transform(corpus)
        weighted = counts * self._idf[None, :]
        norms = np.linalg.norm(weighted, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return weighted / norms

    @property
    def idf(self) -> np.ndarray:
        """The fitted inverse-document-frequency vector (for persistence)."""
        if self._idf is None:
            raise RuntimeError("TfidfExtractor.idf accessed before fit")
        return self._idf

    def vocabulary_ngrams(self) -> List[Tuple[str, ...]]:
        """The fitted n-gram vocabulary in column order (for persistence)."""
        return self._counts.vocabulary_ngrams()

    def restore(self, ngrams: Sequence[Tuple[str, ...]],
                idf: np.ndarray) -> "TfidfExtractor":
        """Install a previously fitted vocabulary + idf vector; returns
        self.  Used when loading a persisted model head."""
        self._counts.set_vocabulary_ngrams(ngrams)
        if len(idf) != len(ngrams):
            raise ValueError(
                f"idf length {len(idf)} does not match vocabulary size "
                f"{len(ngrams)}")
        self._idf = np.asarray(idf, dtype=np.float64)
        return self

    @property
    def dimension(self) -> Optional[int]:
        return self._counts.dimension
