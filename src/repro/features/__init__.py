"""Feature extraction for classical (non-graph) models.

These are the PhishingHook-style representations benchmarked in E1 and used
as the opcode-sequence baselines that the GNN models are compared against in
E2-E4:

* opcode histograms (mnemonic or category vocabulary),
* opcode n-grams and TF-IDF re-weighted n-grams,
* byte-image ("vision") encodings of the raw bytecode,
* flat structural descriptors of the CFG.

All extractors implement ``fit(corpus)`` / ``transform(corpus)`` and are
platform-agnostic: they work from the shared opcode-sequence / CFG view
provided by :mod:`repro.features.sequences`.
"""

from repro.features.sequences import opcode_sequence, normalized_vocabulary
from repro.features.base import FeatureExtractor
from repro.features.opcode_histogram import OpcodeHistogramExtractor
from repro.features.ngrams import NgramExtractor
from repro.features.tfidf import TfidfExtractor
from repro.features.image_encoding import ByteImageExtractor
from repro.features.cfg_features import CFGStructureExtractor

__all__ = [
    "opcode_sequence",
    "normalized_vocabulary",
    "FeatureExtractor",
    "OpcodeHistogramExtractor",
    "NgramExtractor",
    "TfidfExtractor",
    "ByteImageExtractor",
    "CFGStructureExtractor",
]
