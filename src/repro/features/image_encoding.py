"""Byte-image ("vision-based") encodings of raw bytecode.

PhishingHook's model zoo includes vision-style encodings that treat the raw
bytecode as a grayscale image.  This extractor reproduces the idea without a
CNN substrate: the byte stream is resampled onto a fixed ``side x side`` grid
(averaging within each cell) and flattened, optionally augmented with a
byte-value histogram, yielding a fixed-size vector any classical model can
consume.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.corpus import Corpus
from repro.features.base import FeatureExtractor


class ByteImageExtractor(FeatureExtractor):
    """Fixed-size byte-image representation of the raw bytecode.

    Args:
        side: The image is ``side x side`` pixels (flattened to side**2 values
            in [0, 1]).
        include_byte_histogram: Append a 32-bin histogram of byte values.
    """

    def __init__(self, side: int = 16, include_byte_histogram: bool = True) -> None:
        if side < 2:
            raise ValueError("side must be >= 2")
        self.side = side
        self.include_byte_histogram = include_byte_histogram
        self.name = f"byteimage-{side}x{side}"

    def fit(self, corpus: Corpus) -> "ByteImageExtractor":
        return self

    def _resample(self, data: bytes) -> np.ndarray:
        pixels = self.side * self.side
        if not data:
            return np.zeros(pixels, dtype=np.float64)
        values = np.frombuffer(data, dtype=np.uint8).astype(np.float64) / 255.0
        # average the byte values falling into each of the `pixels` buckets
        bucket_edges = np.linspace(0, len(values), pixels + 1).astype(int)
        image = np.zeros(pixels, dtype=np.float64)
        for i in range(pixels):
            start, end = bucket_edges[i], bucket_edges[i + 1]
            if end > start:
                image[i] = values[start:end].mean()
            elif len(values):
                image[i] = values[min(start, len(values) - 1)]
        return image

    def transform(self, corpus: Corpus) -> np.ndarray:
        histogram_bins = 32 if self.include_byte_histogram else 0
        width = self.side * self.side + histogram_bins + 1
        features = np.zeros((len(corpus), width), dtype=np.float64)
        for row, sample in enumerate(corpus):
            image = self._resample(sample.bytecode)
            features[row, :image.size] = image
            if self.include_byte_histogram and sample.bytecode:
                values = np.frombuffer(sample.bytecode, dtype=np.uint8)
                histogram, _ = np.histogram(values, bins=histogram_bins, range=(0, 256))
                features[row, image.size:image.size + histogram_bins] = (
                    histogram / max(len(values), 1))
            features[row, -1] = np.log1p(len(sample.bytecode))
        return features

    @property
    def dimension(self) -> Optional[int]:
        return self.side * self.side + (32 if self.include_byte_histogram else 0) + 1
