"""Opcode-histogram features (the core PhishingHook representation)."""

from __future__ import annotations

from collections import Counter
from typing import Optional

import numpy as np

from repro.datasets.corpus import Corpus
from repro.features.base import FeatureExtractor
from repro.features.sequences import normalized_vocabulary, opcode_sequence


class OpcodeHistogramExtractor(FeatureExtractor):
    """Normalized histogram of opcode tokens per contract.

    Args:
        vocabulary: ``"mnemonic"`` (normalized platform mnemonics) or
            ``"category"`` (the shared semantic categories).
        platform: Which platform's vocabulary to use; ``"both"`` makes feature
            vectors comparable across EVM and WASM corpora (used in E5).
        normalize: If True each histogram is divided by the sequence length.
        include_length: If True a log-length column is appended.
    """

    def __init__(self, vocabulary: str = "mnemonic", platform: str = "both",
                 normalize: bool = True, include_length: bool = True) -> None:
        self.vocabulary = vocabulary
        self.platform = platform
        self.normalize = normalize
        self.include_length = include_length
        self._tokens = normalized_vocabulary(platform, vocabulary)
        self._index = {token: i for i, token in enumerate(self._tokens)}
        self.name = f"histogram-{vocabulary}"

    def fit(self, corpus: Corpus) -> "OpcodeHistogramExtractor":
        return self  # vocabulary is fixed; nothing to learn

    def transform(self, corpus: Corpus) -> np.ndarray:
        width = len(self._tokens) + (1 if self.include_length else 0)
        features = np.zeros((len(corpus), width), dtype=np.float64)
        for row, sample in enumerate(corpus):
            sequence = opcode_sequence(sample, vocabulary=self.vocabulary)
            # Counter counts at C speed and the write loop then touches only
            # *unique* tokens, not every opcode -- this path is hot in the
            # cascade pre-filter where it runs on every scanned contract
            for token, count in Counter(sequence).items():
                column = self._index.get(token)
                if column is not None:
                    features[row, column] = float(count)
            if self.normalize and sequence:
                features[row, :len(self._tokens)] /= float(len(sequence))
            if self.include_length:
                features[row, -1] = np.log1p(len(sequence))
        return features

    @property
    def dimension(self) -> Optional[int]:
        return len(self._tokens) + (1 if self.include_length else 0)
