"""Flat structural CFG descriptors for classical models."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.corpus import Corpus
from repro.features.base import FeatureExtractor
from repro.ir.features import graph_feature_vector
from repro.ir.normalization import CATEGORY_VOCABULARY
from repro.evm.cfg_builder import build_cfg as build_evm_cfg
from repro.wasm.cfg_builder import build_cfg as build_wasm_cfg


def sample_to_cfg(sample) -> "object":
    """Build the platform-appropriate CFG of a contract sample."""
    if sample.platform == "evm":
        return build_evm_cfg(sample.bytecode, name=sample.sample_id)
    if sample.platform == "wasm":
        return build_wasm_cfg(sample.bytecode, name=sample.sample_id)
    raise ValueError(f"unknown platform {sample.platform!r}")


class CFGStructureExtractor(FeatureExtractor):
    """Fixed-size structural descriptor of each contract's CFG.

    A "CFG-aware but flat" baseline sitting between pure opcode histograms
    and the GNN models: it sees the global category distribution plus graph
    shape statistics but no relational structure.
    """

    def __init__(self) -> None:
        self.name = "cfg-structure"

    def fit(self, corpus: Corpus) -> "CFGStructureExtractor":
        return self

    def transform(self, corpus: Corpus) -> np.ndarray:
        width = len(CATEGORY_VOCABULARY) + 8
        features = np.zeros((len(corpus), width), dtype=np.float64)
        for row, sample in enumerate(corpus):
            features[row] = graph_feature_vector(sample_to_cfg(sample))
        return features

    @property
    def dimension(self) -> Optional[int]:
        return len(CATEGORY_VOCABULARY) + 8
