"""Shared opcode-sequence view of contract samples.

Classical feature extractors do not consume raw bytecode directly; they work
from the normalized opcode sequence produced here, which hides the
platform-specific details (PUSH widths, DUP/SWAP depths, WASM type prefixes)
behind a compact shared vocabulary.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from repro.datasets.corpus import ContractSample
from repro.evm.disassembler import disassemble
from repro.evm.opcodes import OPCODES
from repro.ir.normalization import CATEGORY_VOCABULARY
from repro.wasm.opcodes import WASM_OPCODES
from repro.wasm.parser import parse_module


def _normalize_evm_mnemonic(name: str) -> str:
    """Collapse parameterized mnemonics (PUSH1..32, DUP1..16, ...) onto one token."""
    for prefix in ("PUSH", "DUP", "SWAP", "LOG"):
        if name.startswith(prefix) and name[len(prefix):].isdigit():
            return prefix
    return name


def _normalize_wasm_mnemonic(name: str) -> str:
    """Collapse typed WASM mnemonics (i32.add / i64.add -> add, etc.)."""
    if "." in name:
        prefix, operation = name.split(".", 1)
        if prefix in ("i32", "i64", "f32", "f64"):
            return operation.upper()
        return f"{prefix.upper()}_{operation.upper()}"
    return name.upper()


@lru_cache(maxsize=4096)
def _cached_sequence(bytecode: bytes, platform: str, vocabulary: str) -> tuple:
    if platform == "evm":
        instructions = disassemble(bytecode)
        if vocabulary == "category":
            return tuple(ins.category for ins in instructions)
        return tuple(_normalize_evm_mnemonic(ins.name) for ins in instructions)
    if platform == "wasm":
        module = parse_module(bytecode)
        names: List[str] = []
        categories: List[str] = []
        for function in module.functions:
            for entry in function.body:
                names.append(_normalize_wasm_mnemonic(entry.name))
                categories.append(entry.opcode.category)
        return tuple(categories if vocabulary == "category" else names)
    raise ValueError(f"unknown platform {platform!r}")


def opcode_sequence(sample: ContractSample, vocabulary: str = "mnemonic") -> List[str]:
    """The normalized opcode sequence of a contract sample.

    Results are memoized on (bytecode, platform, vocabulary) because feature
    extractors re-derive the same sequences many times during
    cross-validation.

    Args:
        sample: The contract sample (EVM or WASM).
        vocabulary: ``"mnemonic"`` for normalized platform mnemonics, or
            ``"category"`` for the shared semantic categories.
    """
    return list(_cached_sequence(sample.bytecode, sample.platform, vocabulary))


@lru_cache(maxsize=None)
def normalized_vocabulary(platform: str = "both", vocabulary: str = "mnemonic") -> tuple:
    """The fixed token vocabulary for histograms.

    Args:
        platform: ``"evm"``, ``"wasm"`` or ``"both"``.
        vocabulary: ``"mnemonic"`` or ``"category"``.

    Returns:
        A sorted tuple of tokens; feature vectors index into it positionally.
    """
    if vocabulary == "category":
        return tuple(CATEGORY_VOCABULARY)
    tokens = set()
    if platform in ("evm", "both"):
        tokens.update(_normalize_evm_mnemonic(op.name) for op in OPCODES.values())
        tokens.add("UNKNOWN")
    if platform in ("wasm", "both"):
        tokens.update(_normalize_wasm_mnemonic(op.name) for op in WASM_OPCODES.values())
    return tuple(sorted(tokens))
