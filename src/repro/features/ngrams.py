"""Opcode n-gram features."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.corpus import Corpus
from repro.features.base import FeatureExtractor
from repro.features.sequences import opcode_sequence

#: Sentinel token padding sequences shorter than the n-gram order.  A
#: 1-opcode contract under bigrams becomes the single padded bigram
#: ``(opcode, "<PAD>")`` instead of contributing no n-grams at all --
#: previously such contracts were invisible to fit and transformed to
#: all-zero rows, indistinguishable from empty bytecode.
PAD_TOKEN = "<PAD>"


class NgramExtractor(FeatureExtractor):
    """Counts of the most frequent opcode n-grams learned from the training set.

    Args:
        n: n-gram order (2 = bigrams, 3 = trigrams, ...).
        top_k: Keep only the ``top_k`` most frequent n-grams seen during fit.
        vocabulary: Token vocabulary passed to :func:`opcode_sequence`.
        normalize: Divide counts by the number of n-grams in the sample.
    """

    def __init__(self, n: int = 2, top_k: int = 256,
                 vocabulary: str = "mnemonic", normalize: bool = True) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.top_k = top_k
        self.vocabulary = vocabulary
        self.normalize = normalize
        self._ngram_index: Dict[Tuple[str, ...], int] = {}
        self.name = f"{n}gram"

    def _ngrams(self, sequence: List[str]) -> List[Tuple[str, ...]]:
        if not sequence:
            return []
        if len(sequence) < self.n:
            # one right-padded n-gram so short contracts still produce a
            # feature instead of an all-zero row (see PAD_TOKEN)
            return [tuple(sequence) + (PAD_TOKEN,) * (self.n - len(sequence))]
        return [tuple(sequence[i:i + self.n]) for i in range(len(sequence) - self.n + 1)]

    def fit(self, corpus: Corpus) -> "NgramExtractor":
        counter: Counter = Counter()
        for sample in corpus:
            counter.update(self._ngrams(opcode_sequence(sample, self.vocabulary)))
        most_common = counter.most_common(self.top_k)
        self._ngram_index = {ngram: i for i, (ngram, _) in enumerate(most_common)}
        return self

    def transform(self, corpus: Corpus) -> np.ndarray:
        if not self._ngram_index:
            raise RuntimeError("NgramExtractor.transform called before fit")
        features = np.zeros((len(corpus), len(self._ngram_index)), dtype=np.float64)
        for row, sample in enumerate(corpus):
            ngrams = self._ngrams(opcode_sequence(sample, self.vocabulary))
            # count with Counter (C speed), then write only unique n-grams
            for ngram, count in Counter(ngrams).items():
                column = self._ngram_index.get(ngram)
                if column is not None:
                    features[row, column] = float(count)
            if self.normalize and ngrams:
                features[row] /= float(len(ngrams))
        return features

    def vocabulary_ngrams(self) -> List[Tuple[str, ...]]:
        """The fitted n-gram vocabulary in column order (for persistence)."""
        if not self._ngram_index:
            raise RuntimeError("NgramExtractor.vocabulary_ngrams before fit")
        return sorted(self._ngram_index, key=self._ngram_index.get)

    def set_vocabulary_ngrams(
            self, ngrams: Sequence[Tuple[str, ...]]) -> "NgramExtractor":
        """Install a previously fitted vocabulary (column order preserved);
        returns self.  Used when loading a persisted model head."""
        self._ngram_index = {tuple(ngram): index
                             for index, ngram in enumerate(ngrams)}
        return self

    @property
    def dimension(self) -> Optional[int]:
        return len(self._ngram_index) or None
