"""Command-line interface for the ScamDetect reproduction.

Usage (after ``pip install -e .`` the ``scamdetect`` entry point is on PATH;
``python -m repro.cli`` always works)::

    scamdetect corpus     --platform evm --num-samples 200
    scamdetect train      --model-path /tmp/scamdetect --num-samples 200
    scamdetect scan       --model-path /tmp/scamdetect --hex-file contract.hex
    scamdetect scan-batch --model-path /tmp/scamdetect --input-dir submissions/ \
                          --cache-dir /tmp/scamdetect-cache --shards 4
    scamdetect serve      --model-path /tmp/scamdetect --port 8742 \
                          --workers 8 --max-batch 32 --shards 4
    scamdetect watch submissions/ --model-path /tmp/scamdetect \
                          --registry /tmp/verdicts.db --rules triage.toml
    scamdetect query      --registry /tmp/verdicts.db --verdict malicious \
                          --min-score 0.9 --json
    scamdetect rules check triage.toml
    scamdetect triage triage.toml --registry /tmp/verdicts.db \
                          --fingerprint FP --dry-run
    scamdetect experiment --id E2

The CLI is intentionally thin: every command maps onto one public-API call so
scripts and notebooks can do the same thing programmatically.

Exit codes are verdict-coded so shell pipelines can branch on them:
``scan`` and ``scan-batch`` exit 0 when everything was benign, 2 when
anything was flagged malicious, and 1 on errors (bad model path, unreadable
input, ...); ``watch`` and ``triage`` exit 2 when a triage rule with the
``exit_nonzero`` action fired (``triage --dry-run`` always exits 0).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Sequence

from repro.core.config import ScamDetectConfig
from repro.core.detector import ScamDetector
from repro.datasets.generator import CorpusGenerator, GeneratorConfig
from repro.datasets.splits import stratified_split


def _add_cascade_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cascade", action="store_true",
                        help="enable the tier-0 calibrated n-gram pre-filter "
                             "(the bundle must have been trained with "
                             "'train --cascade'); confident-benign contracts "
                             "short-circuit before CFG lowering")
    parser.add_argument("--cascade-margin", type=float, default=None,
                        help="safety margin subtracted from the pre-filter's "
                             "at-target-recall threshold (default: the "
                             "head's trained margin); larger = fewer "
                             "short-circuits, more safety")


def _add_corpus_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--platform", choices=("evm", "wasm"), default="evm")
    parser.add_argument("--num-samples", type=int, default=200)
    parser.add_argument("--malicious-fraction", type=float, default=0.5)
    parser.add_argument("--label-noise", type=float, default=0.03)
    parser.add_argument("--seed", type=int, default=0)


def _generator_config(args: argparse.Namespace) -> GeneratorConfig:
    return GeneratorConfig(platform=args.platform, num_samples=args.num_samples,
                           malicious_fraction=args.malicious_fraction,
                           label_noise=args.label_noise, seed=args.seed)


def _command_corpus(args: argparse.Namespace) -> int:
    corpus = CorpusGenerator(_generator_config(args)).generate()
    summary = corpus.summary()
    print("generated corpus:")
    for key, value in summary.items():
        print(f"  {key}: {value}")
    print("family breakdown:")
    for family, count in sorted(corpus.family_counts().items()):
        print(f"  {family}: {count}")
    return 0


def _command_train(args: argparse.Namespace) -> int:
    corpus = CorpusGenerator(_generator_config(args)).generate()
    train, test = stratified_split(corpus, test_fraction=args.test_fraction,
                                   seed=args.seed)
    config = ScamDetectConfig(architecture=args.architecture, epochs=args.epochs,
                              readout=args.readout, seed=args.seed)
    detector = ScamDetector(config).train(train, cascade=args.cascade)
    metrics = detector.evaluate(test)
    print("held-out metrics: "
          + ", ".join(f"{name}={value:.3f}" for name, value in metrics.items()))
    detector.save(args.model_path)
    if args.cascade:
        print("cascade pre-filter head trained and bundled "
              f"({detector.pipeline.cascade.describe()})")
    print(f"model saved to {args.model_path}.json / {args.model_path}.npz")
    return 0


def _read_code(args: argparse.Namespace) -> bytes:
    if args.hex_file:
        text = pathlib.Path(args.hex_file).read_text().strip()
        if text.startswith(("0x", "0X")):
            text = text[2:]
        return bytes.fromhex(text)
    if args.binary_file:
        return pathlib.Path(args.binary_file).read_bytes()
    raise SystemExit("scan requires --hex-file or --binary-file")


def _command_scan(args: argparse.Namespace) -> int:
    detector = _load_detector("scan", args, explain=True)
    code = _read_code(args)
    try:
        report = detector.scan(code, platform=args.platform,
                               sample_id=args.sample_id)
    except ValueError as error:
        raise SystemExit(f"scan: bytecode rejected: {error}")
    print(report.format())
    # verdict-coded exit status (documented in the module docstring and
    # README): 2 on a malicious verdict so pipelines can tell "scam found"
    # (2) from "scan failed" (1, the SystemExit paths above)
    return 2 if report.is_malicious else 0


def _load_detector(command: str, args: argparse.Namespace,
                   explain: bool) -> ScamDetector:
    """Load the model bundle for a serving command; exits non-zero with a
    clear message when the bundle is missing or unreadable (or when
    ``--cascade`` was requested but the bundle has no trained head)."""
    from repro.core.persistence import PersistenceError

    try:
        detector = ScamDetector.load(
            args.model_path, threshold=args.threshold, explain=explain,
            cascade=getattr(args, "cascade", False),
            cascade_margin=getattr(args, "cascade_margin", None))
        detector.cascade_head()
        return detector
    except (PersistenceError, OSError) as error:
        raise SystemExit(f"{command}: cannot load model bundle "
                         f"{args.model_path!r}: {error}")
    except (RuntimeError, ValueError) as error:
        raise SystemExit(f"{command}: {error}")


def _command_scan_batch(args: argparse.Namespace) -> int:
    from repro.service import BatchScanner, GraphCache, ShardError

    _arm_fault_plan("scan-batch", args.fault_plan)
    _arm_tracing("scan-batch", args.trace_file, args.log_json)
    detector = _load_detector("scan-batch", args, explain=args.explain)
    cache = None
    if args.cache_dir is not None or args.cache_capacity is not None:
        try:
            cache = GraphCache.for_config(
                detector.config,
                capacity=(args.cache_capacity
                          if args.cache_capacity is not None else 1024),
                disk_dir=args.cache_dir)
        except ValueError as error:
            raise SystemExit(f"scan-batch: {error}")
    registry = _open_registry("scan-batch", args.registry, detector)
    scanner = BatchScanner(detector, cache=cache, max_workers=args.workers,
                           shards=args.shards, registry=registry)
    try:
        result = scanner.scan_directory(args.input_dir, pattern=args.pattern,
                                        platform=args.platform,
                                        recursive=not args.no_recursive)
    except (FileNotFoundError, ValueError, ShardError) as error:
        raise SystemExit(f"scan-batch: {error}")
    finally:
        scanner.close()
        if registry is not None:
            registry.close()
    print(result.format())
    for entry in result.skipped:
        print(f"  skipped: {entry}", file=sys.stderr)
    if args.show_reports:
        for report in result.reports:
            print()
            print(report.format())
    return 2 if result.num_malicious else 0


def _arm_fault_plan(command: str, path: Optional[str]) -> None:
    """Activate ``--fault-plan`` (a JSON fault schedule) process-wide.

    Sharded workers spawned afterwards re-arm the same plan, so one flag
    chaos-tests a whole stack.  No-op when the flag was not given.
    """
    if path is None:
        return
    from repro.resilience import FaultPlan, activate

    try:
        plan = FaultPlan.load(path)
    except (OSError, ValueError) as error:
        raise SystemExit(f"{command}: cannot load fault plan: {error}")
    activate(plan)
    print(f"{command}: fault injection armed from {path} "
          f"({len(plan.specs)} spec(s), seed {plan.seed})", file=sys.stderr)


def _arm_tracing(command: str, trace_file: Optional[str],
                 log_json: bool) -> None:
    """Arm ``--trace-file`` (JSONL span export) and ``--log-json``
    process-wide.  Sharded workers spawned afterwards buffer their own
    spans and ship them back with each chunk.  No-op without the flags."""
    if log_json:
        from repro.obs import enable_json_logs

        enable_json_logs()
    if trace_file is None:
        return
    import atexit

    from repro.obs import JsonlTraceWriter, Tracer, arm

    try:
        writer = JsonlTraceWriter(trace_file)
    except OSError as error:
        raise SystemExit(f"{command}: cannot open trace file "
                         f"{trace_file!r}: {error}")
    # flush on any exit path (SystemExit included); signal handlers in
    # serve/watch raise instead of exiting, so atexit always runs
    atexit.register(writer.close)
    arm(Tracer(sink=writer))
    print(f"{command}: tracing armed, spans -> {trace_file}",
          file=sys.stderr)


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-file", default=None,
                        help="arm span tracing and append spans to this "
                             "JSONL file (analyse with 'scamdetect trace "
                             "summarize')")
    parser.add_argument("--log-json", action="store_true",
                        help="emit warnings/log records as JSON lines on "
                             "stderr, stamped with the active trace id")


def _open_registry(command: str, path: Optional[str], detector):
    """Open ``--registry`` scoped to the loaded detector's fingerprint
    (None when the flag was not given); exits non-zero on registry errors."""
    if path is None:
        return None
    from repro.registry import RegistryError, ScanRegistry

    try:
        return ScanRegistry.for_config(path, detector.config)
    except (RegistryError, OSError) as error:
        raise SystemExit(f"{command}: cannot open registry {path!r}: {error}")


def _command_watch(args: argparse.Namespace) -> int:
    import json
    import signal

    from repro.registry import RegistryError, RuleParseError, RulesEngine, \
        WatchDaemon, load_rules
    from repro.service import GraphCache, ShardError

    _arm_fault_plan("watch", args.fault_plan)
    _arm_tracing("watch", args.trace_file, args.log_json)
    detector = _load_detector("watch", args, explain=args.explain)
    registry = _open_registry("watch", args.registry, detector)
    rules_engine = None
    if args.rules is not None:
        try:
            rules_engine = RulesEngine(
                load_rules(args.rules), alert_path=args.alert_file,
                dead_letter_path=args.dead_letter_file)
        except RuleParseError as error:
            raise SystemExit(f"watch: {error}")
    cache = None
    if args.cache_dir is not None:
        try:
            cache = GraphCache.for_config(detector.config,
                                          disk_dir=args.cache_dir)
        except ValueError as error:
            raise SystemExit(f"watch: {error}")
    if args.event_driven:
        return _run_event_watch(args, detector, registry, rules_engine, cache)
    if args.root:
        raise SystemExit("watch: --root needs --event-driven (the polling "
                         "daemon watches exactly one directory)")
    try:
        daemon = WatchDaemon(detector, registry, args.directory,
                             pattern=args.pattern,
                             recursive=not args.no_recursive,
                             rules=rules_engine, interval=args.interval,
                             cache=cache, max_workers=args.workers,
                             shards=args.shards)
    except (FileNotFoundError, ValueError, RegistryError) as error:
        raise SystemExit(f"watch: {error}")

    def _terminate(signum, frame):
        # finish the cycle in flight, record everything, then exit run()
        daemon.stop()

    previous = {sig: signal.signal(sig, _terminate)
                for sig in (signal.SIGTERM, signal.SIGINT)}
    print(f"watching {daemon.directory} every {args.interval:g}s "
          f"(registry {args.registry}, "
          f"rules {args.rules or 'none'}); SIGTERM drains cleanly",
          flush=True)

    def on_poll(cycle: int, stats) -> None:
        if args.json:
            payload = dict(stats.to_dict(), poll=cycle)
            print(json.dumps(payload, sort_keys=True), flush=True)
        else:
            print(f"poll {cycle}: {stats.format()}", flush=True)

    try:
        daemon.run(max_polls=args.max_polls, on_poll=on_poll)
    except ShardError as error:
        raise SystemExit(f"watch: shard pool failed: {error}")
    finally:
        print("watch: shutting down", flush=True)
        daemon.close()
        registry.close()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return 2 if daemon.exit_nonzero else 0


def _run_event_watch(args: argparse.Namespace, detector, registry,
                     rules_engine, cache) -> int:
    """``watch --event-driven``: inotify/poll events -> bounded priority
    queue -> the same scan/record/triage stack as the polling daemon."""
    import json
    import signal

    from repro.ingest import EventIngestService
    from repro.service import ShardError

    roots = [args.directory] + list(args.root or [])
    for root in roots:
        if not pathlib.Path(root).is_dir():
            raise SystemExit(f"watch: not a directory: {root}")
    try:
        service = EventIngestService(
            detector, registry, roots=roots, pattern=args.pattern,
            recursive=not args.no_recursive, rules=rules_engine,
            queue_capacity=args.queue_capacity, backend=args.backend,
            cache=cache, max_workers=args.workers, shards=args.shards)
    except (FileNotFoundError, ValueError, RuntimeError) as error:
        raise SystemExit(f"watch: {error}")

    def _terminate(signum, frame):
        # stop after the cycle in flight; run() drains the queue on exit
        service.stop()

    previous = {sig: signal.signal(sig, _terminate)
                for sig in (signal.SIGTERM, signal.SIGINT)}
    print(f"watching {', '.join(str(r) for r in service.roots)} "
          f"({service.backend} events, queue {service.queue.capacity}, "
          f"registry {args.registry}, rules {args.rules or 'none'}); "
          f"SIGTERM drains cleanly", flush=True)

    def on_cycle(cycle: int, stats) -> None:
        if args.json:
            payload = dict(stats.to_dict(), cycle=cycle)
            print(json.dumps(payload, sort_keys=True), flush=True)
        elif stats.events or stats.drained or stats.faulted_drains:
            # event mode idles most cycles: only narrate ones that did work
            print(f"cycle {cycle}: {stats.format()}", flush=True)

    try:
        service.backfill()
        service.run(interval=args.interval, max_cycles=args.max_polls,
                    on_cycle=on_cycle)
    except ShardError as error:
        raise SystemExit(f"watch: shard pool failed: {error}")
    finally:
        print("watch: shutting down", flush=True)
        service.close(drain=True)
        registry.close()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return 2 if service.exit_nonzero else 0


def _parse_when(command: str, value: Optional[str]) -> Optional[float]:
    """``--since/--until`` accept epoch seconds or an ISO-8601 timestamp."""
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        pass
    import datetime

    try:
        return datetime.datetime.fromisoformat(value).timestamp()
    except ValueError:
        raise SystemExit(f"{command}: cannot parse time {value!r}; use "
                         f"epoch seconds or ISO-8601 "
                         f"(e.g. 2026-07-27T12:00)")


def _command_query(args: argparse.Namespace) -> int:
    import json
    import sqlite3

    from repro.registry import RegistryError, ScanRegistry

    fingerprint = args.fingerprint
    if args.model_path is not None:
        fingerprint = _load_detector("query", args,
                                     explain=False).config.graph_fingerprint()
    try:
        registry = ScanRegistry(args.registry, fingerprint=fingerprint or "")
    except (RegistryError, OSError) as error:
        raise SystemExit(f"query: cannot open registry "
                         f"{args.registry!r}: {error}")
    try:
        filters = dict(
            verdict=args.verdict,
            min_score=args.min_score,
            max_score=args.max_score,
            platform=args.platform,
            since=_parse_when("query", args.since),
            until=_parse_when("query", args.until),
            path_glob=args.path_glob,
            tag=args.tag,
            sha256_prefix=args.sha256,
            all_fingerprints=fingerprint is None)
        next_cursor = None
        paginated = args.cursor is not None or args.page_size is not None
        if paginated:
            rows, next_cursor = registry.query_page(
                cursor=args.cursor,
                page_size=args.page_size or 50,
                **filters)
        else:
            rows = registry.query(
                limit=None if args.all else args.limit, **filters)
        if args.json:
            payload = []
            for row in rows:
                entry = row.to_dict()
                if args.history:
                    entry["history"] = registry.history(
                        row.sha256, fingerprint=row.fingerprint)
                payload.append(entry)
            if paginated:
                print(json.dumps({"verdicts": payload,
                                  "next_cursor": next_cursor},
                                 indent=2, sort_keys=True))
            else:
                print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for row in rows:
                print(row.format())
                if args.history:
                    for entry in registry.history(
                            row.sha256, fingerprint=row.fingerprint):
                        print(f"    {entry['scanned_at']:.0f}: "
                              f"p={entry['malicious_probability']:.3f} "
                              f"({entry['model']})")
            print(f"{len(rows)} verdict{'s' if len(rows) != 1 else ''} "
                  f"({'all fingerprints' if fingerprint is None else 'fingerprint ' + fingerprint})",
                  file=sys.stderr)
            if next_cursor is not None:
                print(f"next page: --cursor {next_cursor}", file=sys.stderr)
    except RegistryError as error:
        raise SystemExit(f"query: {error}")
    except sqlite3.Error as error:
        # e.g. a database produced by a different build whose schema
        # version lies: fail with a message, not a traceback
        raise SystemExit(f"query: registry {args.registry!r} is not "
                         f"usable ({error})")
    finally:
        registry.close()
    return 0


def _command_rules_check(args: argparse.Namespace) -> int:
    from repro.registry import RuleParseError, load_rules

    try:
        rules = load_rules(args.rules_file)
    except RuleParseError as error:
        raise SystemExit(f"rules check: {error}")
    for rule in rules:
        print(rule.describe())
    print(f"{len(rules)} rule{'s' if len(rules) != 1 else ''} ok")
    return 0


def _command_triage(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.registry import (CompileError, PartitionedScanRegistry,
                                RegistryError, RetroTriage, RuleParseError,
                                RulesEngine, ScanRegistry, parse_rules)

    fingerprint = args.fingerprint
    if args.model_path is not None:
        fingerprint = _load_detector("triage", args,
                                     explain=False).config.graph_fingerprint()
    if not fingerprint:
        raise SystemExit("triage: a fingerprint scope is required; pass "
                         "--model-path or --fingerprint")
    try:
        rules_text = pathlib.Path(args.rules_file).read_text()
    except OSError as error:
        raise SystemExit(f"triage: cannot read rules file "
                         f"{args.rules_file!r}: {error}")
    try:
        rules = parse_rules(rules_text, origin=args.rules_file)
    except RuleParseError as error:
        raise SystemExit(f"triage: {error}")
    registry_cls = (PartitionedScanRegistry if args.partitioned
                    else ScanRegistry)
    try:
        registry = registry_cls(args.registry, fingerprint=fingerprint)
    except (RegistryError, OSError) as error:
        raise SystemExit(f"triage: cannot open registry "
                         f"{args.registry!r}: {error}")
    engine = RulesEngine(rules, alert_path=args.alert_file,
                         dead_letter_path=args.dead_letter_file)
    try:
        triage = RetroTriage(registry, rules, rules_text, engine=engine,
                             dry_run=args.dry_run,
                             batch_size=args.batch_size,
                             resume=not args.no_resume)
        result = triage.run()
    except (CompileError, RegistryError) as error:
        raise SystemExit(f"triage: {error}")
    finally:
        registry.close()
    if args.explain:
        for line in result.plan_lines:
            print(f"plan: {line}", file=sys.stderr)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.format())
    if engine.dead_lettered:
        print(f"triage: {engine.dead_lettered} webhook deliveries "
              f"dead-lettered", file=sys.stderr)
    return 2 if (result.exit_nonzero and not result.dry_run) else 0


def _command_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service import GraphCache, ShardError
    from repro.service.server import ScanServer

    _arm_fault_plan("serve", args.fault_plan)
    _arm_tracing("serve", args.trace_file, args.log_json)
    detector = _load_detector("serve", args, explain=not args.no_explain)
    registry = _open_registry("serve", args.registry, detector)
    try:
        cache = GraphCache.for_config(
            detector.config,
            capacity=(args.cache_capacity
                      if args.cache_capacity is not None else 1024),
            disk_dir=args.cache_dir)
        server = ScanServer(detector, host=args.host, port=args.port,
                            workers=args.workers, max_batch=args.max_batch,
                            max_wait_ms=args.max_wait_ms, cache=cache,
                            shards=args.shards, registry=registry,
                            ingest_queue=args.ingest_queue)
    except (OSError, OverflowError) as error:
        raise SystemExit(f"serve: cannot bind {args.host}:{args.port}: "
                         f"{error}")
    except ValueError as error:
        raise SystemExit(f"serve: invalid parameters: {error}")

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous_handler = signal.signal(signal.SIGTERM, _terminate)
    print(f"scamdetect server listening on {server.url} "
          f"(workers={args.workers}, max_batch={args.max_batch}, "
          f"max_wait_ms={args.max_wait_ms})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    except ShardError as error:
        # a shard replica that cannot come up (or stay up) is a startup
        # failure, not a crash: exit non-zero with a clear message
        raise SystemExit(f"serve: shard pool failed: {error}")
    finally:
        print("serve: draining in-flight scans and shutting down",
              flush=True)
        server.shutdown()
        if registry is not None:
            registry.close()
        signal.signal(signal.SIGTERM, previous_handler)
    return 0


def _command_trace_summarize(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (format_summary, load_trace_file,
                           summarize_traces, verify_traces)

    try:
        records = load_trace_file(args.trace_file)
    except OSError as error:
        raise SystemExit(f"trace summarize: cannot read "
                         f"{args.trace_file!r}: {error}")
    except ValueError as error:
        raise SystemExit(f"trace summarize: {error}")
    summary = summarize_traces(records, top=args.top)
    if args.json:
        payload = dict(summary, invariants=verify_traces(records))
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_summary(summary))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    from repro.evaluation import (
        run_e1_phishinghook_zoo,
        run_e2_obfuscation_degradation,
        run_e3_gnn_vs_baseline,
        run_e4_robustness_curve,
        run_e5_cross_platform,
        run_e6_dedup_ablation,
        run_e7_gnn_ablation,
        run_e8_scan_throughput,
        run_e9_gnn_throughput,
        run_e10_sharded_throughput,
        run_e11_watch_ingest,
        run_e12_cascade_throughput,
        run_e13_chaos_resilience,
        run_e14_registry_triage,
        run_e15_event_ingest,
        run_e16_observability,
    )

    runners = {
        "E1": run_e1_phishinghook_zoo,
        "E2": run_e2_obfuscation_degradation,
        "E3": run_e3_gnn_vs_baseline,
        "E4": run_e4_robustness_curve,
        "E5": run_e5_cross_platform,
        "E6": run_e6_dedup_ablation,
        "E7": run_e7_gnn_ablation,
        "E8": run_e8_scan_throughput,
        "E9": run_e9_gnn_throughput,
        "E10": run_e10_sharded_throughput,
        "E11": run_e11_watch_ingest,
        "E12": run_e12_cascade_throughput,
        "E13": run_e13_chaos_resilience,
        "E14": run_e14_registry_triage,
        "E15": run_e15_event_ingest,
        "E16": run_e16_observability,
    }
    result = runners[args.id.upper()]()
    print(result.format())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="scamdetect",
        description="ScamDetect reproduction: corpora, training, scanning, experiments")
    subparsers = parser.add_subparsers(dest="command", required=True)

    corpus_parser = subparsers.add_parser("corpus", help="generate a synthetic corpus")
    _add_corpus_arguments(corpus_parser)
    corpus_parser.set_defaults(handler=_command_corpus)

    train_parser = subparsers.add_parser("train", help="train and save a detector")
    _add_corpus_arguments(train_parser)
    train_parser.add_argument("--architecture", default="gcn",
                              choices=("gcn", "gat", "gin", "tag", "graphsage"))
    train_parser.add_argument("--readout", default="mean", choices=("mean", "sum", "max"))
    train_parser.add_argument("--epochs", type=int, default=30)
    train_parser.add_argument("--test-fraction", type=float, default=0.3)
    train_parser.add_argument("--model-path", required=True)
    train_parser.add_argument("--cascade", action="store_true",
                              help="also train the tier-0 calibrated n-gram "
                                   "pre-filter head and persist it in the "
                                   "bundle (enables scan/serve --cascade)")
    train_parser.set_defaults(handler=_command_train)

    scan_parser = subparsers.add_parser("scan", help="scan a contract with a saved model")
    scan_parser.add_argument("--model-path", required=True)
    scan_parser.add_argument("--hex-file", help="file containing hex bytecode")
    scan_parser.add_argument("--binary-file", help="file containing raw binary code")
    scan_parser.add_argument("--platform", choices=("evm", "wasm"), default=None)
    scan_parser.add_argument("--threshold", type=float, default=0.5)
    scan_parser.add_argument("--sample-id", default="contract")
    _add_cascade_arguments(scan_parser)
    scan_parser.set_defaults(handler=_command_scan)

    batch_parser = subparsers.add_parser(
        "scan-batch",
        help="scan a directory of bytecode files with parallel lowering, "
             "a content-addressed graph cache and throughput reporting")
    batch_parser.add_argument("--model-path", required=True)
    batch_parser.add_argument("--input-dir", required=True,
                              help="directory of bytecode files (.hex parsed as "
                                   "hex text, anything else as raw binary)")
    batch_parser.add_argument("--pattern", default="*",
                              help="glob filter applied inside --input-dir")
    batch_parser.add_argument("--no-recursive", action="store_true",
                              help="scan only the top level of --input-dir "
                                   "(default recurses into subdirectories)")
    batch_parser.add_argument("--registry", default=None,
                              help="persistent verdict registry (SQLite); "
                                   "known bytecode is answered without "
                                   "inference and fresh verdicts are "
                                   "recorded")
    batch_parser.add_argument("--platform", choices=("evm", "wasm"), default=None,
                              help="force one platform (sniffed per file when "
                                   "omitted)")
    batch_parser.add_argument("--threshold", type=float, default=0.5)
    batch_parser.add_argument("--cache-dir", default=None,
                              help="directory for the persistent graph-cache "
                                   "tier (re-use across runs for warm scans)")
    batch_parser.add_argument("--cache-capacity", type=int, default=None,
                              help="in-memory graph-cache entries (default 1024)")
    batch_parser.add_argument("--workers", type=int, default=None,
                              help="lowering threads (default: executor heuristic)")
    batch_parser.add_argument("--shards", type=int, default=1,
                              help="scan worker processes; >= 2 shards the "
                                   "scan by content hash across pipeline "
                                   "replicas (escapes the GIL for lowering)")
    batch_parser.add_argument("--explain", action="store_true",
                              help="attach indicator notes to every report "
                                   "(slower; off by default in batch mode)")
    batch_parser.add_argument("--fault-plan", default=None,
                              help="JSON fault-injection plan to arm for "
                                   "this run (chaos testing; see "
                                   "repro.resilience)")
    batch_parser.add_argument("--show-reports", action="store_true",
                              help="print every per-contract report after the "
                                   "summary")
    _add_observability_arguments(batch_parser)
    _add_cascade_arguments(batch_parser)
    batch_parser.set_defaults(handler=_command_scan_batch)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the long-running scan server (POST /scan, /scan-batch; "
             "GET /healthz, /metrics) with request coalescing")
    serve_parser.add_argument("--model-path", required=True)
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8742,
                              help="TCP port (0 picks a free port)")
    serve_parser.add_argument("--workers", type=int, default=8,
                              help="handler threads (bytecode-lowering "
                                   "concurrency)")
    serve_parser.add_argument("--max-batch", type=int, default=32,
                              help="max graphs coalesced into one GNN "
                                   "inference call")
    serve_parser.add_argument("--max-wait-ms", type=float, default=5.0,
                              help="how long to hold a request while "
                                   "coalescing a batch (0 disables)")
    serve_parser.add_argument("--shards", type=int, default=1,
                              help="inference worker processes; >= 2 makes "
                                   "the coalescer dispatch micro-batches "
                                   "round-robin to shard replicas")
    serve_parser.add_argument("--threshold", type=float, default=0.5)
    serve_parser.add_argument("--cache-dir", default=None,
                              help="directory for the persistent graph-cache "
                                   "tier")
    serve_parser.add_argument("--cache-capacity", type=int, default=None,
                              help="in-memory graph-cache entries "
                                   "(default 1024)")
    serve_parser.add_argument("--no-explain", action="store_true",
                              help="skip indicator notes in verdicts "
                                   "(faster; default keeps scan parity)")
    serve_parser.add_argument("--fault-plan", default=None,
                              help="JSON fault-injection plan to arm in the "
                                   "server (and its shard workers)")
    serve_parser.add_argument("--registry", default=None,
                              help="persistent verdict registry (SQLite); "
                                   "enables GET /verdicts and records "
                                   "every served verdict")
    serve_parser.add_argument("--ingest-queue", type=int, default=None,
                              help="enable POST /v1/ingest backed by a "
                                   "bounded queue of N contracts (requires "
                                   "--registry; a full queue answers 503 "
                                   "with Retry-After)")
    _add_observability_arguments(serve_parser)
    _add_cascade_arguments(serve_parser)
    serve_parser.set_defaults(handler=_command_serve)

    watch_parser = subparsers.add_parser(
        "watch",
        help="continuously watch a directory: scan new/changed contracts, "
             "record verdicts in the registry, run triage rules")
    watch_parser.add_argument("directory",
                              help="corpus directory to watch")
    watch_parser.add_argument("--model-path", required=True)
    watch_parser.add_argument("--registry", required=True,
                              help="SQLite verdict registry (created on "
                                   "first use; survives daemon restarts)")
    watch_parser.add_argument("--rules", default=None,
                              help="TOML triage rules evaluated on every "
                                   "new verdict (see 'scamdetect rules "
                                   "check')")
    watch_parser.add_argument("--dead-letter-file", default=None,
                              help="JSONL sink for webhook deliveries that "
                                   "exhausted their retries")
    watch_parser.add_argument("--fault-plan", default=None,
                              help="JSON fault-injection plan to arm in the "
                                   "daemon (chaos testing)")
    watch_parser.add_argument("--alert-file", default=None,
                              help="JSONL sink for rule 'alert' actions")
    watch_parser.add_argument("--interval", type=float, default=2.0,
                              help="seconds between poll cycles")
    watch_parser.add_argument("--max-polls", type=int, default=None,
                              help="stop after N poll cycles (default: run "
                                   "until SIGTERM/SIGINT)")
    watch_parser.add_argument("--pattern", default="*",
                              help="glob filter for contract files")
    watch_parser.add_argument("--no-recursive", action="store_true",
                              help="watch only the top level of DIRECTORY")
    watch_parser.add_argument("--threshold", type=float, default=0.5)
    watch_parser.add_argument("--cache-dir", default=None,
                              help="directory for the persistent "
                                   "graph-cache tier")
    watch_parser.add_argument("--workers", type=int, default=None,
                              help="lowering threads per scan cycle")
    watch_parser.add_argument("--shards", type=int, default=1,
                              help="scan worker processes per cycle")
    watch_parser.add_argument("--explain", action="store_true",
                              help="attach indicator notes to recorded "
                                   "verdicts (matches scan-batch --explain)")
    watch_parser.add_argument("--event-driven", action="store_true",
                              help="react to filesystem events (inotify, "
                                   "with a poll-diff fallback) through a "
                                   "bounded priority queue instead of "
                                   "rescanning the tree every --interval")
    watch_parser.add_argument("--root", action="append", default=None,
                              metavar="DIR",
                              help="additional watch root (repeatable; "
                                   "--event-driven only)")
    watch_parser.add_argument("--backend", default="auto",
                              choices=("auto", "inotify", "poll"),
                              help="event backend for --event-driven "
                                   "(auto prefers inotify)")
    watch_parser.add_argument("--queue-capacity", type=int, default=1024,
                              help="bounded ingest queue size for "
                                   "--event-driven (backpressure knob)")
    watch_parser.add_argument("--json", action="store_true",
                              help="one JSON object per poll/cycle instead "
                                   "of the human-readable line (includes "
                                   "exit_nonzero and faulted_polls)")
    _add_observability_arguments(watch_parser)
    _add_cascade_arguments(watch_parser)
    watch_parser.set_defaults(handler=_command_watch)

    query_parser = subparsers.add_parser(
        "query",
        help="query the persistent verdict registry (by verdict, score "
             "range, platform, time window, path glob, tag)")
    query_parser.add_argument("--registry", required=True)
    query_parser.add_argument("--model-path", default=None,
                              help="scope to this model bundle's graph "
                                   "fingerprint")
    query_parser.add_argument("--fingerprint", default=None,
                              help="scope to an explicit graph fingerprint "
                                   "(default: all fingerprints)")
    query_parser.add_argument("--sha256", default=None,
                              help="only rows whose content hash starts "
                                   "with this prefix")
    query_parser.add_argument("--verdict",
                              choices=("malicious", "benign"), default=None)
    query_parser.add_argument("--min-score", type=float, default=None)
    query_parser.add_argument("--max-score", type=float, default=None)
    query_parser.add_argument("--platform", choices=("evm", "wasm"),
                              default=None)
    query_parser.add_argument("--since", default=None,
                              help="scanned at/after (epoch or ISO-8601)")
    query_parser.add_argument("--until", default=None,
                              help="scanned at/before (epoch or ISO-8601)")
    query_parser.add_argument("--path-glob", default=None,
                              help="shell glob on the recorded source path")
    query_parser.add_argument("--tag", default=None,
                              help="only rows carrying this triage tag")
    query_parser.add_argument("--limit", type=int, default=50,
                              help="newest-first row cap (default 50)")
    query_parser.add_argument("--all", action="store_true",
                              help="no row cap (overrides --limit)")
    query_parser.add_argument("--cursor", default=None,
                              help="resume a paginated listing from this "
                                   "opaque cursor (from a previous page)")
    query_parser.add_argument("--page-size", type=int, default=None,
                              help="keyset-paginated mode: rows per page "
                                   "(prints the next cursor)")
    query_parser.add_argument("--history", action="store_true",
                              help="include the per-contract rescan history")
    query_parser.add_argument("--json", action="store_true",
                              help="machine-readable output (report dicts "
                                   "identical to scan-batch verdicts)")
    query_parser.set_defaults(handler=_command_query, threshold=0.5)

    rules_parser = subparsers.add_parser(
        "rules", help="triage-rules tooling")
    rules_subparsers = rules_parser.add_subparsers(dest="rules_command",
                                                   required=True)
    rules_check_parser = rules_subparsers.add_parser(
        "check", help="validate a TOML rules file and print the parsed "
                      "rules")
    rules_check_parser.add_argument("rules_file",
                                    help="TOML rules file to validate")
    rules_check_parser.set_defaults(handler=_command_rules_check)

    triage_parser = subparsers.add_parser(
        "triage",
        help="retro-apply a TOML rules file across the registry's "
             "historical rows (compiled to index-backed SQL, resumable)")
    triage_parser.add_argument("rules_file",
                               help="TOML rules file to apply")
    triage_parser.add_argument("--registry", required=True,
                               help="SQLite verdict registry (or the "
                                    "partitioned base path)")
    triage_parser.add_argument("--model-path", default=None,
                               help="scope to this model bundle's graph "
                                    "fingerprint")
    triage_parser.add_argument("--fingerprint", default=None,
                               help="scope to an explicit graph fingerprint")
    triage_parser.add_argument("--dry-run", action="store_true",
                               help="compute and print the would-be actions "
                                    "without tagging/alerting/posting")
    triage_parser.add_argument("--batch-size", type=int, default=1000,
                               help="rows per fetch/act/commit cycle")
    triage_parser.add_argument("--no-resume", action="store_true",
                               help="start over instead of resuming an "
                                    "unfinished run of the same rules file")
    triage_parser.add_argument("--partitioned", action="store_true",
                               help="open REGISTRY as a per-platform "
                                    "partitioned layout")
    triage_parser.add_argument("--alert-file", default=None,
                               help="JSONL sink for rule 'alert' actions")
    triage_parser.add_argument("--dead-letter-file", default=None,
                               help="JSONL sink for webhook deliveries that "
                                    "exhausted their retries")
    triage_parser.add_argument("--explain", action="store_true",
                               help="print the EXPLAIN QUERY PLAN lines of "
                                    "every compiled rule")
    triage_parser.add_argument("--json", action="store_true",
                               help="machine-readable result")
    triage_parser.set_defaults(handler=_command_triage, threshold=0.5)

    trace_parser = subparsers.add_parser(
        "trace", help="trace tooling (summarize --trace-file exports)")
    trace_subparsers = trace_parser.add_subparsers(dest="trace_command",
                                                   required=True)
    trace_summarize_parser = trace_subparsers.add_parser(
        "summarize",
        help="per-site latency percentiles, slowest traces and the "
             "critical path of a span JSONL export")
    trace_summarize_parser.add_argument("trace_file",
                                        help="span JSONL file written by "
                                             "--trace-file")
    trace_summarize_parser.add_argument("--top", type=int, default=5,
                                        help="how many slowest traces to "
                                             "list (default 5)")
    trace_summarize_parser.add_argument("--json", action="store_true",
                                        help="machine-readable summary "
                                             "(adds the span-accounting "
                                             "invariant counters)")
    trace_summarize_parser.set_defaults(handler=_command_trace_summarize)

    experiment_parser = subparsers.add_parser("experiment",
                                              help="run one E1-E16 experiment")
    experiment_parser.add_argument("--id", required=True,
                                   choices=[f"E{i}" for i in range(1, 17)])
    experiment_parser.set_defaults(handler=_command_experiment)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
