"""Circuit breaker: stop hammering a dependency that keeps failing.

The breaker counts *consecutive* failures per key; at ``failure_threshold``
the key's circuit opens and stays open until :meth:`CircuitBreaker.reset`
(or a recorded success while still closed clears the count).  The sharded
scanner keys circuits by shard id: an open circuit means the shard is
quarantined and its hash-space is rebalanced onto healthy shards --
degraded-but-correct scanning instead of a crash-loop or a failed batch.
"""

from __future__ import annotations

import threading
from typing import Dict, List


class CircuitBreaker:
    """Per-key consecutive-failure counter with an open/closed state.

    Thread-safe.  Keys are any hashable (shard ids, endpoint URLs).
    """

    def __init__(self, failure_threshold: int = 3) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self._lock = threading.Lock()
        self._failures: Dict[object, int] = {}
        self._open: Dict[object, bool] = {}

    def record_failure(self, key: object) -> bool:
        """Count one failure; returns True when this call opened the
        circuit (exactly once per open, so callers can act on the edge)."""
        with self._lock:
            if self._open.get(key, False):
                return False
            count = self._failures.get(key, 0) + 1
            self._failures[key] = count
            if count >= self.failure_threshold:
                self._open[key] = True
                return True
            return False

    def record_success(self, key: object) -> None:
        """A success on a *closed* circuit clears its failure streak."""
        with self._lock:
            if not self._open.get(key, False):
                self._failures.pop(key, None)

    def is_open(self, key: object) -> bool:
        with self._lock:
            return self._open.get(key, False)

    def open_keys(self) -> List[object]:
        with self._lock:
            return sorted(
                (key for key, is_open in self._open.items() if is_open),
                key=repr,
            )

    def reset(self, key: object) -> None:
        """Close ``key``'s circuit and clear its failure streak."""
        with self._lock:
            self._open.pop(key, None)
            self._failures.pop(key, None)
