"""Shared retry policy: exponential backoff, deterministic jitter, deadline.

One policy class serves every transient-failure path in the stack -- the
server client's connection/503 retries, the rules engine's webhook
deliveries (before dead-lettering) and the registry's ``SQLITE_BUSY``
writes -- so backoff behavior is tuned in one place and tests can reason
about exact schedules: jitter comes from a ``random.Random`` seeded by the
policy's ``seed``, making every delay sequence reproducible.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type, Union

RetryOn = Union[
    Type[BaseException],
    Tuple[Type[BaseException], ...],
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Args:
        max_attempts: Total tries, including the first (>= 1).
        base_delay_s: Sleep before the first retry.
        max_delay_s: Backoff ceiling.
        multiplier: Exponential growth factor between retries.
        jitter: Fractional jitter: each delay is scaled by a factor drawn
            uniformly from ``[1 - jitter, 1 + jitter]`` (seeded, so the
            schedule is deterministic per :meth:`call`).
        deadline_s: Total time budget across all attempts; once the elapsed
            time plus the next sleep would exceed it, the last error is
            raised instead of sleeping (None = attempts bound only).
        seed: Jitter RNG seed.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25
    deadline_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 (or None)")

    def delays(self) -> Iterator[float]:
        """The deterministic backoff schedule (one delay per retry)."""
        rng = random.Random(self.seed)
        delay = self.base_delay_s
        for _ in range(self.max_attempts - 1):
            scale = 1.0
            if self.jitter:
                scale = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield min(delay, self.max_delay_s) * scale
            delay *= self.multiplier

    def call(
        self,
        fn: Callable[[], object],
        *,
        retry_on: RetryOn = (Exception,),
        should_retry: Optional[Callable[[BaseException], bool]] = None,
        retry_after: Optional[
            Callable[[BaseException], Optional[float]]
        ] = None,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> object:
        """Invoke ``fn`` under this policy; returns its result.

        Only exceptions matching ``retry_on`` (and, when given, for which
        ``should_retry(error)`` is true) are retried; anything else
        propagates immediately.  When attempts or the deadline run out the
        *last underlying error* is re-raised, so callers keep their
        existing exception contracts.

        Args:
            fn: Zero-argument callable to run.
            retry_on: Exception type(s) eligible for retry.
            should_retry: Extra predicate over eligible errors (e.g. "only
                SQLITE_BUSY, not all OperationalErrors").
            retry_after: Maps an error to a server-mandated wait in seconds
                (e.g. a 503's ``Retry-After`` header); when it returns a
                value it replaces the computed backoff for that retry.
            on_retry: Observer ``(attempt_number, error, delay_s)`` called
                before each sleep -- for counters and logs.
            sleep: Replacement sleeper for tests.
        """
        started = time.monotonic()
        schedule = self.delays()
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except retry_on as error:  # type: ignore[misc]
                if should_retry is not None and not should_retry(error):
                    raise
                try:
                    delay = next(schedule)
                except StopIteration:
                    raise error from None
                if retry_after is not None:
                    mandated = retry_after(error)
                    if mandated is not None:
                        delay = max(0.0, float(mandated))
                if self.deadline_s is not None:
                    elapsed = time.monotonic() - started
                    if elapsed + delay > self.deadline_s:
                        raise error from None
                if on_retry is not None:
                    on_retry(attempt, error, delay)
                if delay > 0:
                    sleep(delay)
