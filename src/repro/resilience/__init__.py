"""Deterministic fault injection + retry/backoff/degradation primitives.

A DSN-grade reproduction should demonstrate dependability under injected
faults, not just throughput.  This package provides the three mechanisms the
scan stack uses to do that, all stdlib-only and deliberately tiny:

* :mod:`repro.resilience.faults` -- a **seeded, deterministic fault
  injector**.  A :class:`FaultPlan` names *injection sites* (dotted strings
  like ``cache.disk_read`` or ``shard.worker.0``, glob-matchable) and the
  fault each site should produce: an added ``delay``, a raised
  ``exception`` (plain, SQLite-busy, URL error, or OS error), a hard worker
  ``crash``, ``corrupt`` bytes scribbled into a file before it is read, or
  a ``disk_full`` write failure.  Sites are threaded through the whole
  stack (graph cache disk I/O, registry writes, shard workers, server
  handlers, webhook POSTs, watch polls) as single
  :func:`~repro.resilience.faults.fault_point` calls that reduce to one
  module-global ``None`` check when no plan is active -- the same shape as
  ros2probe's selectively-enabled probes: zero cost unless armed.
* :mod:`repro.resilience.retry` -- a shared :class:`RetryPolicy`
  (exponential backoff, deterministic seeded jitter, optional deadline
  budget, server-mandated ``Retry-After`` override) adopted by the server
  client, the rules-engine webhooks and the registry's busy-write path.
* :mod:`repro.resilience.breaker` -- a :class:`CircuitBreaker` counting
  consecutive failures per key; the sharded scanner uses it to quarantine a
  crash-looping shard and rebalance its hash-space onto healthy shards
  instead of failing the batch.

Everything here is importable with no side effects and no third-party
dependencies; activating a plan is always explicit (``--fault-plan`` on the
CLI, :func:`~repro.resilience.faults.fault_plan` in tests).
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import (
    FAULT_CRASH_EXIT_CODE,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    activate,
    active_injector,
    active_plan_dict,
    deactivate,
    evaluate_fault,
    fault_plan,
    fault_point,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CircuitBreaker",
    "FAULT_CRASH_EXIT_CODE",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "activate",
    "active_injector",
    "active_plan_dict",
    "deactivate",
    "evaluate_fault",
    "fault_plan",
    "fault_point",
]
