"""Seeded, deterministic fault injection behind named sites.

The injector is *off by default*: :func:`fault_point` reads one module
global and returns immediately when no plan is active, so instrumented hot
paths pay a single ``None`` check -- cheap enough to leave compiled into
production code (the E8-E12 benchmark regression gates run with injection
disabled and must stay green).

A :class:`FaultPlan` is plain data (JSON-serializable, picklable), so the
parent process can ship it to :class:`~repro.service.sharded.ShardedScanner`
workers, and a CLI ``--fault-plan plan.json`` can arm a whole stack.  Each
:class:`FaultSpec` carries its own deterministic schedule: an fnmatch
pattern over site names, how many evaluations to skip (``after``), how many
times it may fire (``max_fires``) and a firing ``probability`` drawn from a
``random.Random`` seeded by ``(plan seed, spec index)`` -- two runs with the
same plan over the same call sequence inject exactly the same faults.

Fault kinds:

``delay``
    Sleep ``delay_s`` at the site, then continue (slow peer / slow disk).
``exception``
    Raise at the site.  ``exception`` selects the type: ``"runtime"``
    (:class:`InjectedFault`), ``"sqlite_busy"`` (an
    ``sqlite3.OperationalError("database is locked")`` -- exercises the
    registry's busy-write retry), ``"urlerror"`` (dead webhook endpoint),
    ``"oserror"``.
``crash``
    Kill the *process* with ``os._exit(FAULT_CRASH_EXIT_CODE)`` -- the
    sharded scanner's dispatch loop evaluates this kind parent-side and
    marks the dispatched chunk instead, so a plan-global ``max_fires``
    bounds crashes across respawned workers.
``corrupt``
    Scribble garbage over the start of the file passed as ``path`` (then
    continue), so the *real* torn-entry recovery path runs against really
    corrupt bytes.
``disk_full``
    Raise ``OSError(ENOSPC)`` at the site (write paths treat it like a
    full disk).
"""

from __future__ import annotations

import errno
import fnmatch
import json
import os
import pathlib
import random
import sqlite3
import threading
import time
import urllib.error
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple, Union

PathLike = Union[str, pathlib.Path]

#: Exit code of an injected worker crash (``os._exit``); the sharded
#: scanner's heal loop reports it in its respawn warnings.
FAULT_CRASH_EXIT_CODE = 3

FAULT_KINDS = ("delay", "exception", "crash", "corrupt", "disk_full")

#: ``exception``-kind faults pick the raised type by name so one generic
#: plan format can exercise type-specific retry paths.
EXCEPTION_KINDS = ("runtime", "sqlite_busy", "urlerror", "oserror")

_CORRUPT_SCRIBBLE = b"\xde\xad\xbe\xef injected corruption \xde\xad\xbe\xef"


class InjectedFault(RuntimeError):
    """The default exception raised by an ``exception``-kind fault."""

    def __init__(self, site: str, message: str = "") -> None:
        super().__init__(message or f"injected fault at {site}")
        self.site = site


def _raise_for(spec: "FaultSpec", site: str) -> None:
    message = spec.message or f"injected {spec.exception} fault at {site}"
    if spec.exception == "sqlite_busy":
        raise sqlite3.OperationalError("database is locked")
    if spec.exception == "urlerror":
        raise urllib.error.URLError(message)
    if spec.exception == "oserror":
        raise OSError(message)
    raise InjectedFault(site, spec.message)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: where it fires, what it does, and how often.

    Args:
        site: fnmatch pattern over injection-site names
            (``"cache.disk_read"``, ``"shard.worker.*"``).
        kind: One of :data:`FAULT_KINDS`.
        probability: Chance of firing per eligible evaluation, drawn from
            the spec's seeded RNG (1.0 = always).
        delay_s: Sleep duration for ``delay`` faults.
        after: Skip the first N evaluations of this spec (lets a plan warm
            a path up before faulting it).
        max_fires: Total fires allowed (None = unlimited).
        exception: Raised type for ``exception`` faults (see
            :data:`EXCEPTION_KINDS`).
        message: Optional message override for raised faults.
    """

    site: str
    kind: str
    probability: float = 1.0
    delay_s: float = 0.01
    after: int = 0
    max_fires: Optional[int] = None
    exception: str = "runtime"
    message: str = ""

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("fault spec needs a non-empty site pattern")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (known: {FAULT_KINDS})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("max_fires must be >= 1 (or None)")
        if self.exception not in EXCEPTION_KINDS:
            raise ValueError(
                f"unknown exception type {self.exception!r} "
                f"(known: {EXCEPTION_KINDS})"
            )

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"site": self.site, "kind": self.kind}
        if self.probability != 1.0:
            payload["probability"] = self.probability
        if self.kind == "delay":
            payload["delay_s"] = self.delay_s
        if self.after:
            payload["after"] = self.after
        if self.max_fires is not None:
            payload["max_fires"] = self.max_fires
        if self.exception != "runtime":
            payload["exception"] = self.exception
        if self.message:
            payload["message"] = self.message
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        if not isinstance(payload, dict):
            raise ValueError("each fault must be a JSON object")
        unknown = set(payload) - {
            "site", "kind", "probability", "delay_s", "after", "max_fires",
            "exception", "message",
        }
        if unknown:
            raise ValueError(f"unknown fault keys {sorted(unknown)}")
        return cls(**payload)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered list of :class:`FaultSpec` schedules."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValueError("fault plan must be a JSON object")
        unknown = set(payload) - {"seed", "faults"}
        if unknown:
            raise ValueError(f"unknown fault plan keys {sorted(unknown)}")
        faults = payload.get("faults", [])
        if not isinstance(faults, list):
            raise ValueError("'faults' must be a list of fault objects")
        return cls(
            specs=tuple(FaultSpec.from_dict(entry) for entry in faults),
            seed=int(payload.get("seed", 0)),
        )

    @classmethod
    def load(cls, path: PathLike) -> "FaultPlan":
        """Parse a plan from a JSON file (the CLI ``--fault-plan`` format)."""
        text = pathlib.Path(path).read_text()
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise ValueError(
                f"fault plan {path} is not valid JSON: {error}"
            ) from error
        return cls.from_dict(payload)


@dataclass
class _SpecState:
    """Mutable per-spec schedule state (evaluations seen, fires spent)."""

    rng: random.Random
    evaluations: int = 0
    fires: int = 0


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at named sites, deterministically.

    Thread-safe; one injector serves a whole process.  Worker processes of
    the sharded scanner build their own injector from the shipped plan dict,
    so schedules restart per process -- which is why ``crash`` faults are
    evaluated parent-side (see :mod:`repro.service.sharded`).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._states = [
            _SpecState(rng=random.Random(f"{plan.seed}:{index}:{spec.site}"))
            for index, spec in enumerate(plan.specs)
        ]
        self.fired: Dict[str, int] = {}

    def evaluate(self, site: str) -> Optional[FaultSpec]:
        """The spec that fires at ``site`` for this evaluation, or None.

        Consumes one evaluation (and possibly one fire) of every spec whose
        pattern matches ``site``; the first firing spec wins.
        """
        winner: Optional[FaultSpec] = None
        with self._lock:
            for spec, state in zip(self.plan.specs, self._states):
                if not fnmatch.fnmatchcase(site, spec.site):
                    continue
                state.evaluations += 1
                if winner is not None:
                    continue
                if state.evaluations <= spec.after:
                    continue
                if spec.max_fires is not None and state.fires >= spec.max_fires:
                    continue
                if spec.probability < 1.0 and state.rng.random() >= spec.probability:
                    continue
                state.fires += 1
                key = f"{site}:{spec.kind}"
                self.fired[key] = self.fired.get(key, 0) + 1
                winner = spec
        return winner

    def trigger(self, site: str, path: Optional[PathLike] = None) -> None:
        """Evaluate ``site`` and materialize the fault that fires, if any."""
        spec = self.evaluate(site)
        if spec is None:
            return
        if spec.kind == "delay":
            time.sleep(spec.delay_s)
        elif spec.kind == "crash":
            os._exit(FAULT_CRASH_EXIT_CODE)
        elif spec.kind == "corrupt":
            if path is not None:
                _scribble(pathlib.Path(path))
        elif spec.kind == "disk_full":
            raise OSError(
                errno.ENOSPC,
                spec.message or f"no space left on device (injected at {site})",
            )
        else:  # exception
            _raise_for(spec, site)

    def fired_total(self) -> int:
        with self._lock:
            return sum(self.fired.values())


def _scribble(path: pathlib.Path) -> None:
    """Overwrite the head of ``path`` with garbage (best effort)."""
    try:
        with path.open("r+b") as handle:
            handle.write(_CORRUPT_SCRIBBLE)
    except OSError:
        pass


# --------------------------------------------------------------------------- #
# process-global activation

_ACTIVE: Optional[FaultInjector] = None


def activate(plan: FaultPlan) -> FaultInjector:
    """Arm ``plan`` process-wide; returns the injector (for telemetry)."""
    global _ACTIVE
    injector = FaultInjector(plan)
    _ACTIVE = injector
    return injector


def deactivate() -> None:
    """Disarm fault injection; :func:`fault_point` becomes a no-op again."""
    global _ACTIVE
    _ACTIVE = None


def active_injector() -> Optional[FaultInjector]:
    return _ACTIVE


def active_plan_dict() -> Optional[Dict[str, object]]:
    """The active plan as plain data (for shipping to worker processes)."""
    injector = _ACTIVE
    return injector.plan.to_dict() if injector is not None else None


@contextmanager
def fault_plan(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Context manager: arm ``plan`` inside the block, disarm after."""
    injector = activate(plan)
    try:
        yield injector
    finally:
        deactivate()


def fault_point(site: str, path: Optional[PathLike] = None) -> None:
    """Injection site: a no-op unless a plan is active and a spec fires.

    This is the only call instrumented code makes; with no active plan it
    costs one global read and a ``None`` check.
    """
    injector = _ACTIVE
    if injector is None:
        return
    injector.trigger(site, path=path)


def evaluate_fault(site: str) -> Optional[FaultSpec]:
    """Non-materializing probe: which spec (if any) fires at ``site``.

    Used where the *caller* must act on the fault instead of the site
    itself -- e.g. the sharded dispatch loop marking a chunk to crash its
    worker after dequeue.
    """
    injector = _ACTIVE
    if injector is None:
        return None
    return injector.evaluate(site)
