"""Persistent verdict registry, watch daemon, and triage rules.

This package is the stateful layer over the scanning service stack:

* :mod:`repro.registry.store` -- :class:`ScanRegistry`, a SQLite-backed,
  content-addressed verdict store keyed by ``(sha256, graph fingerprint)``
  with WAL concurrency, schema migrations, rescan history and a query API.
* :mod:`repro.registry.watch` -- :class:`WatchDaemon`, the continuous
  ingestion path: poll a directory, scan only unseen bytecode, record
  verdicts durably (``scamdetect watch DIR``).
* :mod:`repro.registry.rules` -- the declarative TOML triage rules engine
  (tag / JSONL alert / webhook / exit-nonzero) evaluated on new verdicts.

``BatchScanner(registry=...)`` and ``ScanServer(registry=...)`` plug the
store into the offline and online scan paths; ``scamdetect query`` and
``GET /verdicts`` read it back.
"""

from repro.registry.rules import (
    RuleParseError,
    RulesEngine,
    TriageOutcome,
    TriageRule,
    load_rules,
    parse_rules,
)
from repro.registry.store import (
    SCHEMA_VERSION,
    RegistryError,
    ScanRegistry,
    VerdictRow,
    WatchedFile,
    content_sha256,
)
from repro.registry.watch import PollStats, WatchDaemon

__all__ = [
    "SCHEMA_VERSION",
    "RegistryError",
    "ScanRegistry",
    "VerdictRow",
    "WatchedFile",
    "content_sha256",
    "RuleParseError",
    "RulesEngine",
    "TriageOutcome",
    "TriageRule",
    "load_rules",
    "parse_rules",
    "PollStats",
    "WatchDaemon",
]
