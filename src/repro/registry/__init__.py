"""Persistent verdict registry, watch daemon, and triage rules.

This package is the stateful layer over the scanning service stack:

* :mod:`repro.registry.store` -- :class:`ScanRegistry`, a SQLite-backed,
  content-addressed verdict store keyed by ``(sha256, graph fingerprint)``
  with WAL concurrency, schema migrations, rescan history, a query API,
  and keyset-cursor pagination.
* :mod:`repro.registry.partition` -- :class:`PartitionedScanRegistry`,
  the fleet-scale layout: one database per platform behind the same API.
* :mod:`repro.registry.watch` -- :class:`WatchDaemon`, the continuous
  ingestion path: poll a directory, scan only unseen bytecode, record
  verdicts durably (``scamdetect watch DIR``).
* :mod:`repro.registry.rules` -- the declarative TOML triage rules engine
  (tag / JSONL alert / webhook / exit-nonzero) evaluated on new verdicts.
* :mod:`repro.registry.compile` -- the rule-to-SQL compiler turning those
  matchers into index-backed registry queries.
* :mod:`repro.registry.triage` -- :class:`RetroTriage`, resumable
  batched retro-application of a rules file over historical rows
  (``scamdetect triage RULES``).

``BatchScanner(registry=...)`` and ``ScanServer(registry=...)`` plug the
store into the offline and online scan paths; ``scamdetect query`` and
``GET /v1/verdicts`` read it back.
"""

from repro.registry.compile import (
    CompiledRule,
    CompileError,
    check_index_backed,
    compile_rule,
    compile_rules,
)
from repro.registry.partition import PartitionedScanRegistry
from repro.registry.rules import (
    RuleParseError,
    RulesEngine,
    TriageOutcome,
    TriageRule,
    load_rules,
    parse_rules,
)
from repro.registry.store import (
    SCHEMA_VERSION,
    RegistryError,
    ScanRegistry,
    TriageRun,
    VerdictRow,
    WatchedFile,
    content_sha256,
    decode_cursor,
    encode_cursor,
)
from repro.registry.triage import RetroTriage, RetroTriageResult, rules_digest
from repro.registry.watch import PollStats, WatchDaemon

__all__ = [
    "SCHEMA_VERSION",
    "RegistryError",
    "ScanRegistry",
    "TriageRun",
    "VerdictRow",
    "WatchedFile",
    "content_sha256",
    "decode_cursor",
    "encode_cursor",
    "PartitionedScanRegistry",
    "CompileError",
    "CompiledRule",
    "check_index_backed",
    "compile_rule",
    "compile_rules",
    "RetroTriage",
    "RetroTriageResult",
    "rules_digest",
    "RuleParseError",
    "RulesEngine",
    "TriageOutcome",
    "TriageRule",
    "load_rules",
    "parse_rules",
    "PollStats",
    "WatchDaemon",
]
