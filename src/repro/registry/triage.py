"""Retro-triage: apply a rules file across the registry's history.

The live rules engine fires only on freshly scanned contracts; a new rule
(or a newly known scam indicator) says nothing about the millions of rows
already recorded.  :class:`RetroTriage` closes that gap: it compiles every
rule to index-backed SQL (:mod:`repro.registry.compile`), streams the
matching rows in keyset batches ordered by primary key, and applies the
rule's actions in bulk -- tags in one write transaction per batch, alerts
and webhooks through the same retry + dead-letter machinery the watch
daemon uses.

Fleet-scale behaviors:

* **Resumable**: progress (rule index + last sha256 + counters) is
  persisted to the ``triage_runs`` table after each batch's actions are
  durable, keyed by the SHA-256 of the rules text.  A killed run resumes
  from the last committed batch boundary; tag application is an idempotent
  set-merge, so the at-most-one-batch replay is harmless.  Editing the
  rules file changes the digest and starts a fresh run (a resumed cursor
  over reordered rules would be garbage).
* **Deterministic order**: rules run in file order, rows in ascending
  sha256 within each rule -- the exact order of the row-at-a-time Python
  oracle E14 compares against, so "byte-identical action outcomes" is a
  meaningful equality over sequences, not just sets.
* **Dry-run diffing**: ``dry_run=True`` computes the full match/action
  outcome (and the preview lines the CLI prints) without writing tags,
  emitting alerts, or posting webhooks -- and records its progress under a
  separate resume key so a dry-run never steals a real run's cursor.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.registry.compile import (
    CompiledRule,
    check_index_backed,
    compile_rules,
)
from repro.registry.rules import RulesEngine, TriageRule
from repro.registry.store import ScanRegistry, VerdictRow

#: Rows fetched (and tagged) per batch; one progress commit per batch.
DEFAULT_BATCH_SIZE = 1000

#: Dry-run preview lines kept verbatim before collapsing to a counter.
PREVIEW_LIMIT = 50


def rules_digest(text: str) -> str:
    """The resume key of a rules file: SHA-256 over its exact text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class RetroTriageResult:
    """What one retro-triage run did (or, dry-run, would do)."""

    run_id: int
    dry_run: bool
    resumed: bool
    rows_scanned: int = 0
    rows_matched: int = 0
    tags_applied: int = 0
    alerts: int = 0
    webhooks: int = 0
    exit_nonzero: bool = False
    rule_matches: Dict[str, int] = field(default_factory=dict)
    preview: List[str] = field(default_factory=list)
    preview_truncated: int = 0
    plan_lines: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "run_id": self.run_id,
            "dry_run": self.dry_run,
            "resumed": self.resumed,
            "rows_scanned": self.rows_scanned,
            "rows_matched": self.rows_matched,
            "tags_applied": self.tags_applied,
            "alerts": self.alerts,
            "webhooks": self.webhooks,
            "exit_nonzero": self.exit_nonzero,
            "rule_matches": dict(self.rule_matches),
            "preview": list(self.preview),
            "preview_truncated": self.preview_truncated,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def format(self) -> str:
        mode = "dry-run" if self.dry_run else "applied"
        parts = [
            f"triage {mode}: {self.rows_matched} matches over "
            f"{self.rows_scanned} row-visits"
        ]
        if self.resumed:
            parts.append("(resumed)")
        if not self.dry_run:
            parts.append(
                f"-- {self.tags_applied} rows tagged, "
                f"{self.alerts} alerts, {self.webhooks} webhooks"
            )
        lines = [" ".join(parts)]
        for name, count in self.rule_matches.items():
            lines.append(f"  {name}: {count} matched")
        lines.extend(self.preview)
        if self.preview_truncated:
            lines.append(
                f"  ... and {self.preview_truncated} more matches "
                f"(preview capped at {PREVIEW_LIMIT})"
            )
        return "\n".join(lines)


class RetroTriage:
    """Compile, stream, and act (see module docstring).

    Args:
        registry: The verdict store; its fingerprint (or ``fingerprint=``)
            scopes which rows are triaged.
        rules: Parsed rules, in file order.
        rules_text: The exact rules file text (digested into the resume
            key).
        engine: Action runner for alerts/webhooks (carries the sinks and
            retry policy); a dry run never calls it.
        dry_run: Compute outcomes without acting.
        batch_size: Rows per fetch/tag/commit cycle.
        resume: Continue an unfinished run of the same digest (default);
            ``False`` always starts over.
        on_match: Optional hook ``(rule, row)`` called for every match in
            deterministic order -- the E14 parity harness records these.
    """

    def __init__(
        self,
        registry: ScanRegistry,
        rules: List[TriageRule],
        rules_text: str,
        engine: Optional[RulesEngine] = None,
        fingerprint: Optional[str] = None,
        dry_run: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
        resume: bool = True,
        on_match: Optional[
            Callable[[TriageRule, VerdictRow], None]
        ] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.registry = registry
        self.rules = list(rules)
        self.digest = rules_digest(rules_text)
        self.engine = engine if engine is not None else RulesEngine(rules)
        self.fingerprint = registry._scope(fingerprint)
        self.dry_run = dry_run
        self.batch_size = batch_size
        self.resume = resume
        self.on_match = on_match

    def run(self) -> RetroTriageResult:
        started = time.perf_counter()
        compiled = compile_rules(self.rules, self.fingerprint)
        plan_lines = check_index_backed(self.registry, compiled)

        state = None
        if self.resume:
            state = self.registry.find_triage_run(
                self.digest, self.fingerprint, dry_run=self.dry_run
            )
        resumed = state is not None
        if state is None:
            state = self.registry.start_triage_run(
                self.digest, self.fingerprint, dry_run=self.dry_run
            )

        result = RetroTriageResult(
            run_id=state.id,
            dry_run=self.dry_run,
            resumed=resumed,
            rows_scanned=state.rows_scanned,
            rows_matched=state.rows_matched,
            plan_lines=plan_lines,
        )
        for index, entry in enumerate(compiled):
            if index < state.rule_index:
                continue
            cursor = (
                state.cursor_sha256 if index == state.rule_index else ""
            )
            self._run_rule(index, entry, cursor or None, result)
        self.registry.finish_triage_run(result.run_id)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------ #

    def _run_rule(
        self,
        index: int,
        entry: CompiledRule,
        cursor: Optional[str],
        result: RetroTriageResult,
    ) -> None:
        rule = entry.rule
        result.rule_matches.setdefault(rule.name, 0)
        while True:
            rows = self.registry.select_where(
                entry.where,
                entry.params,
                after_sha256=cursor,
                limit=self.batch_size,
            )
            if not rows:
                break
            self._apply_batch(rule, rows, result)
            cursor = rows[-1].sha256
            # progress commits only after the batch's actions are durable
            self.registry.advance_triage_run(
                result.run_id,
                rule_index=index,
                cursor_sha256=cursor,
                rows_scanned=result.rows_scanned,
                rows_matched=result.rows_matched,
            )
            if len(rows) < self.batch_size:
                break

    def _apply_batch(
        self,
        rule: TriageRule,
        rows: List[VerdictRow],
        result: RetroTriageResult,
    ) -> None:
        fired_at = time.time()
        tag_batch: List = []
        for row in rows:
            result.rows_scanned += 1
            result.rows_matched += 1
            result.rule_matches[rule.name] += 1
            if self.on_match is not None:
                self.on_match(rule, row)
            self._preview(rule, row, result)
            if rule.tag:
                new_tags = sorted(set(rule.tag) - set(row.tags))
                if new_tags:
                    tag_batch.append((row.sha256, new_tags))
            if rule.exit_nonzero:
                result.exit_nonzero = True
            if self.dry_run:
                continue
            if rule.alert or rule.webhook:
                payload = self.engine._alert_payload(
                    rule,
                    row.to_report(),
                    row.sha256,
                    row.source_path,
                    fired_at,
                )
                if rule.alert:
                    self.engine._emit_alert(payload)
                    result.alerts += 1
                if rule.webhook:
                    self.engine._post_webhook(rule.webhook, payload)
                    result.webhooks += 1
        if tag_batch and not self.dry_run:
            # missing_ok: a row purged between SELECT and tagging must not
            # kill a fleet-sized run
            self.registry.add_tags_many(
                tag_batch, self.fingerprint, missing_ok=True
            )
            result.tags_applied += len(tag_batch)

    def _preview(
        self, rule: TriageRule, row: VerdictRow, result: RetroTriageResult
    ) -> None:
        if len(result.preview) >= PREVIEW_LIMIT:
            result.preview_truncated += 1
            return
        actions = []
        missing = sorted(set(rule.tag) - set(row.tags))
        if missing:
            actions.append(f"+tags={','.join(missing)}")
        elif rule.tag:
            actions.append("tags=already-set")
        if rule.alert:
            actions.append("alert")
        if rule.webhook:
            actions.append("webhook")
        if rule.exit_nonzero:
            actions.append("exit_nonzero")
        result.preview.append(
            f"  {rule.name}: {row.sha256[:12]} "
            f"p={row.malicious_probability:.3f} [{row.platform}] "
            f"{' '.join(actions) or 'match-only'}"
        )
