"""Per-platform partitioned registry behind the `ScanRegistry` API.

One WAL database serves a handful of daemons; a *fleet* of servers and
watchers funnelling every platform's verdicts through a single file turns
the WAL writer lock into the global bottleneck.
:class:`PartitionedScanRegistry` splits the store into one SQLite database
per platform (``registry-evm.db``, ``registry-wasm.db``, ...) while
presenting the exact :class:`~repro.registry.store.ScanRegistry` surface,
so :class:`~repro.service.batch.BatchScanner`,
:class:`~repro.service.server.ScanServer`,
:class:`~repro.registry.watch.WatchDaemon`, and
:class:`~repro.registry.triage.RetroTriage` all run unchanged on top of it
-- writers on different platforms never contend, which is where fleet
write contention actually concentrates (each chain's ingest feed is its
own firehose).

Semantics contract (enforced by the fleet test suite): every read returns
**byte-identical** results to the same operations against one shared
database.

* *Routing* is by ``report.platform`` at record time; platforms outside
  the configured partition list land in the first partition.  Routing
  only picks the *file* -- the row still stores its real platform string,
  and every query filters on the column, so filtered reads are unaffected
  by where a row physically lives.
* *Merged reads* (:meth:`query`, :meth:`query_page`, :meth:`select_where`)
  fan out to every partition and merge by the exact single-db sort key;
  keyset cursors work unchanged because each partition evaluates the same
  boundary predicate and the merge re-sorts.
* *Single-row ops* (:meth:`get`, :meth:`history`, :meth:`add_tags`)
  probe partitions in order; content addressing makes a sha256 live in at
  most one partition per fingerprint under deterministic platform
  resolution (the row's latest write wins if an upstream ever re-platforms
  bytecode, exactly as the single-db upsert would).
* The *watch index* and *triage progress* live in the first partition
  (they are per-deployment bookkeeping, not per-platform data).
"""

from __future__ import annotations

import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.report import VerdictReport
from repro.registry.store import (
    RegistryError,
    ScanRegistry,
    VerdictRow,
    decode_cursor,
    encode_cursor,
)
from repro.resilience.retry import RetryPolicy

PathLike = Union[str, pathlib.Path]

#: Default partition layout: one database per supported platform frontend.
DEFAULT_PLATFORMS = ("evm", "wasm")


class PartitionedScanRegistry:
    """A fleet of per-platform :class:`ScanRegistry` files, one API.

    Args:
        path: Either a directory (databases are created inside it as
            ``<platform>.db``) or a ``.db``/``.sqlite`` file path used as
            the naming base (``registry.db`` -> ``registry-evm.db``).
        platforms: Partition list, in routing-priority order; the first
            also hosts the watch-file index and triage progress.
        fingerprint: Shared fingerprint scope (same meaning as on
            :class:`ScanRegistry`).
    """

    def __init__(
        self,
        path: PathLike,
        fingerprint: str = "",
        platforms: Sequence[str] = DEFAULT_PLATFORMS,
        write_retry: Optional[RetryPolicy] = None,
    ) -> None:
        if not platforms:
            raise RegistryError("need at least one partition platform")
        self.path = pathlib.Path(path)
        self.platforms = tuple(platforms)
        self.partitions: Dict[str, ScanRegistry] = {
            platform: ScanRegistry(
                self.partition_path(self.path, platform),
                fingerprint=fingerprint,
                write_retry=write_retry,
            )
            for platform in self.platforms
        }
        self._primary = self.partitions[self.platforms[0]]
        self._fingerprint = fingerprint

    @staticmethod
    def partition_path(base: pathlib.Path, platform: str) -> pathlib.Path:
        """Where one platform's database lives under ``base``."""
        if base.suffix in (".db", ".sqlite", ".sqlite3"):
            return base.with_name(
                f"{base.stem}-{platform}{base.suffix}"
            )
        return base / f"{platform}.db"

    @classmethod
    def for_config(
        cls,
        path: PathLike,
        config,
        platforms: Sequence[str] = DEFAULT_PLATFORMS,
    ) -> "PartitionedScanRegistry":
        return cls(
            path,
            fingerprint=config.graph_fingerprint(),
            platforms=platforms,
        )

    # ------------------------------------------------------------------ #
    # ScanRegistry surface: identity + lifecycle

    @property
    def fingerprint(self) -> str:
        return self._fingerprint

    @fingerprint.setter
    def fingerprint(self, value: str) -> None:
        # callers (BatchScanner, ScanServer, WatchDaemon) assign the scope
        # after validating it; propagate so every partition agrees
        self._fingerprint = value
        for registry in self.partitions.values():
            registry.fingerprint = value

    @property
    def busy_retries(self) -> int:
        return sum(
            registry.busy_retries for registry in self.partitions.values()
        )

    @property
    def schema_version(self) -> int:
        return self._primary.schema_version

    @property
    def journal_mode(self) -> str:
        return self._primary.journal_mode

    def close(self) -> None:
        for registry in self.partitions.values():
            registry.close()

    def __enter__(self) -> "PartitionedScanRegistry":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _route(self, platform: str) -> ScanRegistry:
        return self.partitions.get(platform, self._primary)

    def _scope(self, fingerprint: Optional[str]) -> str:
        return self._primary._scope(
            self._fingerprint if fingerprint is None else fingerprint
        )

    # ------------------------------------------------------------------ #
    # recording

    def record(
        self,
        sha256: str,
        report: VerdictReport,
        fingerprint: Optional[str] = None,
        source_path: Optional[str] = None,
        explained: bool = False,
        model_identity: str = "",
        scanned_at: Optional[float] = None,
    ) -> bool:
        return self.record_many(
            [(sha256, report, source_path)],
            fingerprint=fingerprint,
            explained=explained,
            model_identity=model_identity,
            scanned_at=scanned_at,
        )[0]

    def record_many(
        self,
        entries: Sequence[Tuple[str, VerdictReport, Optional[str]]],
        fingerprint: Optional[str] = None,
        explained: bool = False,
        model_identity: str = "",
        scanned_at: Optional[float] = None,
    ) -> List[bool]:
        """Route each entry to its platform's partition, preserving the
        caller's per-entry "was new" flags in input order."""
        routed: Dict[str, List[Tuple[int, Tuple]]] = {}
        for position, entry in enumerate(entries):
            platform = entry[1].platform
            key = platform if platform in self.partitions else (
                self.platforms[0]
            )
            routed.setdefault(key, []).append((position, entry))
        fresh: List[bool] = [False] * len(entries)
        for key, batch in routed.items():
            flags = self.partitions[key].record_many(
                [entry for _, entry in batch],
                fingerprint=fingerprint,
                explained=explained,
                model_identity=model_identity,
                scanned_at=scanned_at,
            )
            for (position, _), flag in zip(batch, flags):
                fresh[position] = flag
        return fresh

    def add_tags(
        self,
        sha256: str,
        tags: Iterable[str],
        fingerprint: Optional[str] = None,
    ) -> List[str]:
        tags = list(tags)
        scope = self._scope(fingerprint)
        for registry in self.partitions.values():
            if registry.get(sha256, scope) is not None:
                return registry.add_tags(sha256, tags, scope)
        raise RegistryError(
            f"cannot tag unknown verdict {sha256[:12]} "
            f"(fingerprint {scope!r})"
        )

    def add_tags_many(
        self,
        entries: Sequence[Tuple[str, Iterable[str]]],
        fingerprint: Optional[str] = None,
        missing_ok: bool = False,
    ) -> Dict[str, List[str]]:
        """Split the batch by which partition actually holds each row."""
        scope = self._scope(fingerprint)
        pending = [(sha256, list(tags)) for sha256, tags in entries]
        merged: Dict[str, List[str]] = {}
        for registry in self.partitions.values():
            if not pending:
                break
            known = registry.get_many(
                [sha256 for sha256, _ in pending], scope
            )
            here = [item for item in pending if item[0] in known]
            pending = [item for item in pending if item[0] not in known]
            if here:
                merged.update(
                    registry.add_tags_many(here, scope, missing_ok=True)
                )
        if pending and not missing_ok:
            raise RegistryError(
                f"cannot tag unknown verdict {pending[0][0][:12]} "
                f"(fingerprint {scope!r})"
            )
        return merged

    # ------------------------------------------------------------------ #
    # reads

    def get(
        self, sha256: str, fingerprint: Optional[str] = None
    ) -> Optional[VerdictRow]:
        rows = [
            row
            for registry in self.partitions.values()
            if (row := registry.get(sha256, fingerprint)) is not None
        ]
        if not rows:
            return None
        # at most one partition holds a sha; if re-platformed bytecode ever
        # left a stale twin behind, the freshest write wins -- the same row
        # the single-db upsert would hold
        return max(rows, key=lambda row: (row.last_scanned_at, row.sha256))

    def get_many(
        self, sha256s: Sequence[str], fingerprint: Optional[str] = None
    ) -> Dict[str, VerdictRow]:
        found: Dict[str, VerdictRow] = {}
        for registry in self.partitions.values():
            for sha256, row in registry.get_many(
                sha256s, fingerprint
            ).items():
                kept = found.get(sha256)
                if kept is None or row.last_scanned_at > kept.last_scanned_at:
                    found[sha256] = row
        return found

    def query(self, **filters) -> List[VerdictRow]:
        limit = filters.pop("limit", None)
        rows: List[VerdictRow] = []
        for registry in self.partitions.values():
            rows.extend(registry.query(limit=limit, **filters))
        rows.sort(key=lambda row: (-row.last_scanned_at, row.sha256))
        return rows if limit is None else rows[:limit]

    def query_page(
        self,
        cursor: Optional[str] = None,
        page_size: int = 100,
        **filters,
    ) -> Tuple[List[VerdictRow], Optional[str]]:
        """Merged keyset page: each partition answers the same cursor
        predicate, the merge re-sorts, and the next cursor is the merged
        page's last sort key -- identical to the single-db page."""
        if cursor is not None:
            decode_cursor(cursor)  # fail fast on garbage, like single-db
        if page_size < 1:
            raise RegistryError("page_size must be >= 1")
        rows: List[VerdictRow] = []
        more = False
        for registry in self.partitions.values():
            part_rows, part_cursor = registry.query_page(
                cursor=cursor, page_size=page_size, **filters
            )
            rows.extend(part_rows)
            more = more or part_cursor is not None
        rows.sort(key=lambda row: (-row.last_scanned_at, row.sha256))
        next_cursor: Optional[str] = None
        if len(rows) > page_size or (rows and more):
            rows = rows[:page_size]
            next_cursor = encode_cursor(
                rows[-1].last_scanned_at, rows[-1].sha256
            )
        return rows, next_cursor

    def select_where(
        self,
        where: str,
        params: Sequence[object],
        after_sha256: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[VerdictRow]:
        rows: List[VerdictRow] = []
        for registry in self.partitions.values():
            rows.extend(
                registry.select_where(
                    where, params, after_sha256=after_sha256, limit=limit
                )
            )
        rows.sort(key=lambda row: row.sha256)
        return rows if limit is None else rows[:limit]

    def explain_where(
        self,
        where: str,
        params: Sequence[object],
        after_sha256: Optional[str] = None,
    ) -> List[str]:
        lines: List[str] = []
        for registry in self.partitions.values():
            lines.extend(
                registry.explain_where(where, params, after_sha256)
            )
        return lines

    def history(
        self, sha256: str, fingerprint: Optional[str] = None
    ) -> List[Dict[str, object]]:
        events: List[Dict[str, object]] = []
        for registry in self.partitions.values():
            events.extend(registry.history(sha256, fingerprint))
        events.sort(key=lambda event: event["scanned_at"])
        return events

    def counts(self, fingerprint: Optional[str] = None) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for registry in self.partitions.values():
            for key, value in registry.counts(fingerprint).items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def fingerprints(self) -> List[str]:
        seen = set()
        for registry in self.partitions.values():
            seen.update(registry.fingerprints())
        return sorted(seen)

    def purge_stale(self, keep_fingerprint: Optional[str] = None) -> int:
        return sum(
            registry.purge_stale(keep_fingerprint)
            for registry in self.partitions.values()
        )

    # ------------------------------------------------------------------ #
    # deployment bookkeeping: first partition only

    def watched_files(self, *args, **kwargs):
        return self._primary.watched_files(*args, **kwargs)

    def upsert_watched_files(self, *args, **kwargs):
        return self._primary.upsert_watched_files(*args, **kwargs)

    def mark_deleted(self, *args, **kwargs):
        return self._primary.mark_deleted(*args, **kwargs)

    def find_triage_run(self, *args, **kwargs):
        return self._primary.find_triage_run(*args, **kwargs)

    def start_triage_run(self, *args, **kwargs):
        return self._primary.start_triage_run(*args, **kwargs)

    def advance_triage_run(self, *args, **kwargs):
        return self._primary.advance_triage_run(*args, **kwargs)

    def finish_triage_run(self, *args, **kwargs):
        return self._primary.finish_triage_run(*args, **kwargs)

    def __repr__(self) -> str:
        return (
            f"PartitionedScanRegistry(path={str(self.path)!r}, "
            f"platforms={self.platforms!r}, "
            f"fingerprint={self._fingerprint!r})"
        )
