"""Persistent verdict registry: a SQLite-backed, content-addressed store.

Every scan the service stack performs today is stateless -- verdicts vanish
with the process.  :class:`ScanRegistry` is the durable read-model under the
continuous-scanning path: verdict rows are keyed by ``(sha256 of the raw
bytecode, graph fingerprint)``, so

* re-scanning bytecode the registry already knows is a **registry hit** that
  needs no lowering and no model inference at all (one SQLite point lookup),
* a config change that alters graph lowering gets a new fingerprint and can
  never be served another config's verdicts, while the stale rows stay
  queryable under their own fingerprint until pruned.

Durability/concurrency model (mirrors the incremental read-model shape of
``azuline/rose``'s cache layer):

* **WAL journal mode** so the watch daemon can write while CLI ``query`` /
  HTTP ``GET /verdicts`` readers run concurrently, also across processes.
* **Schema versioning** via ``PRAGMA user_version`` with ordered, in-place
  migrations -- opening an old registry upgrades it; opening a *newer*
  registry than this code understands refuses loudly instead of guessing.
* **Upsert-on-rescan**: the ``verdicts`` row always holds the latest
  verdict, and every ``record`` appends to ``scan_history`` so score drift
  across re-scans/model refreshes stays auditable.
* **Corruption recovery**: a registry file that SQLite rejects is moved
  aside to ``<name>.corrupt-N`` and rebuilt empty with a warning -- a
  damaged registry degrades to a cold start, never a crashed daemon.

The registry stores every field of :class:`~repro.core.report.VerdictReport`
verbatim (probabilities as 8-byte IEEE doubles, notes as JSON), which is
what makes ``watch``-then-``query`` verdicts byte-identical to a direct
``scan-batch`` over the same corpus.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import pathlib
import sqlite3
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.report import VerdictReport
from repro.obs.trace import trace
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy

PathLike = Union[str, pathlib.Path]

#: Schema version written by this code; see :data:`_MIGRATIONS`.
SCHEMA_VERSION = 4

#: Ordered migrations; ``_MIGRATIONS[v]`` upgrades a version ``v-1`` registry
#: to version ``v``.  Migrations only ever append (new tables, new columns
#: with defaults), so older rows survive every upgrade verbatim.
_MIGRATIONS: Dict[int, str] = {
    1: """
        CREATE TABLE verdicts (
            sha256 TEXT NOT NULL,
            fingerprint TEXT NOT NULL,
            sample_id TEXT NOT NULL,
            source_path TEXT,
            platform TEXT NOT NULL,
            label INTEGER NOT NULL,
            malicious_probability REAL NOT NULL,
            cfg_blocks INTEGER NOT NULL DEFAULT 0,
            cfg_edges INTEGER NOT NULL DEFAULT 0,
            num_instructions INTEGER NOT NULL DEFAULT 0,
            model TEXT NOT NULL DEFAULT '',
            model_identity TEXT NOT NULL DEFAULT '',
            notes TEXT NOT NULL DEFAULT '[]',
            explained INTEGER NOT NULL DEFAULT 0,
            first_seen_at REAL NOT NULL,
            last_scanned_at REAL NOT NULL,
            scan_count INTEGER NOT NULL DEFAULT 1,
            PRIMARY KEY (sha256, fingerprint)
        );
        CREATE INDEX verdicts_label ON verdicts(fingerprint, label);
        CREATE INDEX verdicts_score
            ON verdicts(fingerprint, malicious_probability);
        CREATE INDEX verdicts_scanned_at
            ON verdicts(fingerprint, last_scanned_at);
        CREATE TABLE watched_files (
            path TEXT NOT NULL,
            fingerprint TEXT NOT NULL,
            sha256 TEXT NOT NULL,
            size INTEGER NOT NULL,
            mtime_ns INTEGER NOT NULL,
            first_seen_at REAL NOT NULL,
            last_seen_at REAL NOT NULL,
            deleted_at REAL,
            PRIMARY KEY (path, fingerprint)
        );
    """,
    2: """
        CREATE TABLE scan_history (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            sha256 TEXT NOT NULL,
            fingerprint TEXT NOT NULL,
            label INTEGER NOT NULL,
            malicious_probability REAL NOT NULL,
            model TEXT NOT NULL DEFAULT '',
            scanned_at REAL NOT NULL
        );
        CREATE INDEX scan_history_key ON scan_history(sha256, fingerprint);
        ALTER TABLE verdicts ADD COLUMN tags TEXT NOT NULL DEFAULT '[]';
    """,
    # which pipeline stage produced the verdict: 'gnn' (full scoring) or
    # 'prefilter' (cascade tier-0 short-circuit); pre-cascade rows were all
    # GNN-scored, so the backfill default is exact, not a guess
    3: """
        ALTER TABLE verdicts ADD COLUMN stage TEXT NOT NULL DEFAULT 'gnn';
    """,
    # registry v2 (compiled triage + cursor pagination): indexes backing the
    # rule-to-SQL compiler's platform / model-identity matchers and the
    # keyset-paginated listing order, plus the resumable retro-triage
    # progress table (one row per `scamdetect triage` run)
    4: """
        CREATE INDEX verdicts_platform ON verdicts(fingerprint, platform);
        CREATE INDEX verdicts_model_identity
            ON verdicts(fingerprint, model_identity);
        CREATE INDEX verdicts_page
            ON verdicts(fingerprint, last_scanned_at DESC, sha256);
        CREATE TABLE triage_runs (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            rules_digest TEXT NOT NULL,
            fingerprint TEXT NOT NULL,
            dry_run INTEGER NOT NULL DEFAULT 0,
            rule_index INTEGER NOT NULL DEFAULT 0,
            cursor_sha256 TEXT NOT NULL DEFAULT '',
            rows_scanned INTEGER NOT NULL DEFAULT 0,
            rows_matched INTEGER NOT NULL DEFAULT 0,
            started_at REAL NOT NULL,
            updated_at REAL NOT NULL,
            finished_at REAL
        );
        CREATE INDEX triage_runs_key
            ON triage_runs(rules_digest, fingerprint, dry_run);
    """,
}

_VERDICT_COLUMNS = (
    "sha256, fingerprint, sample_id, source_path, platform, label, "
    "malicious_probability, cfg_blocks, cfg_edges, num_instructions, "
    "model, model_identity, notes, explained, first_seen_at, "
    "last_scanned_at, scan_count, tags, stage"
)


class RegistryError(RuntimeError):
    """A registry problem the caller must deal with (bad path, future
    schema, invalid query)."""


def encode_cursor(last_scanned_at: float, sha256: str) -> str:
    """Encode one keyset-pagination position as an opaque cursor token.

    The position is the ``(last_scanned_at, sha256)`` sort key of the last
    row already returned; ``float.hex()`` keeps the timestamp bit-exact
    through the round trip (SQLite REAL is the same 8-byte IEEE double), so
    resuming never skips or repeats a row on timestamp ties.
    """
    payload = json.dumps([float(last_scanned_at).hex(), sha256])
    return base64.urlsafe_b64encode(payload.encode("ascii")).decode("ascii")


def decode_cursor(cursor: str) -> Tuple[float, str]:
    """Decode an :func:`encode_cursor` token; raises :class:`RegistryError`
    on anything that was not produced by this build (clients must treat
    cursors as opaque)."""
    try:
        payload = json.loads(
            base64.urlsafe_b64decode(cursor.encode("ascii")).decode("ascii")
        )
        timestamp_hex, sha256 = payload
        timestamp = float.fromhex(timestamp_hex)
        if not isinstance(sha256, str):
            raise ValueError("sha256 position must be a string")
    except (ValueError, TypeError, binascii.Error) as error:
        raise RegistryError(f"invalid cursor {cursor!r}: {error}") from error
    return timestamp, sha256


def content_sha256(raw: bytes) -> str:
    """The content address of one contract: SHA-256 over the raw bytecode.

    Unlike :func:`repro.service.cache.bytecode_key` this deliberately does
    *not* mix in the platform -- the registry row records the platform the
    contract actually resolved to, and external systems (block explorers,
    submission queues) address contracts by plain code hash.
    """
    return hashlib.sha256(raw).hexdigest()


@dataclass
class VerdictRow:
    """One registry row: the latest verdict for ``(sha256, fingerprint)``.

    ``to_report()`` reconstructs the exact :class:`VerdictReport` that was
    recorded, which is what the byte-identical ``watch`` / ``scan-batch``
    invariant rests on.
    """

    sha256: str
    fingerprint: str
    sample_id: str
    source_path: Optional[str]
    platform: str
    label: int
    malicious_probability: float
    cfg_blocks: int
    cfg_edges: int
    num_instructions: int
    model: str
    model_identity: str
    notes: List[str]
    explained: bool
    first_seen_at: float
    last_scanned_at: float
    scan_count: int
    tags: List[str] = field(default_factory=list)
    stage: str = "gnn"

    @classmethod
    def _from_sql(cls, row: sqlite3.Row) -> "VerdictRow":
        return cls(
            sha256=row["sha256"],
            fingerprint=row["fingerprint"],
            sample_id=row["sample_id"],
            source_path=row["source_path"],
            platform=row["platform"],
            label=int(row["label"]),
            malicious_probability=float(row["malicious_probability"]),
            cfg_blocks=int(row["cfg_blocks"]),
            cfg_edges=int(row["cfg_edges"]),
            num_instructions=int(row["num_instructions"]),
            model=row["model"],
            model_identity=row["model_identity"],
            notes=json.loads(row["notes"]),
            explained=bool(row["explained"]),
            first_seen_at=float(row["first_seen_at"]),
            last_scanned_at=float(row["last_scanned_at"]),
            scan_count=int(row["scan_count"]),
            tags=json.loads(row["tags"]),
            stage=row["stage"],
        )

    def to_report(self, sample_id: Optional[str] = None) -> VerdictReport:
        """Rebuild the stored :class:`VerdictReport`.

        ``sample_id`` rebinds the caller's identifier (a registry hit serves
        every path/submission with identical bytecode); every scored field
        comes back exactly as recorded.
        """
        return VerdictReport(
            sample_id=self.sample_id if sample_id is None else sample_id,
            platform=self.platform,
            label=self.label,
            malicious_probability=self.malicious_probability,
            cfg_blocks=self.cfg_blocks,
            cfg_edges=self.cfg_edges,
            num_instructions=self.num_instructions,
            model=self.model,
            notes=list(self.notes),
            stage=self.stage,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready row: registry metadata plus the nested report dict."""
        return {
            "sha256": self.sha256,
            "fingerprint": self.fingerprint,
            "source_path": self.source_path,
            "first_seen_at": self.first_seen_at,
            "last_scanned_at": self.last_scanned_at,
            "scan_count": self.scan_count,
            "explained": self.explained,
            "tags": list(self.tags),
            "report": self.to_report().to_dict(),
        }

    def format(self) -> str:
        verdict = self.to_report().verdict
        tags = f" tags={','.join(self.tags)}" if self.tags else ""
        return (
            f"{self.sha256[:12]}  {verdict:<9} "
            f"p={self.malicious_probability:.3f}  [{self.platform}]  "
            f"{self.source_path or self.sample_id}  "
            f"(scans={self.scan_count}{tags})"
        )


@dataclass
class TriageRun:
    """One row of ``triage_runs``: resumable progress of a retro-triage.

    A run is keyed by ``(rules_digest, fingerprint, dry_run)`` -- the
    SHA-256 of the rules file text plus the verdict scope -- so resuming
    with an *edited* rules file starts a fresh run instead of continuing a
    cursor whose rule indexes no longer line up.
    """

    id: int
    rules_digest: str
    fingerprint: str
    dry_run: bool
    rule_index: int
    cursor_sha256: str
    rows_scanned: int
    rows_matched: int
    started_at: float
    updated_at: float
    finished_at: Optional[float] = None

    @classmethod
    def _from_sql(cls, row: sqlite3.Row) -> "TriageRun":
        return cls(
            id=int(row["id"]),
            rules_digest=row["rules_digest"],
            fingerprint=row["fingerprint"],
            dry_run=bool(row["dry_run"]),
            rule_index=int(row["rule_index"]),
            cursor_sha256=row["cursor_sha256"],
            rows_scanned=int(row["rows_scanned"]),
            rows_matched=int(row["rows_matched"]),
            started_at=float(row["started_at"]),
            updated_at=float(row["updated_at"]),
            finished_at=(
                None
                if row["finished_at"] is None
                else float(row["finished_at"])
            ),
        )


@dataclass
class WatchedFile:
    """One row of the ``watched_files`` table (the watch daemon's index)."""

    path: str
    fingerprint: str
    sha256: str
    size: int
    mtime_ns: int
    first_seen_at: float
    last_seen_at: float
    deleted_at: Optional[float] = None


class ScanRegistry:
    """The persistent verdict store (see module docstring).

    Args:
        path: SQLite database file (parent directories are created).
            ``":memory:"`` builds a private in-memory registry for tests.
        fingerprint: Default graph-fingerprint scope for :meth:`record` /
            :meth:`get` / :meth:`query`; pass
            ``config.graph_fingerprint()`` (or use :meth:`for_config`).
            Queries may widen to all fingerprints explicitly.

    Thread safety: one instance may be shared between threads (a lock
    serialises statements on the single connection).  Cross-*process* safety
    comes from SQLite itself -- WAL journal mode plus a generous busy
    timeout let concurrent writers retry instead of failing.
    """

    #: How long a writer waits on a locked database before giving up.
    BUSY_TIMEOUT_SECONDS = 15.0

    #: Application-level retry over SQLite's own busy wait: a write that
    #: still came back ``SQLITE_BUSY``/``SQLITE_LOCKED`` after the
    #: connection timeout (WAL writer pile-up across a fleet of daemons)
    #: is retried with backoff instead of failing the scan cycle.
    WRITE_RETRY = RetryPolicy(max_attempts=5, base_delay_s=0.05,
                              max_delay_s=1.0, deadline_s=15.0)

    def __init__(self, path: PathLike, fingerprint: str = "",
                 write_retry: Optional[RetryPolicy] = None) -> None:
        self.path = pathlib.Path(path) if path != ":memory:" else path
        self.fingerprint = fingerprint
        self.write_retry = (self.WRITE_RETRY if write_retry is None
                            else write_retry)
        #: write transactions retried after SQLITE_BUSY/SQLITE_LOCKED over
        #: this handle's lifetime (fleet-contention telemetry)
        self.busy_retries = 0
        self._lock = threading.Lock()
        self._conn = self._open()

    @classmethod
    def for_config(cls, path: PathLike, config) -> "ScanRegistry":
        """Build a registry scoped to ``config.graph_fingerprint()``."""
        return cls(path, fingerprint=config.graph_fingerprint())

    # ------------------------------------------------------------------ #
    # connection + schema lifecycle

    def _open(self) -> sqlite3.Connection:
        if self.path != ":memory:":
            self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            return self._connect_and_migrate()
        except sqlite3.DatabaseError as error:
            # not a database / malformed image: salvage is hopeless, but a
            # triage daemon must come back up -- move the damaged file aside
            # and rebuild an empty registry, loudly
            self._quarantine_corrupt(error)
            return self._connect_and_migrate()

    def _connect_and_migrate(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            str(self.path),
            timeout=self.BUSY_TIMEOUT_SECONDS,
            check_same_thread=False,
        )
        try:
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA foreign_keys=ON")
            # a malformed file often only surfaces on first real read
            version = int(conn.execute("PRAGMA user_version").fetchone()[0])
            if version > SCHEMA_VERSION:
                raise RegistryError(
                    f"registry {self.path} has schema version {version}, "
                    f"newer than this build understands "
                    f"({SCHEMA_VERSION}); upgrade the scamdetect install "
                    f"instead of downgrading the registry"
                )
            for target in range(version + 1, SCHEMA_VERSION + 1):
                # one REAL transaction per migration step: executescript
                # auto-commits any pending transaction before running, so
                # the BEGIN/COMMIT (and the version bump) must live INSIDE
                # the script -- a crash mid-migration then rolls back to
                # the previous version instead of leaving half-applied DDL
                # that a later open would misread as corruption
                conn.executescript(
                    "BEGIN;\n"
                    + _MIGRATIONS[target]
                    + f"\nPRAGMA user_version = {target};\nCOMMIT;"
                )
            # integrity_check also validates pre-existing pages of an old
            # registry we did not just create
            status = conn.execute("PRAGMA quick_check").fetchone()[0]
            if status != "ok":
                raise sqlite3.DatabaseError(f"quick_check: {status}")
            return conn
        except Exception:
            conn.close()
            raise

    def _quarantine_corrupt(self, error: Exception) -> None:
        if self.path == ":memory:":  # pragma: no cover - cannot corrupt
            raise RegistryError(f"in-memory registry corrupt: {error}")
        suffix = 0
        while True:
            target = self.path.with_name(f"{self.path.name}.corrupt-{suffix}")
            if not target.exists():
                break
            suffix += 1
        warnings.warn(
            f"scan registry {self.path} is corrupt ({error}); moving it to "
            f"{target.name} and rebuilding an empty registry -- verdict "
            f"history up to this point is lost",
            stacklevel=4,
        )
        self.path.replace(target)
        for companion in (".wal", ".shm"):
            side = self.path.with_name(self.path.name + f"-{companion[1:]}")
            try:
                side.unlink()
            except OSError:
                pass

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ScanRegistry":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    @property
    def schema_version(self) -> int:
        with self._lock:
            return int(
                self._conn.execute("PRAGMA user_version").fetchone()[0]
            )

    @property
    def journal_mode(self) -> str:
        with self._lock:
            return str(
                self._conn.execute("PRAGMA journal_mode").fetchone()[0]
            )

    # ------------------------------------------------------------------ #
    # recording

    def record(
        self,
        sha256: str,
        report: VerdictReport,
        fingerprint: Optional[str] = None,
        source_path: Optional[str] = None,
        explained: bool = False,
        model_identity: str = "",
        scanned_at: Optional[float] = None,
    ) -> bool:
        """Upsert one verdict; returns True when the row was new.

        A re-scan of known bytecode refreshes the latest-verdict row
        (keeping ``first_seen_at`` and bumping ``scan_count``) and appends
        to ``scan_history`` either way.  Two extra facts scope when a row
        may be *reused* by the scan path: ``explained`` records whether
        indicator notes were attached (see
        :class:`~repro.core.detector.ScamDetector` ``explain``), and
        ``model_identity`` is the weight-level fingerprint of the scoring
        model (:meth:`~repro.core.pipeline.ScamDetectPipeline.
        model_fingerprint`).  Lookups only trust rows recorded under the
        same identity and explain setting, so a retrained model or a
        notes-mode mismatch re-scans instead of serving stale verdicts.
        """
        return self.record_many(
            [(sha256, report, source_path)],
            fingerprint=fingerprint,
            explained=explained,
            model_identity=model_identity,
            scanned_at=scanned_at,
        )[0]

    @staticmethod
    def _is_busy(error: BaseException) -> bool:
        """True for SQLITE_BUSY/SQLITE_LOCKED; other operational errors
        (malformed statements, missing tables) must not be retried."""
        text = str(error).lower()
        return "locked" in text or "busy" in text

    def _write_txn(self, fn):
        """Run one write transaction under the busy-retry policy.

        The transaction body holds the instance lock, so retries re-enter
        it from scratch; the ``registry.write`` fault site lets tests and
        the E13 chaos campaign inject ``SQLITE_BUSY`` deterministically.
        """

        def attempt():
            fault_point("registry.write")
            return fn()

        def count_retry(attempt_number, error, delay) -> None:
            self.busy_retries += 1

        # obs site registry.write: spans the whole retried transaction, so
        # busy-retry backoff shows up as write latency in traces
        with trace("registry.write"):
            return self.write_retry.call(
                attempt,
                retry_on=(sqlite3.OperationalError,),
                should_retry=self._is_busy,
                on_retry=count_retry,
            )

    def record_many(
        self,
        entries: Sequence[Tuple[str, VerdictReport, Optional[str]]],
        fingerprint: Optional[str] = None,
        explained: bool = False,
        model_identity: str = "",
        scanned_at: Optional[float] = None,
    ) -> List[bool]:
        """Upsert many ``(sha256, report, source_path)`` rows in one
        transaction; returns per-entry "was new" flags."""
        fingerprint = self._scope(fingerprint)
        now = time.time() if scanned_at is None else scanned_at
        return self._write_txn(
            lambda: self._record_many_txn(
                entries, fingerprint, explained, model_identity, now
            )
        )

    def _record_many_txn(
        self,
        entries: Sequence[Tuple[str, VerdictReport, Optional[str]]],
        fingerprint: str,
        explained: bool,
        model_identity: str,
        now: float,
    ) -> List[bool]:
        fresh: List[bool] = []
        with self._lock, self._conn:
            for sha256, report, source_path in entries:
                existing = self._conn.execute(
                    "SELECT scan_count FROM verdicts "
                    "WHERE sha256 = ? AND fingerprint = ?",
                    (sha256, fingerprint),
                ).fetchone()
                fresh.append(existing is None)
                self._conn.execute(
                    "INSERT INTO verdicts ("
                    "sha256, fingerprint, sample_id, source_path, platform,"
                    " label, malicious_probability, cfg_blocks, cfg_edges,"
                    " num_instructions, model, model_identity, notes,"
                    " explained, first_seen_at, last_scanned_at, scan_count,"
                    " tags, stage) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,"
                    " ?, 1, '[]', ?) "
                    "ON CONFLICT(sha256, fingerprint) DO UPDATE SET "
                    "sample_id = excluded.sample_id, "
                    "source_path = excluded.source_path, "
                    "platform = excluded.platform, "
                    "label = excluded.label, "
                    "malicious_probability = excluded.malicious_probability,"
                    " cfg_blocks = excluded.cfg_blocks, "
                    "cfg_edges = excluded.cfg_edges, "
                    "num_instructions = excluded.num_instructions, "
                    "model = excluded.model, "
                    "model_identity = excluded.model_identity, "
                    "notes = excluded.notes, "
                    "explained = excluded.explained, "
                    "last_scanned_at = excluded.last_scanned_at, "
                    "scan_count = verdicts.scan_count + 1, "
                    "stage = excluded.stage",
                    (
                        sha256,
                        fingerprint,
                        report.sample_id,
                        source_path,
                        report.platform,
                        report.label,
                        report.malicious_probability,
                        report.cfg_blocks,
                        report.cfg_edges,
                        report.num_instructions,
                        report.model,
                        model_identity,
                        json.dumps(report.notes),
                        int(explained),
                        now,
                        now,
                        report.stage,
                    ),
                )
                self._conn.execute(
                    "INSERT INTO scan_history (sha256, fingerprint, label,"
                    " malicious_probability, model, scanned_at) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        sha256,
                        fingerprint,
                        report.label,
                        report.malicious_probability,
                        report.model,
                        now,
                    ),
                )
        return fresh

    def add_tags(
        self,
        sha256: str,
        tags: Iterable[str],
        fingerprint: Optional[str] = None,
    ) -> List[str]:
        """Merge ``tags`` into the row's tag set; returns the merged list."""
        fingerprint = self._scope(fingerprint)

        def txn() -> List[str]:
            with self._lock, self._conn:
                row = self._conn.execute(
                    "SELECT tags FROM verdicts "
                    "WHERE sha256 = ? AND fingerprint = ?",
                    (sha256, fingerprint),
                ).fetchone()
                if row is None:
                    raise RegistryError(
                        f"cannot tag unknown verdict {sha256[:12]} "
                        f"(fingerprint {fingerprint!r})"
                    )
                merged = sorted(set(json.loads(row["tags"])) | set(tags))
                self._conn.execute(
                    "UPDATE verdicts SET tags = ? "
                    "WHERE sha256 = ? AND fingerprint = ?",
                    (json.dumps(merged), sha256, fingerprint),
                )
            return merged

        return self._write_txn(txn)

    def add_tags_many(
        self,
        entries: Sequence[Tuple[str, Iterable[str]]],
        fingerprint: Optional[str] = None,
        missing_ok: bool = False,
    ) -> Dict[str, List[str]]:
        """Bulk :meth:`add_tags`: merge many ``(sha256, tags)`` pairs in one
        write transaction (the retro-triage bulk-action path).

        Returns ``{sha256: merged tag list}`` for the rows that exist.  A
        sha256 the registry does not know raises :class:`RegistryError`
        unless ``missing_ok`` (a concurrent ``purge_stale`` between a triage
        SELECT and its tag batch must not kill the whole run).
        """
        fingerprint = self._scope(fingerprint)

        def txn() -> Dict[str, List[str]]:
            merged: Dict[str, List[str]] = {}
            with self._lock, self._conn:
                for sha256, tags in entries:
                    row = self._conn.execute(
                        "SELECT tags FROM verdicts "
                        "WHERE sha256 = ? AND fingerprint = ?",
                        (sha256, fingerprint),
                    ).fetchone()
                    if row is None:
                        if missing_ok:
                            continue
                        raise RegistryError(
                            f"cannot tag unknown verdict {sha256[:12]} "
                            f"(fingerprint {fingerprint!r})"
                        )
                    combined = sorted(
                        set(json.loads(row["tags"])) | set(tags)
                    )
                    self._conn.execute(
                        "UPDATE verdicts SET tags = ? "
                        "WHERE sha256 = ? AND fingerprint = ?",
                        (json.dumps(combined), sha256, fingerprint),
                    )
                    merged[sha256] = combined
            return merged

        return self._write_txn(txn)

    # ------------------------------------------------------------------ #
    # lookups

    def get(
        self, sha256: str, fingerprint: Optional[str] = None
    ) -> Optional[VerdictRow]:
        """Point lookup of the latest verdict for one content hash."""
        fingerprint = self._scope(fingerprint)
        with self._lock:
            row = self._conn.execute(
                f"SELECT {_VERDICT_COLUMNS} FROM verdicts "
                f"WHERE sha256 = ? AND fingerprint = ?",
                (sha256, fingerprint),
            ).fetchone()
        return None if row is None else VerdictRow._from_sql(row)

    def get_many(
        self, sha256s: Sequence[str], fingerprint: Optional[str] = None
    ) -> Dict[str, VerdictRow]:
        """Bulk point lookup; returns ``{sha256: row}`` for the known ones.

        This is the hot call on the batch-scan path (one query per chunk of
        1000 hashes instead of one per contract).
        """
        fingerprint = self._scope(fingerprint)
        found: Dict[str, VerdictRow] = {}
        unique = list(dict.fromkeys(sha256s))
        with self._lock:
            for start in range(0, len(unique), 1000):
                chunk = unique[start:start + 1000]
                marks = ",".join("?" for _ in chunk)
                for row in self._conn.execute(
                    f"SELECT {_VERDICT_COLUMNS} FROM verdicts "
                    f"WHERE fingerprint = ? AND sha256 IN ({marks})",
                    [fingerprint, *chunk],
                ):
                    found[row["sha256"]] = VerdictRow._from_sql(row)
        return found

    def query(
        self,
        verdict: Optional[str] = None,
        min_score: Optional[float] = None,
        max_score: Optional[float] = None,
        platform: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        path_glob: Optional[str] = None,
        tag: Optional[str] = None,
        sha256_prefix: Optional[str] = None,
        fingerprint: Optional[str] = None,
        all_fingerprints: bool = False,
        limit: Optional[int] = None,
    ) -> List[VerdictRow]:
        """Filtered scan over the latest-verdict rows.

        Args:
            verdict: ``"malicious"`` / ``"benign"`` (or a raw label name).
            min_score: Inclusive lower bound on the malicious probability.
            max_score: Inclusive upper bound.
            platform: ``"evm"`` or ``"wasm"``.
            since: Inclusive lower bound on ``last_scanned_at`` (epoch
                seconds).
            until: Inclusive upper bound on ``last_scanned_at``.
            path_glob: Shell glob matched against ``source_path`` (falls
                back to ``sample_id`` for rows recorded without a path).
            tag: Only rows carrying this triage tag.
            sha256_prefix: Only rows whose content hash starts with this
                (lowercase hex) prefix.
            fingerprint: Explicit fingerprint scope (default: the
                registry's own).
            all_fingerprints: Ignore fingerprint scoping entirely.
            limit: Cap on returned rows (newest first).

        Every filter -- including ``tag`` and ``sha256_prefix`` -- runs
        inside the SQL WHERE clause *before* ``LIMIT``, so a capped query
        can never silently drop matching rows older than the newest N.
        Rows come back ordered by ``last_scanned_at`` descending, then
        sha256 for a stable tiebreak.
        """
        clauses, params = self._filter_clauses(
            verdict=verdict,
            min_score=min_score,
            max_score=max_score,
            platform=platform,
            since=since,
            until=until,
            path_glob=path_glob,
            tag=tag,
            sha256_prefix=sha256_prefix,
            fingerprint=fingerprint,
            all_fingerprints=all_fingerprints,
        )
        sql = f"SELECT {_VERDICT_COLUMNS} FROM verdicts"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY last_scanned_at DESC, sha256"
        if limit is not None:
            if limit < 1:
                raise RegistryError("query limit must be >= 1")
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            return [
                VerdictRow._from_sql(row)
                for row in self._conn.execute(sql, params)
            ]

    def query_page(
        self,
        cursor: Optional[str] = None,
        page_size: int = 100,
        **filters,
    ) -> Tuple[List[VerdictRow], Optional[str]]:
        """Keyset-paginated :meth:`query`: returns ``(rows, next_cursor)``.

        Ordering is the listing order (``last_scanned_at DESC, sha256``)
        and the page boundary is a keyset predicate over that sort key, so
        pagination stays stable under concurrent writers: a row inserted or
        re-scanned mid-pagination can move *itself* across the boundary,
        but can never shift, duplicate, or hide any other row -- the
        failure mode OFFSET pagination has on a live fleet.

        ``next_cursor`` is ``None`` on the final page; any ``cursor`` not
        produced by :func:`encode_cursor` raises :class:`RegistryError`.
        """
        if page_size < 1:
            raise RegistryError("page_size must be >= 1")
        clauses, params = self._filter_clauses(**filters)
        if cursor is not None:
            after_scanned_at, after_sha256 = decode_cursor(cursor)
            clauses.append(
                "(last_scanned_at < ? OR "
                "(last_scanned_at = ? AND sha256 > ?))"
            )
            params.extend([after_scanned_at, after_scanned_at, after_sha256])
        sql = f"SELECT {_VERDICT_COLUMNS} FROM verdicts"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        # fetch one row beyond the page: its existence is the "there is a
        # next page" signal, without a second COUNT query
        sql += " ORDER BY last_scanned_at DESC, sha256 LIMIT ?"
        params.append(int(page_size) + 1)
        with self._lock:
            rows = [
                VerdictRow._from_sql(row)
                for row in self._conn.execute(sql, params)
            ]
        next_cursor: Optional[str] = None
        if len(rows) > page_size:
            rows = rows[:page_size]
            next_cursor = encode_cursor(
                rows[-1].last_scanned_at, rows[-1].sha256
            )
        return rows, next_cursor

    def _filter_clauses(
        self,
        verdict: Optional[str] = None,
        min_score: Optional[float] = None,
        max_score: Optional[float] = None,
        platform: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        path_glob: Optional[str] = None,
        tag: Optional[str] = None,
        sha256_prefix: Optional[str] = None,
        fingerprint: Optional[str] = None,
        all_fingerprints: bool = False,
    ) -> Tuple[List[str], List[object]]:
        """The shared WHERE builder behind :meth:`query` / :meth:`query_page`
        (and, via the same predicate forms, :mod:`repro.registry.compile`)."""
        clauses: List[str] = []
        params: List[object] = []
        if not all_fingerprints:
            clauses.append("fingerprint = ?")
            params.append(self._scope(fingerprint))
        if verdict is not None:
            clauses.append("label = ?")
            params.append(self._verdict_label(verdict))
        if min_score is not None:
            clauses.append("malicious_probability >= ?")
            params.append(float(min_score))
        if max_score is not None:
            clauses.append("malicious_probability <= ?")
            params.append(float(max_score))
        if platform is not None:
            clauses.append("platform = ?")
            params.append(platform)
        if since is not None:
            clauses.append("last_scanned_at >= ?")
            params.append(float(since))
        if until is not None:
            clauses.append("last_scanned_at <= ?")
            params.append(float(until))
        if path_glob is not None:
            # GLOB is SQLite's native shell-style matcher (case-sensitive,
            # like pathlib.match); COALESCE lets rows recorded without a
            # source path still match on their sample id
            clauses.append("COALESCE(source_path, sample_id) GLOB ?")
            params.append(path_glob)
        if tag is not None:
            # tags is a JSON array column; json_each unpacks it so the
            # match happens before LIMIT (a substring LIKE would false-
            # positive on tags containing each other)
            clauses.append(
                "EXISTS (SELECT 1 FROM json_each(verdicts.tags) "
                "WHERE json_each.value = ?)"
            )
            params.append(tag)
        if sha256_prefix is not None:
            lowered = sha256_prefix.lower()
            if not all(char in "0123456789abcdef" for char in lowered):
                raise RegistryError(
                    f"sha256 prefix must be hex, got {sha256_prefix!r}"
                )
            clauses.append("sha256 LIKE ?")
            params.append(lowered + "%")
        return clauses, params

    def select_where(
        self,
        where: str,
        params: Sequence[object],
        after_sha256: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[VerdictRow]:
        """Run a compiled WHERE clause (see :mod:`repro.registry.compile`)
        in keyset batches ordered by sha256.

        ``after_sha256`` resumes past the last row of the previous batch --
        the retro-triage scan order is the primary key itself, so batch
        boundaries cost an index seek, not an OFFSET walk.
        """
        sql = f"SELECT {_VERDICT_COLUMNS} FROM verdicts WHERE ({where})"
        bound = list(params)
        if after_sha256 is not None:
            sql += " AND sha256 > ?"
            bound.append(after_sha256)
        sql += " ORDER BY sha256"
        if limit is not None:
            sql += " LIMIT ?"
            bound.append(int(limit))
        with self._lock:
            return [
                VerdictRow._from_sql(row)
                for row in self._conn.execute(sql, bound)
            ]

    def explain_where(
        self,
        where: str,
        params: Sequence[object],
        after_sha256: Optional[str] = None,
    ) -> List[str]:
        """EXPLAIN QUERY PLAN detail lines for a compiled WHERE clause.

        The compiler's index check asserts none of these is a full-table
        ``SCAN verdicts`` -- every compiled matcher must reach the rows
        through the primary key or one of the ``verdicts_*`` indexes.
        """
        sql = f"SELECT {_VERDICT_COLUMNS} FROM verdicts WHERE ({where})"
        bound = list(params)
        if after_sha256 is not None:
            sql += " AND sha256 > ?"
            bound.append(after_sha256)
        sql += " ORDER BY sha256"
        with self._lock:
            return [
                str(row["detail"])
                for row in self._conn.execute(
                    "EXPLAIN QUERY PLAN " + sql, bound
                )
            ]

    def history(
        self, sha256: str, fingerprint: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """Every recorded scan of one contract, oldest first."""
        fingerprint = self._scope(fingerprint)
        with self._lock:
            return [
                {
                    "label": int(row["label"]),
                    "malicious_probability": float(
                        row["malicious_probability"]
                    ),
                    "model": row["model"],
                    "scanned_at": float(row["scanned_at"]),
                }
                for row in self._conn.execute(
                    "SELECT label, malicious_probability, model, scanned_at"
                    " FROM scan_history "
                    "WHERE sha256 = ? AND fingerprint = ? ORDER BY id",
                    (sha256, fingerprint),
                )
            ]

    def counts(self, fingerprint: Optional[str] = None) -> Dict[str, int]:
        """Row counts for health/metrics: total, malicious, benign, files."""
        fingerprint = self._scope(fingerprint)
        with self._lock:
            total, malicious = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(label), 0) FROM verdicts "
                "WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            files = self._conn.execute(
                "SELECT COUNT(*) FROM watched_files "
                "WHERE fingerprint = ? AND deleted_at IS NULL",
                (fingerprint,),
            ).fetchone()[0]
        return {
            "verdicts": int(total),
            "malicious": int(malicious),
            "benign": int(total) - int(malicious),
            "watched_files": int(files),
        }

    def fingerprints(self) -> List[str]:
        """Every fingerprint holding at least one verdict row."""
        with self._lock:
            return [
                row[0]
                for row in self._conn.execute(
                    "SELECT DISTINCT fingerprint FROM verdicts "
                    "ORDER BY fingerprint"
                )
            ]

    def purge_stale(self, keep_fingerprint: Optional[str] = None) -> int:
        """Delete rows of every fingerprint except ``keep_fingerprint``.

        A fingerprint change never *overwrites* old rows (they are invisible
        to the new scope by keying alone); this reclaims their space once
        the old config is truly retired.  Returns deleted verdict rows.
        """
        keep = self._scope(keep_fingerprint)

        def txn() -> int:
            with self._lock, self._conn:
                removed = self._conn.execute(
                    "DELETE FROM verdicts WHERE fingerprint != ?", (keep,)
                ).rowcount
                self._conn.execute(
                    "DELETE FROM scan_history WHERE fingerprint != ?",
                    (keep,),
                )
                self._conn.execute(
                    "DELETE FROM watched_files WHERE fingerprint != ?",
                    (keep,),
                )
            return int(removed)

        return self._write_txn(txn)

    # ------------------------------------------------------------------ #
    # triage-run progress (used by repro.registry.triage)

    def find_triage_run(
        self,
        rules_digest: str,
        fingerprint: Optional[str] = None,
        dry_run: bool = False,
    ) -> Optional[TriageRun]:
        """The unfinished run for this exact (rules file, scope, mode), if
        one exists -- the resume point `scamdetect triage` picks up."""
        fingerprint = self._scope(fingerprint)
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM triage_runs "
                "WHERE rules_digest = ? AND fingerprint = ? AND dry_run = ?"
                " AND finished_at IS NULL ORDER BY id DESC LIMIT 1",
                (rules_digest, fingerprint, int(dry_run)),
            ).fetchone()
        return None if row is None else TriageRun._from_sql(row)

    def start_triage_run(
        self,
        rules_digest: str,
        fingerprint: Optional[str] = None,
        dry_run: bool = False,
        started_at: Optional[float] = None,
    ) -> TriageRun:
        """Open a fresh progress row (rule 0, empty cursor)."""
        fingerprint = self._scope(fingerprint)
        now = time.time() if started_at is None else started_at

        def txn() -> TriageRun:
            with self._lock, self._conn:
                run_id = self._conn.execute(
                    "INSERT INTO triage_runs (rules_digest, fingerprint,"
                    " dry_run, started_at, updated_at) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (rules_digest, fingerprint, int(dry_run), now, now),
                ).lastrowid
            return TriageRun(
                id=int(run_id),
                rules_digest=rules_digest,
                fingerprint=fingerprint,
                dry_run=dry_run,
                rule_index=0,
                cursor_sha256="",
                rows_scanned=0,
                rows_matched=0,
                started_at=now,
                updated_at=now,
                finished_at=None,
            )

        return self._write_txn(txn)

    def advance_triage_run(
        self,
        run_id: int,
        rule_index: int,
        cursor_sha256: str,
        rows_scanned: int,
        rows_matched: int,
        updated_at: Optional[float] = None,
    ) -> None:
        """Persist one batch boundary: position plus cumulative counters.

        This commits *after* the batch's actions were applied, so a killed
        triage resumes from the last durable boundary -- re-applying at
        most one batch of idempotent tag merges, never skipping rows.
        """
        now = time.time() if updated_at is None else updated_at

        def txn() -> None:
            with self._lock, self._conn:
                self._conn.execute(
                    "UPDATE triage_runs SET rule_index = ?,"
                    " cursor_sha256 = ?, rows_scanned = ?,"
                    " rows_matched = ?, updated_at = ? WHERE id = ?",
                    (
                        int(rule_index),
                        cursor_sha256,
                        int(rows_scanned),
                        int(rows_matched),
                        now,
                        int(run_id),
                    ),
                )

        self._write_txn(txn)

    def finish_triage_run(
        self, run_id: int, finished_at: Optional[float] = None
    ) -> None:
        """Mark a run complete; a later triage of the same rules starts
        over instead of resuming."""
        now = time.time() if finished_at is None else finished_at

        def txn() -> None:
            with self._lock, self._conn:
                self._conn.execute(
                    "UPDATE triage_runs SET finished_at = ?,"
                    " updated_at = ? WHERE id = ?",
                    (now, now, int(run_id)),
                )

        self._write_txn(txn)

    # ------------------------------------------------------------------ #
    # watched-files index (used by repro.registry.watch)

    def watched_files(
        self, fingerprint: Optional[str] = None, include_deleted: bool = False
    ) -> Dict[str, WatchedFile]:
        """The watch daemon's file index as ``{path: WatchedFile}``."""
        fingerprint = self._scope(fingerprint)
        sql = (
            "SELECT path, fingerprint, sha256, size, mtime_ns,"
            " first_seen_at, last_seen_at, deleted_at "
            "FROM watched_files WHERE fingerprint = ?"
        )
        if not include_deleted:
            sql += " AND deleted_at IS NULL"
        with self._lock:
            return {
                row["path"]: WatchedFile(
                    path=row["path"],
                    fingerprint=row["fingerprint"],
                    sha256=row["sha256"],
                    size=int(row["size"]),
                    mtime_ns=int(row["mtime_ns"]),
                    first_seen_at=float(row["first_seen_at"]),
                    last_seen_at=float(row["last_seen_at"]),
                    deleted_at=(
                        None
                        if row["deleted_at"] is None
                        else float(row["deleted_at"])
                    ),
                )
                for row in self._conn.execute(sql, (fingerprint,))
            }

    def upsert_watched_files(
        self,
        entries: Sequence[Tuple[str, str, int, int]],
        fingerprint: Optional[str] = None,
        seen_at: Optional[float] = None,
    ) -> None:
        """Record ``(path, sha256, size, mtime_ns)`` sightings in one
        transaction (un-deleting paths that reappeared)."""
        fingerprint = self._scope(fingerprint)
        now = time.time() if seen_at is None else seen_at

        def txn() -> None:
            with self._lock, self._conn:
                self._conn.executemany(
                    "INSERT INTO watched_files (path, fingerprint, sha256,"
                    " size, mtime_ns, first_seen_at, last_seen_at,"
                    " deleted_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, NULL) "
                    "ON CONFLICT(path, fingerprint) DO UPDATE SET "
                    "sha256 = excluded.sha256, size = excluded.size, "
                    "mtime_ns = excluded.mtime_ns, "
                    "last_seen_at = excluded.last_seen_at, "
                    "deleted_at = NULL",
                    [
                        (path, fingerprint, sha256, size, mtime_ns, now, now)
                        for path, sha256, size, mtime_ns in entries
                    ],
                )

        self._write_txn(txn)

    def mark_deleted(
        self,
        paths: Sequence[str],
        fingerprint: Optional[str] = None,
        deleted_at: Optional[float] = None,
    ) -> None:
        """Flag watched paths that vanished from the corpus.

        Their verdict rows stay (the bytecode may reappear elsewhere); only
        the file index records the deletion.
        """
        if not paths:
            return
        fingerprint = self._scope(fingerprint)
        now = time.time() if deleted_at is None else deleted_at

        def txn() -> None:
            with self._lock, self._conn:
                self._conn.executemany(
                    "UPDATE watched_files SET deleted_at = ? "
                    "WHERE path = ? AND fingerprint = ?",
                    [(now, path, fingerprint) for path in paths],
                )

        self._write_txn(txn)

    # ------------------------------------------------------------------ #

    def _scope(self, fingerprint: Optional[str]) -> str:
        scope = self.fingerprint if fingerprint is None else fingerprint
        if not scope:
            raise RegistryError(
                "this operation needs a graph fingerprint scope; construct "
                "the registry with ScanRegistry.for_config(...) or pass "
                "fingerprint=..."
            )
        return scope

    @staticmethod
    def _verdict_label(verdict: str) -> int:
        from repro.datasets.labels import LABEL_NAMES

        lowered = verdict.lower()
        for label, name in LABEL_NAMES.items():
            if name == lowered:
                return int(label)
        if lowered in ("malicious", "scam", "1"):
            return 1
        if lowered in ("benign", "0"):
            return 0
        raise RegistryError(
            f"unknown verdict {verdict!r}; use 'malicious' or 'benign'"
        )

    def __repr__(self) -> str:
        return (
            f"ScanRegistry(path={str(self.path)!r}, "
            f"fingerprint={self.fingerprint!r}, "
            f"schema=v{self.schema_version})"
        )
