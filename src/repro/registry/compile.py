"""Rule-to-SQL compiler: triage matchers as index-backed registry queries.

The rules engine (:mod:`repro.registry.rules`) matches one report at a time
-- fine on the live path where every verdict is already in hand, hopeless
for retro-triage over millions of stored rows, where Python-side matching
would drag every row through ``VerdictRow`` construction just to discard
almost all of them.  This module compiles each :class:`TriageRule`'s
matcher conjunction into a parameterized SQL ``WHERE`` clause over the
``verdicts`` table (the matcher/action-DSL-compiled-to-read-cache-queries
shape of ``azuline/rose``'s rules engine), so the database's indexes do the
discarding and only *matching* rows ever cross into Python.

The compiled predicates are exact translations of the Python matchers --
:func:`verify_parity` below states the contract, and the E14 harness
enforces it byte-for-byte -- with two carefully-argued cases:

* ``sha256`` prefixes become a half-open range over the primary key
  (``sha256 >= lo AND sha256 < hi``) instead of ``LIKE``: identical on a
  column that only ever holds lowercase hex, and sargable on the PK.
* ``indicators`` become ``EXISTS`` probes with ``instr`` over the
  JSON-decoded notes array -- substring containment per note, exactly
  Python's ``any(ind in note for note in notes)``, never a cross-note
  false positive from matching the JSON text itself.

Every compiled query is also *plan-checked*: :func:`check_index_backed`
runs ``EXPLAIN QUERY PLAN`` and refuses any plan that full-scans the
verdicts table, so a schema change that silently drops an index fails
loudly at triage start instead of turning a fleet-sized triage into an
accidental table walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.registry.rules import TriageRule
from repro.registry.store import RegistryError, ScanRegistry


class CompileError(RegistryError):
    """A rule that cannot be compiled, or a compiled plan that is not
    index-backed."""


def _glob_from_fnmatch(pattern: str) -> str:
    """Translate an :mod:`fnmatch` pattern to SQLite ``GLOB`` syntax.

    The two dialects agree on ``*``, ``?``, and ``[seq]``; they disagree
    only on negated classes (``[!seq]`` vs ``[^seq]``), so that is the one
    rewrite.  A ``!`` anywhere else in a class is literal in both.
    """
    out: List[str] = []
    index = 0
    while index < len(pattern):
        char = pattern[index]
        if char == "[" and index + 1 < len(pattern):
            if pattern[index + 1] == "!":
                out.append("[^")
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _sha256_range(prefix: str) -> Tuple[str, Optional[str]]:
    """The half-open hex range equivalent to ``startswith(prefix)``.

    Returns ``(low, high)``; ``high`` is None for an all-``f`` prefix
    (nothing sorts above it, so the range is one-sided).
    """
    low = prefix
    stripped = prefix.rstrip("f")
    if not stripped:
        return low, None
    bumped = format(int(stripped, 16) + 1, f"0{len(stripped)}x")
    return low, bumped


@dataclass(frozen=True)
class CompiledRule:
    """One rule's matcher conjunction as a parameterized WHERE clause.

    ``where``/``params`` plug straight into
    :meth:`ScanRegistry.select_where` (and its ``explain_where`` twin);
    the clause always begins with the fingerprint scope, so every plan can
    reach the rows through a ``fingerprint``-leading index even when the
    rule itself constrains nothing else.
    """

    rule: TriageRule
    where: str
    params: Tuple[object, ...]

    def describe(self) -> str:
        return f"{self.rule.name}: WHERE {self.where} {list(self.params)}"


def compile_rule(rule: TriageRule, fingerprint: str) -> CompiledRule:
    """Compile one rule's matchers for the given fingerprint scope."""
    if not fingerprint:
        raise CompileError(
            f"rule {rule.name!r}: compiling needs a graph fingerprint scope"
        )
    clauses: List[str] = ["fingerprint = ?"]
    params: List[object] = [fingerprint]
    if rule.verdict is not None:
        clauses.append("label = ?")
        params.append(ScanRegistry._verdict_label(rule.verdict))
    if rule.min_score is not None:
        clauses.append("malicious_probability >= ?")
        params.append(float(rule.min_score))
    if rule.max_score is not None:
        clauses.append("malicious_probability <= ?")
        params.append(float(rule.max_score))
    if rule.platform is not None:
        clauses.append("platform = ?")
        params.append(rule.platform)
    for indicator in rule.indicators:
        clauses.append(
            "EXISTS (SELECT 1 FROM json_each(verdicts.notes) "
            "WHERE instr(json_each.value, ?) > 0)"
        )
        params.append(indicator)
    if rule.path_glob is not None:
        clauses.append("COALESCE(source_path, sample_id) GLOB ?")
        params.append(_glob_from_fnmatch(rule.path_glob))
    if rule.has_tag is not None:
        clauses.append(
            "EXISTS (SELECT 1 FROM json_each(verdicts.tags) "
            "WHERE json_each.value = ?)"
        )
        params.append(rule.has_tag)
    if rule.model_identity is not None:
        clauses.append("model_identity = ?")
        params.append(rule.model_identity)
    if rule.since is not None:
        clauses.append("last_scanned_at >= ?")
        params.append(float(rule.since))
    if rule.until is not None:
        clauses.append("last_scanned_at <= ?")
        params.append(float(rule.until))
    if rule.sha256_prefix is not None:
        low, high = _sha256_range(rule.sha256_prefix)
        if high is None:
            clauses.append("sha256 >= ?")
            params.append(low)
        else:
            clauses.append("sha256 >= ? AND sha256 < ?")
            params.extend([low, high])
    return CompiledRule(
        rule=rule, where=" AND ".join(clauses), params=tuple(params)
    )


def compile_rules(
    rules: Sequence[TriageRule], fingerprint: str
) -> List[CompiledRule]:
    """Compile a whole parsed rules file, preserving file order (actions of
    an earlier rule may feed a later rule's ``tag`` matcher)."""
    return [compile_rule(rule, fingerprint) for rule in rules]


def check_index_backed(
    registry: ScanRegistry, compiled: Sequence[CompiledRule]
) -> List[str]:
    """Assert no compiled rule's plan full-scans the verdicts table.

    Returns the collected ``EXPLAIN QUERY PLAN`` detail lines (the triage
    CLI prints them under ``--explain``).  ``SCAN verdicts`` without an
    index is the smoking gun; ``SEARCH verdicts USING ... INDEX`` and the
    virtual-table scans of the ``json_each`` probes are fine.
    """
    details: List[str] = []
    for entry in compiled:
        plan = registry.explain_where(entry.where, entry.params)
        for line in plan:
            details.append(f"{entry.rule.name}: {line}")
            if line.startswith("SCAN verdicts") and "INDEX" not in line:
                raise CompileError(
                    f"rule {entry.rule.name!r} compiled to a full table "
                    f"scan ({line}); a required index is missing -- "
                    f"refusing to retro-triage without index backing"
                )
    return details


def verify_parity(
    compiled: CompiledRule, rows: Sequence[object]
) -> List[str]:
    """Cross-check compiled-SQL selection against the Python matcher.

    ``rows`` are the :class:`~repro.registry.store.VerdictRow` objects the
    compiled query selected; every one must satisfy
    :meth:`TriageRule.matches_row`.  Returns the sha256s of any
    disagreements (always empty unless the compiler has a bug -- the E14
    harness additionally checks the reverse direction, that Python-side
    matching selects nothing the SQL missed).
    """
    return [
        row.sha256
        for row in rows
        if not compiled.rule.matches_row(row)
    ]
