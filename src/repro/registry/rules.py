"""Declarative triage rules evaluated on every new verdict.

Continuous scanning produces verdicts nobody is sitting in front of, so the
watch daemon routes every *new* verdict through a small rules engine the
operator configures in TOML (the same user-facing shape as the metadata
rules of ``azuline/rose``: declarative matchers, explicit actions, loud
validation errors).  A rules file looks like::

    [[rules]]
    name = "hot-scams"

    [rules.match]
    verdict = "malicious"        # "malicious" or "benign"
    min_score = 0.9              # inclusive probability bounds
    platform = "evm"             # restrict to one frontend
    indicators = ["DELEGATECALL"]  # substrings that must appear in notes
    path_glob = "inbox/*"        # shell glob on the source path
    tag = "hot"                  # row already carries this triage tag
    model_identity = "sha256:.." # scored by this exact model fingerprint
    since = 1700000000           # scanned-at window (epoch / ISO / TOML
    until = "2026-01-01T00:00"   # datetime), inclusive on both ends
    sha256 = "ab12"              # content-hash hex prefix

    [rules.actions]
    tag = ["hot", "escalate"]    # merged into the registry row's tag set
    alert = true                 # append a JSONL line to the alert sink
    webhook = "http://hooks.internal/scam"   # POST the alert as JSON
    exit_nonzero = true          # make `scamdetect watch` exit 2

Every ``match`` condition must hold for a rule to fire (conditions are
AND-ed; omit a key to not constrain it) and every listed action runs.
Unknown keys are *errors*, not ignored -- a typo in a triage rule must not
silently disable paging.

:class:`RulesEngine` is deliberately I/O-light: tag application is returned
to the caller (the daemon owns the registry transaction), the JSONL sink is
an append, and webhook failures warn instead of raising -- a dead HTTP
endpoint must never stall the scan loop.  Webhook deliveries are retried
under a shared :class:`~repro.resilience.retry.RetryPolicy`; a delivery
that exhausts its retries is appended to the dead-letter JSONL sink (when
configured) so a flapping endpoint loses no alerts, only freshness.
"""

from __future__ import annotations

import datetime
import fnmatch
import json
import pathlib
import time
import urllib.error
import urllib.request
import warnings

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
    import tomli as tomllib  # type: ignore[no-redef]

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.report import VerdictReport
from repro.obs.trace import trace
from repro.resilience.faults import InjectedFault, fault_point
from repro.resilience.retry import RetryPolicy

PathLike = Union[str, pathlib.Path]

_MATCH_KEYS = frozenset(
    ("verdict", "min_score", "max_score", "platform", "indicators",
     "path_glob", "tag", "model_identity", "since", "until", "sha256")
)
_ACTION_KEYS = frozenset(("tag", "alert", "webhook", "exit_nonzero"))

#: How long a webhook POST may take before it is abandoned with a warning.
WEBHOOK_TIMEOUT_SECONDS = 5.0

#: Default delivery retry: three tries under a short budget, so a flapping
#: endpoint gets its alert while a dead one dead-letters quickly.
WEBHOOK_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.1,
                            max_delay_s=2.0, deadline_s=10.0)


class RuleParseError(ValueError):
    """A rules file that cannot be trusted: syntax or validation failure."""


@dataclass(frozen=True)
class TriageRule:
    """One parsed rule: a conjunction of matchers plus its actions."""

    name: str
    verdict: Optional[str] = None
    min_score: Optional[float] = None
    max_score: Optional[float] = None
    platform: Optional[str] = None
    indicators: tuple = ()
    path_glob: Optional[str] = None
    # registry-level matchers (v2): these constrain *stored* facts about a
    # verdict -- its tag set, the scoring model's weight fingerprint, the
    # scan-time window, and the content-hash prefix -- so rules can slice
    # history ("everything model X tagged hot last week"), not just the
    # report fields a fresh scan carries.  TOML keys `tag` / `sha256` map
    # to `has_tag` / `sha256_prefix` (the action field `tag` and the full
    # content hash already own the plain names).
    has_tag: Optional[str] = None
    model_identity: Optional[str] = None
    since: Optional[float] = None
    until: Optional[float] = None
    sha256_prefix: Optional[str] = None
    tag: tuple = ()
    alert: bool = False
    webhook: Optional[str] = None
    exit_nonzero: bool = False

    def matches(
        self,
        report: VerdictReport,
        source_path: Optional[str],
        sha256: Optional[str] = None,
        model_identity: Optional[str] = None,
        tags: Sequence[str] = (),
        scanned_at: Optional[float] = None,
    ) -> bool:
        """True when every configured condition holds for ``report``.

        The keyword context carries the registry-level facts the report
        itself does not: a rule constraining one of them can only match
        when the caller supplies it (a missing fact fails the condition --
        conservative, never a silent wildcard).
        """
        if self.verdict is not None and report.verdict != self.verdict:
            return False
        score = report.malicious_probability
        if self.min_score is not None and score < self.min_score:
            return False
        if self.max_score is not None and score > self.max_score:
            return False
        if self.platform is not None and report.platform != self.platform:
            return False
        for indicator in self.indicators:
            if not any(indicator in note for note in report.notes):
                return False
        if self.path_glob is not None:
            candidate = source_path or report.sample_id
            if not fnmatch.fnmatchcase(candidate, self.path_glob):
                return False
        if self.has_tag is not None and self.has_tag not in tags:
            return False
        if (
            self.model_identity is not None
            and model_identity != self.model_identity
        ):
            return False
        if self.since is not None and (
            scanned_at is None or scanned_at < self.since
        ):
            return False
        if self.until is not None and (
            scanned_at is None or scanned_at > self.until
        ):
            return False
        if self.sha256_prefix is not None and (
            sha256 is None or not sha256.startswith(self.sha256_prefix)
        ):
            return False
        return True

    def matches_row(self, row) -> bool:
        """:meth:`matches` over a stored registry row
        (:class:`~repro.registry.store.VerdictRow`) with its full context.

        This is the row-at-a-time oracle the compiled-SQL triage path is
        verified against (E14's byte-identical parity check).
        """
        return self.matches(
            row.to_report(),
            row.source_path,
            sha256=row.sha256,
            model_identity=row.model_identity,
            tags=row.tags,
            scanned_at=row.last_scanned_at,
        )

    def describe(self) -> str:
        conditions = []
        if self.verdict is not None:
            conditions.append(f"verdict={self.verdict}")
        if self.min_score is not None:
            conditions.append(f"score>={self.min_score}")
        if self.max_score is not None:
            conditions.append(f"score<={self.max_score}")
        if self.platform is not None:
            conditions.append(f"platform={self.platform}")
        if self.indicators:
            conditions.append(f"indicators={list(self.indicators)}")
        if self.path_glob is not None:
            conditions.append(f"path={self.path_glob}")
        if self.has_tag is not None:
            conditions.append(f"tag={self.has_tag}")
        if self.model_identity is not None:
            conditions.append(f"model_identity={self.model_identity}")
        if self.since is not None:
            conditions.append(f"since={self.since}")
        if self.until is not None:
            conditions.append(f"until={self.until}")
        if self.sha256_prefix is not None:
            conditions.append(f"sha256={self.sha256_prefix}*")
        actions = []
        if self.tag:
            actions.append(f"tag={list(self.tag)}")
        if self.alert:
            actions.append("alert")
        if self.webhook:
            actions.append(f"webhook={self.webhook}")
        if self.exit_nonzero:
            actions.append("exit_nonzero")
        return (
            f"{self.name}: {' and '.join(conditions) or 'match everything'}"
            f" -> {', '.join(actions)}"
        )


def _require(condition: bool, rule_name: str, message: str) -> None:
    if not condition:
        raise RuleParseError(f"rule {rule_name!r}: {message}")


def _parse_when(value, rule_name: str, key: str) -> float:
    """``since``/``until`` accept epoch seconds, a TOML datetime, or an
    ISO-8601 string -- the same forms `scamdetect query --since` takes."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    if isinstance(value, datetime.datetime):
        return value.timestamp()
    if isinstance(value, str):
        try:
            return datetime.datetime.fromisoformat(value).timestamp()
        except ValueError:
            pass
    raise RuleParseError(
        f"rule {rule_name!r}: {key} must be epoch seconds, a TOML "
        f"datetime, or an ISO-8601 string, not {value!r}"
    )


def parse_rules(text: str, origin: str = "<rules>") -> List[TriageRule]:
    """Parse and validate a TOML rules document.

    Raises:
        RuleParseError: On TOML syntax errors, unknown keys, out-of-range
            scores, impossible score windows, or a rule with no actions.
    """
    try:
        document = tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise RuleParseError(f"{origin}: invalid TOML: {error}") from error
    entries = document.pop("rules", None)
    if document:
        raise RuleParseError(
            f"{origin}: unknown top-level keys {sorted(document)}; rules "
            f"files hold only [[rules]] tables"
        )
    if not isinstance(entries, list) or not entries:
        raise RuleParseError(
            f"{origin}: no [[rules]] tables found; define at least one rule"
        )
    rules: List[TriageRule] = []
    seen_names = set()
    for index, entry in enumerate(entries):
        name = entry.pop("name", None)
        _require(
            isinstance(name, str) and bool(name),
            f"#{index}",
            "every rule needs a non-empty string 'name'",
        )
        _require(name not in seen_names, name, "duplicate rule name")
        seen_names.add(name)
        match = entry.pop("match", {})
        actions = entry.pop("actions", {})
        _require(
            not entry,
            name,
            f"unknown keys {sorted(entry)}; rules hold 'name', [rules."
            f"match] and [rules.actions]",
        )
        _require(isinstance(match, dict), name, "'match' must be a table")
        _require(
            isinstance(actions, dict), name, "'actions' must be a table"
        )
        unknown = set(match) - _MATCH_KEYS
        _require(
            not unknown,
            name,
            f"unknown match keys {sorted(unknown)} "
            f"(known: {sorted(_MATCH_KEYS)})",
        )
        unknown = set(actions) - _ACTION_KEYS
        _require(
            not unknown,
            name,
            f"unknown action keys {sorted(unknown)} "
            f"(known: {sorted(_ACTION_KEYS)})",
        )

        verdict = match.get("verdict")
        if verdict is not None:
            _require(
                verdict in ("malicious", "benign"),
                name,
                f"verdict must be 'malicious' or 'benign', not {verdict!r}",
            )
        bounds = {}
        for key in ("min_score", "max_score"):
            value = match.get(key)
            if value is not None:
                _require(
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and 0.0 <= value <= 1.0,
                    name,
                    f"{key} must be a probability in [0, 1]",
                )
                bounds[key] = float(value)
        if "min_score" in bounds and "max_score" in bounds:
            _require(
                bounds["min_score"] <= bounds["max_score"],
                name,
                "min_score must not exceed max_score",
            )
        platform = match.get("platform")
        if platform is not None:
            _require(
                platform in ("evm", "wasm"),
                name,
                f"platform must be 'evm' or 'wasm', not {platform!r}",
            )
        indicators = match.get("indicators", [])
        _require(
            isinstance(indicators, list)
            and all(isinstance(item, str) and item for item in indicators),
            name,
            "indicators must be a list of non-empty strings",
        )
        path_glob = match.get("path_glob")
        if path_glob is not None:
            _require(
                isinstance(path_glob, str) and bool(path_glob),
                name,
                "path_glob must be a non-empty string",
            )
        has_tag = match.get("tag")
        if has_tag is not None:
            _require(
                isinstance(has_tag, str) and bool(has_tag),
                name,
                "match.tag must be a non-empty string",
            )
        model_identity = match.get("model_identity")
        if model_identity is not None:
            _require(
                isinstance(model_identity, str) and bool(model_identity),
                name,
                "model_identity must be a non-empty string",
            )
        since = match.get("since")
        if since is not None:
            since = _parse_when(since, name, "since")
        until = match.get("until")
        if until is not None:
            until = _parse_when(until, name, "until")
        if since is not None and until is not None:
            _require(
                since <= until, name, "since must not be after until"
            )
        sha256_prefix = match.get("sha256")
        if sha256_prefix is not None:
            _require(
                isinstance(sha256_prefix, str)
                and 0 < len(sha256_prefix) <= 64
                and all(
                    char in "0123456789abcdefABCDEF"
                    for char in sha256_prefix
                ),
                name,
                "match.sha256 must be a hex prefix (1-64 chars)",
            )
            sha256_prefix = sha256_prefix.lower()

        tags = actions.get("tag", [])
        _require(
            isinstance(tags, list)
            and all(isinstance(item, str) and item for item in tags),
            name,
            "actions.tag must be a list of non-empty strings",
        )
        alert = actions.get("alert", False)
        _require(
            isinstance(alert, bool), name, "actions.alert must be a boolean"
        )
        webhook = actions.get("webhook")
        if webhook is not None:
            _require(
                isinstance(webhook, str)
                and webhook.startswith(("http://", "https://")),
                name,
                "actions.webhook must be an http(s) URL",
            )
        exit_nonzero = actions.get("exit_nonzero", False)
        _require(
            isinstance(exit_nonzero, bool),
            name,
            "actions.exit_nonzero must be a boolean",
        )
        _require(
            bool(tags) or alert or webhook is not None or exit_nonzero,
            name,
            "rule has no actions; add tag/alert/webhook/exit_nonzero",
        )
        rules.append(
            TriageRule(
                name=name,
                verdict=verdict,
                min_score=bounds.get("min_score"),
                max_score=bounds.get("max_score"),
                platform=platform,
                indicators=tuple(indicators),
                path_glob=path_glob,
                has_tag=has_tag,
                model_identity=model_identity,
                since=since,
                until=until,
                sha256_prefix=sha256_prefix,
                tag=tuple(tags),
                alert=alert,
                webhook=webhook,
                exit_nonzero=exit_nonzero,
            )
        )
    return rules


def load_rules(path: PathLike) -> List[TriageRule]:
    """Load and validate a TOML rules file from disk."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise RuleParseError(
            f"cannot read rules file {path}: {error}"
        ) from error
    return parse_rules(text, origin=str(path))


@dataclass
class TriageOutcome:
    """What the rules engine decided for one verdict."""

    matched: List[str] = field(default_factory=list)
    tags: List[str] = field(default_factory=list)
    alerts: int = 0
    exit_nonzero: bool = False


class RulesEngine:
    """Evaluates a parsed rule set against verdicts and runs the actions.

    Args:
        rules: Parsed rules (see :func:`load_rules`).
        alert_path: JSONL sink for the ``alert`` action (one JSON object
            per line, append-only); None drops alerts with a warning the
            first time a rule wants one.
        opener: Replacement for :func:`urllib.request.urlopen` (tests
            inject a recorder; production uses the default).
        dead_letter_path: JSONL sink for webhook deliveries that exhausted
            their retries (one object per line: url, payload, last error,
            attempts); None keeps the historical drop-with-warning behavior.
        retry: Delivery retry policy (default :data:`WEBHOOK_RETRY`).

    The engine is stateless apart from counters, so one instance can serve
    every poll cycle of a daemon.
    """

    def __init__(
        self,
        rules: Sequence[TriageRule],
        alert_path: Optional[PathLike] = None,
        opener=urllib.request.urlopen,
        dead_letter_path: Optional[PathLike] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.rules = list(rules)
        self.alert_path = (
            pathlib.Path(alert_path) if alert_path is not None else None
        )
        self.dead_letter_path = (
            pathlib.Path(dead_letter_path)
            if dead_letter_path is not None
            else None
        )
        self.retry = retry if retry is not None else WEBHOOK_RETRY
        self._opener = opener
        self._warned_no_sink = False
        self.alerts_emitted = 0
        self.webhook_failures = 0
        self.webhook_retries = 0
        self.dead_lettered = 0

    def evaluate(
        self,
        report: VerdictReport,
        sha256: str,
        source_path: Optional[str] = None,
        fired_at: Optional[float] = None,
        model_identity: Optional[str] = None,
        tags: Sequence[str] = (),
        scanned_at: Optional[float] = None,
    ) -> TriageOutcome:
        """Run every matching rule's actions for one new verdict.

        Returns the outcome; the caller applies ``outcome.tags`` to the
        registry (the engine does not hold a registry handle, so rules stay
        usable on ad-hoc reports too).  ``model_identity`` / ``tags`` /
        ``scanned_at`` feed the registry-level matchers; callers that do
        not supply them simply never match rules constraining them.
        """
        outcome = TriageOutcome()
        fired_tags: List[str] = []
        # obs site rules.action: spans matching plus every fired action
        # (alert appends, webhook retries), so a slow endpoint is visible
        # as rules latency in traces rather than unexplained drain time
        with trace("rules.action", rules=len(self.rules)) as span:
            for rule in self.rules:
                if not rule.matches(
                    report,
                    source_path,
                    sha256=sha256,
                    model_identity=model_identity,
                    tags=tags,
                    scanned_at=scanned_at,
                ):
                    continue
                outcome.matched.append(rule.name)
                fired_tags.extend(rule.tag)
                if rule.alert or rule.webhook:
                    payload = self._alert_payload(
                        rule, report, sha256, source_path, fired_at
                    )
                    if rule.alert:
                        self._emit_alert(payload)
                        outcome.alerts += 1
                    if rule.webhook:
                        self._post_webhook(rule.webhook, payload)
                if rule.exit_nonzero:
                    outcome.exit_nonzero = True
            span.set(matched=len(outcome.matched), alerts=outcome.alerts)
        outcome.tags = sorted(set(fired_tags))
        return outcome

    # ------------------------------------------------------------------ #

    @staticmethod
    def _alert_payload(
        rule: TriageRule,
        report: VerdictReport,
        sha256: str,
        source_path: Optional[str],
        fired_at: Optional[float],
    ) -> Dict[str, object]:
        return {
            "rule": rule.name,
            "sha256": sha256,
            "source_path": source_path,
            "sample_id": report.sample_id,
            "platform": report.platform,
            "verdict": report.verdict,
            "malicious_probability": report.malicious_probability,
            "notes": list(report.notes),
            "fired_at": time.time() if fired_at is None else fired_at,
        }

    def _emit_alert(self, payload: Dict[str, object]) -> None:
        if self.alert_path is None:
            if not self._warned_no_sink:
                self._warned_no_sink = True
                warnings.warn(
                    "triage rule requested an alert but no alert sink is "
                    "configured (pass alert_path= / --alert-file); alerts "
                    "are being dropped",
                    stacklevel=3,
                )
            return
        line = json.dumps(payload, sort_keys=True)
        self.alert_path.parent.mkdir(parents=True, exist_ok=True)
        with self.alert_path.open("a") as handle:
            handle.write(line + "\n")
        self.alerts_emitted += 1

    def _post_webhook(self, url: str, payload: Dict[str, object]) -> None:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload, sort_keys=True).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )

        def deliver() -> None:
            fault_point("rules.webhook")
            with self._opener(
                request, timeout=WEBHOOK_TIMEOUT_SECONDS
            ) as response:
                response.read()

        def count_retry(attempt, error, delay) -> None:
            self.webhook_retries += 1

        try:
            self.retry.call(
                deliver,
                retry_on=(
                    urllib.error.URLError,
                    OSError,
                    ValueError,
                    InjectedFault,
                ),
                on_retry=count_retry,
            )
        except (
            urllib.error.URLError,
            OSError,
            ValueError,
            InjectedFault,
        ) as error:
            # a dead endpoint must never stall or kill the scan loop: after
            # the retries are spent the alert goes to the dead-letter sink
            self.webhook_failures += 1
            self._dead_letter(url, payload, error)
            warnings.warn(
                f"triage webhook POST to {url} failed ({error}); "
                f"continuing",
                stacklevel=3,
            )

    def _dead_letter(
        self, url: str, payload: Dict[str, object], error: BaseException
    ) -> None:
        """Append an exhausted delivery to the dead-letter JSONL sink."""
        if self.dead_letter_path is None:
            return
        line = json.dumps(
            {
                "url": url,
                "payload": payload,
                "error": str(error),
                "attempts": self.retry.max_attempts,
                "failed_at": time.time(),
            },
            sort_keys=True,
        )
        self.dead_letter_path.parent.mkdir(parents=True, exist_ok=True)
        with self.dead_letter_path.open("a") as handle:
            handle.write(line + "\n")
        self.dead_lettered += 1
