"""Continuous corpus watching: poll, dedupe, scan, record, triage.

:class:`WatchDaemon` is the always-on ingestion path over the batch scan
stack.  Each poll cycle walks a directory and pushes every contract through
three increasingly cheap short-circuits:

1. **stat short-circuit** -- a path whose ``(size, mtime_ns)`` matches the
   registry's ``watched_files`` index is *unchanged*: no read, no hash,
   no scan.  A warm poll over an unchanged corpus is pure ``os.stat``.
2. **registry short-circuit** -- a new or changed file is read and hashed;
   if ``(sha256, graph fingerprint)`` is already in the
   :class:`~repro.registry.store.ScanRegistry` (factory clone, re-drop,
   daemon restart) the stored verdict is served with **zero lowering and
   zero model inference**.
3. only genuinely unseen bytecode reaches the
   :class:`~repro.service.batch.BatchScanner` (graph cache + batched
   inference + optional shard pool), and its verdicts are recorded back.

Deleted paths are flagged in the file index (their verdicts stay -- the
same bytecode may reappear elsewhere).  Every verdict that is *new for its
path this cycle* runs through the optional
:class:`~repro.registry.rules.RulesEngine`, so tagging/alerting/paging
happens at ingest time, not at query time.

The daemon is deliberately poll-based (like ``rose``'s watchdog fallback
path and the non-intrusive observer of ros2probe): no inotify dependency,
works on network mounts, and one poll cycle is the natural unit both the
tests and ``scamdetect watch --max-polls`` reason about.
"""

from __future__ import annotations

import pathlib
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.core.detector import ScamDetector
from repro.core.report import VerdictReport
from repro.registry.rules import RulesEngine
from repro.resilience.faults import InjectedFault, fault_point
from repro.registry.store import ScanRegistry, content_sha256
from repro.service.batch import (
    BatchScanner,
    iter_contract_files,
    read_contract_file,
)

PathLike = Union[str, pathlib.Path]

#: Bounded re-read attempts when a file keeps changing under the reader.
STABLE_READ_ATTEMPTS = 3


def stable_read(
    path: pathlib.Path, size: int, mtime_ns: int
) -> Tuple[bytes, int, int]:
    """Read ``path`` with a ``(size, mtime_ns)`` consistent with the bytes.

    The poll walk stats at discovery and reads later; a rewrite in between
    (stat->read TOCTOU) would otherwise record the *new* content under the
    *old* stat -- or worse, mask a mid-cycle rewrite as unchanged next
    cycle.  Re-stat after every successful read: if the stat moved, the
    read raced a writer, so read again under the fresh stat (bounded
    attempts).  If the file never settles, return the *pre-read* stat of
    the final read -- the bytes are at least as new as that stat, so the
    next cycle's stat comparison can only re-scan, never mask.

    Raises whatever :func:`read_contract_file` / ``stat`` raise.
    """
    for _ in range(STABLE_READ_ATTEMPTS):
        raw = read_contract_file(path)
        post = path.stat()
        if (post.st_size, post.st_mtime_ns) == (size, mtime_ns):
            return raw, size, mtime_ns
        # the stat moved across the read: (size, mtime_ns) becomes the
        # pre-read stat of the next attempt
        size, mtime_ns = post.st_size, post.st_mtime_ns
    raw = read_contract_file(path)
    return raw, size, mtime_ns


@dataclass
class PollStats:
    """Telemetry of one poll cycle.

    ``registry_hits + scanned`` is the number of new-or-changed files this
    cycle; ``inference_calls`` counts batched GNN model invocations (the
    E11 acceptance metric: a warm cycle must report 0).
    """

    files_seen: int = 0
    unchanged: int = 0
    new: int = 0
    changed: int = 0
    deleted: int = 0
    skipped: int = 0
    registry_hits: int = 0
    scanned: int = 0
    malicious: int = 0
    inference_calls: int = 0
    alerts: int = 0
    rules_matched: int = 0
    exit_nonzero: bool = False
    #: cumulative count of cycles aborted by an injected transient fault
    #: (snapshot of the daemon's counter, so per-cycle output surfaces it)
    faulted_polls: int = 0
    elapsed_seconds: float = 0.0
    reports: List[VerdictReport] = field(default_factory=list)
    #: tier-0 cascade counters of this cycle's scan (None: cascade off)
    cascade: Optional[dict] = None

    def format(self) -> str:
        parts = [
            f"{self.files_seen} files",
            f"{self.new} new",
            f"{self.changed} changed",
            f"{self.deleted} deleted",
            f"{self.unchanged} unchanged",
        ]
        if self.skipped:
            parts.append(f"{self.skipped} skipped")
        summary = (
            f"{self.scanned} scanned ({self.malicious} malicious), "
            f"{self.registry_hits} registry hits, "
            f"{self.inference_calls} inference calls"
        )
        if self.rules_matched:
            summary += (
                f", {self.rules_matched} rule matches"
                f" ({self.alerts} alerts)"
            )
        if self.cascade is not None:
            summary += (
                f", cascade {self.cascade['short_circuits']} short-circuited"
                f"/{self.cascade['escalations']} escalated"
            )
        if self.faulted_polls:
            summary += f", {self.faulted_polls} faulted polls"
        if self.exit_nonzero:
            summary += ", exit rule fired (will exit 2)"
        return f"{', '.join(parts)} -- {summary}"

    def to_dict(self) -> dict:
        """JSON-safe counters of this cycle (``watch --json`` output)."""
        return {
            "files_seen": self.files_seen,
            "unchanged": self.unchanged,
            "new": self.new,
            "changed": self.changed,
            "deleted": self.deleted,
            "skipped": self.skipped,
            "registry_hits": self.registry_hits,
            "scanned": self.scanned,
            "malicious": self.malicious,
            "inference_calls": self.inference_calls,
            "alerts": self.alerts,
            "rules_matched": self.rules_matched,
            "exit_nonzero": self.exit_nonzero,
            "faulted_polls": self.faulted_polls,
            "elapsed_seconds": self.elapsed_seconds,
            "cascade": self.cascade,
        }


class WatchDaemon:
    """Polls a directory and keeps the verdict registry in sync with it.

    Args:
        detector: A trained detector.
        registry: The persistent verdict store.  Its fingerprint scope must
            match the detector's config (checked at construction: serving
            verdicts lowered under another config would be silent garbage).
        directory: Corpus directory to watch.
        pattern: Glob filter for contract files (same semantics as
            ``BatchScanner.scan_directory``).
        recursive: Recurse into subdirectories (default) or watch only the
            top level.
        rules: Optional triage rules engine evaluated on every verdict that
            is new for its path this cycle.
        interval: Seconds between poll cycles in :meth:`run`.
        cache: Optional :class:`~repro.service.cache.GraphCache` for the
            scanner (useful when the same host also serves scan traffic).
        max_workers: Lowering threads per scan (see ``BatchScanner``).
        shards: Scan worker processes; ``>= 2`` shards each cycle's unseen
            contracts across a multi-process pool.
    """

    def __init__(
        self,
        detector: ScamDetector,
        registry: ScanRegistry,
        directory: PathLike,
        pattern: str = "*",
        recursive: bool = True,
        rules: Optional[RulesEngine] = None,
        interval: float = 2.0,
        cache=None,
        max_workers: Optional[int] = None,
        shards: int = 1,
    ) -> None:
        if not detector.is_trained:
            raise RuntimeError("WatchDaemon requires a trained detector")
        if interval <= 0:
            raise ValueError("interval must be > 0 seconds")
        fingerprint = detector.config.graph_fingerprint()
        if registry.fingerprint and registry.fingerprint != fingerprint:
            raise ValueError(
                f"registry fingerprint {registry.fingerprint!r} does not "
                f"match the detector config's {fingerprint!r}; open the "
                f"registry with ScanRegistry.for_config(path, "
                f"detector.config)"
            )
        registry.fingerprint = fingerprint
        self.detector = detector
        self.registry = registry
        self.directory = pathlib.Path(directory)
        if not self.directory.is_dir():
            raise FileNotFoundError(
                f"watch directory not found: {self.directory}"
            )
        self.pattern = pattern
        self.recursive = recursive
        self.rules = rules
        self.interval = interval
        self.scanner = BatchScanner(
            detector,
            cache=cache,
            max_workers=max_workers,
            shards=shards,
            registry=registry,
        )
        self.polls = 0
        #: cycles aborted by an injected transient fault (chaos telemetry)
        self.faulted_polls = 0
        self.exit_nonzero = False
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release the scanner's shard pool (if any)."""
        self.scanner.close()

    def __enter__(self) -> "WatchDaemon":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def stop(self) -> None:
        """Ask :meth:`run` to exit after the cycle in flight completes."""
        self._stop.set()

    # ------------------------------------------------------------------ #

    def poll_once(self) -> PollStats:
        """One full cycle: discover, dedupe, scan, record, triage."""
        # chaos site: delay = slow poll (drain tests SIGTERM mid-cycle);
        # exception-kind faults abort only this cycle (see run())
        fault_point("watch.poll")
        started = time.perf_counter()
        stats = PollStats()
        index = self.registry.watched_files()
        present: List[str] = []
        skipped: set = set()
        to_hash: List[Tuple[str, pathlib.Path, int, int]] = []

        for path in iter_contract_files(
            self.directory, self.pattern, recursive=self.recursive
        ):
            rel = str(path.relative_to(self.directory))
            try:
                # chaos site: an oserror-kind fault here simulates a path
                # that transiently cannot be stat'ed (NFS hiccup, racing
                # chmod) -- such a path must never reach the deletion sweep
                fault_point("watch.stat", path=path)
                stat = path.stat()
            except OSError as error:
                stats.skipped += 1
                skipped.add(rel)
                warnings.warn(
                    f"watch: cannot stat {path} ({error}); skipping",
                    stacklevel=2,
                )
                continue
            stats.files_seen += 1
            present.append(rel)
            known = index.get(rel)
            if (
                known is not None
                and known.size == stat.st_size
                and known.mtime_ns == stat.st_mtime_ns
            ):
                stats.unchanged += 1
                continue
            if known is None:
                stats.new += 1
            else:
                stats.changed += 1
            to_hash.append((rel, path, stat.st_size, stat.st_mtime_ns))

        # a path that exists but could not be stat'ed this cycle is *live*:
        # excluding it from `present` alone would hand it to the deletion
        # sweep, so skipped paths are carved out explicitly
        present_set = set(present)
        deleted = [
            rel for rel in index
            if rel not in present_set and rel not in skipped
        ]
        if deleted:
            stats.deleted = len(deleted)
            self.registry.mark_deleted(deleted)

        # read + hash only the new/changed files; a registry hit here costs
        # one point lookup inside the scanner, never lowering or inference
        raw_codes: List[bytes] = []
        ids: List[str] = []
        sightings: List[Tuple[str, str, int, int]] = []
        for rel, path, size, mtime_ns in to_hash:
            try:
                raw, size, mtime_ns = stable_read(path, size, mtime_ns)
            except (OSError, ValueError) as error:
                stats.skipped += 1
                warnings.warn(
                    f"watch: skipping {path}: {error}", stacklevel=2
                )
                continue
            raw_codes.append(raw)
            ids.append(rel)
            sightings.append((rel, content_sha256(raw), size, mtime_ns))

        if raw_codes:
            result = self.scanner.scan_codes(raw_codes, sample_ids=ids)
            stats.reports = list(result.reports)
            stats.registry_hits = result.registry_hits
            stats.scanned = result.num_scanned - result.registry_hits
            stats.malicious = result.num_malicious
            stats.inference_calls = sum(result.batch_sizes.values())
            stats.cascade = result.cascade_stats
            self._triage(stats, raw_codes)
        # the file index is updated only after scanning succeeded, so a
        # crashed cycle re-discovers the same files next time
        if sightings:
            self.registry.upsert_watched_files(sightings)
        self.polls += 1
        stats.faulted_polls = self.faulted_polls
        stats.elapsed_seconds = time.perf_counter() - started
        return stats

    def run(
        self,
        max_polls: Optional[int] = None,
        on_poll=None,
    ) -> int:
        """Poll until :meth:`stop` (or ``max_polls`` cycles).

        Args:
            max_polls: Stop after this many cycles (None: run until
                :meth:`stop` is called, e.g. from a signal handler).
            on_poll: Optional callback ``(cycle_number, PollStats)`` invoked
                after every cycle (the CLI prints progress through this).

        Returns the number of cycles completed.  The wait between cycles
        wakes early when :meth:`stop` is called, so shutdown latency is
        bounded by the cycle in flight, not by ``interval``.
        """
        completed = 0
        while not self._stop.is_set():
            try:
                stats = self.poll_once()
            except InjectedFault as error:
                # a transiently-faulted cycle is skipped, not fatal: the
                # next poll re-discovers everything this one missed (the
                # registry dedupe makes re-polling idempotent)
                self.faulted_polls += 1
                warnings.warn(
                    f"watch poll cycle failed with a transient fault "
                    f"({error}); retrying next cycle",
                    stacklevel=2,
                )
                self._stop.wait(self.interval)
                continue
            completed += 1
            if on_poll is not None:
                on_poll(completed, stats)
            if max_polls is not None and completed >= max_polls:
                break
            self._stop.wait(self.interval)
        return completed

    # ------------------------------------------------------------------ #

    def _triage(self, stats: PollStats, raw_codes: List[bytes]) -> None:
        if self.rules is None:
            return
        # registry-level matcher context for the live path: fresh verdicts
        # carry no tags yet, were scanned "now", and were scored by this
        # daemon's model identity
        identity = self.detector.model_identity()
        now = time.time()
        for raw, report in zip(raw_codes, stats.reports):
            sha256 = content_sha256(raw)
            outcome = self.rules.evaluate(
                report,
                sha256,
                source_path=report.sample_id,
                model_identity=identity,
                scanned_at=now,
            )
            if not outcome.matched:
                continue
            stats.rules_matched += len(outcome.matched)
            stats.alerts += outcome.alerts
            if outcome.tags:
                self.registry.add_tags(sha256, outcome.tags)
            if outcome.exit_nonzero:
                stats.exit_nonzero = True
                self.exit_nonzero = True
