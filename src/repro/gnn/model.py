"""Graph-classification model assembled from convolution layers + readout + head."""

from __future__ import annotations


import numpy as np

from repro.autograd.functional import dropout, relu
from repro.autograd.module import Linear, Module
from repro.autograd.tensor import Tensor
from repro.gnn.data import ContractGraph, GraphBatch
from repro.gnn.layers import make_conv
from repro.gnn.pooling import READOUTS, readout, readout_batch

#: The architectures evaluated in E3/E4 (the paper's Phase-1 candidate list).
GNN_ARCHITECTURES = ("gcn", "gat", "gin", "tag", "graphsage")


def _softmax_rows(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift stabilization (plain NumPy)."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=1, keepdims=True)


class GraphClassifier(Module):
    """A stack of graph convolutions, a readout and an MLP classification head.

    Args:
        architecture: One of :data:`GNN_ARCHITECTURES`.
        in_features: Node feature dimensionality.
        hidden_features: Width of every convolution layer.
        num_layers: Number of convolution layers (ablated in E7).
        num_classes: Output classes (2 for benign/malicious).
        readout_kind: ``"mean"``, ``"sum"`` or ``"max"`` (ablated in E7).
        dropout_rate: Dropout applied to the graph embedding during training.
        seed: Parameter-initialization seed.
    """

    def __init__(self, architecture: str = "gcn", in_features: int = 24,
                 hidden_features: int = 32, num_layers: int = 2,
                 num_classes: int = 2, readout_kind: str = "mean",
                 dropout_rate: float = 0.1, seed: int = 0) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if readout_kind not in READOUTS:
            raise ValueError(f"unknown readout {readout_kind!r}")
        self.architecture = architecture.lower()
        self.readout_kind = readout_kind
        self.dropout_rate = dropout_rate
        self._rng = np.random.default_rng(seed)

        self.convs = []
        width_in = in_features
        for _ in range(num_layers):
            self.convs.append(make_conv(self.architecture, width_in, hidden_features,
                                        rng=self._rng))
            width_in = hidden_features
        self.head_hidden = Linear(hidden_features, hidden_features, rng=self._rng)
        self.head_output = Linear(hidden_features, num_classes, rng=self._rng)

    # ------------------------------------------------------------------ #

    def embed(self, graph: ContractGraph) -> Tensor:
        """Graph embedding of shape (1, hidden_features)."""
        x = Tensor(graph.node_features)
        for conv in self.convs:
            x = relu(conv(x, graph))
        return readout(x, self.readout_kind)

    def forward(self, graph: ContractGraph) -> Tensor:
        """Class logits of shape (1, num_classes)."""
        embedding = self.embed(graph)
        embedding = dropout(embedding, self.dropout_rate, self._rng,
                            training=self.training)
        hidden = relu(self.head_hidden(embedding))
        return self.head_output(hidden)

    def predict_proba_graph(self, graph: ContractGraph) -> np.ndarray:
        """Class probabilities of a single graph (inference helper)."""
        logits = self.forward(graph).numpy()
        return _softmax_rows(logits)[0]

    # ------------------------------------------------------------------ #
    # batched paths (one pass per mini-batch instead of per graph)

    def embed_batch(self, batch: GraphBatch) -> Tensor:
        """Graph embeddings of shape (num_graphs, hidden_features)."""
        x = Tensor(batch.node_features)
        for conv in self.convs:
            x = relu(conv.forward_batch(x, batch))
        return readout_batch(x, batch.segment_ids, batch.num_graphs,
                             self.readout_kind)

    def forward_batch(self, batch: GraphBatch) -> Tensor:
        """Class logits of shape (num_graphs, num_classes).

        Row ``i`` equals :meth:`forward` on ``batch.graphs[i]`` up to
        floating-point reduction-order noise.  Dropout draws one (B, hidden)
        mask, which consumes the model RNG stream exactly as B per-graph
        (1, hidden) draws would -- so batched and per-graph training see the
        same dropout noise.
        """
        embeddings = self.embed_batch(batch)
        embeddings = dropout(embeddings, self.dropout_rate, self._rng,
                             training=self.training)
        hidden = relu(self.head_hidden(embeddings))
        return self.head_output(hidden)

    def predict_proba_batch(self, batch: GraphBatch) -> np.ndarray:
        """Class-probability matrix (num_graphs, num_classes) of a batch."""
        return _softmax_rows(self.forward_batch(batch).numpy())

    def describe(self) -> str:
        """One-line architecture summary used in experiment tables."""
        return (f"{self.architecture}(layers={len(self.convs)}, "
                f"hidden={self.head_hidden.in_features}, "
                f"readout={self.readout_kind}, params={self.num_parameters()})")
