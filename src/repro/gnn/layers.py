"""Graph convolution layers: GCN, GAT, GIN, TAG and GraphSAGE.

Each layer has two forward paths over the node feature :class:`Tensor`:

* ``forward(x, graph)`` -- the dense per-graph path over one
  :class:`~repro.gnn.data.ContractGraph` (tens to a few hundred basic
  blocks, where dense matmuls are simple and fast).  This is the parity
  oracle for the batched engine.
* ``forward_batch(x, batch)`` -- the vectorized path over a whole
  :class:`~repro.gnn.data.GraphBatch`: propagation runs through the batch's
  block-diagonal CSR operators and GAT's neighbourhood softmax through the
  sorted-segment primitives, so one call covers every graph of the batch.

Derived per-graph constants (GraphSAGE's mean aggregator, GAT's additive
attention mask, CSR forms) are cached on the graph/batch objects -- see
:mod:`repro.gnn.data` -- instead of being rebuilt on every call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.functional import leaky_relu, relu, softmax
from repro.autograd.module import Linear, Module, Parameter, glorot
from repro.autograd.segment_ops import gather_rows, segment_softmax, segment_sum
from repro.autograd.sparse import sparse_matmul
from repro.autograd.tensor import Tensor
from repro.gnn.data import ContractGraph, GraphBatch


class GraphConvLayer(Module):
    """Base class: subclasses implement both forward paths."""

    def forward(self, x: Tensor, graph: ContractGraph) -> Tensor:  # pragma: no cover
        raise NotImplementedError

    def forward_batch(self, x: Tensor, batch: GraphBatch) -> Tensor:  # pragma: no cover
        raise NotImplementedError


class GCNConv(GraphConvLayer):
    """Graph convolutional network layer (Kipf & Welling, 2017).

    ``H' = D^-1/2 (A + I) D^-1/2 H W + b``
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, rng=rng)

    def forward(self, x: Tensor, graph: ContractGraph) -> Tensor:
        propagated = Tensor(graph.normalized_adjacency) @ x
        return self.linear(propagated)

    def forward_batch(self, x: Tensor, batch: GraphBatch) -> Tensor:
        propagated = sparse_matmul(batch.normalized_adjacency_op, x)
        return self.linear(propagated)


class GATConv(GraphConvLayer):
    """Graph attention layer (Velickovic et al., 2018), single head.

    Attention logits ``e_ij = LeakyReLU(a_src . Wh_i + a_dst . Wh_j)`` are
    masked to existing edges (plus self loops) and normalized with a softmax
    over each node's neighbourhood.  The batched path never materializes the
    dense logit matrix: logits live on the block-diagonal edge list and the
    neighbourhood softmax is a per-row segment softmax, which masks
    attention per block by construction.
    """

    def __init__(self, in_features: int, out_features: int,
                 negative_slope: float = 0.2,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.linear = Linear(in_features, out_features, bias=False, rng=rng)
        self.attention_src = Parameter(glorot((out_features, 1), rng), name="att_src")
        self.attention_dst = Parameter(glorot((out_features, 1), rng), name="att_dst")
        self.bias = Parameter(np.zeros(out_features), name="bias")
        self.negative_slope = negative_slope

    def forward(self, x: Tensor, graph: ContractGraph) -> Tensor:
        transformed = self.linear(x)                          # (N, F')
        source_scores = transformed @ self.attention_src      # (N, 1)
        destination_scores = transformed @ self.attention_dst  # (N, 1)
        logits = leaky_relu(source_scores + destination_scores.T, self.negative_slope)
        # forbid attention to non-neighbours by pushing their logits to -inf
        masked_logits = logits + Tensor(graph.attention_mask)
        attention = softmax(masked_logits, axis=1)
        output = attention @ transformed
        return output + self.bias

    def forward_batch(self, x: Tensor, batch: GraphBatch) -> Tensor:
        transformed = self.linear(x)                           # (N_total, F')
        source_scores = transformed @ self.attention_src       # (N_total, 1)
        destination_scores = transformed @ self.attention_dst  # (N_total, 1)
        rows, cols = batch.attention_edges
        edge_logits = leaky_relu(
            gather_rows(source_scores, rows) + gather_rows(destination_scores, cols),
            self.negative_slope)                               # (E, 1)
        attention = segment_softmax(edge_logits, rows, batch.num_nodes)
        messages = attention * gather_rows(transformed, cols)
        output = segment_sum(messages, rows, batch.num_nodes)
        return output + self.bias


class GINConv(GraphConvLayer):
    """Graph isomorphism network layer (Xu et al., 2019).

    ``H' = MLP((1 + eps) H + A H)`` with a learnable ``eps`` and a two-layer
    ReLU MLP.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.epsilon = Parameter(np.zeros(1), name="epsilon")
        self.mlp_hidden = Linear(in_features, out_features, rng=rng)
        self.mlp_output = Linear(out_features, out_features, rng=rng)

    def forward(self, x: Tensor, graph: ContractGraph) -> Tensor:
        neighbour_sum = Tensor(graph.adjacency) @ x
        return self._combine(x, neighbour_sum)

    def forward_batch(self, x: Tensor, batch: GraphBatch) -> Tensor:
        neighbour_sum = sparse_matmul(batch.adjacency_op, x)
        return self._combine(x, neighbour_sum)

    def _combine(self, x: Tensor, neighbour_sum: Tensor) -> Tensor:
        combined = x * (self.epsilon + 1.0) + neighbour_sum
        return self.mlp_output(relu(self.mlp_hidden(combined)))


class TAGConv(GraphConvLayer):
    """Topology-adaptive graph convolution (Du et al., 2017).

    ``H' = sum_{k=0..K} A_norm^k H W_k`` implemented as a single linear map
    over the concatenation of the K+1 propagated feature blocks.
    """

    def __init__(self, in_features: int, out_features: int, hops: int = 2,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if hops < 1:
            raise ValueError("hops must be >= 1")
        self.hops = hops
        self.linear = Linear(in_features * (hops + 1), out_features, rng=rng)

    def forward(self, x: Tensor, graph: ContractGraph) -> Tensor:
        adjacency = Tensor(graph.normalized_adjacency)
        propagated = [x]
        current = x
        for _ in range(self.hops):
            current = adjacency @ current
            propagated.append(current)
        stacked = Tensor.concatenate(propagated, axis=1)
        return self.linear(stacked)

    def forward_batch(self, x: Tensor, batch: GraphBatch) -> Tensor:
        operator = batch.normalized_adjacency_op
        propagated = [x]
        current = x
        for _ in range(self.hops):
            current = sparse_matmul(operator, current)
            propagated.append(current)
        stacked = Tensor.concatenate(propagated, axis=1)
        return self.linear(stacked)


class SAGEConv(GraphConvLayer):
    """GraphSAGE layer with mean aggregation (Hamilton et al., 2017).

    ``H' = H W_self + mean_neighbours(H) W_neigh + b``
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.linear_self = Linear(in_features, out_features, rng=rng)
        self.linear_neighbour = Linear(in_features, out_features, bias=False, rng=rng)

    def forward(self, x: Tensor, graph: ContractGraph) -> Tensor:
        neighbour_mean = Tensor(graph.mean_aggregator) @ x
        return self.linear_self(x) + self.linear_neighbour(neighbour_mean)

    def forward_batch(self, x: Tensor, batch: GraphBatch) -> Tensor:
        neighbour_mean = sparse_matmul(batch.mean_aggregator_op, x)
        return self.linear_self(x) + self.linear_neighbour(neighbour_mean)


#: Registry of the five architectures named in the ScamDetect roadmap.
CONV_REGISTRY = {
    "gcn": GCNConv,
    "gat": GATConv,
    "gin": GINConv,
    "tag": TAGConv,
    "graphsage": SAGEConv,
}


def make_conv(architecture: str, in_features: int, out_features: int,
              rng: Optional[np.random.Generator] = None) -> GraphConvLayer:
    """Instantiate a convolution layer by architecture name."""
    key = architecture.lower()
    if key not in CONV_REGISTRY:
        raise ValueError(f"unknown GNN architecture {architecture!r}; "
                         f"choose from {sorted(CONV_REGISTRY)}")
    return CONV_REGISTRY[key](in_features, out_features, rng=rng)
