"""Training loop for graph classifiers.

The trainer runs on the vectorized batched-graph engine by default: every
mini-batch is packed into a :class:`~repro.gnn.data.GraphBatch` and trained
with ONE forward/backward pass (block-diagonal sparse propagation + segment
readout), instead of one Python-level pass per graph.  The historical
per-graph loop is kept behind ``vectorized=False`` as the parity oracle the
batched engine is tested and benchmarked against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.autograd.functional import cross_entropy
from repro.autograd.optim import Adam
from repro.autograd.tensor import Tensor, no_grad
from repro.gnn.data import ContractGraph, GraphBatch
from repro.gnn.model import GraphClassifier


@dataclass
class TrainingHistory:
    """Per-epoch loss / accuracy curves recorded by the trainer."""

    losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)
    validation_accuracies: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class GNNTrainer:
    """Mini-batch Adam trainer over lists of :class:`ContractGraph`.

    Args:
        model: The :class:`GraphClassifier` to train.
        learning_rate: Adam step size.
        epochs: Training epochs.
        batch_size: Graphs per gradient step.
        weight_decay: L2 penalty applied through the optimizer.
        seed: Shuffling seed.
        patience: Early-stopping patience on the validation accuracy
            (ignored when no validation set is provided).
        vectorized: Use the batched-graph engine (default).  ``False``
            selects the per-graph oracle loop: same shuffling, same loss,
            same optimizer schedule and the same dropout RNG stream, one
            graph at a time -- kept for parity tests and the E9 benchmark
            baseline.
        inference_batch_size: Graphs per :class:`GraphBatch` during
            ``predict_proba`` (bounds peak stacked-matrix memory).
    """

    def __init__(self, model: GraphClassifier, learning_rate: float = 5e-3,
                 epochs: int = 40, batch_size: int = 16,
                 weight_decay: float = 1e-4, seed: int = 0,
                 patience: Optional[int] = None,
                 vectorized: bool = True,
                 inference_batch_size: int = 256) -> None:
        if inference_batch_size < 1:
            raise ValueError("inference_batch_size must be >= 1")
        self.model = model
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.weight_decay = weight_decay
        self.seed = seed
        self.patience = patience
        self.vectorized = vectorized
        self.inference_batch_size = inference_batch_size
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ #

    def fit(self, graphs: Sequence[ContractGraph], labels: Optional[Sequence[int]] = None,
            validation_graphs: Optional[Sequence[ContractGraph]] = None,
            validation_labels: Optional[Sequence[int]] = None) -> "GNNTrainer":
        """Train the model; labels default to each graph's ``label`` attribute."""
        labels = list(labels if labels is not None else [g.label for g in graphs])
        if len(labels) != len(graphs):
            raise ValueError("labels length must match graphs")
        optimizer = Adam(self.model.parameters(), learning_rate=self.learning_rate,
                         weight_decay=self.weight_decay)
        rng = np.random.default_rng(self.seed)
        best_validation = -1.0
        epochs_without_improvement = 0

        for _ in range(self.epochs):
            self.model.train()
            order = rng.permutation(len(graphs))
            epoch_loss = 0.0
            correct = 0
            for start in range(0, len(order), self.batch_size):
                batch_indices = order[start:start + self.batch_size]
                batch_targets = [labels[index] for index in batch_indices]
                optimizer.zero_grad()
                if self.vectorized:
                    batch = GraphBatch([graphs[index] for index in batch_indices])
                    logits = self.model.forward_batch(batch)
                else:
                    logits = Tensor.concatenate(
                        [self.model(graphs[index]) for index in batch_indices],
                        axis=0)
                loss = cross_entropy(logits, batch_targets)
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item() * len(batch_indices)
                predictions = np.argmax(logits.numpy(), axis=1)
                correct += int(np.sum(predictions == np.asarray(batch_targets)))

            self.history.losses.append(epoch_loss / len(graphs))
            self.history.train_accuracies.append(correct / len(graphs))

            if validation_graphs is not None and validation_labels is not None:
                validation_accuracy = self.score(validation_graphs, validation_labels)
                self.history.validation_accuracies.append(validation_accuracy)
                if self.patience is not None:
                    if validation_accuracy > best_validation + 1e-6:
                        best_validation = validation_accuracy
                        epochs_without_improvement = 0
                    else:
                        epochs_without_improvement += 1
                        if epochs_without_improvement >= self.patience:
                            break
        return self

    # ------------------------------------------------------------------ #

    def predict_proba(self, graphs: Sequence[ContractGraph],
                      batch_size: Optional[int] = None) -> np.ndarray:
        """Class-probability matrix over ``graphs``.

        Vectorized trainers score :class:`GraphBatch` chunks of
        ``batch_size`` graphs (default ``inference_batch_size``) with one
        model call each; the per-graph oracle scores one graph at a time.
        """
        size = batch_size if batch_size is not None else self.inference_batch_size
        if size < 1:
            raise ValueError("batch_size must be >= 1")
        self.model.eval()
        output = np.zeros((len(graphs), self.model.head_output.out_features))
        with no_grad():
            if self.vectorized:
                for start in range(0, len(graphs), size):
                    chunk = graphs[start:start + size]
                    output[start:start + len(chunk)] = \
                        self.model.predict_proba_batch(GraphBatch(chunk))
            else:
                for row, graph in enumerate(graphs):
                    output[row] = self.model.predict_proba_graph(graph)
        return output

    def iter_predict_proba(self, graphs: Sequence[ContractGraph],
                           batch_size: int = 256) -> Iterator[np.ndarray]:
        """Yield class-probability matrices over ``graphs`` in chunks.

        Equivalent to :meth:`predict_proba` but bounds peak memory, so the
        batch scanning service can stream corpora far larger than RAM-sized
        probability matrices would allow.  Each yielded array covers
        ``batch_size`` consecutive graphs (the last chunk may be shorter)
        and is scored as one batched model call, so the caller's
        ``batch_size`` is the true model-call size.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        for start in range(0, len(graphs), batch_size):
            yield self.predict_proba(graphs[start:start + batch_size],
                                     batch_size=batch_size)

    def predict(self, graphs: Sequence[ContractGraph]) -> np.ndarray:
        """Predicted class indices over ``graphs``."""
        return np.argmax(self.predict_proba(graphs), axis=1)

    def score(self, graphs: Sequence[ContractGraph],
              labels: Optional[Sequence[int]] = None) -> float:
        """Accuracy over ``graphs``."""
        labels = list(labels if labels is not None else [g.label for g in graphs])
        predictions = self.predict(graphs)
        return float(np.mean(predictions == np.asarray(labels)))
