"""Graph readout (pooling) functions, per-graph and batched."""

from __future__ import annotations

import numpy as np

from repro.autograd.segment_ops import segment_max, segment_mean, segment_sum
from repro.autograd.tensor import Tensor

#: Supported readout names (ablated in E7).
READOUTS = ("mean", "sum", "max")


def readout(node_embeddings: Tensor, kind: str = "mean") -> Tensor:
    """Aggregate node embeddings into a single graph embedding.

    Args:
        node_embeddings: Tensor of shape (num_nodes, hidden_dim).
        kind: ``"mean"``, ``"sum"`` or ``"max"``.

    Returns:
        Tensor of shape (1, hidden_dim).
    """
    if kind == "mean":
        return node_embeddings.mean(axis=0, keepdims=True)
    if kind == "sum":
        return node_embeddings.sum(axis=0, keepdims=True)
    if kind == "max":
        return node_embeddings.max(axis=0, keepdims=True)
    raise ValueError(f"unknown readout {kind!r}; choose from {READOUTS}")


def readout_batch(node_embeddings: Tensor, segment_ids: np.ndarray,
                  num_graphs: int, kind: str = "mean") -> Tensor:
    """Aggregate stacked node embeddings into per-graph embeddings.

    The batched counterpart of :func:`readout`: one segment reduction over
    the whole mini-batch instead of one reduction per graph.

    Args:
        node_embeddings: Tensor of shape (total_nodes, hidden_dim).
        segment_ids: Sorted graph index of every stacked node.
        num_graphs: Number of graphs in the batch.
        kind: ``"mean"``, ``"sum"`` or ``"max"``.

    Returns:
        Tensor of shape (num_graphs, hidden_dim).
    """
    if kind == "mean":
        return segment_mean(node_embeddings, segment_ids, num_graphs)
    if kind == "sum":
        return segment_sum(node_embeddings, segment_ids, num_graphs)
    if kind == "max":
        return segment_max(node_embeddings, segment_ids, num_graphs)
    raise ValueError(f"unknown readout {kind!r}; choose from {READOUTS}")
