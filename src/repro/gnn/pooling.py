"""Graph readout (pooling) functions."""

from __future__ import annotations

from repro.autograd.tensor import Tensor

#: Supported readout names (ablated in E7).
READOUTS = ("mean", "sum", "max")


def readout(node_embeddings: Tensor, kind: str = "mean") -> Tensor:
    """Aggregate node embeddings into a single graph embedding.

    Args:
        node_embeddings: Tensor of shape (num_nodes, hidden_dim).
        kind: ``"mean"``, ``"sum"`` or ``"max"``.

    Returns:
        Tensor of shape (1, hidden_dim).
    """
    if kind == "mean":
        return node_embeddings.mean(axis=0, keepdims=True)
    if kind == "sum":
        return node_embeddings.sum(axis=0, keepdims=True)
    if kind == "max":
        return node_embeddings.max(axis=0, keepdims=True)
    raise ValueError(f"unknown readout {kind!r}; choose from {READOUTS}")
