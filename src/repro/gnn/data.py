"""Graph data preparation for the GNN models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.autograd.sparse import CSRMatrix
from repro.datasets.corpus import ContractSample, Corpus
from repro.features.cfg_features import sample_to_cfg
from repro.ir.cfg import ControlFlowGraph
from repro.ir.features import (
    adjacency_with_self_loops,
    node_feature_matrix,
    normalized_adjacency,
)


@dataclass
class ContractGraph:
    """A contract CFG prepared for GNN consumption.

    Treated as immutable once lowered: the derived operators below (mean
    aggregator, attention mask, sparse forms) are computed lazily from the
    adjacency matrices and cached on the instance, so every epoch and every
    batch that touches the graph reuses them instead of recomputing.

    Attributes:
        node_features: (num_nodes, feature_dim) node feature matrix.
        adjacency: Raw symmetric adjacency with self loops.
        normalized_adjacency: GCN-normalized adjacency D^-1/2 (A+I) D^-1/2.
        label: Ground-truth label of the contract.
        sample_id: Originating sample identifier.
        platform: "evm" or "wasm".
    """

    node_features: np.ndarray
    adjacency: np.ndarray
    normalized_adjacency: np.ndarray
    label: int
    sample_id: str = ""
    platform: str = "evm"
    _mean_aggregator: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False)
    _attention_mask: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False)
    _sparse_operators: dict = field(
        default_factory=dict, init=False, repr=False, compare=False)

    @property
    def num_nodes(self) -> int:
        return self.node_features.shape[0]

    @property
    def feature_dim(self) -> int:
        return self.node_features.shape[1]

    # ------------------------------------------------------------------ #
    # cached derived operators (computed once per graph, reused every call)

    @property
    def mean_aggregator(self) -> np.ndarray:
        """Row-normalized neighbour averaging matrix used by GraphSAGE.

        Self loops are excluded (SAGE aggregates *neighbours*, the node's own
        features go through the separate self-weight matrix); rows of
        isolated nodes stay zero.
        """
        if self._mean_aggregator is None:
            aggregator = self.adjacency.copy()
            np.fill_diagonal(aggregator, 0.0)
            degrees = aggregator.sum(axis=1, keepdims=True)
            degrees[degrees == 0] = 1.0
            self._mean_aggregator = aggregator / degrees
        return self._mean_aggregator

    @property
    def attention_mask(self) -> np.ndarray:
        """Additive GAT mask: 0 on edges (incl. self loops), -1e9 elsewhere."""
        if self._attention_mask is None:
            self._attention_mask = np.where(self.adjacency > 0, 0.0, -1e9)
        return self._attention_mask

    def sparse_operator(self, kind: str) -> CSRMatrix:
        """CSR form of one of the graph's propagation operators.

        ``kind`` is ``"adjacency"``, ``"normalized"`` or ``"mean"``; the CSR
        matrices feed :meth:`GraphBatch` block-diagonal batching and are
        cached per graph so repeated batching is concatenation-only.
        """
        cached = self._sparse_operators.get(kind)
        if cached is None:
            if kind == "adjacency":
                dense = self.adjacency
            elif kind == "normalized":
                dense = self.normalized_adjacency
            elif kind == "mean":
                dense = self.mean_aggregator
            else:
                raise ValueError(f"unknown sparse operator kind {kind!r}")
            cached = CSRMatrix.from_dense(dense)
            self._sparse_operators[kind] = cached
        return cached


class GraphBatch:
    """N contract graphs packed into one block-diagonal mini-batch.

    Node features are stacked row-wise into a single matrix; each adjacency
    operator becomes a block-diagonal :class:`CSRMatrix` over the stacked
    node dimension; ``segment_ids`` maps every stacked row back to its
    graph.  One forward/backward pass over a :class:`GraphBatch` is
    numerically equivalent to per-graph passes over its members, but costs a
    constant number of NumPy ops instead of a constant number *per graph*.

    Attributes:
        graphs: The member :class:`ContractGraph` objects, in batch order.
        node_features: (total_nodes, feature_dim) stacked features.
        segment_ids: (total_nodes,) graph index of every stacked node
            (non-decreasing, as the segment ops require).
        node_counts: (num_graphs,) nodes per member graph.
        labels: (num_graphs,) member labels.
    """

    def __init__(self, graphs: Sequence[ContractGraph]) -> None:
        self.graphs: List[ContractGraph] = list(graphs)
        if not self.graphs:
            raise ValueError("GraphBatch requires at least one graph")
        features = [graph.node_features for graph in self.graphs]
        width = features[0].shape[1]
        if any(block.shape[1] != width for block in features):
            raise ValueError("inconsistent node feature widths across the batch")
        self.node_counts = np.array([block.shape[0] for block in features],
                                    dtype=np.int64)
        self.node_features = np.concatenate(features, axis=0)
        self.segment_ids = np.repeat(
            np.arange(len(self.graphs), dtype=np.int64), self.node_counts)
        self.labels = np.array([graph.label for graph in self.graphs],
                               dtype=np.int64)
        self._operators: dict = {}
        self._attention_edges: Optional[tuple] = None

    @classmethod
    def from_graphs(cls, graphs: Sequence[ContractGraph]) -> "GraphBatch":
        return cls(graphs)

    @property
    def num_graphs(self) -> int:
        return len(self.graphs)

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])

    @property
    def feature_dim(self) -> int:
        return int(self.node_features.shape[1])

    def operator(self, kind: str) -> CSRMatrix:
        """Block-diagonal CSR operator over the stacked node dimension.

        ``kind`` as in :meth:`ContractGraph.sparse_operator`.  Built from the
        members' cached per-graph CSR parts and cached on the batch, so a
        batch reused across epochs pays the concatenation once.
        """
        cached = self._operators.get(kind)
        if cached is None:
            cached = CSRMatrix.block_diagonal(
                [graph.sparse_operator(kind) for graph in self.graphs])
            self._operators[kind] = cached
        return cached

    @property
    def adjacency_op(self) -> CSRMatrix:
        """Block-diagonal raw adjacency (with self loops); used by GIN."""
        return self.operator("adjacency")

    @property
    def normalized_adjacency_op(self) -> CSRMatrix:
        """Block-diagonal GCN-normalized adjacency; used by GCN and TAG."""
        return self.operator("normalized")

    @property
    def mean_aggregator_op(self) -> CSRMatrix:
        """Block-diagonal neighbour-mean operator; used by GraphSAGE."""
        return self.operator("mean")

    @property
    def attention_edges(self):
        """(rows, cols) of every edge (incl. self loops), sorted by row.

        Global stacked-node indices; because the adjacency is block-diagonal
        the row array doubles as sorted segment ids for GAT's per-
        neighbourhood softmax, and self loops guarantee every row segment is
        non-empty.
        """
        if self._attention_edges is None:
            operator = self.adjacency_op
            self._attention_edges = (operator.row_ids(), operator.indices)
        return self._attention_edges


def cfg_to_graph(cfg: ControlFlowGraph, label: int, sample_id: str = "",
                 include_structural: bool = True, feature_mode: str = "presence",
                 include_markers: bool = True, max_nodes: Optional[int] = 512) -> ContractGraph:
    """Convert a CFG into a :class:`ContractGraph`.

    Args:
        cfg: The control-flow graph.
        label: Ground-truth label attached to the graph.
        sample_id: Sample identifier for traceability.
        include_structural: Include structural node-feature columns (ablated
            in E7).
        feature_mode: Category encoding of the node features ("presence",
            "fraction" or "count"; see
            :func:`repro.ir.features.node_feature_matrix`).
        include_markers: Include the semantic-marker presence bits (ablated
            in E7).
        max_nodes: Truncate very large graphs (obfuscation can inflate them)
            to keep dense adjacency matrices tractable; None disables.
    """
    features = node_feature_matrix(cfg, mode=feature_mode,
                                   include_markers=include_markers,
                                   include_structural=include_structural)
    adjacency = adjacency_with_self_loops(cfg)
    normalized = normalized_adjacency(cfg)
    if max_nodes is not None and features.shape[0] > max_nodes:
        features = features[:max_nodes]
        adjacency = adjacency[:max_nodes, :max_nodes]
        normalized = normalized[:max_nodes, :max_nodes]
    return ContractGraph(node_features=features, adjacency=adjacency,
                         normalized_adjacency=normalized, label=label,
                         sample_id=sample_id, platform=cfg.platform)


def sample_to_graph(sample: ContractSample, include_structural: bool = True,
                    feature_mode: str = "presence", include_markers: bool = True,
                    max_nodes: Optional[int] = 512) -> ContractGraph:
    """Build the :class:`ContractGraph` of one contract sample."""
    cfg = sample_to_cfg(sample)
    return cfg_to_graph(cfg, label=sample.label, sample_id=sample.sample_id,
                        include_structural=include_structural,
                        feature_mode=feature_mode, include_markers=include_markers,
                        max_nodes=max_nodes)


def corpus_to_graphs(corpus: Corpus, include_structural: bool = True,
                     feature_mode: str = "presence", include_markers: bool = True,
                     max_nodes: Optional[int] = 512) -> List[ContractGraph]:
    """Convert every sample of ``corpus`` into a :class:`ContractGraph`."""
    return [sample_to_graph(sample, include_structural=include_structural,
                            feature_mode=feature_mode, include_markers=include_markers,
                            max_nodes=max_nodes)
            for sample in corpus]
