"""Graph data preparation for the GNN models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.datasets.corpus import ContractSample, Corpus
from repro.features.cfg_features import sample_to_cfg
from repro.ir.cfg import ControlFlowGraph
from repro.ir.features import (
    NODE_FEATURE_DIM,
    adjacency_with_self_loops,
    node_feature_matrix,
    normalized_adjacency,
)


@dataclass
class ContractGraph:
    """A contract CFG prepared for GNN consumption.

    Attributes:
        node_features: (num_nodes, feature_dim) node feature matrix.
        adjacency: Raw symmetric adjacency with self loops.
        normalized_adjacency: GCN-normalized adjacency D^-1/2 (A+I) D^-1/2.
        label: Ground-truth label of the contract.
        sample_id: Originating sample identifier.
        platform: "evm" or "wasm".
    """

    node_features: np.ndarray
    adjacency: np.ndarray
    normalized_adjacency: np.ndarray
    label: int
    sample_id: str = ""
    platform: str = "evm"

    @property
    def num_nodes(self) -> int:
        return self.node_features.shape[0]

    @property
    def feature_dim(self) -> int:
        return self.node_features.shape[1]


def cfg_to_graph(cfg: ControlFlowGraph, label: int, sample_id: str = "",
                 include_structural: bool = True, feature_mode: str = "presence",
                 include_markers: bool = True, max_nodes: Optional[int] = 512) -> ContractGraph:
    """Convert a CFG into a :class:`ContractGraph`.

    Args:
        cfg: The control-flow graph.
        label: Ground-truth label attached to the graph.
        sample_id: Sample identifier for traceability.
        include_structural: Include structural node-feature columns (ablated
            in E7).
        feature_mode: Category encoding of the node features ("presence",
            "fraction" or "count"; see
            :func:`repro.ir.features.node_feature_matrix`).
        include_markers: Include the semantic-marker presence bits (ablated
            in E7).
        max_nodes: Truncate very large graphs (obfuscation can inflate them)
            to keep dense adjacency matrices tractable; None disables.
    """
    features = node_feature_matrix(cfg, mode=feature_mode,
                                   include_markers=include_markers,
                                   include_structural=include_structural)
    adjacency = adjacency_with_self_loops(cfg)
    normalized = normalized_adjacency(cfg)
    if max_nodes is not None and features.shape[0] > max_nodes:
        features = features[:max_nodes]
        adjacency = adjacency[:max_nodes, :max_nodes]
        normalized = normalized[:max_nodes, :max_nodes]
    return ContractGraph(node_features=features, adjacency=adjacency,
                         normalized_adjacency=normalized, label=label,
                         sample_id=sample_id, platform=cfg.platform)


def sample_to_graph(sample: ContractSample, include_structural: bool = True,
                    feature_mode: str = "presence", include_markers: bool = True,
                    max_nodes: Optional[int] = 512) -> ContractGraph:
    """Build the :class:`ContractGraph` of one contract sample."""
    cfg = sample_to_cfg(sample)
    return cfg_to_graph(cfg, label=sample.label, sample_id=sample.sample_id,
                        include_structural=include_structural,
                        feature_mode=feature_mode, include_markers=include_markers,
                        max_nodes=max_nodes)


def corpus_to_graphs(corpus: Corpus, include_structural: bool = True,
                     feature_mode: str = "presence", include_markers: bool = True,
                     max_nodes: Optional[int] = 512) -> List[ContractGraph]:
    """Convert every sample of ``corpus`` into a :class:`ContractGraph`."""
    return [sample_to_graph(sample, include_structural=include_structural,
                            feature_mode=feature_mode, include_markers=include_markers,
                            max_nodes=max_nodes)
            for sample in corpus]
