"""Graph neural networks over contract control-flow graphs.

Implements the five architectures the ScamDetect roadmap names for Phase 1 --
GCN, GAT, GIN, TAG and GraphSAGE -- on top of the :mod:`repro.autograd`
engine, together with graph readout pooling, a graph-classification model and
a trainer.  Graphs are dense per-contract CFGs produced by
:func:`repro.gnn.data.corpus_to_graphs`.
"""

from repro.gnn.data import ContractGraph, GraphBatch, corpus_to_graphs, sample_to_graph
from repro.gnn.layers import GCNConv, GATConv, GINConv, TAGConv, SAGEConv, make_conv
from repro.gnn.pooling import readout, readout_batch
from repro.gnn.model import GraphClassifier, GNN_ARCHITECTURES
from repro.gnn.training import GNNTrainer, TrainingHistory

__all__ = [
    "ContractGraph",
    "GraphBatch",
    "readout_batch",
    "corpus_to_graphs",
    "sample_to_graph",
    "GCNConv",
    "GATConv",
    "GINConv",
    "TAGConv",
    "SAGEConv",
    "make_conv",
    "readout",
    "GraphClassifier",
    "GNN_ARCHITECTURES",
    "GNNTrainer",
    "TrainingHistory",
]
