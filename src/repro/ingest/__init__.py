"""Event-driven ingest tier: watcher -> bounded queue -> drain -> registry.

See :mod:`repro.ingest.service` for the pipeline, :mod:`repro.ingest.queue`
for the backpressure contract and :mod:`repro.ingest.events` for the
inotify/poll event backends.
"""

from repro.ingest.events import (
    EVENT_DELETE,
    EVENT_OVERFLOW,
    EVENT_RMDIR,
    EVENT_UPSERT,
    FileEvent,
    InotifyWatcher,
    PollWatcher,
    open_watcher,
)
from repro.ingest.queue import (
    PRIORITY_CHANGED,
    PRIORITY_NEW,
    PRIORITY_RESEEN,
    IngestItem,
    IngestQueue,
    IngestQueueFull,
)
from repro.ingest.service import EventIngestService, IngestStats

__all__ = [
    "EVENT_DELETE",
    "EVENT_OVERFLOW",
    "EVENT_RMDIR",
    "EVENT_UPSERT",
    "EventIngestService",
    "FileEvent",
    "IngestItem",
    "IngestQueue",
    "IngestQueueFull",
    "IngestStats",
    "InotifyWatcher",
    "PollWatcher",
    "PRIORITY_CHANGED",
    "PRIORITY_NEW",
    "PRIORITY_RESEEN",
    "open_watcher",
]
