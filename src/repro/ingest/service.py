"""Event-driven ingest: watcher events -> bounded queue -> drain -> registry.

:class:`EventIngestService` replaces the :class:`~repro.registry.watch
.WatchDaemon` poll walk with a push pipeline while keeping its verdict
semantics bit for bit: drained work goes through the same
:class:`~repro.service.batch.BatchScanner` (graph cache, cascade tier-0,
shard pool, registry short-circuit), sightings land via the same
``upsert_watched_files`` call, and every verdict that is new for a path
runs the same :class:`~repro.registry.rules.RulesEngine` triage.  A
corpus mutation replayed through the event path and through
``poll_once`` must produce byte-identical registry rows.

The pipeline has three stages, each behind its own chaos site:

1. **pump** (``ingest.event``) -- drain the watcher's kernel/poll events,
   stat + stable-read the changed paths, classify them (changed > new >
   re-seen) and enqueue.  A full queue stalls the pump (events are
   retained), it never drops observations.
2. **queue** (``ingest.enqueue``) -- the bounded
   :class:`~repro.ingest.queue.IngestQueue`; duplicates coalesce so an
   identical-contract flood costs one scan.
3. **drain** (``ingest.drain``) -- batch-pop, scan, record, triage.  An
   injected fault after dequeue re-queues the batch: verdicts are never
   lost to chaos.

The service runs synchronously (:meth:`cycle` -- what the tests and the
E15 benchmark reason about) or threaded (:meth:`start` -- the
``serve --ingest-queue`` drain worker behind ``POST /v1/ingest``).
"""

from __future__ import annotations

import dataclasses
import pathlib
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.detector import ScamDetector
from repro.ingest.events import (
    EVENT_DELETE,
    EVENT_OVERFLOW,
    EVENT_RMDIR,
    EVENT_UPSERT,
    FileEvent,
    open_watcher,
)
from repro.ingest.queue import (
    PRIORITY_CHANGED,
    PRIORITY_NEW,
    PRIORITY_RESEEN,
    IngestItem,
    IngestQueue,
    IngestQueueFull,
)
from repro.registry.rules import RulesEngine
from repro.registry.store import ScanRegistry, content_sha256
# NOT ``from repro.registry.watch import stable_read``: watch.py imports
# the service stack, which imports this package -- binding the module and
# resolving the attribute at call time keeps the cycle harmless
from repro.registry import watch as _watch
from repro.obs.trace import carrier, emit_span, trace
from repro.resilience.faults import InjectedFault, fault_point
from repro.service.batch import BatchScanner, iter_contract_files

PathLike = Union[str, pathlib.Path]


@dataclass
class IngestStats:
    """Cumulative ingest telemetry (deltas per cycle via :meth:`delta`)."""

    cycles: int = 0
    events: int = 0
    upserts: int = 0
    deletes: int = 0
    unchanged: int = 0
    skipped: int = 0
    resyncs: int = 0
    enqueued: int = 0
    deduped: int = 0
    dropped: int = 0
    backpressure_stalls: int = 0
    drained: int = 0
    scanned: int = 0
    registry_hits: int = 0
    inference_calls: int = 0
    malicious: int = 0
    rules_matched: int = 0
    alerts: int = 0
    faulted_cycles: int = 0
    faulted_drains: int = 0
    exit_nonzero: bool = False

    def delta(self, previous: "IngestStats") -> "IngestStats":
        """Counter-wise difference (``self - previous``)."""
        values = {}
        for spec in dataclasses.fields(self):
            mine = getattr(self, spec.name)
            if isinstance(mine, bool):
                values[spec.name] = mine
            else:
                values[spec.name] = mine - getattr(previous, spec.name)
        return IngestStats(**values)

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def format(self) -> str:
        parts = [
            f"{self.events} events",
            f"{self.upserts} upserts",
            f"{self.deletes} deleted",
            f"{self.unchanged} unchanged",
            f"{self.enqueued} enqueued ({self.deduped} deduped)",
        ]
        if self.skipped:
            parts.append(f"{self.skipped} skipped")
        if self.backpressure_stalls:
            parts.append(f"{self.backpressure_stalls} stalls")
        summary = (
            f"{self.scanned} scanned ({self.malicious} malicious), "
            f"{self.registry_hits} registry hits, "
            f"{self.inference_calls} inference calls"
        )
        if self.rules_matched:
            summary += (
                f", {self.rules_matched} rule matches ({self.alerts} alerts)"
            )
        if self.faulted_cycles or self.faulted_drains:
            summary += (
                f", {self.faulted_cycles + self.faulted_drains} faulted"
            )
        if self.exit_nonzero:
            summary += ", exit rule fired (will exit 2)"
        return f"{', '.join(parts)} -- {summary}"


class EventIngestService:
    """Event -> queue -> drain pipeline over the batch scan stack.

    Args:
        detector: A trained detector (fingerprint-checked against
            ``registry`` exactly like ``WatchDaemon``).
        registry: Persistent verdict store; also backs enqueue-time
            classification and dedupe.
        roots: Zero or more watch roots.  Empty means *push-only* (the
            ``serve --ingest-queue`` mode: work arrives exclusively via
            :meth:`submit_bytes`).
        pattern: Glob filter over file names (``iter_contract_files``
            semantics).
        recursive: Recurse into subdirectories.
        rules: Optional triage rules evaluated on drained verdicts.
        queue_capacity: Bound of the ingest queue (the backpressure knob).
        batch_size: Max items per drain batch (one scanner call each).
        backend: ``"auto"`` | ``"inotify"`` | ``"poll"`` watcher choice.
        cache / max_workers / shards: Forwarded to ``BatchScanner``.
        retry_after_s: Advisory retry delay carried by
            :class:`IngestQueueFull` (the 503 Retry-After value).
    """

    def __init__(
        self,
        detector: ScamDetector,
        registry: ScanRegistry,
        roots: Sequence[PathLike] = (),
        pattern: str = "*",
        recursive: bool = True,
        rules: Optional[RulesEngine] = None,
        queue_capacity: int = 1024,
        batch_size: int = 64,
        backend: str = "auto",
        cache=None,
        max_workers: Optional[int] = None,
        shards: int = 1,
        retry_after_s: float = 1.0,
    ) -> None:
        if not detector.is_trained:
            raise RuntimeError("EventIngestService requires a trained detector")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        fingerprint = detector.config.graph_fingerprint()
        if registry.fingerprint and registry.fingerprint != fingerprint:
            raise ValueError(
                f"registry fingerprint {registry.fingerprint!r} does not "
                f"match the detector config's {fingerprint!r}; open the "
                f"registry with ScanRegistry.for_config(path, "
                f"detector.config)"
            )
        registry.fingerprint = fingerprint
        self.detector = detector
        self.registry = registry
        self.roots = [pathlib.Path(root).resolve() for root in roots]
        self.pattern = pattern
        self.recursive = recursive
        self.rules = rules
        self.batch_size = batch_size
        self.scanner = BatchScanner(
            detector,
            cache=cache,
            max_workers=max_workers,
            shards=shards,
            registry=registry,
        )
        self.queue = IngestQueue(queue_capacity, retry_after_s=retry_after_s)
        self.watcher = (
            open_watcher(self.roots, pattern, recursive=recursive,
                         backend=backend)
            if self.roots else None
        )
        self._labels = self._root_labels(self.roots)
        self.stats = IngestStats()
        self.exit_nonzero = False
        # live mirror of the registry's watched-file index: the enqueue
        # classifier must not pay a registry query per event
        self._index: Dict[str, Tuple[int, int]] = {
            path: (entry.size, entry.mtime_ns)
            for path, entry in registry.watched_files().items()
        }
        self._pending_events: List[FileEvent] = []
        self._scan_lock = threading.Lock()
        self._stop = threading.Event()
        self._drain_thread: Optional[threading.Thread] = None

    @staticmethod
    def _root_labels(roots: Sequence[pathlib.Path]) -> Dict[pathlib.Path, str]:
        """Unique short label per root (ids stay poll-compatible for a
        single root: bare relative paths, no prefix)."""
        if len(roots) <= 1:
            return {root: "" for root in roots}
        labels: Dict[pathlib.Path, str] = {}
        used: Dict[str, int] = {}
        for root in roots:
            base = root.name or "root"
            count = used.get(base, 0)
            used[base] = count + 1
            labels[root] = base if count == 0 else f"{base}#{count}"
        return labels

    def _sample_id(self, root: pathlib.Path, path: pathlib.Path) -> str:
        rel = str(path.relative_to(root))
        label = self._labels.get(root, "")
        return f"{label}/{rel}" if label else rel

    @property
    def backend(self) -> str:
        return self.watcher.backend if self.watcher is not None else "push"

    # ------------------------------------------------------------------ #
    # producers

    def submit_bytes(
        self,
        raw: bytes,
        sample_id: Optional[str] = None,
        platform: Optional[str] = None,
        source: str = "push",
    ) -> str:
        """Enqueue pushed bytecode; returns ``"queued"`` or ``"deduped"``.

        Raises :class:`IngestQueueFull` when the queue is at capacity --
        the HTTP layer turns that into ``503 + Retry-After``.
        """
        # obs site ingest.enqueue: child of server.request on the HTTP
        # path, its own root when called directly; the carrier stamped on
        # the item lets the drain worker link back across the queue
        with trace("ingest.enqueue", root=True, source=source) as span:
            fault_point("ingest.enqueue")
            sha256 = content_sha256(raw)
            if sample_id is None:
                sample_id = f"push:{sha256[:16]}"
            priority = (
                PRIORITY_RESEEN
                if self.registry.get(sha256) is not None
                else PRIORITY_NEW
            )
            item = IngestItem(
                priority=priority,
                sha256=sha256,
                raw=raw,
                sample_id=sample_id,
                source=source,
                platform=platform,
                trace=carrier(),
            )
            try:
                outcome = self.queue.put(item)
            except IngestQueueFull:
                self.stats.dropped += 1
                span.set(outcome="dropped")
                raise
            if outcome == "deduped":
                self.stats.deduped += 1
            else:
                self.stats.enqueued += 1
            span.set(outcome=outcome)
        return outcome

    def pump_events(self, timeout: float = 0.0) -> int:
        """Drain watcher events into the queue; returns events consumed.

        A full queue stalls the pump: the unconsumed tail is retained and
        retried next cycle after the drain frees capacity.
        """
        if self.watcher is None:
            return 0
        fault_point("ingest.event")
        events = self._pending_events
        self._pending_events = []
        events.extend(self.watcher.poll(timeout))
        consumed = 0
        for position, event in enumerate(events):
            try:
                self._apply_event(event)
            except IngestQueueFull:
                self.stats.backpressure_stalls += 1
                self._pending_events = events[position:]
                break
            consumed += 1
        self.stats.events += consumed
        return consumed

    def _apply_event(self, event: FileEvent) -> None:
        if event.kind == EVENT_UPSERT:
            self._classify_enqueue(event.root, event.path)
        elif event.kind == EVENT_DELETE:
            self._mark_deleted([self._sample_id(event.root, event.path)])
        elif event.kind == EVENT_RMDIR:
            prefix = self._sample_id(event.root, event.path)
            doomed = [
                path for path in self._index
                if path == prefix or path.startswith(prefix + "/")
            ]
            self._mark_deleted(doomed)
        elif event.kind == EVENT_OVERFLOW:
            self.stats.resyncs += 1
            self._walk_roots(sweep=True)

    def _mark_deleted(self, paths: List[str]) -> None:
        live = [path for path in paths if path in self._index]
        if not live:
            return
        self.registry.mark_deleted(live)
        for path in live:
            del self._index[path]
        self.stats.deletes += len(live)

    def _classify_enqueue(self, root: pathlib.Path, path: pathlib.Path) -> None:
        """Stat + read + classify one changed path, then enqueue."""
        if not _is_contract_path(path):
            return
        sample_id = self._sample_id(root, path)
        try:
            stat = path.stat()
        except OSError:
            # create-then-delete race or transient stat failure: never a
            # delete (the watcher's delete event owns that), never fatal
            self.stats.skipped += 1
            return
        known = self._index.get(sample_id)
        signature = (stat.st_size, stat.st_mtime_ns)
        if known == signature:
            self.stats.unchanged += 1
            return
        try:
            raw, size, mtime_ns = _watch.stable_read(
                path, stat.st_size, stat.st_mtime_ns
            )
        except (OSError, ValueError) as error:
            self.stats.skipped += 1
            warnings.warn(
                f"ingest: skipping {path}: {error}", stacklevel=2
            )
            return
        sha256 = content_sha256(raw)
        if self.registry.get(sha256) is not None:
            priority = PRIORITY_RESEEN
        elif known is not None:
            priority = PRIORITY_CHANGED
        else:
            priority = PRIORITY_NEW
        # obs site ingest.enqueue (watch pump thread): roots a new trace
        # per observed path; the carrier rides the queue to the drain
        with trace("ingest.enqueue", root=True, source="watch") as span:
            fault_point("ingest.enqueue")
            item = IngestItem(
                priority=priority,
                sha256=sha256,
                raw=raw,
                sample_id=sample_id,
                source="watch",
                sightings=[(sample_id, sha256, size, mtime_ns)],
                trace=carrier(),
            )
            outcome = self.queue.put(item)
            if outcome == "deduped":
                self.stats.deduped += 1
            else:
                self.stats.enqueued += 1
            span.set(outcome=outcome)

    # ------------------------------------------------------------------ #
    # drain

    def drain(
        self, max_batches: Optional[int] = None, timeout: float = 0.0
    ) -> int:
        """Scan queued items until the queue is empty; returns items drained.

        ``timeout`` bounds the wait for the *first* batch (the threaded
        drain worker parks here between bursts).  An
        :class:`InjectedFault` at the ``ingest.drain`` site re-queues the
        in-flight batch and aborts this drain (the next one retries).
        """
        drained = 0
        batches = 0
        while max_batches is None or batches < max_batches:
            batch = self.queue.get_batch(
                self.batch_size, timeout=timeout if batches == 0 else 0.0
            )
            if not batch:
                break
            try:
                fault_point("ingest.drain")
            except InjectedFault as error:
                self.queue.requeue(batch)
                self.stats.faulted_drains += 1
                warnings.warn(
                    f"ingest drain faulted ({error}); batch re-queued",
                    stacklevel=2,
                )
                break
            self._drain_batch(batch)
            drained += len(batch)
            batches += 1
        return drained

    def _drain_batch(self, batch: List[IngestItem]) -> None:
        # obs site ingest.drain: the drain worker's own root trace spans
        # the whole batch; each carried item additionally gets a
        # pre-measured ``ingest.drained`` span stitched into its
        # *producer's* trace (via the carrier stamped at enqueue), so a
        # trace that starts at POST /v1/ingest ends at its drain
        started_at = time.time()
        begun = time.perf_counter()
        with trace("ingest.drain", root=True, items=len(batch)):
            # scan_codes takes one platform per call: group pushed items by
            # their declared platform (watch items always carry None)
            groups: Dict[Optional[str], List[IngestItem]] = {}
            for item in batch:
                groups.setdefault(item.platform, []).append(item)
            sightings: List[Tuple[str, str, int, int]] = []
            for platform, items in groups.items():
                with self._scan_lock:
                    result = self.scanner.scan_codes(
                        [item.raw for item in items],
                        platform=platform,
                        sample_ids=[item.sample_id for item in items],
                    )
                self.stats.registry_hits += result.registry_hits
                self.stats.scanned += (
                    result.num_scanned - result.registry_hits
                )
                self.stats.malicious += result.num_malicious
                self.stats.inference_calls += sum(result.batch_sizes.values())
                self._triage(items, result.reports)
                for item in items:
                    sightings.extend(item.sightings)
            if sightings:
                self.registry.upsert_watched_files(sightings)
                for path, _, size, mtime_ns in sightings:
                    self._index[path] = (size, mtime_ns)
            self.stats.drained += len(batch)
        dur_ms = (time.perf_counter() - begun) * 1000.0
        for item in batch:
            if item.trace is not None:
                emit_span(
                    item.trace,
                    "ingest.drained",
                    started_at,
                    dur_ms,
                    batch=len(batch),
                    sha256=item.sha256[:16],
                )

    def _triage(self, items: List[IngestItem], reports) -> None:
        if self.rules is None:
            return
        identity = self.detector.model_identity()
        now = time.time()
        for item, report in zip(items, reports):
            for sample_id in item.sample_ids:
                outcome = self.rules.evaluate(
                    report,
                    item.sha256,
                    source_path=sample_id,
                    model_identity=identity,
                    scanned_at=now,
                )
                if not outcome.matched:
                    continue
                self.stats.rules_matched += len(outcome.matched)
                self.stats.alerts += outcome.alerts
                if outcome.tags:
                    self.registry.add_tags(item.sha256, outcome.tags)
                if outcome.exit_nonzero:
                    self.stats.exit_nonzero = True
                    self.exit_nonzero = True

    # ------------------------------------------------------------------ #
    # synchronous driving

    def backfill(self) -> int:
        """Cold start: walk the roots once, enqueue-and-drain everything,
        and sweep index entries whose files are gone.  Returns the number
        of paths enqueued."""
        return self._walk_roots(sweep=True)

    def _walk_roots(self, sweep: bool) -> int:
        enqueued_before = self.stats.enqueued + self.stats.deduped
        present: set = set()
        for root in self.roots:
            for path in iter_contract_files(
                root, self.pattern, recursive=self.recursive
            ):
                present.add(self._sample_id(root, path))
                while True:
                    try:
                        self._classify_enqueue(root, path)
                        break
                    except IngestQueueFull:
                        # interleave a drain so a backfill larger than the
                        # queue bound still completes
                        self.stats.backpressure_stalls += 1
                        if self.drain() == 0:
                            raise
        if sweep:
            self._mark_deleted(
                [path for path in self._index if path not in present]
            )
        self.drain()
        return self.stats.enqueued + self.stats.deduped - enqueued_before

    def cycle(self, timeout: float = 0.0) -> IngestStats:
        """One pump+drain round; returns this cycle's counter deltas."""
        before = dataclasses.replace(self.stats)
        self.pump_events(timeout)
        self.drain()
        self.stats.cycles += 1
        return self.stats.delta(before)

    def run(
        self,
        interval: float = 0.5,
        max_cycles: Optional[int] = None,
        on_cycle=None,
    ) -> int:
        """Cycle until :meth:`stop` (or ``max_cycles``), then drain.

        The watcher wait happens *inside* the cycle (``timeout``), so an
        event lands at kernel latency, not at poll-interval latency.  On
        stop the queue is drained to empty before returning -- a SIGTERM
        never strands admitted work.
        """
        if self.watcher is None:
            raise RuntimeError(
                "run() needs watch roots; push-only services use start()"
            )
        completed = 0
        while not self._stop.is_set():
            try:
                stats = self.cycle(timeout=interval)
            except InjectedFault as error:
                self.stats.faulted_cycles += 1
                warnings.warn(
                    f"ingest cycle failed with a transient fault "
                    f"({error}); retrying next cycle",
                    stacklevel=2,
                )
                self._stop.wait(interval)
                continue
            completed += 1
            if on_cycle is not None:
                on_cycle(completed, stats)
            if max_cycles is not None and completed >= max_cycles:
                break
        self.drain()
        return completed

    def stop(self) -> None:
        self._stop.set()

    # ------------------------------------------------------------------ #
    # threaded driving (the serve --ingest-queue drain worker)

    def start(self) -> None:
        """Start the background drain worker (push-only server mode)."""
        if self._drain_thread is not None:
            raise RuntimeError("ingest drain worker already started")
        self._stop.clear()
        self._drain_thread = threading.Thread(
            target=self._drain_loop, name="ingest-drain", daemon=True
        )
        self._drain_thread.start()

    def _drain_loop(self) -> None:
        while not self._stop.is_set():
            drained = self.drain(timeout=0.25)
            if drained == 0 and self.queue.depth() > 0:
                # a faulted drain re-queued its batch; back off briefly so
                # a repeating fault cannot hot-spin the worker
                self._stop.wait(0.05)
        # SIGTERM drain: everything admitted before shutdown is scanned
        self.drain()

    def shutdown(self, drain: bool = True) -> None:
        """Stop the drain worker; by default finishes the queued backlog."""
        self._stop.set()
        self.queue.close()
        thread = self._drain_thread
        if thread is not None:
            thread.join(timeout=30.0)
            self._drain_thread = None
        if drain:
            self.drain()

    def close(self, drain: bool = False) -> None:
        self.shutdown(drain=drain)
        if self.watcher is not None:
            self.watcher.close()
        self.scanner.close()

    def __enter__(self) -> "EventIngestService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """Metrics payload: queue counters + pipeline counters + backend."""
        return {
            "backend": self.backend,
            "roots": [str(root) for root in self.roots],
            "queue": self.queue.snapshot(),
            "stats": self.stats.to_dict(),
        }


def _is_contract_path(path: pathlib.Path) -> bool:
    """Event-path twin of ``iter_contract_files``'s file filter."""
    # deferred import mirrors batch.py's walk rules without re-exporting
    from repro.service.batch import _NON_CONTRACT_SUFFIXES
    from repro.service.cache import DISK_META_FILENAME

    return not (
        path.name.startswith(".")
        or path.name == DISK_META_FILENAME
        or path.suffix in _NON_CONTRACT_SUFFIXES
    )
