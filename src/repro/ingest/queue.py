"""Bounded priority queue between event producers and drain workers.

The queue is the backpressure boundary of the ingest tier: producers
(filesystem watcher, ``POST /v1/ingest``) classify work into three
priority classes and enqueue; drain workers pull in priority order and
feed the batch scan stack.  The bound is a *hard* capacity -- a full
queue raises :class:`IngestQueueFull` so the HTTP path can answer
``503 + Retry-After`` and the watcher path can stall its event pump
instead of buffering the world.

Priority classes (lower drains first):

``changed``
    A watched path whose content moved -- the verdict on record is stale
    for that path, so it jumps the line.
``new``
    A never-seen path with never-seen content: real scan work.
``re-seen``
    Content the registry already holds a verdict for (factory clone,
    re-drop, duplicate flood): costs one registry point lookup and zero
    inference at drain, so it yields to everything else.

Enqueue-time dedupe: one pending :class:`IngestItem` per content hash.
A duplicate enqueue *coalesces* -- its path sighting is appended to the
pending item and the producer is told ``deduped`` -- so a flood of
identical contracts costs one queue slot and one scan.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

PRIORITY_CHANGED = 0
PRIORITY_NEW = 1
PRIORITY_RESEEN = 2

PRIORITY_NAMES = {
    PRIORITY_CHANGED: "changed",
    PRIORITY_NEW: "new",
    PRIORITY_RESEEN: "re-seen",
}


class IngestQueueFull(RuntimeError):
    """The bounded queue is at capacity; retry after ``retry_after_s``."""

    def __init__(self, capacity: int, retry_after_s: float) -> None:
        super().__init__(
            f"ingest queue full ({capacity} items); "
            f"retry after {retry_after_s:g}s"
        )
        self.capacity = capacity
        self.retry_after_s = retry_after_s


@dataclass
class IngestItem:
    """One unit of scan work: unique content plus every path that sighted it.

    ``sightings`` rows are ``(path, sha256, size, mtime_ns)`` tuples in
    ``ScanRegistry.upsert_watched_files`` format; pushed bytes (no backing
    file) carry an empty list.  ``sample_ids`` lists every id that must be
    triaged against the verdict -- coalesced duplicates append here.
    ``trace`` is the opaque span carrier stamped at enqueue (when tracing
    is armed) so the drain can link its work back to the producer's trace;
    coalesced duplicates keep the first enqueuer's carrier.
    """

    priority: int
    sha256: str
    raw: bytes
    sample_id: str
    source: str = "watch"
    platform: Optional[str] = None
    sightings: List[Tuple[str, str, int, int]] = field(default_factory=list)
    sample_ids: List[str] = field(default_factory=list)
    trace: Optional[Dict[str, str]] = None

    def __post_init__(self) -> None:
        if self.priority not in PRIORITY_NAMES:
            raise ValueError(f"unknown ingest priority {self.priority!r}")
        if not self.sample_ids:
            self.sample_ids = [self.sample_id]


class IngestQueue:
    """Bounded, deduplicating priority queue (thread-safe).

    FIFO within a priority class (a monotonic sequence number breaks
    ties), strict class ordering across classes.  All counters are
    cumulative since construction and exported by :meth:`snapshot` into
    ``/v1`` metrics.
    """

    def __init__(self, capacity: int, retry_after_s: float = 1.0) -> None:
        if capacity < 1:
            raise ValueError("ingest queue capacity must be >= 1")
        self.capacity = capacity
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._heap: List[Tuple[int, int, str]] = []
        self._pending: Dict[str, IngestItem] = {}
        self._seq = 0
        self._closed = False
        # cumulative telemetry
        self.enqueued = 0
        self.deduped = 0
        self.dropped = 0
        self.drained = 0
        self.peak_depth = 0
        self.last_enqueue_at = 0.0

    # ------------------------------------------------------------------ #

    def put(self, item: IngestItem) -> str:
        """Enqueue ``item``; returns ``"queued"`` or ``"deduped"``.

        Raises :class:`IngestQueueFull` when at capacity (the caller owns
        the backpressure reaction) and ``RuntimeError`` after
        :meth:`close`.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("ingest queue is closed")
            pending = self._pending.get(item.sha256)
            if pending is not None:
                # coalesce: same content already awaiting a scan -- merge
                # the sightings/ids so the drain records every path, and
                # promote the pending item if the duplicate outranks it
                pending.sightings.extend(item.sightings)
                pending.sample_ids.extend(item.sample_ids)
                if item.priority < pending.priority:
                    pending.priority = item.priority
                    self._seq += 1
                    heapq.heappush(
                        self._heap, (item.priority, self._seq, item.sha256)
                    )
                self.deduped += 1
                return "deduped"
            if len(self._pending) >= self.capacity:
                self.dropped += 1
                raise IngestQueueFull(self.capacity, self.retry_after_s)
            self._seq += 1
            heapq.heappush(self._heap, (item.priority, self._seq, item.sha256))
            self._pending[item.sha256] = item
            self.enqueued += 1
            self.last_enqueue_at = time.time()
            self.peak_depth = max(self.peak_depth, len(self._pending))
            self._not_empty.notify()
            return "queued"

    def requeue(self, items: List[IngestItem]) -> None:
        """Put drained-but-unprocessed items back, ignoring the bound.

        Used by the drain path when a transient (injected) fault aborts a
        batch after dequeue: losing the items would lose verdicts, so the
        capacity check is waived for work the queue already admitted.
        """
        with self._lock:
            for item in items:
                pending = self._pending.get(item.sha256)
                if pending is not None:
                    pending.sightings.extend(item.sightings)
                    pending.sample_ids.extend(item.sample_ids)
                    continue
                self._seq += 1
                heapq.heappush(
                    self._heap, (item.priority, self._seq, item.sha256)
                )
                self._pending[item.sha256] = item
                self.drained -= 1
                self._not_empty.notify()

    def get(self, timeout: Optional[float] = 0.0) -> Optional[IngestItem]:
        """Pop the highest-priority item, or None on timeout/empty."""
        with self._not_empty:
            deadline = None if timeout is None else time.monotonic() + timeout
            while True:
                item = self._pop_locked()
                if item is not None:
                    return item
                if self._closed:
                    return None
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)

    def get_batch(
        self, max_items: int, timeout: Optional[float] = 0.0
    ) -> List[IngestItem]:
        """Pop up to ``max_items``; waits ``timeout`` for the *first* item
        only (the rest are whatever is immediately available)."""
        first = self.get(timeout)
        if first is None:
            return []
        batch = [first]
        with self._lock:
            while len(batch) < max_items:
                item = self._pop_locked()
                if item is None:
                    break
                batch.append(item)
        return batch

    def _pop_locked(self) -> Optional[IngestItem]:
        while self._heap:
            priority, _, sha256 = heapq.heappop(self._heap)
            item = self._pending.get(sha256)
            # a stale heap entry (priority promotion pushed a second one,
            # or the item was already drained) is skipped
            if item is None or item.priority != priority:
                continue
            del self._pending[sha256]
            self.drained += 1
            return item
        return None

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Refuse new work; blocked getters wake and drain what is left."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def snapshot(self) -> Dict[str, object]:
        """Counters for ``/v1`` metrics and ``/healthz``."""
        with self._lock:
            return {
                "depth": len(self._pending),
                "capacity": self.capacity,
                "enqueued": self.enqueued,
                "deduped": self.deduped,
                "dropped": self.dropped,
                "drained": self.drained,
                "peak_depth": self.peak_depth,
            }
