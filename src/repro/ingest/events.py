"""Filesystem event sources for the ingest tier.

Two interchangeable backends produce :class:`FileEvent` streams over one
or more watch roots:

:class:`InotifyWatcher`
    Kernel-reported changes via Linux inotify, bound with ``ctypes``
    against libc (no third-party dependency).  Steady state over an
    unchanged corpus costs one ``select()`` timeout -- no walk, no stats.
    Directories are watched recursively; watches are added for
    directories created after startup (with a catch-up walk for files
    that raced the watch registration), and a kernel queue overflow
    degrades to one full resync walk instead of losing events.

:class:`PollWatcher`
    The portable fallback: each :meth:`poll` walks the roots with
    :func:`~repro.service.batch.iter_contract_files` and diffs a
    ``(size, mtime_ns)`` snapshot.  Works on network mounts and
    non-Linux hosts; the walk *is* the cost, exactly like the classic
    ``WatchDaemon`` cycle.  A path that transiently fails ``stat()``
    keeps its snapshot entry and emits nothing -- never a spurious
    delete (the same invariant the poll daemon's deletion sweep holds).

:func:`open_watcher` picks inotify where available unless the caller
forces a backend.
"""

from __future__ import annotations

import ctypes
import errno
import os
import pathlib
import select
import struct
import sys
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.service.batch import iter_contract_files

PathLike = Union[str, pathlib.Path]

#: Event kinds a watcher may emit.
EVENT_UPSERT = "upsert"      # file created / modified / moved in
EVENT_DELETE = "delete"      # file removed / moved out
EVENT_RMDIR = "rmdir"        # directory removed: sweep everything under it
EVENT_OVERFLOW = "overflow"  # kernel queue overflowed: full resync needed


@dataclass(frozen=True)
class FileEvent:
    """One filesystem observation, addressed relative to its watch root."""

    kind: str
    root: pathlib.Path
    path: pathlib.Path  # absolute; equals ``root`` for EVENT_OVERFLOW


# --------------------------------------------------------------------------- #
# inotify constants (linux/inotify.h)

IN_CLOSE_WRITE = 0x00000008
IN_MOVED_FROM = 0x00000040
IN_MOVED_TO = 0x00000080
IN_CREATE = 0x00000100
IN_DELETE = 0x00000200
IN_DELETE_SELF = 0x00000400
IN_MOVE_SELF = 0x00000800
IN_Q_OVERFLOW = 0x00004000
IN_IGNORED = 0x00008000
IN_ONLYDIR = 0x01000000
IN_ISDIR = 0x40000000

IN_CLOEXEC = 0x00080000
IN_NONBLOCK = 0x00000800

_DIR_MASK = (
    IN_CLOSE_WRITE | IN_MOVED_FROM | IN_MOVED_TO | IN_CREATE
    | IN_DELETE | IN_DELETE_SELF | IN_MOVE_SELF
)

_EVENT_HEADER = struct.Struct("iIII")


def _libc() -> ctypes.CDLL:
    libc = ctypes.CDLL(None, use_errno=True)
    for name in ("inotify_init1", "inotify_add_watch", "inotify_rm_watch"):
        if not hasattr(libc, name):
            raise OSError(f"libc lacks {name}")
    return libc


class InotifyWatcher:
    """Kernel event source over one or more roots (Linux only)."""

    backend = "inotify"

    def __init__(
        self,
        roots: Sequence[PathLike],
        pattern: str = "*",
        recursive: bool = True,
    ) -> None:
        if not roots:
            raise ValueError("at least one watch root is required")
        self.roots = [pathlib.Path(root).resolve() for root in roots]
        for root in self.roots:
            if not root.is_dir():
                raise FileNotFoundError(f"watch root not found: {root}")
        self.pattern = pattern
        self.recursive = recursive
        self._libc = _libc()
        self._fd = self._libc.inotify_init1(IN_NONBLOCK | IN_CLOEXEC)
        if self._fd < 0:
            raise OSError(ctypes.get_errno(), "inotify_init1 failed")
        self._watches: Dict[int, Tuple[pathlib.Path, pathlib.Path]] = {}
        self._wd_by_dir: Dict[pathlib.Path, int] = {}
        self._buffer = b""
        # catch-up upserts for files that predate the watches, delivered
        # by the first poll() -- without them anything already on disk at
        # startup would be invisible to a pure event consumer
        self._pending: List[FileEvent] = []
        try:
            for root in self.roots:
                self._pending.extend(self._add_tree(root, root))
        except Exception:
            self.close()
            raise

    @staticmethod
    def available() -> bool:
        """Whether this host can serve inotify events."""
        if not sys.platform.startswith("linux"):
            return False
        try:
            libc = _libc()
        except OSError:
            return False
        fd = libc.inotify_init1(IN_NONBLOCK | IN_CLOEXEC)
        if fd < 0:
            return False
        os.close(fd)
        return True

    # ------------------------------------------------------------------ #

    def _add_watch(self, directory: pathlib.Path, root: pathlib.Path) -> None:
        wd = self._libc.inotify_add_watch(
            self._fd, os.fsencode(str(directory)), _DIR_MASK | IN_ONLYDIR
        )
        if wd < 0:
            error = ctypes.get_errno()
            # the directory vanished between discovery and watch: the
            # parent's delete event covers it
            if error in (errno.ENOENT, errno.ENOTDIR):
                return
            raise OSError(error, f"inotify_add_watch({directory}) failed")
        self._watches[wd] = (directory, root)
        self._wd_by_dir[directory] = wd

    def _add_tree(
        self, directory: pathlib.Path, root: pathlib.Path
    ) -> List[FileEvent]:
        """Watch ``directory`` (recursively) and return catch-up events for
        files already inside -- anything written before the watch landed
        would otherwise be invisible."""
        self._add_watch(directory, root)
        events: List[FileEvent] = []
        try:
            entries = sorted(directory.iterdir())
        except OSError:
            return events
        for entry in entries:
            if entry.name.startswith("."):
                continue
            try:
                is_dir = entry.is_dir()
            except OSError:
                continue
            if is_dir:
                if self.recursive:
                    events.extend(self._add_tree(entry, root))
            else:
                events.append(FileEvent(EVENT_UPSERT, root, entry))
        return events

    # ------------------------------------------------------------------ #

    def poll(self, timeout: float = 0.0) -> List[FileEvent]:
        """Drain pending kernel events, waiting up to ``timeout`` seconds."""
        if self._fd < 0:
            return []
        events: List[FileEvent] = []
        if self._pending:
            events, self._pending = self._pending, []
            timeout = 0.0  # don't block: the backlog is already work
        ready, _, _ = select.select([self._fd], [], [], max(timeout, 0.0))
        if not ready:
            return events
        while True:
            try:
                chunk = os.read(self._fd, 65536)
            except BlockingIOError:
                break
            except OSError as error:
                if error.errno == errno.EINTR:
                    continue
                raise
            if not chunk:
                break
            self._buffer += chunk
            events.extend(self._consume_buffer())
            # keep reading until the fd would block, so one poll drains
            # a burst in full
            more, _, _ = select.select([self._fd], [], [], 0)
            if not more:
                break
        return events

    def _consume_buffer(self) -> List[FileEvent]:
        events: List[FileEvent] = []
        offset = 0
        buffer = self._buffer
        while offset + _EVENT_HEADER.size <= len(buffer):
            wd, mask, _cookie, length = _EVENT_HEADER.unpack_from(
                buffer, offset
            )
            end = offset + _EVENT_HEADER.size + length
            if end > len(buffer):
                break
            name = buffer[offset + _EVENT_HEADER.size:end].split(b"\0", 1)[0]
            offset = end
            events.extend(self._translate(wd, mask, os.fsdecode(name)))
        self._buffer = buffer[offset:]
        return events

    def _translate(self, wd: int, mask: int, name: str) -> List[FileEvent]:
        if mask & IN_Q_OVERFLOW:
            return [FileEvent(EVENT_OVERFLOW, root, root)
                    for root in self.roots]
        entry = self._watches.get(wd)
        if entry is None:
            return []
        directory, root = entry
        if mask & IN_IGNORED:
            self._watches.pop(wd, None)
            self._wd_by_dir.pop(directory, None)
            return []
        if mask & (IN_DELETE_SELF | IN_MOVE_SELF):
            self._drop_dir(directory)
            if directory != root:
                return [FileEvent(EVENT_RMDIR, root, directory)]
            return []
        if not name or name.startswith("."):
            return []
        path = directory / name
        if mask & IN_ISDIR:
            if mask & (IN_CREATE | IN_MOVED_TO):
                if not self.recursive:
                    return []
                return self._add_tree(path, root)
            if mask & (IN_DELETE | IN_MOVED_FROM):
                self._drop_dir(path)
                return [FileEvent(EVENT_RMDIR, root, path)]
            return []
        if mask & (IN_CLOSE_WRITE | IN_MOVED_TO | IN_CREATE):
            return [FileEvent(EVENT_UPSERT, root, path)]
        if mask & (IN_DELETE | IN_MOVED_FROM):
            return [FileEvent(EVENT_DELETE, root, path)]
        return []

    def _drop_dir(self, directory: pathlib.Path) -> None:
        """Forget watches on ``directory`` and everything under it."""
        doomed = [
            (wd, watched)
            for wd, (watched, _) in self._watches.items()
            if watched == directory or directory in watched.parents
        ]
        for wd, watched in doomed:
            self._watches.pop(wd, None)
            self._wd_by_dir.pop(watched, None)
            self._libc.inotify_rm_watch(self._fd, wd)

    def close(self) -> None:
        if self._fd >= 0:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = -1
            self._watches.clear()
            self._wd_by_dir.clear()

    def __enter__(self) -> "InotifyWatcher":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


class PollWatcher:
    """Portable fallback: emit events by diffing full walks of the roots."""

    backend = "poll"

    def __init__(
        self,
        roots: Sequence[PathLike],
        pattern: str = "*",
        recursive: bool = True,
    ) -> None:
        if not roots:
            raise ValueError("at least one watch root is required")
        self.roots = [pathlib.Path(root).resolve() for root in roots]
        for root in self.roots:
            if not root.is_dir():
                raise FileNotFoundError(f"watch root not found: {root}")
        self.pattern = pattern
        self.recursive = recursive
        self._snapshot: Dict[pathlib.Path, Tuple[int, int]] = {}
        self._primed = False

    def poll(self, timeout: float = 0.0) -> List[FileEvent]:
        """One diffing walk; ``timeout`` is ignored (the walk is the wait)."""
        events: List[FileEvent] = []
        seen: Dict[pathlib.Path, Tuple[int, int]] = {}
        unstatable: set = set()
        for root in self.roots:
            try:
                paths = list(iter_contract_files(
                    root, self.pattern, recursive=self.recursive
                ))
            except FileNotFoundError:
                warnings.warn(
                    f"ingest: watch root vanished: {root}", stacklevel=2
                )
                continue
            for path in paths:
                try:
                    stat = path.stat()
                except OSError:
                    # transiently unstatable: keep the old snapshot entry
                    # and emit nothing -- a live file must never turn
                    # into a delete event
                    unstatable.add(path)
                    continue
                signature = (stat.st_size, stat.st_mtime_ns)
                seen[path] = signature
                if self._snapshot.get(path) != signature:
                    events.append(FileEvent(EVENT_UPSERT, root, path))
        for path, signature in self._snapshot.items():
            if path in seen:
                continue
            if path in unstatable:
                seen[path] = signature
                continue
            root = self._root_of(path)
            if root is not None:
                events.append(FileEvent(EVENT_DELETE, root, path))
        self._snapshot = seen
        self._primed = True
        return events

    def _root_of(self, path: pathlib.Path) -> Optional[pathlib.Path]:
        for root in self.roots:
            if path == root or root in path.parents:
                return root
        return None

    def close(self) -> None:
        self._snapshot.clear()

    def __enter__(self) -> "PollWatcher":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def open_watcher(
    roots: Sequence[PathLike],
    pattern: str = "*",
    recursive: bool = True,
    backend: str = "auto",
) -> Union[InotifyWatcher, PollWatcher]:
    """Build the best available watcher over ``roots``.

    ``backend`` is ``"auto"`` (inotify where it works, else poll),
    ``"inotify"`` (fail loudly if unsupported) or ``"poll"``.
    """
    if backend not in ("auto", "inotify", "poll"):
        raise ValueError(f"unknown watcher backend {backend!r}")
    if backend == "poll":
        return PollWatcher(roots, pattern, recursive=recursive)
    if backend == "inotify" or InotifyWatcher.available():
        return InotifyWatcher(roots, pattern, recursive=recursive)
    return PollWatcher(roots, pattern, recursive=recursive)
