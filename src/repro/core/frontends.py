"""Platform frontends: the seam that makes ScamDetect platform-agnostic.

A frontend knows how to turn raw contract code of one platform into the
shared IR views the rest of the pipeline consumes (control-flow graph and
normalized opcode sequence).  Adding a new platform means adding a frontend
here -- nothing downstream changes.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Union

from repro.evm.cfg_builder import build_cfg as build_evm_cfg
from repro.evm.disassembler import disassemble_to_ir as evm_disassemble_to_ir
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instruction import IRInstruction
from repro.wasm.cfg_builder import build_cfg as build_wasm_cfg
from repro.wasm.encoder import MAGIC as WASM_MAGIC
from repro.wasm.parser import parse_module


class PlatformFrontend(abc.ABC):
    """Lowers one platform's contract code into the shared IR."""

    #: Platform identifier ("evm", "wasm", ...).
    name: str = ""

    @abc.abstractmethod
    def build_cfg(self, code: bytes, name: str = "") -> ControlFlowGraph:
        """Build the control-flow graph of ``code``."""

    @abc.abstractmethod
    def lower(self, code: bytes) -> List[IRInstruction]:
        """Lower ``code`` into a flat list of IR instructions."""

    @abc.abstractmethod
    def sniff(self, code: bytes) -> bool:
        """Return True if ``code`` plausibly belongs to this platform."""


class EVMFrontend(PlatformFrontend):
    """Frontend for Ethereum Virtual Machine runtime bytecode."""

    name = "evm"

    def build_cfg(self, code: bytes, name: str = "") -> ControlFlowGraph:
        return build_evm_cfg(code, name=name)

    def lower(self, code: bytes) -> List[IRInstruction]:
        return evm_disassemble_to_ir(code)

    def sniff(self, code: bytes) -> bool:
        # EVM runtime code has no magic header; accept anything that is not
        # recognisably WASM and decodes to at least one instruction.
        return bool(code) and not code.startswith(WASM_MAGIC)


class WasmFrontend(PlatformFrontend):
    """Frontend for WebAssembly contract modules."""

    name = "wasm"

    def build_cfg(self, code: bytes, name: str = "") -> ControlFlowGraph:
        return build_wasm_cfg(code, name=name)

    def lower(self, code: bytes) -> List[IRInstruction]:
        module = parse_module(code)
        instructions: List[IRInstruction] = []
        offset = 0
        for function in module.functions:
            for entry in function.body:
                instructions.append(IRInstruction(
                    offset=offset, mnemonic=entry.name,
                    category=entry.opcode.category,
                    operand=entry.operands[0] if entry.operands else None,
                    platform="wasm"))
                offset += 1
        return instructions

    def sniff(self, code: bytes) -> bool:
        return code.startswith(WASM_MAGIC)


#: Registered frontends keyed by platform name.
FRONTEND_REGISTRY: Dict[str, PlatformFrontend] = {
    "evm": EVMFrontend(),
    "wasm": WasmFrontend(),
}


def get_frontend(platform: str) -> PlatformFrontend:
    """Return the frontend for ``platform``; raises KeyError if unknown."""
    try:
        return FRONTEND_REGISTRY[platform.lower()]
    except KeyError:
        raise KeyError(f"no frontend registered for platform {platform!r}; "
                       f"known platforms: {sorted(FRONTEND_REGISTRY)}") from None


def detect_platform(code: Union[bytes, bytearray, str]) -> str:
    """Best-effort platform sniffing for raw contract code.

    WASM modules are identified by their magic header; everything else is
    treated as EVM runtime bytecode (hex strings are accepted).
    """
    if isinstance(code, str):
        text = code.strip()
        if text.startswith(("0x", "0X")):
            text = text[2:]
        try:
            code = bytes.fromhex(text)
        except ValueError:
            raise ValueError("string input must be hex-encoded bytecode") from None
    code = bytes(code)
    if FRONTEND_REGISTRY["wasm"].sniff(code):
        return "wasm"
    return "evm"
