"""ScamDetect core: the platform-agnostic detection pipeline and public API.

The core package ties the substrates together:

* :mod:`repro.core.frontends` -- platform frontends (EVM, WASM) and platform
  sniffing, all lowering into the shared IR.
* :mod:`repro.core.config` -- pipeline configuration.
* :mod:`repro.core.pipeline` -- the trainable bytecode -> CFG -> GNN pipeline.
* :mod:`repro.core.detector` -- the high-level :class:`ScamDetector` API
  (train / scan / scan_many / scan_directory / save-load).
* :mod:`repro.core.report` -- verdict report structures.
* :mod:`repro.core.persistence` -- model bundles with graph-fingerprint
  staleness checks (pairs with :mod:`repro.service.cache`).
"""

from repro.core.frontends import (
    PlatformFrontend,
    EVMFrontend,
    WasmFrontend,
    get_frontend,
    detect_platform,
    FRONTEND_REGISTRY,
)
from repro.core.config import ScamDetectConfig
from repro.core.pipeline import ScamDetectPipeline
from repro.core.report import VerdictReport, ScanSummary
from repro.core.detector import ScamDetector
from repro.core.indicators import Indicator, extract_indicators, format_indicators
from repro.core.persistence import load_pipeline, save_pipeline

__all__ = [
    "PlatformFrontend",
    "EVMFrontend",
    "WasmFrontend",
    "get_frontend",
    "detect_platform",
    "FRONTEND_REGISTRY",
    "ScamDetectConfig",
    "ScamDetectPipeline",
    "VerdictReport",
    "ScanSummary",
    "ScamDetector",
    "Indicator",
    "extract_indicators",
    "format_indicators",
    "save_pipeline",
    "load_pipeline",
]
