"""Verdict reports produced by the detector."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List

from repro.datasets.labels import LABEL_NAMES


@dataclass
class VerdictReport:
    """The detector's verdict on a single contract.

    Attributes:
        sample_id: Identifier supplied by the caller (or auto-generated).
        platform: Detected or supplied platform.
        label: Predicted label (0 benign / 1 malicious).
        malicious_probability: Model probability of the malicious class.
        cfg_blocks: Number of basic blocks in the analysed CFG.
        cfg_edges: Number of CFG edges.
        num_instructions: Number of decoded instructions.
        model: Description of the model that produced the verdict.
        notes: Free-form analyst notes (e.g. indicators that fired).
        stage: Pipeline stage that decided the verdict: ``"gnn"`` (full
            lowering + GNN inference) or ``"prefilter"`` (the cascade's
            tier-0 confident-benign short-circuit).
    """

    sample_id: str
    platform: str
    label: int
    malicious_probability: float
    cfg_blocks: int = 0
    cfg_edges: int = 0
    num_instructions: int = 0
    model: str = ""
    notes: List[str] = field(default_factory=list)
    stage: str = "gnn"

    @property
    def verdict(self) -> str:
        """Human-readable verdict string."""
        return LABEL_NAMES.get(self.label, str(self.label))

    @property
    def is_malicious(self) -> bool:
        return self.label == 1

    def to_dict(self) -> Dict[str, object]:
        result = asdict(self)
        result["verdict"] = self.verdict
        return result

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def format(self) -> str:
        """Short single-contract report used by the examples."""
        lines = [
            f"contract {self.sample_id} [{self.platform}]",
            f"  verdict:     {self.verdict} "
            f"(p_malicious={self.malicious_probability:.3f})",
            f"  cfg:         {self.cfg_blocks} blocks, {self.cfg_edges} edges, "
            f"{self.num_instructions} instructions",
            f"  model:       {self.model}",
        ]
        if self.stage != "gnn":
            lines.append(f"  stage:       {self.stage}")
        for note in self.notes:
            lines.append(f"  note:        {note}")
        return "\n".join(lines)


@dataclass
class ScanSummary:
    """Aggregate of a batch scan."""

    reports: List[VerdictReport] = field(default_factory=list)

    @property
    def num_scanned(self) -> int:
        return len(self.reports)

    @property
    def num_malicious(self) -> int:
        return sum(1 for report in self.reports if report.is_malicious)

    @property
    def num_benign(self) -> int:
        return self.num_scanned - self.num_malicious

    def malicious_reports(self) -> List[VerdictReport]:
        return [report for report in self.reports if report.is_malicious]

    def format(self) -> str:
        lines = [f"scanned {self.num_scanned} contracts: "
                 f"{self.num_malicious} malicious, {self.num_benign} benign"]
        for report in self.malicious_reports():
            lines.append(f"  - {report.sample_id} [{report.platform}] "
                         f"p={report.malicious_probability:.3f}")
        return "\n".join(lines)
