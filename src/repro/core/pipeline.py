"""The trainable ScamDetect pipeline: bytecode -> CFG -> GNN -> verdict."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ScamDetectConfig
from repro.core.frontends import detect_platform, get_frontend
from repro.datasets.corpus import ContractSample, Corpus
from repro.gnn.data import ContractGraph, cfg_to_graph
from repro.gnn.model import GraphClassifier
from repro.gnn.training import GNNTrainer
from repro.ir.features import NUM_STRUCTURAL_FEATURES, SEMANTIC_MARKERS
from repro.ir.normalization import CATEGORY_VOCABULARY
from repro.ml.metrics import classification_summary


class ScamDetectPipeline:
    """End-to-end trainable detection pipeline.

    The pipeline is platform-agnostic: training corpora and scan inputs may
    mix EVM and WASM contracts freely, because every sample is lowered into
    the shared IR by its platform frontend before reaching the model.

    Args:
        config: Pipeline hyper-parameters (defaults are sensible for the
            synthetic corpora used in the experiments).
    """

    def __init__(self, config: Optional[ScamDetectConfig] = None) -> None:
        self.config = config or ScamDetectConfig()
        self.config.validate()
        self._trainer: Optional[GNNTrainer] = None
        self._model: Optional[GraphClassifier] = None

    # ------------------------------------------------------------------ #
    # graph preparation

    def _node_feature_dim(self) -> int:
        width = len(CATEGORY_VOCABULARY)
        if self.config.include_marker_features:
            width += len(SEMANTIC_MARKERS)
        if self.config.include_structural_features:
            width += NUM_STRUCTURAL_FEATURES
        return width

    def sample_to_graph(self, sample: ContractSample) -> ContractGraph:
        """Lower one sample into a GNN-ready graph via its platform frontend."""
        frontend = get_frontend(sample.platform)
        cfg = frontend.build_cfg(sample.bytecode, name=sample.sample_id)
        return cfg_to_graph(cfg, label=sample.label, sample_id=sample.sample_id,
                            include_structural=self.config.include_structural_features,
                            feature_mode=self.config.node_feature_mode,
                            include_markers=self.config.include_marker_features,
                            max_nodes=self.config.max_nodes)

    def corpus_to_graphs(self, corpus: Corpus) -> List[ContractGraph]:
        """Lower a whole corpus into graphs."""
        return [self.sample_to_graph(sample) for sample in corpus]

    # ------------------------------------------------------------------ #
    # training and inference

    @property
    def is_fitted(self) -> bool:
        return self._trainer is not None

    @property
    def model(self) -> GraphClassifier:
        if self._model is None:
            raise RuntimeError("pipeline used before fit")
        return self._model

    def fit(self, corpus: Corpus,
            validation_corpus: Optional[Corpus] = None) -> "ScamDetectPipeline":
        """Train the GNN on ``corpus`` (optionally with early-stopping validation)."""
        graphs = self.corpus_to_graphs(corpus)
        validation_graphs = (self.corpus_to_graphs(validation_corpus)
                             if validation_corpus is not None else None)
        self._model = GraphClassifier(
            architecture=self.config.architecture,
            in_features=self._node_feature_dim(),
            hidden_features=self.config.hidden_features,
            num_layers=self.config.num_layers,
            readout_kind=self.config.readout,
            dropout_rate=self.config.dropout,
            seed=self.config.seed)
        self._trainer = GNNTrainer(
            self._model,
            learning_rate=self.config.learning_rate,
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            weight_decay=self.config.weight_decay,
            seed=self.config.seed,
            patience=5 if validation_graphs is not None else None)
        self._trainer.fit(graphs,
                          validation_graphs=validation_graphs,
                          validation_labels=[g.label for g in validation_graphs]
                          if validation_graphs is not None else None)
        return self

    def predict_proba(self, corpus: Corpus) -> np.ndarray:
        """Malicious-class probability matrix over ``corpus``."""
        if self._trainer is None:
            raise RuntimeError("pipeline used before fit")
        graphs = self.corpus_to_graphs(corpus)
        return self._trainer.predict_proba(graphs)

    def predict(self, corpus: Corpus) -> np.ndarray:
        """Predicted labels over ``corpus``."""
        return np.argmax(self.predict_proba(corpus), axis=1)

    def evaluate(self, corpus: Corpus) -> Dict[str, float]:
        """Headline metrics of the fitted pipeline on ``corpus``."""
        probabilities = self.predict_proba(corpus)
        predictions = np.argmax(probabilities, axis=1)
        labels = np.asarray(corpus.labels())
        return classification_summary(labels, predictions,
                                      scores=probabilities[:, 1])

    # ------------------------------------------------------------------ #
    # raw-bytecode entry points (used by the detector API)

    def analyse_bytecode(self, code: bytes, platform: Optional[str] = None,
                         sample_id: str = "contract"
                         ) -> Tuple[ContractGraph, str]:
        """Lower raw contract code (platform optionally sniffed) into a graph."""
        resolved_platform = platform or detect_platform(code)
        sample = ContractSample(sample_id=sample_id, platform=resolved_platform,
                                bytecode=bytes(code), label=0, family="unknown")
        return self.sample_to_graph(sample), resolved_platform

    def predict_bytecode(self, code: bytes, platform: Optional[str] = None
                         ) -> Tuple[int, float, ContractGraph, str]:
        """Predict on raw bytecode; returns (label, p_malicious, graph, platform)."""
        if self._trainer is None:
            raise RuntimeError("pipeline used before fit")
        graph, resolved_platform = self.analyse_bytecode(code, platform)
        probabilities = self._trainer.predict_proba([graph])[0]
        label = int(np.argmax(probabilities))
        return label, float(probabilities[1]), graph, resolved_platform

    def describe(self) -> str:
        """One-line description of the fitted model (or the configuration)."""
        if self._model is not None:
            return f"scamdetect-{self._model.describe()}"
        return (f"scamdetect-{self.config.architecture}"
                f"(unfitted, layers={self.config.num_layers})")
