"""The trainable ScamDetect pipeline: bytecode -> CFG -> GNN -> verdict."""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.core.config import ScamDetectConfig
from repro.core.frontends import detect_platform, get_frontend
from repro.datasets.corpus import ContractSample, Corpus
from repro.gnn.data import ContractGraph, cfg_to_graph
from repro.gnn.model import GraphClassifier
from repro.gnn.training import GNNTrainer
from repro.ir.features import NUM_STRUCTURAL_FEATURES, SEMANTIC_MARKERS
from repro.ir.normalization import CATEGORY_VOCABULARY
from repro.ml.metrics import classification_summary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.cascade.head import CascadeConfig, CascadeHead
    from repro.service.cache import GraphCache


class ScamDetectPipeline:
    """End-to-end trainable detection pipeline.

    The pipeline is platform-agnostic: training corpora and scan inputs may
    mix EVM and WASM contracts freely, because every sample is lowered into
    the shared IR by its platform frontend before reaching the model.

    Lowering (bytecode -> CFG -> graph) is the dominant cost of both training
    and scanning, so every lowering entry point honours the optional
    ``graph_cache`` hook: attach a
    :class:`~repro.service.cache.GraphCache` (directly or via
    :meth:`set_graph_cache`) and repeated lowerings of identical bytecode are
    served from the cache instead of being recomputed.

    Args:
        config: Pipeline hyper-parameters (defaults are sensible for the
            synthetic corpora used in the experiments).
        graph_cache: Optional content-addressed cache consulted by
            :meth:`sample_to_graph` and everything built on it.
    """

    def __init__(self, config: Optional[ScamDetectConfig] = None,
                 graph_cache: Optional["GraphCache"] = None) -> None:
        self.config = config or ScamDetectConfig()
        self.config.validate()
        self.graph_cache = graph_cache
        self._check_cache_fingerprint()
        self._trainer: Optional[GNNTrainer] = None
        self._model: Optional[GraphClassifier] = None
        #: Optional tier-0 pre-filter head (see :mod:`repro.cascade`);
        #: attached by :meth:`fit_cascade` or restored from a bundle.
        self.cascade: Optional["CascadeHead"] = None

    def set_graph_cache(self, cache: Optional["GraphCache"]) -> "ScamDetectPipeline":
        """Attach (or detach, with None) a lowering cache; returns self.

        Raises ValueError if the cache was built for a different graph
        fingerprint: serving graphs lowered under another config would
        silently change verdicts, so a mismatch is always an error.
        """
        self.graph_cache = cache
        self._check_cache_fingerprint()
        return self

    def _check_cache_fingerprint(self) -> None:
        cache = self.graph_cache
        if cache is not None and cache.fingerprint != self.config.graph_fingerprint():
            raise ValueError(
                f"graph cache fingerprint {cache.fingerprint!r} does not match "
                f"the pipeline config fingerprint "
                f"{self.config.graph_fingerprint()!r}; build the cache with "
                f"GraphCache.for_config(pipeline.config)")

    # ------------------------------------------------------------------ #
    # graph preparation

    def _node_feature_dim(self) -> int:
        width = len(CATEGORY_VOCABULARY)
        if self.config.include_marker_features:
            width += len(SEMANTIC_MARKERS)
        if self.config.include_structural_features:
            width += NUM_STRUCTURAL_FEATURES
        return width

    def sample_to_graph(self, sample: ContractSample) -> ContractGraph:
        """Lower one sample into a GNN-ready graph via its platform frontend.

        When a ``graph_cache`` is attached the lowering is served from the
        cache on a hit and stored into it on a miss; cached graphs are
        bit-identical to freshly lowered ones.
        """
        cache = self.graph_cache
        if cache is not None:
            cached = cache.get(sample.bytecode, sample.platform,
                               label=sample.label, sample_id=sample.sample_id)
            if cached is not None:
                return cached
        frontend = get_frontend(sample.platform)
        cfg = frontend.build_cfg(sample.bytecode, name=sample.sample_id)
        graph = cfg_to_graph(cfg, label=sample.label, sample_id=sample.sample_id,
                             include_structural=self.config.include_structural_features,
                             feature_mode=self.config.node_feature_mode,
                             include_markers=self.config.include_marker_features,
                             max_nodes=self.config.max_nodes)
        if cache is not None:
            cache.put(sample.bytecode, sample.platform, graph)
        return graph

    def corpus_to_graphs(self, corpus: Corpus) -> List[ContractGraph]:
        """Lower a whole corpus into graphs (cache-aware, order-preserving)."""
        return [self.sample_to_graph(sample) for sample in corpus]

    # ------------------------------------------------------------------ #
    # training and inference

    @property
    def is_fitted(self) -> bool:
        return self._trainer is not None

    @property
    def model(self) -> GraphClassifier:
        if self._model is None:
            raise RuntimeError("pipeline used before fit")
        return self._model

    def fit(self, corpus: Corpus,
            validation_corpus: Optional[Corpus] = None) -> "ScamDetectPipeline":
        """Train the GNN on ``corpus`` (optionally with early-stopping validation)."""
        graphs = self.corpus_to_graphs(corpus)
        validation_graphs = (self.corpus_to_graphs(validation_corpus)
                             if validation_corpus is not None else None)
        self._model = GraphClassifier(
            architecture=self.config.architecture,
            in_features=self._node_feature_dim(),
            hidden_features=self.config.hidden_features,
            num_layers=self.config.num_layers,
            readout_kind=self.config.readout,
            dropout_rate=self.config.dropout,
            seed=self.config.seed)
        self._trainer = GNNTrainer(
            self._model,
            learning_rate=self.config.learning_rate,
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            weight_decay=self.config.weight_decay,
            seed=self.config.seed,
            patience=5 if validation_graphs is not None else None)
        self._trainer.fit(graphs,
                          validation_graphs=validation_graphs,
                          validation_labels=[g.label for g in validation_graphs]
                          if validation_graphs is not None else None)
        return self

    def fit_cascade(self, corpus: Corpus,
                    cascade_config: Optional["CascadeConfig"] = None
                    ) -> "ScamDetectPipeline":
        """Train and attach the tier-0 cascade pre-filter on ``corpus``.

        The head is persisted inside the bundle by
        :func:`~repro.core.persistence.save_pipeline` and its fingerprint
        is folded into :meth:`model_fingerprint`, so attaching (or
        retraining) a cascade changes the model identity the registry and
        caches key on.
        """
        from repro.cascade.head import CascadeHead

        self.cascade = CascadeHead(cascade_config).fit(corpus)
        return self

    def predict_proba(self, corpus: Corpus) -> np.ndarray:
        """Malicious-class probability matrix over ``corpus``."""
        if self._trainer is None:
            raise RuntimeError("pipeline used before fit")
        graphs = self.corpus_to_graphs(corpus)
        return self._trainer.predict_proba(graphs)

    def predict(self, corpus: Corpus) -> np.ndarray:
        """Predicted labels over ``corpus``."""
        return np.argmax(self.predict_proba(corpus), axis=1)

    def evaluate(self, corpus: Corpus) -> Dict[str, float]:
        """Headline metrics of the fitted pipeline on ``corpus``."""
        probabilities = self.predict_proba(corpus)
        predictions = np.argmax(probabilities, axis=1)
        labels = np.asarray(corpus.labels())
        return classification_summary(labels, predictions,
                                      scores=probabilities[:, 1])

    # ------------------------------------------------------------------ #
    # raw-bytecode entry points (used by the detector API)

    def analyse_bytecode(self, code: bytes, platform: Optional[str] = None,
                         sample_id: str = "contract"
                         ) -> Tuple[ContractGraph, str]:
        """Lower raw contract code into a graph; returns (graph, platform).

        Args:
            code: Raw bytecode bytes.
            platform: "evm" or "wasm"; sniffed from the code when omitted.
            sample_id: Identifier carried into the graph for traceability.

        The lowering goes through :meth:`sample_to_graph`, so an attached
        ``graph_cache`` short-circuits repeated analyses of the same code.
        """
        resolved_platform = platform or detect_platform(code)
        sample = ContractSample(sample_id=sample_id, platform=resolved_platform,
                                bytecode=bytes(code), label=0, family="unknown")
        return self.sample_to_graph(sample), resolved_platform

    def predict_bytecode(self, code: bytes, platform: Optional[str] = None
                         ) -> Tuple[int, float, ContractGraph, str]:
        """Predict on raw bytecode; returns (label, p_malicious, graph, platform)."""
        if self._trainer is None:
            raise RuntimeError("pipeline used before fit")
        graph, resolved_platform = self.analyse_bytecode(code, platform)
        probabilities = self._trainer.predict_proba([graph])[0]
        label = int(np.argmax(probabilities))
        return label, float(probabilities[1]), graph, resolved_platform

    def describe(self) -> str:
        """One-line description of the fitted model (or the configuration)."""
        if self._model is not None:
            return f"scamdetect-{self._model.describe()}"
        return (f"scamdetect-{self.config.architecture}"
                f"(unfitted, layers={self.config.num_layers})")

    def model_fingerprint(self) -> str:
        """Content identity of the *fitted model*: the description plus a
        digest of every parameter tensor.

        :meth:`describe` is an architecture label -- two retrains of the
        same config share it even though their scores differ.  Anything
        that must never serve one model's verdicts as another's (the
        persistent :class:`~repro.registry.store.ScanRegistry`) keys on
        this fingerprint instead, which changes whenever any weight does.
        Hashing the ~1e3-1e5 parameters costs well under a millisecond, so
        callers may recompute it per scan batch.

        Raises:
            RuntimeError: If called before :meth:`fit` (an unfitted model
                has no scores to identify).
        """
        if self._model is None:
            raise RuntimeError("pipeline used before fit")
        digest = hashlib.sha256(self.describe().encode("utf-8"))
        for parameter in self._model.parameters():
            array = np.ascontiguousarray(parameter.data)
            digest.update(str(array.shape).encode("utf-8"))
            digest.update(array.tobytes())
        if self.cascade is not None:
            # an attached tier-0 head changes what the bundle can decide,
            # so its own fingerprint is part of the model identity --
            # registry rows and caches never mix cascade generations
            digest.update(b"cascade:")
            digest.update(self.cascade.fingerprint().encode("utf-8"))
        return digest.hexdigest()[:16]
