"""High-level ScamDetect API: train once, scan contracts, get verdict reports."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union, TYPE_CHECKING

from repro.core.config import ScamDetectConfig
from repro.core.frontends import detect_platform, get_frontend
from repro.core.indicators import extract_indicators, format_indicators
from repro.core.pipeline import ScamDetectPipeline
from repro.core.report import ScanSummary, VerdictReport
from repro.datasets.corpus import Corpus
from repro.evm.contracts import is_minimal_proxy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.cascade.head import CascadeConfig, CascadeDecision, CascadeHead
    from repro.gnn.data import ContractGraph
    from repro.registry.store import ScanRegistry
    from repro.service.batch import BatchScanResult
    from repro.service.cache import GraphCache

BytecodeLike = Union[bytes, bytearray, str]


def coerce_bytecode(code: BytecodeLike) -> bytes:
    """Normalize any accepted bytecode representation to raw bytes.

    Accepts ``bytes``/``bytearray`` as-is and hex strings with or without a
    ``0x`` prefix.  Every scanning entry point funnels through this helper so
    single-contract and batch scans agree byte-for-byte on their input.
    """
    if isinstance(code, (bytes, bytearray)):
        return bytes(code)
    # collapse ALL whitespace, not just the edges: line-wrapped hex dumps are
    # common, and bytes.fromhex only skips interior spaces from Python 3.11 on
    text = "".join(code.split())
    if text.startswith(("0x", "0X")):
        text = text[2:]
    return bytes.fromhex(text)


# Backwards-compatible private alias (pre-service-layer name).
_to_bytes = coerce_bytecode


class ScamDetector:
    """The user-facing detector.

    Typical usage::

        detector = ScamDetector()
        detector.train(training_corpus)
        report = detector.scan(bytecode)         # platform sniffed automatically
        if report.is_malicious:
            print(report.format())

    For repeated or high-volume scanning, attach a graph cache and use the
    batch entry points (both delegate to
    :class:`~repro.service.batch.BatchScanner`)::

        from repro.service import GraphCache

        cache = GraphCache.for_config(detector.config, disk_dir="~/.scamdetect")
        result = detector.scan_many(codes, cache=cache)
        result = detector.scan_directory("submissions/", cache=cache)

    Args:
        config: Pipeline configuration; defaults train a 2-layer GCN.
        threshold: Probability above which a contract is flagged malicious.
        explain: Attach human-readable indicator notes to every report
            (costs one extra CFG build per scan; batch deployments that only
            need verdicts can disable it).
        cascade: Enable the tier-0 cascade pre-filter on every scan entry
            point: confident-benign contracts short-circuit before graph
            lowering (verdicts carry ``stage: "prefilter"``), the uncertain
            band escalates to the GNN.  Requires a cascade head on the
            pipeline (train with ``cascade=True`` or load a bundle saved
            with one); scanning without one raises.
        cascade_margin: Override the head's configured safety margin
            (larger = fewer short-circuits); ``None`` keeps the trained
            default.
    """

    def __init__(self, config: Optional[ScamDetectConfig] = None,
                 threshold: float = 0.5, explain: bool = True,
                 cascade: bool = False,
                 cascade_margin: Optional[float] = None) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if cascade_margin is not None and cascade_margin < 0.0:
            raise ValueError("cascade_margin must be >= 0")
        self.config = config or ScamDetectConfig()
        self.threshold = threshold
        self.explain = explain
        self.cascade = bool(cascade)
        self.cascade_margin = cascade_margin
        self.pipeline = ScamDetectPipeline(self.config)

    # ------------------------------------------------------------------ #

    @property
    def is_trained(self) -> bool:
        """True once :meth:`train` (or :meth:`load`) has produced a model."""
        return self.pipeline.is_fitted

    def train(self, corpus: Corpus,
              validation_corpus: Optional[Corpus] = None,
              cascade: Union[bool, "CascadeConfig", None] = None
              ) -> "ScamDetector":
        """Train the underlying pipeline on a labelled corpus; returns self.

        Args:
            corpus: Labelled training corpus (may mix EVM and WASM samples).
            validation_corpus: Optional held-out corpus enabling
                early-stopping on validation accuracy.
            cascade: ``True`` (or a
                :class:`~repro.cascade.head.CascadeConfig`) additionally
                trains the tier-0 pre-filter head on the same corpus and
                attaches it to the pipeline; ``None``/``False`` trains the
                GNN only.  Training the head changes
                :meth:`~repro.core.pipeline.ScamDetectPipeline.
                model_fingerprint`.
        """
        self.pipeline.fit(corpus, validation_corpus=validation_corpus)
        if cascade:
            self.pipeline.fit_cascade(
                corpus, cascade if cascade is not True else None)
        return self

    def evaluate(self, corpus: Corpus) -> Dict[str, float]:
        """Headline metrics (accuracy, precision, recall, F1, ROC-AUC) on a
        labelled corpus."""
        return self.pipeline.evaluate(corpus)

    # ------------------------------------------------------------------ #
    # tier-0 cascade pre-filter

    def cascade_head(self) -> Optional["CascadeHead"]:
        """The *active* tier-0 head, or None when the cascade is off.

        Raises RuntimeError when the cascade was requested but the
        pipeline carries no trained head (the bundle was saved without
        one) -- silently scanning GNN-only would misreport the served
        configuration.
        """
        if not self.cascade:
            return None
        head = self.pipeline.cascade
        if head is None or not head.is_fitted:
            raise RuntimeError(
                "cascade scanning requested but the pipeline has no trained "
                "cascade head; train with cascade=True (CLI: train "
                "--cascade) or load a bundle saved with one")
        return head

    def effective_cascade_margin(self) -> float:
        """The margin in force for this detector's scans."""
        head = self.cascade_head()
        if head is None:
            raise RuntimeError("cascade is not enabled on this detector")
        return head.effective_margin(self.cascade_margin)

    def cascade_decide(self, raw_codes: Sequence[bytes],
                       platforms: Sequence[str]
                       ) -> Optional[List["CascadeDecision"]]:
        """Tier-0 decisions for resolved-platform raw bytecode, or None
        when the cascade is off.

        The detector's own verdict ``threshold`` caps the short-circuit
        band, so a short-circuited report is always labelled benign no
        matter how aggressive the scan threshold is.
        """
        head = self.cascade_head()
        if head is None:
            return None
        return head.decide(raw_codes, platforms,
                           margin=self.cascade_margin,
                           benign_ceiling=self.threshold)

    def build_prefilter_report(self, raw: bytes, sample_id: str,
                               platform: str,
                               probability: float) -> VerdictReport:
        """Compose the report for a tier-0 short-circuited contract.

        Mirrors :meth:`build_report` minus everything that needs lowering:
        no CFG statistics, no indicator notes (they require a CFG build,
        which is exactly the cost the short-circuit avoids).  The cheap
        raw-bytes minimal-proxy check still runs so that warning is never
        lost.  ``stage: "prefilter"`` marks the verdict's provenance.
        """
        probability = round(float(probability), 9)
        notes: List[str] = []
        if platform == "evm" and is_minimal_proxy(raw):
            notes.append("ERC-1167 minimal proxy: verdict reflects the proxy stub, "
                         "scan the implementation contract for a definitive answer")
        return VerdictReport(
            sample_id=sample_id,
            platform=platform,
            label=1 if probability >= self.threshold else 0,
            malicious_probability=probability,
            cfg_blocks=0,
            cfg_edges=0,
            num_instructions=len(raw),
            model=self.pipeline.describe(),
            notes=notes,
            stage="prefilter")

    def model_identity(self) -> str:
        """The identity registry rows and caches are keyed on.

        The pipeline's :meth:`~repro.core.pipeline.ScamDetectPipeline.
        model_fingerprint` already folds in the fingerprint of an attached
        cascade head; on top of that, scanning with the cascade *enabled*
        (and the margin in force) is recorded in the identity, so verdict
        rows written by a cascade scan are never served to a GNN-only scan
        of the same bundle, or to a scan at a different margin.
        """
        identity = self.pipeline.model_fingerprint()
        if self.cascade:
            margin = self.effective_cascade_margin()
            identity = f"{identity}+cascade-m{margin:.9g}"
        return identity

    # ------------------------------------------------------------------ #

    def build_report(self, raw: bytes, sample_id: str, platform: str,
                     probability: float, graph: "ContractGraph") -> VerdictReport:
        """Compose the :class:`VerdictReport` for one scored contract.

        Single-contract :meth:`scan` and the batch scanner both call this,
        which is what guarantees their verdicts are identical: the threshold
        rule, indicator notes and CFG statistics all come from the same code
        path.  The probability is quantized to 9 decimals before anything
        else happens so that verdicts are *batch-invariant*: BLAS reduction
        order differs between a lone forward pass and the same graph inside
        a stacked mini-batch (~1e-13 score noise), and quantizing far above
        that noise floor -- but far below any decision-relevant precision --
        keeps the published report independent of batch composition.
        """
        probability = round(float(probability), 9)
        label = 1 if probability >= self.threshold else 0
        notes: List[str] = []
        if self.explain:
            cfg = get_frontend(platform).build_cfg(raw, name=sample_id)
            notes.extend(format_indicators(extract_indicators(cfg)))
        if platform == "evm" and is_minimal_proxy(raw):
            notes.append("ERC-1167 minimal proxy: verdict reflects the proxy stub, "
                         "scan the implementation contract for a definitive answer")
        if graph.num_nodes >= (self.config.max_nodes or 512):
            notes.append("CFG truncated to max_nodes; consider raising "
                         "ScamDetectConfig.max_nodes for very large contracts")
        return VerdictReport(
            sample_id=sample_id,
            platform=platform,
            label=label,
            malicious_probability=probability,
            cfg_blocks=graph.num_nodes,
            cfg_edges=int(graph.adjacency.sum() - graph.num_nodes),
            num_instructions=len(raw),
            model=self.pipeline.describe(),
            notes=notes)

    def scan(self, code: BytecodeLike, platform: Optional[str] = None,
             sample_id: str = "contract") -> VerdictReport:
        """Scan a single contract and return a :class:`VerdictReport`.

        Args:
            code: Raw bytecode (bytes or hex string).
            platform: "evm" or "wasm"; sniffed from the code when omitted.
            sample_id: Identifier echoed into the report.

        Raises:
            RuntimeError: If called before :meth:`train` / :meth:`load`.
        """
        if not self.is_trained:
            raise RuntimeError("ScamDetector.scan called before train()")
        raw = coerce_bytecode(code)
        resolved_platform = platform or detect_platform(raw)
        decisions = self.cascade_decide([raw], [resolved_platform])
        if decisions is not None and decisions[0].short_circuit:
            return self.build_prefilter_report(
                raw, sample_id, resolved_platform, decisions[0].probability)
        _, probability, graph, resolved_platform = self.pipeline.predict_bytecode(
            raw, resolved_platform)
        return self.build_report(raw, sample_id, resolved_platform,
                                 probability, graph)

    def scan_batch(self, codes: Iterable[BytecodeLike],
                   platform: Optional[str] = None,
                   sample_ids: Optional[Sequence[str]] = None) -> ScanSummary:
        """Scan many contracts one-by-one and return a :class:`ScanSummary`.

        This is the simple sequential loop; prefer :meth:`scan_many` for
        large inputs -- it lowers in parallel, batches GNN inference and can
        reuse a graph cache across calls.
        """
        summary = ScanSummary()
        for index, code in enumerate(codes):
            sample_id = (sample_ids[index] if sample_ids is not None
                         else f"contract-{index:04d}")
            summary.reports.append(self.scan(code, platform=platform,
                                             sample_id=sample_id))
        return summary

    def scan_many(self, codes: Iterable[BytecodeLike],
                  platform: Optional[str] = None,
                  sample_ids: Optional[Sequence[str]] = None,
                  cache: Optional["GraphCache"] = None,
                  max_workers: Optional[int] = None,
                  shards: int = 1,
                  registry: Optional["ScanRegistry"] = None
                  ) -> "BatchScanResult":
        """Scan many contracts through the batch service layer.

        Args:
            codes: Bytecode inputs (bytes or hex strings).
            platform: Force one platform for all inputs; sniffed per input
                when omitted.
            sample_ids: Optional identifiers, parallel to ``codes``.
            cache: Optional :class:`~repro.service.cache.GraphCache`; attach
                the same cache across calls to skip re-lowering repeated
                bytecode.
            max_workers: Worker threads for frontend lowering (defaults to
                the executor's heuristic).
            shards: Scan worker *processes*; ``>= 2`` shards the scan
                across a :class:`~repro.service.sharded.ShardedScanner`
                pool by content hash (verdicts stay bit-identical to
                :meth:`scan`).  The throwaway pool is released before this
                returns; hold a ``BatchScanner(shards=N)`` instead to amortise
                pool startup over many calls.
            registry: Optional persistent
                :class:`~repro.registry.store.ScanRegistry`: known bytecode
                is answered from the store without lowering or inference,
                and fresh verdicts are recorded durably (see
                :class:`~repro.service.batch.BatchScanner`).

        Returns:
            A :class:`~repro.service.batch.BatchScanResult` with per-contract
            reports (bit-identical to :meth:`scan`), wall-clock timing and
            cache statistics.
        """
        from repro.service.batch import BatchScanner

        previous_cache = self.pipeline.graph_cache
        scanner = BatchScanner(self, cache=cache, max_workers=max_workers,
                               shards=shards, registry=registry)
        try:
            return scanner.scan_codes(codes, platform=platform,
                                      sample_ids=sample_ids)
        finally:
            # the scanner is throwaway here: restore whatever cache (or None)
            # the pipeline had so this call has no lasting side effect
            scanner.close()
            self.pipeline.graph_cache = previous_cache

    def scan_directory(self, directory, pattern: str = "*",
                       platform: Optional[str] = None,
                       cache: Optional["GraphCache"] = None,
                       max_workers: Optional[int] = None,
                       shards: int = 1,
                       registry: Optional["ScanRegistry"] = None,
                       recursive: bool = True) -> "BatchScanResult":
        """Scan every bytecode file under ``directory`` (see
        :meth:`~repro.service.batch.BatchScanner.scan_directory`).

        Files ending in ``.hex`` are parsed as hex text; anything else is
        read as raw binary.  Sample ids are the file names relative to
        ``directory``.  ``shards >= 2`` scans on a multi-process pool, and
        ``registry=`` answers known bytecode from the persistent verdict
        store (see :meth:`scan_many`).  ``recursive=False`` restricts the
        walk to the top level.
        """
        from repro.service.batch import BatchScanner

        previous_cache = self.pipeline.graph_cache
        scanner = BatchScanner(self, cache=cache, max_workers=max_workers,
                               shards=shards, registry=registry)
        try:
            return scanner.scan_directory(directory, pattern=pattern,
                                          platform=platform,
                                          recursive=recursive)
        finally:
            scanner.close()
            self.pipeline.graph_cache = previous_cache

    def save(self, path) -> None:
        """Persist the trained pipeline to ``path`` (.json + .npz pair).

        The bundle records the config's graph fingerprint so that loads can
        detect caches (or bundles) produced under an incompatible lowering
        configuration.
        """
        from repro.core.persistence import save_pipeline

        save_pipeline(self.pipeline, path)

    @classmethod
    def load(cls, path, threshold: float = 0.5, explain: bool = True,
             cascade: bool = False,
             cascade_margin: Optional[float] = None) -> "ScamDetector":
        """Load a detector previously written by :meth:`save`.

        Args:
            path: Base path of the ``.json``/``.npz`` bundle.
            threshold: Malicious-probability decision threshold.
            explain: Attach indicator notes to reports (see ``__init__``).
            cascade: Enable the tier-0 pre-filter; the bundle must have
                been saved with a trained cascade head (the first scan
                raises otherwise).
            cascade_margin: Override the head's configured margin (see
                ``__init__``).
        """
        from repro.core.persistence import load_pipeline

        pipeline = load_pipeline(path)
        detector = cls(pipeline.config, threshold=threshold, explain=explain,
                       cascade=cascade, cascade_margin=cascade_margin)
        detector.pipeline = pipeline
        return detector

    def scan_corpus(self, corpus: Corpus) -> ScanSummary:
        """Scan every sample of a corpus (labels in the corpus are ignored)."""
        summary = ScanSummary()
        for sample in corpus:
            summary.reports.append(self.scan(sample.bytecode, platform=sample.platform,
                                             sample_id=sample.sample_id))
        return summary
