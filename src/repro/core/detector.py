"""High-level ScamDetect API: train once, scan contracts, get verdict reports."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.config import ScamDetectConfig
from repro.core.frontends import get_frontend
from repro.core.indicators import extract_indicators, format_indicators
from repro.core.pipeline import ScamDetectPipeline
from repro.core.report import ScanSummary, VerdictReport
from repro.datasets.corpus import Corpus
from repro.evm.contracts import is_minimal_proxy

BytecodeLike = Union[bytes, bytearray, str]


def _to_bytes(code: BytecodeLike) -> bytes:
    if isinstance(code, (bytes, bytearray)):
        return bytes(code)
    text = code.strip()
    if text.startswith(("0x", "0X")):
        text = text[2:]
    return bytes.fromhex(text)


class ScamDetector:
    """The user-facing detector.

    Typical usage::

        detector = ScamDetector()
        detector.train(training_corpus)
        report = detector.scan(bytecode)         # platform sniffed automatically
        if report.is_malicious:
            print(report.format())

    Args:
        config: Pipeline configuration; defaults train a 2-layer GCN.
        threshold: Probability above which a contract is flagged malicious.
    """

    def __init__(self, config: Optional[ScamDetectConfig] = None,
                 threshold: float = 0.5, explain: bool = True) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.config = config or ScamDetectConfig()
        self.threshold = threshold
        self.explain = explain
        self.pipeline = ScamDetectPipeline(self.config)

    # ------------------------------------------------------------------ #

    @property
    def is_trained(self) -> bool:
        return self.pipeline.is_fitted

    def train(self, corpus: Corpus,
              validation_corpus: Optional[Corpus] = None) -> "ScamDetector":
        """Train the underlying pipeline on a labelled corpus."""
        self.pipeline.fit(corpus, validation_corpus=validation_corpus)
        return self

    def evaluate(self, corpus: Corpus) -> Dict[str, float]:
        """Headline metrics on a labelled corpus."""
        return self.pipeline.evaluate(corpus)

    # ------------------------------------------------------------------ #

    def scan(self, code: BytecodeLike, platform: Optional[str] = None,
             sample_id: str = "contract") -> VerdictReport:
        """Scan a single contract and return a :class:`VerdictReport`.

        Args:
            code: Raw bytecode (bytes or hex string).
            platform: "evm" or "wasm"; sniffed from the code when omitted.
            sample_id: Identifier echoed into the report.
        """
        if not self.is_trained:
            raise RuntimeError("ScamDetector.scan called before train()")
        raw = _to_bytes(code)
        label, probability, graph, resolved_platform = self.pipeline.predict_bytecode(
            raw, platform)
        label = 1 if probability >= self.threshold else 0
        notes: List[str] = []
        if self.explain:
            cfg = get_frontend(resolved_platform).build_cfg(raw, name=sample_id)
            notes.extend(format_indicators(extract_indicators(cfg)))
        if resolved_platform == "evm" and is_minimal_proxy(raw):
            notes.append("ERC-1167 minimal proxy: verdict reflects the proxy stub, "
                         "scan the implementation contract for a definitive answer")
        if graph.num_nodes >= (self.config.max_nodes or 512):
            notes.append("CFG truncated to max_nodes; consider raising "
                         "ScamDetectConfig.max_nodes for very large contracts")
        return VerdictReport(
            sample_id=sample_id,
            platform=resolved_platform,
            label=label,
            malicious_probability=probability,
            cfg_blocks=graph.num_nodes,
            cfg_edges=int(graph.adjacency.sum() - graph.num_nodes),
            num_instructions=len(raw),
            model=self.pipeline.describe(),
            notes=notes)

    def scan_batch(self, codes: Iterable[BytecodeLike],
                   platform: Optional[str] = None,
                   sample_ids: Optional[Sequence[str]] = None) -> ScanSummary:
        """Scan many contracts and return an aggregate :class:`ScanSummary`."""
        summary = ScanSummary()
        for index, code in enumerate(codes):
            sample_id = (sample_ids[index] if sample_ids is not None
                         else f"contract-{index:04d}")
            summary.reports.append(self.scan(code, platform=platform,
                                             sample_id=sample_id))
        return summary

    def save(self, path) -> None:
        """Persist the trained pipeline to ``path`` (.json + .npz pair)."""
        from repro.core.persistence import save_pipeline

        save_pipeline(self.pipeline, path)

    @classmethod
    def load(cls, path, threshold: float = 0.5, explain: bool = True) -> "ScamDetector":
        """Load a detector previously written by :meth:`save`."""
        from repro.core.persistence import load_pipeline

        pipeline = load_pipeline(path)
        detector = cls(pipeline.config, threshold=threshold, explain=explain)
        detector.pipeline = pipeline
        return detector

    def scan_corpus(self, corpus: Corpus) -> ScanSummary:
        """Scan every sample of a corpus (labels in the corpus are ignored)."""
        summary = ScanSummary()
        for sample in corpus:
            summary.reports.append(self.scan(sample.bytecode, platform=sample.platform,
                                             sample_id=sample.sample_id))
        return summary
