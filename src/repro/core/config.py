"""Configuration of the ScamDetect pipeline."""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Optional

from repro.gnn.model import GNN_ARCHITECTURES
from repro.gnn.pooling import READOUTS


@dataclass
class ScamDetectConfig:
    """Hyper-parameters of the detection pipeline.

    Attributes:
        architecture: GNN architecture ("gcn", "gat", "gin", "tag",
            "graphsage").
        hidden_features: Hidden width of every convolution layer.
        num_layers: Number of convolution layers.
        readout: Graph readout ("mean", "sum", "max").
        dropout: Dropout applied to the graph embedding during training.
        epochs: Training epochs.
        learning_rate: Adam step size.
        batch_size: Graphs per optimizer step.
        weight_decay: L2 penalty.
        node_feature_mode: Category encoding of CFG node features
            ("presence", "fraction" or "count").
        include_marker_features: Include the security-marker presence bits
            (ORIGIN, DELEGATECALL, SELFDESTRUCT, ...) in node features.
        include_structural_features: Include the structural node-feature
            columns (entry/exit flags, degrees) alongside category histograms.
        max_nodes: Upper bound on CFG size (larger graphs are truncated).
        seed: Seed for parameter init and shuffling.
    """

    architecture: str = "gcn"
    hidden_features: int = 32
    num_layers: int = 2
    readout: str = "mean"
    dropout: float = 0.1
    epochs: int = 40
    learning_rate: float = 5e-3
    batch_size: int = 16
    weight_decay: float = 1e-4
    node_feature_mode: str = "presence"
    include_marker_features: bool = True
    include_structural_features: bool = True
    max_nodes: Optional[int] = 512
    seed: int = 0

    def validate(self) -> None:
        """Raise ValueError on out-of-range settings."""
        if self.architecture.lower() not in GNN_ARCHITECTURES:
            raise ValueError(f"unknown architecture {self.architecture!r}; "
                             f"choose from {GNN_ARCHITECTURES}")
        if self.readout not in READOUTS:
            raise ValueError(f"unknown readout {self.readout!r}; choose from {READOUTS}")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.node_feature_mode not in ("presence", "fraction", "count"):
            raise ValueError(f"unknown node_feature_mode {self.node_feature_mode!r}")

    def graph_fingerprint(self) -> str:
        """Content-address of the graph-lowering configuration.

        Two configs with the same fingerprint lower any given bytecode to
        bit-identical :class:`~repro.gnn.data.ContractGraph` objects, so
        cached graphs keyed by this fingerprint can be shared between them.
        The fingerprint covers every setting that shapes node features or
        adjacency (feature mode, marker/structural columns, truncation) plus
        the feature-space vocabulary itself, so changing the IR feature
        layout invalidates old caches automatically.  Model-only settings
        (architecture, epochs, seed, ...) deliberately do not participate.
        """
        from repro.ir.features import NUM_STRUCTURAL_FEATURES, SEMANTIC_MARKERS
        from repro.ir.normalization import CATEGORY_VOCABULARY

        payload = {
            "node_feature_mode": self.node_feature_mode,
            "include_marker_features": self.include_marker_features,
            "include_structural_features": self.include_structural_features,
            "max_nodes": self.max_nodes,
            "category_vocabulary": list(CATEGORY_VOCABULARY),
            "semantic_markers": [[name, sorted(ops)]
                                 for name, ops in SEMANTIC_MARKERS],
            "num_structural_features": NUM_STRUCTURAL_FEATURES,
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, values: Dict[str, object]) -> "ScamDetectConfig":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        config = cls(**{k: v for k, v in values.items() if k in known})
        config.validate()
        return config
