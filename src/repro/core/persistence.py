"""Saving and loading trained ScamDetect pipelines.

A trained pipeline is persisted as two files next to each other:

* ``<path>.json`` -- the :class:`ScamDetectConfig` plus format metadata,
* ``<path>.npz`` -- the model's parameter arrays (the autograd state dict).

Only configuration and numeric arrays are stored -- no pickled code objects --
so model files are safe to exchange between analysts.

Since the batch-scanning service landed, the JSON metadata also carries the
config's **graph fingerprint** (see
:meth:`ScamDetectConfig.graph_fingerprint`).  On load the fingerprint is
recomputed from the stored config and compared: a mismatch means the feature
space of this code base has drifted since the bundle was written, so any
cached graphs (and the model's input layout itself) would be stale -- the
load fails loudly instead of producing silently wrong verdicts.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Union, TYPE_CHECKING

import numpy as np

from repro.core.config import ScamDetectConfig
from repro.core.pipeline import ScamDetectPipeline
from repro.gnn.training import GNNTrainer
from repro.gnn.model import GraphClassifier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.cache import GraphCache

#: Bumped whenever the on-disk layout changes.
FORMAT_VERSION = 1

#: npz key prefix reserved for the optional cascade pre-filter head; the
#: GNN's ``load_state_dict`` never sees keys under this prefix.
CASCADE_KEY_PREFIX = "cascade/"

PathLike = Union[str, pathlib.Path]


class PersistenceError(RuntimeError):
    """Raised when a model file cannot be written or read back."""


def _paths(path: PathLike) -> tuple:
    base = pathlib.Path(path)
    if base.suffix in (".json", ".npz"):
        base = base.with_suffix("")
    return base.with_suffix(".json"), base.with_suffix(".npz")


def save_pipeline(pipeline: ScamDetectPipeline, path: PathLike) -> pathlib.Path:
    """Persist a fitted pipeline; returns the path of the JSON metadata file."""
    if not pipeline.is_fitted:
        raise PersistenceError("cannot save an unfitted pipeline")
    json_path, npz_path = _paths(path)
    metadata = {
        "format_version": FORMAT_VERSION,
        "config": pipeline.config.to_dict(),
        "description": pipeline.describe(),
        "graph_fingerprint": pipeline.config.graph_fingerprint(),
    }
    arrays = dict(pipeline.model.state_dict())
    if any(key.startswith(CASCADE_KEY_PREFIX) for key in arrays):
        raise PersistenceError(
            f"model state dict uses the reserved {CASCADE_KEY_PREFIX!r} "
            f"key prefix")
    if pipeline.cascade is not None:
        metadata["cascade"] = pipeline.cascade.metadata()
        for key, array in pipeline.cascade.state_arrays().items():
            arrays[CASCADE_KEY_PREFIX + key] = array
    json_path.parent.mkdir(parents=True, exist_ok=True)
    with json_path.open("w") as handle:
        json.dump(metadata, handle, indent=2, sort_keys=True)
    np.savez(npz_path, **arrays)
    return json_path


def load_pipeline(path: PathLike,
                  graph_cache: Optional["GraphCache"] = None) -> ScamDetectPipeline:
    """Load a pipeline previously written by :func:`save_pipeline`.

    Args:
        path: Base path of the ``.json``/``.npz`` bundle.
        graph_cache: Optional lowering cache to attach to the loaded
            pipeline; its fingerprint must match the bundle's.

    Raises:
        PersistenceError: On missing files, an unsupported format version, a
            bundle whose stored graph fingerprint no longer matches the one
            recomputed from its config (stale feature space), or an attached
            cache built for a different fingerprint.
    """
    json_path, npz_path = _paths(path)
    if not json_path.exists() or not npz_path.exists():
        raise PersistenceError(f"model files not found at {json_path} / {npz_path}")
    with json_path.open() as handle:
        metadata = json.load(handle)
    if metadata.get("format_version") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported model format version {metadata.get('format_version')!r}")
    config = ScamDetectConfig.from_dict(metadata["config"])
    stored_fingerprint = metadata.get("graph_fingerprint")
    if (stored_fingerprint is not None
            and stored_fingerprint != config.graph_fingerprint()):
        raise PersistenceError(
            f"graph fingerprint mismatch: bundle was written with "
            f"{stored_fingerprint!r} but this code base computes "
            f"{config.graph_fingerprint()!r}; the feature space changed, so "
            f"cached graphs and the saved model input layout are stale -- "
            f"retrain and re-save the model")

    pipeline = ScamDetectPipeline(config)
    if graph_cache is not None:
        # Raises ValueError on a fingerprint mismatch before any scan can
        # consume a stale entry.
        try:
            pipeline.set_graph_cache(graph_cache)
        except ValueError as error:
            raise PersistenceError(str(error)) from error
    model = GraphClassifier(
        architecture=config.architecture,
        in_features=pipeline._node_feature_dim(),
        hidden_features=config.hidden_features,
        num_layers=config.num_layers,
        readout_kind=config.readout,
        dropout_rate=config.dropout,
        seed=config.seed)
    with np.load(npz_path) as arrays:
        model.load_state_dict({key: arrays[key] for key in arrays.files
                               if not key.startswith(CASCADE_KEY_PREFIX)})
        cascade_arrays = {
            key[len(CASCADE_KEY_PREFIX):]: arrays[key]
            for key in arrays.files if key.startswith(CASCADE_KEY_PREFIX)}

    cascade_metadata = metadata.get("cascade")
    if cascade_metadata is not None:
        from repro.cascade.head import CascadeError, CascadeHead

        try:
            pipeline.cascade = CascadeHead.from_state(
                cascade_metadata, cascade_arrays)
        except CascadeError as error:
            raise PersistenceError(str(error)) from error
    elif cascade_arrays:
        raise PersistenceError(
            "bundle npz holds cascade arrays but the JSON metadata has no "
            "'cascade' block; the bundle is corrupt or was partially "
            "written -- retrain and re-save the model")

    pipeline._model = model
    pipeline._trainer = GNNTrainer(model, learning_rate=config.learning_rate,
                                   epochs=config.epochs, batch_size=config.batch_size,
                                   weight_decay=config.weight_decay, seed=config.seed)
    return pipeline
