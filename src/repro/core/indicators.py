"""Human-readable risk indicators extracted from a contract's CFG.

The GNN produces a probability; analysts also want to know *why* a contract
looks suspicious.  The indicator rules below are deterministic CFG-level
checks over the same semantic markers the GNN consumes (tx.origin gating,
unguarded delegatecall targets, self-destruct paths, external calls inside
loops, ...), so every verdict report can carry an explanation that a human
can verify directly in the disassembly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.ir.basic_block import BasicBlock
from repro.ir.cfg import ControlFlowGraph


@dataclass(frozen=True)
class Indicator:
    """One triggered risk indicator.

    Attributes:
        name: Stable identifier, e.g. ``"origin-gated-control-flow"``.
        severity: ``"info"``, ``"warning"`` or ``"critical"``.
        description: One-line human explanation.
    """

    name: str
    severity: str
    description: str


def _block_mnemonics(block: BasicBlock) -> Set[str]:
    return set(block.mnemonics())


def _blocks_with(cfg: ControlFlowGraph, mnemonics: Set[str]) -> List[BasicBlock]:
    return [block for block in cfg.blocks if _block_mnemonics(block) & mnemonics]


def _is_in_loop(cfg: ControlFlowGraph, block_id: int) -> bool:
    """True if ``block_id`` can reach itself (member of a cycle)."""
    return block_id in cfg.reachable_blocks(start=block_id) and any(
        block_id in cfg.reachable_blocks(start=successor)
        for successor in cfg.successors(block_id))


def extract_indicators(cfg: ControlFlowGraph) -> List[Indicator]:
    """Run every indicator rule over ``cfg`` and return the triggered ones."""
    indicators: List[Indicator] = []

    origin_blocks = _blocks_with(cfg, {"ORIGIN"})
    if origin_blocks:
        indicators.append(Indicator(
            name="origin-gated-control-flow", severity="warning",
            description=f"tx.origin is read in {len(origin_blocks)} basic block(s); "
                        "origin-based authentication is a common drainer-kit pattern"))

    delegate_blocks = _blocks_with(cfg, {"DELEGATECALL", "CALLCODE", "call_indirect"})
    storage_write_blocks = {b.block_id for b in _blocks_with(cfg, {"SSTORE", "global.set"})}
    if delegate_blocks:
        severity = "critical" if storage_write_blocks else "warning"
        indicators.append(Indicator(
            name="delegated-execution", severity=severity,
            description=f"{len(delegate_blocks)} basic block(s) transfer execution to "
                        "another code object (DELEGATECALL / call_indirect); combined "
                        "with writable target storage this is a backdoor primitive"))

    selfdestruct_blocks = _blocks_with(cfg, {"SELFDESTRUCT"})
    if selfdestruct_blocks:
        indicators.append(Indicator(
            name="self-destruct-path", severity="critical",
            description="a reachable SELFDESTRUCT path can sweep the contract balance "
                        "and erase the code"))

    call_blocks = _blocks_with(cfg, {"CALL", "STATICCALL", "call"})
    looped_calls = [block for block in call_blocks if _is_in_loop(cfg, block.block_id)]
    if looped_calls:
        indicators.append(Indicator(
            name="external-call-in-loop", severity="warning",
            description=f"{len(looped_calls)} basic block(s) issue external calls inside "
                        "a loop, the shape of allowance-sweeping and ponzi payout code"))

    balance_blocks = _blocks_with(cfg, {"SELFBALANCE", "BALANCE"})
    if balance_blocks and call_blocks:
        indicators.append(Indicator(
            name="balance-probe-before-transfer", severity="info",
            description="the contract inspects balances and issues external calls; "
                        "benign for vaults, noteworthy combined with other indicators"))

    caller_blocks = _blocks_with(cfg, {"CALLER"})
    if storage_write_blocks and not caller_blocks and cfg.platform == "evm":
        indicators.append(Indicator(
            name="unguarded-storage-write", severity="warning",
            description="storage is written but msg.sender is never read: state-changing "
                        "entry points appear to lack access control"))

    if not indicators:
        indicators.append(Indicator(
            name="no-structural-indicators", severity="info",
            description="no structural risk indicators fired; verdict rests on the "
                        "learned model only"))
    return indicators


def format_indicators(indicators: List[Indicator]) -> List[str]:
    """Render indicators as short strings for verdict-report notes."""
    return [f"[{indicator.severity}] {indicator.name}: {indicator.description}"
            for indicator in indicators]
