"""Block-diagonal sparse (CSR) matrices and their autograd matmul.

Mini-batched GNN execution stacks every graph of a batch into one node-feature
matrix and propagates it through a single *block-diagonal* adjacency operator
instead of one dense matmul per graph.  Contract CFG adjacencies are sparse
(a handful of successors per basic block), so the operator is stored in CSR
form (``data``/``indices``/``indptr``) and applied with a vectorized
``reduceat`` -- no scipy required, and no O(total_nodes^2) dense block
matrix is ever materialized.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

try:  # SciPy is an optional accelerator, never a hard dependency
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised via the _numpy fallback tests
    _scipy_sparse = None

from repro.autograd.tensor import Tensor


class CSRMatrix:
    """An immutable CSR sparse matrix over float64.

    Attributes:
        data: Non-zero values, row-major (length nnz).
        indices: Column index of each value (length nnz).
        indptr: Row pointer array (length num_rows + 1); row ``i`` owns the
            slice ``data[indptr[i]:indptr[i + 1]]``.
        shape: (num_rows, num_cols).

    The transpose is computed once on first use and cached, because the
    autograd backward of ``A @ X`` needs ``A.T`` on every backprop step.
    """

    __slots__ = ("data", "indices", "indptr", "shape", "symmetric",
                 "_transpose", "_scipy")

    def __init__(self, data: np.ndarray, indices: np.ndarray,
                 indptr: np.ndarray, shape: Tuple[int, int],
                 symmetric: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.indptr.shape[0] != self.shape[0] + 1:
            raise ValueError("indptr length must be num_rows + 1")
        if self.data.shape != self.indices.shape:
            raise ValueError("data and indices must have the same length")
        self.symmetric = bool(symmetric)
        self._transpose: Optional["CSRMatrix"] = None
        self._scipy = None

    # ------------------------------------------------------------------ #
    # constructors

    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "CSRMatrix":
        """CSR view of a dense 2-D array (zeros dropped)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("from_dense expects a 2-D matrix")
        rows, cols = np.nonzero(matrix)
        counts = np.bincount(rows, minlength=matrix.shape[0])
        indptr = np.concatenate(([0], np.cumsum(counts)))
        symmetric = (matrix.shape[0] == matrix.shape[1]
                     and np.array_equal(matrix, matrix.T))
        return cls(matrix[rows, cols], cols, indptr, matrix.shape,
                   symmetric=symmetric)

    @classmethod
    def block_diagonal(cls, blocks: Sequence["CSRMatrix"]) -> "CSRMatrix":
        """Stack square CSR blocks into one block-diagonal CSR matrix.

        Used to pack the per-graph adjacency operators of a mini-batch into a
        single operator over the stacked node dimension; concatenation-only,
        so batching N cached per-graph matrices costs O(total nnz).
        """
        if not blocks:
            raise ValueError("block_diagonal requires at least one block")
        if any(block.shape[0] != block.shape[1] for block in blocks):
            raise ValueError("block_diagonal blocks must be square")
        block_rows = np.array([block.shape[0] for block in blocks], dtype=np.int64)
        block_nnz = np.array([block.data.shape[0] for block in blocks],
                             dtype=np.int64)
        # per-entry offsets applied in bulk (one repeat + one in-place add
        # each) instead of one temporary array per block
        row_offsets = np.concatenate(([0], np.cumsum(block_rows)[:-1]))
        nnz_offsets = np.concatenate(([0], np.cumsum(block_nnz)[:-1]))
        indices = np.concatenate([block.indices for block in blocks])
        indices += np.repeat(row_offsets, block_nnz)
        indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64)]
            + [block.indptr[1:] for block in blocks])
        indptr[1:] += np.repeat(nnz_offsets, block_rows)
        total_rows = int(block_rows.sum())
        return cls(np.concatenate([block.data for block in blocks]), indices,
                   indptr, (total_rows, total_rows),
                   symmetric=all(block.symmetric for block in blocks))

    # ------------------------------------------------------------------ #

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    def row_ids(self) -> np.ndarray:
        """The row index of every stored value (COO row array, length nnz)."""
        return np.repeat(np.arange(self.shape[0], dtype=np.int64),
                         np.diff(self.indptr))

    def transpose(self) -> "CSRMatrix":
        """The CSR transpose (``self`` for symmetric matrices, else cached).

        Backward passes apply ``A.T`` once per batch, so adjacency-style
        operators (symmetric by construction) skip the transpose sort
        entirely.
        """
        if self.symmetric:
            return self
        if self._transpose is None:
            rows = self.row_ids()
            order = np.lexsort((rows, self.indices))
            counts = np.bincount(self.indices, minlength=self.shape[1])
            indptr = np.concatenate(([0], np.cumsum(counts)))
            transposed = CSRMatrix(self.data[order], rows[order], indptr,
                                   (self.shape[1], self.shape[0]))
            transposed._transpose = self
            self._transpose = transposed
        return self._transpose

    def matmul_dense(self, dense: np.ndarray) -> np.ndarray:
        """``self @ dense`` for a dense (num_cols, width) operand.

        Runs through SciPy's C sparse kernels when SciPy is installed
        (optional accelerator, ~20x faster at contract-CFG sizes) and
        otherwise through the pure-NumPy ``reduceat`` path
        (:meth:`_matmul_dense_numpy`).  Both are row-sequential sums, so
        results are deterministic per row regardless of what else shares
        the batch.
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape[0] != self.shape[1]:
            raise ValueError(f"dimension mismatch: {self.shape} @ {dense.shape}")
        if _scipy_sparse is not None:
            if self._scipy is None:
                self._scipy = _scipy_sparse.csr_matrix(
                    (self.data, self.indices, self.indptr), shape=self.shape)
            return np.asarray(self._scipy @ dense)
        return self._matmul_dense_numpy(dense)

    def _matmul_dense_numpy(self, dense: np.ndarray) -> np.ndarray:
        """SciPy-free fallback: one gather + one masked ``reduceat`` sum.

        The empty-row handling lives in
        :func:`repro.autograd.segment_ops._reduce_sum` (shared with the
        segment reductions): ``reduceat`` alone would repeat a neighbouring
        value on empty rows.
        """
        from repro.autograd.segment_ops import _reduce_sum

        if self.nnz == 0:
            return np.zeros((self.shape[0],) + dense.shape[1:])
        contributions = (self.data[:, None] * dense[self.indices]
                         if dense.ndim == 2 else self.data * dense[self.indices])
        return _reduce_sum(contributions, np.diff(self.indptr), self.indptr)

    def to_dense(self) -> np.ndarray:
        """Dense copy (tests / debugging only)."""
        dense = np.zeros(self.shape)
        dense[self.row_ids(), self.indices] = self.data
        return dense

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"


def sparse_matmul(matrix: CSRMatrix, x: Tensor) -> Tensor:
    """Autograd product ``matrix @ x`` of a constant CSR matrix and a Tensor.

    The matrix holds graph structure (adjacency, normalization weights) and
    is treated as a constant: gradients flow to ``x`` only, via the cached
    transpose (``dX = A.T @ dOut``).
    """
    result = matrix.matmul_dense(x.data)

    def backward(out: Tensor) -> None:
        x._accumulate(matrix.transpose().matmul_dense(out.grad))

    return x._make(result, (x,), backward)
