"""A small reverse-mode automatic-differentiation engine over NumPy.

This is the substitution for PyTorch (see DESIGN.md): a vectorized
micrograd-style ``Tensor`` with the operations required by the GNN layers
(matrix products, broadcasting arithmetic, activations, softmax, reductions,
concatenation), plus loss functions, parameter modules, optimizers, and the
batched-graph primitives (sorted-segment reductions, gather/scatter, and a
block-diagonal CSR sparse matmul) behind the vectorized GNN engine.
"""

from repro.autograd.tensor import Tensor, no_grad
from repro.autograd.functional import (
    relu,
    leaky_relu,
    sigmoid,
    tanh,
    softmax,
    log_softmax,
    cross_entropy,
    binary_cross_entropy_with_logits,
    dropout,
)
from repro.autograd.module import Module, Parameter, Linear, Sequential
from repro.autograd.optim import SGD, Adam
from repro.autograd.segment_ops import (
    gather_rows,
    scatter_sum,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)
from repro.autograd.sparse import CSRMatrix, sparse_matmul

__all__ = [
    "Tensor",
    "no_grad",
    "gather_rows",
    "scatter_sum",
    "segment_max",
    "segment_mean",
    "segment_softmax",
    "segment_sum",
    "CSRMatrix",
    "sparse_matmul",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "dropout",
    "Module",
    "Parameter",
    "Linear",
    "Sequential",
    "SGD",
    "Adam",
]
