"""A small reverse-mode automatic-differentiation engine over NumPy.

This is the substitution for PyTorch (see DESIGN.md): a vectorized
micrograd-style ``Tensor`` with the operations required by the GNN layers
(matrix products, broadcasting arithmetic, activations, softmax, reductions,
concatenation), plus loss functions, parameter modules and optimizers.
"""

from repro.autograd.tensor import Tensor, no_grad
from repro.autograd.functional import (
    relu,
    leaky_relu,
    sigmoid,
    tanh,
    softmax,
    log_softmax,
    cross_entropy,
    binary_cross_entropy_with_logits,
    dropout,
)
from repro.autograd.module import Module, Parameter, Linear, Sequential
from repro.autograd.optim import SGD, Adam

__all__ = [
    "Tensor",
    "no_grad",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "dropout",
    "Module",
    "Parameter",
    "Linear",
    "Sequential",
    "SGD",
    "Adam",
]
