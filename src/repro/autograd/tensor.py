"""Reverse-mode autodiff Tensor over NumPy arrays."""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

#: Global switch used by :func:`no_grad`.
_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(gradient: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``gradient`` back down to ``shape`` (reverse of NumPy broadcasting)."""
    if gradient.shape == shape:
        return gradient
    # remove leading broadcast dimensions
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # sum over axes that were size-1 in the original shape
    for axis, size in enumerate(shape):
        if size == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode gradient tracking.

    Attributes:
        data: The underlying float64 array.
        grad: Accumulated gradient (same shape as ``data``) after backward().
        requires_grad: Whether this tensor participates in autodiff.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self._backward: Callable[[], None] = lambda: None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basics

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag})"

    # ------------------------------------------------------------------ #
    # graph helpers

    @staticmethod
    def _wrap(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[["Tensor"], None]) -> "Tensor":
        """Create a result tensor wired into the graph (if grad is enabled)."""
        requires = False
        if _GRAD_ENABLED:
            for parent in parents:
                if parent.requires_grad:
                    requires = True
                    break
        output = Tensor(data, requires_grad=requires)
        if requires:
            output._parents = parents

            def _run() -> None:
                backward(output)

            output._backward = _run
        return output

    def _accumulate(self, gradient: np.ndarray) -> None:
        if not self.requires_grad:
            return
        gradient = _unbroadcast(np.asarray(gradient, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = gradient.copy()
        else:
            self.grad += gradient

    # ------------------------------------------------------------------ #
    # arithmetic

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(out: "Tensor") -> None:
            self._accumulate(out.grad)
            other._accumulate(out.grad)

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(out: "Tensor") -> None:
            self._accumulate(-out.grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(out: "Tensor") -> None:
            self._accumulate(out.grad)
            other._accumulate(-out.grad)

        return self._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(out: "Tensor") -> None:
            self._accumulate(out.grad * other.data)
            other._accumulate(out.grad * self.data)

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(out: "Tensor") -> None:
            self._accumulate(out.grad / other.data)
            other._accumulate(-out.grad * self.data / (other.data ** 2))

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(out: "Tensor") -> None:
            self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        return self._make(self.data ** exponent, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(out: "Tensor") -> None:
            self._accumulate(out.grad @ other.data.T)
            other._accumulate(self.data.T @ out.grad)

        return self._make(self.data @ other.data, (self, other), backward)

    def matmul(self, other: ArrayLike) -> "Tensor":
        return self @ other

    # ------------------------------------------------------------------ #
    # elementwise functions

    def exp(self) -> "Tensor":
        result = np.exp(self.data)

        def backward(out: "Tensor") -> None:
            self._accumulate(out.grad * result)

        return self._make(result, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: "Tensor") -> None:
            self._accumulate(out.grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def clip_min(self, minimum: float) -> "Tensor":
        """Elementwise max(x, minimum); gradient flows only where x > minimum."""
        mask = self.data > minimum  # bool; promotes to float64 on multiply

        def backward(out: "Tensor") -> None:
            self._accumulate(out.grad * mask)

        return self._make(np.maximum(self.data, minimum), (self,), backward)

    def maximum(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        mask = (self.data >= other.data).astype(np.float64)  # float: used in 1.0 - mask

        def backward(out: "Tensor") -> None:
            self._accumulate(out.grad * mask)
            other._accumulate(out.grad * (1.0 - mask))

        return self._make(np.maximum(self.data, other.data), (self, other), backward)

    # ------------------------------------------------------------------ #
    # reductions and shape ops

    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        def backward(out: "Tensor") -> None:
            gradient = out.grad
            if axis is not None and not keepdims:
                gradient = np.expand_dims(gradient, axis)
            self._accumulate(np.broadcast_to(gradient, self.data.shape))

        return self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]

        def backward(out: "Tensor") -> None:
            gradient = out.grad
            if axis is not None and not keepdims:
                gradient = np.expand_dims(gradient, axis)
            self._accumulate(np.broadcast_to(gradient, self.data.shape) / count)

        return self._make(self.data.mean(axis=axis, keepdims=keepdims), (self,), backward)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        result = self.data.max(axis=axis, keepdims=keepdims)

        def backward(out: "Tensor") -> None:
            gradient = out.grad
            expanded = result
            if axis is not None and not keepdims:
                gradient = np.expand_dims(gradient, axis)
                expanded = np.expand_dims(result, axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * gradient)

        return self._make(result, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape

        def backward(out: "Tensor") -> None:
            self._accumulate(out.grad.reshape(original))

        return self._make(self.data.reshape(*shape), (self,), backward)

    @property
    def T(self) -> "Tensor":
        def backward(out: "Tensor") -> None:
            self._accumulate(out.grad.T)

        return self._make(self.data.T, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        def backward(out: "Tensor") -> None:
            gradient = np.zeros_like(self.data)
            np.add.at(gradient, key, out.grad)
            self._accumulate(gradient)

        return self._make(self.data[key], (self,), backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._wrap(t) for t in tensors]
        sizes = [t.data.shape[axis] for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)

        def backward(out: "Tensor") -> None:
            start = 0
            for tensor, size in zip(tensors, sizes):
                index = [slice(None)] * out.grad.ndim
                index[axis] = slice(start, start + size)
                tensor._accumulate(out.grad[tuple(index)])
                start += size

        requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
        output = Tensor(data, requires_grad=requires)
        if requires:
            output._parents = tuple(tensors)
            output._backward = lambda: backward(output)
        return output

    # ------------------------------------------------------------------ #
    # backward

    def backward(self, gradient: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if gradient is None:
            if self.data.size != 1:
                raise RuntimeError("gradient must be provided for non-scalar outputs")
            gradient = np.ones_like(self.data)
        self.grad = np.asarray(gradient, dtype=np.float64).reshape(self.data.shape)

        # topological order of the graph above this node
        order: List[Tensor] = []
        visited: Set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(order):
            if node.grad is not None:
                node._backward()
