"""Activation, normalization and loss functions over :class:`Tensor`."""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.autograd.tensor import Tensor


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.clip_min(0.0)


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU (used by GAT attention scores)."""
    positive = x.clip_min(0.0)
    negative = (x - positive) * negative_slope
    return positive + negative


def sigmoid(x: Tensor) -> Tensor:
    """Numerically-stable logistic sigmoid."""
    return 1.0 / ((-x).exp() + 1.0)


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    two_x = x * 2.0
    exponential = two_x.exp()
    return (exponential - 1.0) / (exponential + 1.0)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with max-shift stabilization."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exponentials = shifted.exp()
    return exponentials / exponentials.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) computed via the log-sum-exp trick."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


def cross_entropy(logits: Tensor, targets: Union[np.ndarray, Sequence[int]],
                  class_weights: Optional[np.ndarray] = None) -> Tensor:
    """Mean cross-entropy between row logits and integer ``targets``.

    Implemented as one fused autograd node (log-sum-exp forward, analytic
    ``softmax - one_hot`` backward) rather than a log-softmax/multiply/sum
    chain: the loss sits on every training step's hot path and the chain
    version costs ~10 graph nodes per step.

    Args:
        logits: Tensor of shape (n_samples, n_classes).
        targets: Integer class indices of length n_samples.
        class_weights: Optional per-class weights (e.g. for imbalance).
    """
    targets = np.asarray(targets, dtype=np.int64)
    n_samples, _ = logits.shape
    if class_weights is not None:
        sample_weights = np.asarray(class_weights, dtype=np.float64)[targets]
    else:
        sample_weights = np.ones(n_samples)
    sample_weights = sample_weights / sample_weights.sum()
    rows = np.arange(n_samples)
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    exponentials = np.exp(shifted)
    normalizers = exponentials.sum(axis=1, keepdims=True)
    log_probabilities = shifted - np.log(normalizers)
    loss = -(log_probabilities[rows, targets] * sample_weights).sum()

    def backward(out: Tensor) -> None:
        gradient = exponentials / normalizers * sample_weights[:, None]
        gradient[rows, targets] -= sample_weights
        logits._accumulate(gradient * out.grad)

    return logits._make(np.asarray(loss), (logits,), backward)


def binary_cross_entropy_with_logits(logits: Tensor,
                                     targets: Union[np.ndarray, Sequence[float]]) -> Tensor:
    """Mean BCE over raw logits (stable formulation)."""
    targets_tensor = Tensor(np.asarray(targets, dtype=np.float64))
    # max(x, 0) - x*y + log(1 + exp(-|x|))
    absolute = logits.maximum(-logits)
    loss = logits.clip_min(0.0) - logits * targets_tensor + ((-absolute).exp() + 1.0).log()
    return loss.mean()


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or rate == 0."""
    if not training or rate <= 0.0:
        return x
    mask = (rng.random(x.shape) >= rate).astype(np.float64) / (1.0 - rate)
    return x * Tensor(mask)
