"""Optimizers for :class:`~repro.autograd.module.Parameter` collections."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


class Optimizer:
    """Base optimizer: holds parameters and clears gradients."""

    def __init__(self, parameters: Sequence[Tensor]) -> None:
        self.parameters = list(parameters)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract by convention
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Sequence[Tensor], learning_rate: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(id(parameter))
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + gradient
                self._velocity[id(parameter)] = velocity
                gradient = velocity
            parameter.data -= self.learning_rate * gradient


class Adam(Optimizer):
    """Adam with bias correction and optional weight decay."""

    def __init__(self, parameters: Sequence[Tensor], learning_rate: float = 1e-2,
                 betas: tuple = (0.9, 0.999), epsilon: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        self.learning_rate = learning_rate
        self.beta1, self.beta2 = betas
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._step = 0

    def step(self) -> None:
        self._step += 1
        correction1 = 1 - self.beta1 ** self._step
        correction2 = 1 - self.beta2 ** self._step
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            key = id(parameter)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(parameter.data)
                v = np.zeros_like(parameter.data)
                self._m[key] = m
                self._v[key] = v
            # in-place moment updates: same arithmetic as
            # ``m = b1*m + (1-b1)*g`` / ``v = b2*v + (1-b2)*g^2``,
            # minus the per-step temporaries (this runs once per parameter
            # per mini-batch, which adds up on small-graph workloads)
            m *= self.beta1
            m += (1 - self.beta1) * gradient
            v *= self.beta2
            v += (1 - self.beta2) * gradient ** 2
            update = m / correction1
            update *= self.learning_rate
            denominator = np.sqrt(v / correction2)
            denominator += self.epsilon
            update /= denominator
            parameter.data -= update
