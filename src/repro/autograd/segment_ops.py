"""Segment (per-graph) reduction primitives with reverse-mode gradients.

A mini-batch of graphs is stored as one stacked node matrix plus an int64
``segment_ids`` array mapping every row to its graph.  These primitives
reduce or redistribute rows along those segments so that readout pooling,
GAT's per-neighbourhood softmax and message scatter/gather all run as a
constant number of NumPy ops per *batch* instead of per graph.

Sorted-segment convention: ``segment_ids`` must be non-decreasing (rows of
one segment are contiguous), which is how :class:`repro.gnn.data.GraphBatch`
lays batches out.  ``scatter_sum`` is the unsorted escape hatch.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd.tensor import Tensor


def _prepare_segments(segment_ids: np.ndarray,
                      num_segments: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate sorted segment ids; returns (ids, counts, indptr)."""
    ids = np.asarray(segment_ids, dtype=np.int64)
    if ids.ndim != 1:
        raise ValueError("segment_ids must be 1-D")
    if ids.size:
        if np.any(np.diff(ids) < 0):
            raise ValueError("segment_ids must be sorted (non-decreasing)")
        if ids[0] < 0 or ids[-1] >= num_segments:
            raise ValueError("segment_ids must lie in [0, num_segments)")
    counts = np.bincount(ids, minlength=num_segments)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return ids, counts, indptr


def _broadcast_counts(counts: np.ndarray, ndim: int) -> np.ndarray:
    """Reshape per-row counts for broadcasting against an ndim-D operand."""
    return counts.reshape((-1,) + (1,) * (ndim - 1)).astype(np.float64)


def _reduce_sum(values: np.ndarray, counts: np.ndarray,
                indptr: np.ndarray) -> np.ndarray:
    """Per-segment sums via ``reduceat``; empty segments become zero rows."""
    output_shape = (counts.shape[0],) + values.shape[1:]
    if values.shape[0] == 0:
        return np.zeros(output_shape)
    nonempty = counts > 0
    if np.all(nonempty):
        return np.add.reduceat(values, indptr[:-1], axis=0)
    output = np.zeros(output_shape)
    output[nonempty] = np.add.reduceat(values, indptr[:-1][nonempty], axis=0)
    return output


def _segment_sum_prepared(x: Tensor, ids: np.ndarray, counts: np.ndarray,
                          indptr: np.ndarray) -> Tensor:
    """:func:`segment_sum` body for already-validated segment structure."""
    result = _reduce_sum(x.data, counts, indptr)

    def backward(out: Tensor) -> None:
        x._accumulate(out.grad[ids])

    return x._make(result, (x,), backward)


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum the rows of ``x`` within each segment -> (num_segments, ...).

    Backward: the gradient of a segment's sum flows unchanged to every row
    of that segment (a plain gather).
    """
    ids, counts, indptr = _prepare_segments(segment_ids, num_segments)
    return _segment_sum_prepared(x, ids, counts, indptr)


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Average the rows of ``x`` within each segment -> (num_segments, ...).

    Empty segments yield zero rows (and receive no gradient).
    """
    ids, counts, indptr = _prepare_segments(segment_ids, num_segments)
    divisors = _broadcast_counts(np.maximum(counts, 1), x.ndim)
    result = _reduce_sum(x.data, counts, indptr) / divisors

    def backward(out: Tensor) -> None:
        x._accumulate(out.grad[ids] / _broadcast_counts(counts[ids], x.ndim))

    return x._make(result, (x,), backward)


def segment_max(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Row-wise maximum within each segment -> (num_segments, ...).

    Every segment must be non-empty (a max over nothing is undefined).
    Backward matches :meth:`Tensor.max`: the gradient is split evenly among
    the rows that attain the maximum.
    """
    ids, counts, indptr = _prepare_segments(segment_ids, num_segments)
    if np.any(counts == 0):
        raise ValueError("segment_max requires every segment to be non-empty")
    result = np.maximum.reduceat(x.data, indptr[:-1], axis=0)

    def backward(out: Tensor) -> None:
        mask = (x.data == result[ids]).astype(np.float64)
        ties = _reduce_sum(mask, counts, indptr)
        x._accumulate(mask / ties[ids] * out.grad[ids])

    return x._make(result, (x,), backward)


def segment_softmax(x: Tensor, segment_ids: np.ndarray,
                    num_segments: int) -> Tensor:
    """Softmax over the rows of each segment (column-wise), max-shifted.

    This is GAT's neighbourhood softmax in edge form: with one segment per
    destination node, the attention weights of that node's incoming edges
    sum to 1.  The per-segment max shift is detached, mirroring
    :func:`repro.autograd.functional.softmax`.
    """
    ids, counts, indptr = _prepare_segments(segment_ids, num_segments)
    if np.any(counts == 0):
        raise ValueError("segment_softmax requires every segment to be non-empty")
    # the shift is detached, so it can bypass autograd (and the repeated
    # segment validation) entirely -- this runs per layer on GAT's hot path
    shift = np.maximum.reduceat(x.data, indptr[:-1], axis=0)
    exponentials = (x - Tensor(shift[ids])).exp()
    normalizers = _segment_sum_prepared(exponentials, ids, counts, indptr)
    return exponentials / gather_rows(normalizers, ids)


def gather_rows(x: Tensor, row_indices: np.ndarray) -> Tensor:
    """Select ``x[row_indices]`` with a scatter-add backward.

    Duplicate indices are allowed (and are the point: expanding per-segment
    values back to per-row/per-edge shape).
    """
    indices = np.asarray(row_indices, dtype=np.int64)
    result = x.data[indices]

    def backward(out: Tensor) -> None:
        gradient = np.zeros_like(x.data)
        np.add.at(gradient, indices, out.grad)
        x._accumulate(gradient)

    return x._make(result, (x,), backward)


def scatter_sum(x: Tensor, row_indices: np.ndarray, num_rows: int) -> Tensor:
    """Sum rows of ``x`` into ``num_rows`` output rows by ``row_indices``.

    The unsorted counterpart of :func:`segment_sum` (forward uses
    ``np.add.at``); prefer ``segment_sum`` when indices are sorted, its
    ``reduceat`` forward is considerably faster.
    """
    indices = np.asarray(row_indices, dtype=np.int64)
    if indices.ndim != 1:
        raise ValueError("row_indices must be 1-D")
    if indices.size and (indices.min() < 0 or indices.max() >= num_rows):
        raise ValueError("row_indices must lie in [0, num_rows)")
    result = np.zeros((num_rows,) + x.data.shape[1:])
    np.add.at(result, indices, x.data)

    def backward(out: Tensor) -> None:
        x._accumulate(out.grad[indices])

    return x._make(result, (x,), backward)
