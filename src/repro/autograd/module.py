"""Parameter containers and basic neural-network modules."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with parameter discovery, train/eval mode and state dicts."""

    def __init__(self) -> None:
        self.training = True

    # -- parameter discovery ------------------------------------------------ #

    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its sub-modules (depth-first)."""
        found: List[Parameter] = []
        seen: set = set()
        for value in self.__dict__.values():
            self._collect(value, found, seen)
        return found

    def _collect(self, value, found: List[Parameter], seen: set) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                found.append(value)
        elif isinstance(value, Module):
            for parameter in value.parameters():
                if id(parameter) not in seen:
                    seen.add(id(parameter))
                    found.append(parameter)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect(item, found, seen)
        elif isinstance(value, dict):
            for item in value.values():
                self._collect(item, found, seen)

    # -- modes ---------------------------------------------------------------- #

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    # -- gradients & state ----------------------------------------------------- #

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping parameter-index -> array copy (for persistence/tests)."""
        return {f"param_{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        parameters = self.parameters()
        if len(state) != len(parameters):
            raise ValueError("state dict size does not match module parameters")
        for index, parameter in enumerate(parameters):
            value = state[f"param_{index}"]
            if value.shape != parameter.data.shape:
                raise ValueError("parameter shape mismatch in state dict")
            parameter.data = value.copy()

    # -- forward -------------------------------------------------------------- #

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract by convention
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


def glorot(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=tuple(shape))


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(glorot((in_features, out_features), rng), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        output = x @ self.weight
        if self.bias is not None:
            output = output + self.bias
        return output


class Sequential(Module):
    """Apply sub-modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
