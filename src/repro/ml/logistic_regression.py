"""Binary/multinomial logistic regression trained with full-batch gradient descent."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import Classifier


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=1, keepdims=True)


class LogisticRegression(Classifier):
    """Multinomial logistic regression with L2 regularization.

    Args:
        learning_rate: Gradient-descent step size.
        epochs: Number of full-batch passes.
        l2: L2 regularization strength.
        fit_intercept: Learn a bias column.
    """

    name = "logistic-regression"

    def __init__(self, learning_rate: float = 0.5, epochs: int = 300,
                 l2: float = 1e-3, fit_intercept: bool = True) -> None:
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.fit_intercept = fit_intercept
        self.weights_: Optional[np.ndarray] = None
        self.bias_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = self._validate(X, y)
        encoded = self._encode_labels(y)
        num_classes = len(self.classes_)
        num_samples, num_features = X.shape
        targets = np.zeros((num_samples, num_classes))
        targets[np.arange(num_samples), encoded] = 1.0

        self.weights_ = np.zeros((num_features, num_classes))
        self.bias_ = np.zeros(num_classes)
        for _ in range(self.epochs):
            logits = X @ self.weights_ + self.bias_
            probabilities = _softmax(logits)
            error = (probabilities - targets) / num_samples
            gradient_weights = X.T @ error + self.l2 * self.weights_
            gradient_bias = error.sum(axis=0)
            self.weights_ -= self.learning_rate * gradient_weights
            if self.fit_intercept:
                self.bias_ -= self.learning_rate * gradient_bias
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("LogisticRegression used before fit")
        X = self._validate(X)
        return _softmax(X @ self.weights_ + self.bias_)
