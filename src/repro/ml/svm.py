"""Linear support-vector machine trained with sub-gradient descent on the hinge loss."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import Classifier


class LinearSVM(Classifier):
    """Binary linear SVM (hinge loss + L2) with a Platt-style probability output.

    Args:
        C: Inverse regularization strength (larger = less regularization).
        epochs: Number of passes over the shuffled training set.
        learning_rate: Initial step size (decays as 1/sqrt(t)).
        random_state: Shuffling seed.
    """

    name = "linear-svm"

    def __init__(self, C: float = 1.0, epochs: int = 120,
                 learning_rate: float = 0.05, random_state: int = 0) -> None:
        self.C = C
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.random_state = random_state
        self.weights_: Optional[np.ndarray] = None
        self.bias_: float = 0.0
        self._probability_scale: float = 1.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        X = self._validate(X, y)
        encoded = self._encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError("LinearSVM supports binary labels only")
        signs = np.where(encoded == 1, 1.0, -1.0)
        rng = np.random.default_rng(self.random_state)
        num_samples, num_features = X.shape
        self.weights_ = np.zeros(num_features)
        self.bias_ = 0.0
        regularization = 1.0 / max(self.C, 1e-9)
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(num_samples)
            for row in order:
                step += 1
                rate = self.learning_rate / np.sqrt(step)
                margin = signs[row] * (X[row] @ self.weights_ + self.bias_)
                if margin < 1.0:
                    gradient = regularization * self.weights_ / num_samples - signs[row] * X[row]
                    self.weights_ -= rate * gradient
                    self.bias_ += rate * signs[row]
                else:
                    self.weights_ -= rate * regularization * self.weights_ / num_samples
        margins = X @ self.weights_ + self.bias_
        scale = np.std(margins)
        self._probability_scale = 1.0 / scale if scale > 1e-9 else 1.0
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distances to the separating hyperplane."""
        if self.weights_ is None:
            raise RuntimeError("LinearSVM used before fit")
        X = self._validate(X)
        return X @ self.weights_ + self.bias_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        margins = self.decision_function(X) * self._probability_scale
        positive = 1.0 / (1.0 + np.exp(-margins))
        return np.column_stack([1.0 - positive, positive])
