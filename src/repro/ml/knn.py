"""k-nearest-neighbours classifier."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import Classifier


class KNearestNeighbors(Classifier):
    """k-NN with euclidean or cosine distance and optional distance weighting.

    Args:
        k: Number of neighbours.
        metric: ``"euclidean"`` or ``"cosine"``.
        weighted: If True neighbours vote with weight 1/(distance + eps).
    """

    name = "knn"

    def __init__(self, k: int = 5, metric: str = "euclidean",
                 weighted: bool = False) -> None:
        if metric not in ("euclidean", "cosine"):
            raise ValueError(f"unknown metric {metric!r}")
        self.k = k
        self.metric = metric
        self.weighted = weighted
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNearestNeighbors":
        X = self._validate(X, y)
        self._y = self._encode_labels(y)
        self._X = X
        return self

    def _distances(self, X: np.ndarray) -> np.ndarray:
        if self.metric == "euclidean":
            squared = (np.sum(X ** 2, axis=1)[:, None]
                       + np.sum(self._X ** 2, axis=1)[None, :]
                       - 2.0 * X @ self._X.T)
            return np.sqrt(np.clip(squared, 0.0, None))
        # cosine distance
        X_norm = X / (np.linalg.norm(X, axis=1, keepdims=True) + 1e-12)
        train_norm = self._X / (np.linalg.norm(self._X, axis=1, keepdims=True) + 1e-12)
        return 1.0 - X_norm @ train_norm.T

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._X is None or self._y is None:
            raise RuntimeError("KNearestNeighbors used before fit")
        X = self._validate(X)
        distances = self._distances(X)
        k = min(self.k, self._X.shape[0])
        neighbour_indices = np.argpartition(distances, kth=k - 1, axis=1)[:, :k]
        probabilities = np.zeros((X.shape[0], len(self.classes_)))
        for row in range(X.shape[0]):
            neighbours = neighbour_indices[row]
            if self.weighted:
                weights = 1.0 / (distances[row, neighbours] + 1e-9)
            else:
                weights = np.ones(len(neighbours))
            for neighbour, weight in zip(neighbours, weights):
                probabilities[row, self._y[neighbour]] += weight
        totals = probabilities.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return probabilities / totals
