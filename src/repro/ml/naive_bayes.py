"""Gaussian and multinomial naive Bayes classifiers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import Classifier


class GaussianNaiveBayes(Classifier):
    """Naive Bayes with per-class Gaussian feature likelihoods."""

    name = "gaussian-nb"

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self.means_: Optional[np.ndarray] = None
        self.variances_: Optional[np.ndarray] = None
        self.priors_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        X = self._validate(X, y)
        encoded = self._encode_labels(y)
        num_classes = len(self.classes_)
        self.means_ = np.zeros((num_classes, X.shape[1]))
        self.variances_ = np.zeros((num_classes, X.shape[1]))
        self.priors_ = np.zeros(num_classes)
        global_variance = X.var(axis=0).max() or 1.0
        for index in range(num_classes):
            members = X[encoded == index]
            self.priors_[index] = len(members) / len(X)
            self.means_[index] = members.mean(axis=0) if len(members) else 0.0
            variance = members.var(axis=0) if len(members) else np.ones(X.shape[1])
            self.variances_[index] = variance + self.var_smoothing * global_variance
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.means_ is None:
            raise RuntimeError("GaussianNaiveBayes used before fit")
        X = self._validate(X)
        log_likelihood = np.zeros((X.shape[0], len(self.classes_)))
        for index in range(len(self.classes_)):
            delta = X - self.means_[index]
            log_likelihood[:, index] = (
                np.log(self.priors_[index] + 1e-12)
                - 0.5 * np.sum(np.log(2 * np.pi * self.variances_[index]))
                - 0.5 * np.sum(delta ** 2 / self.variances_[index], axis=1))
        shifted = log_likelihood - log_likelihood.max(axis=1, keepdims=True)
        probabilities = np.exp(shifted)
        return probabilities / probabilities.sum(axis=1, keepdims=True)


class MultinomialNaiveBayes(Classifier):
    """Naive Bayes for count-like features (opcode histograms, n-grams).

    Negative feature values are clipped to zero before use.
    """

    name = "multinomial-nb"

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha
        self.feature_log_prob_: Optional[np.ndarray] = None
        self.class_log_prior_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MultinomialNaiveBayes":
        X = np.clip(self._validate(X, y), 0.0, None)
        encoded = self._encode_labels(y)
        num_classes = len(self.classes_)
        counts = np.zeros((num_classes, X.shape[1]))
        priors = np.zeros(num_classes)
        for index in range(num_classes):
            members = X[encoded == index]
            counts[index] = members.sum(axis=0) + self.alpha
            priors[index] = max(len(members), 1) / len(X)
        self.feature_log_prob_ = np.log(counts / counts.sum(axis=1, keepdims=True))
        self.class_log_prior_ = np.log(priors)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.feature_log_prob_ is None:
            raise RuntimeError("MultinomialNaiveBayes used before fit")
        X = np.clip(self._validate(X), 0.0, None)
        log_likelihood = X @ self.feature_log_prob_.T + self.class_log_prior_
        shifted = log_likelihood - log_likelihood.max(axis=1, keepdims=True)
        probabilities = np.exp(shifted)
        return probabilities / probabilities.sum(axis=1, keepdims=True)
