"""Random forest: bootstrap-aggregated CART trees with feature subsampling."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.base import Classifier
from repro.ml.decision_tree import DecisionTreeClassifier


class RandomForestClassifier(Classifier):
    """Bagged decision trees voting by averaged class probabilities.

    Args:
        n_estimators: Number of trees.
        max_depth: Depth limit per tree.
        max_features: Features sampled per split; ``"sqrt"`` (default) uses
            ``round(sqrt(n_features))``, an int uses that many, None uses all.
        min_samples_leaf: Minimum samples per leaf.
        bootstrap: Sample training rows with replacement per tree.
        random_state: Seed controlling bootstraps and feature sampling.
    """

    name = "random-forest"

    def __init__(self, n_estimators: int = 50, max_depth: Optional[int] = 12,
                 max_features: object = "sqrt", min_samples_leaf: int = 1,
                 bootstrap: bool = True, random_state: int = 0) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.min_samples_leaf = min_samples_leaf
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.trees_: List[DecisionTreeClassifier] = []

    def _resolve_max_features(self, num_features: int) -> Optional[int]:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(round(np.sqrt(num_features))))
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, num_features))
        raise ValueError(f"unsupported max_features {self.max_features!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = self._validate(X, y)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        rng = np.random.default_rng(self.random_state)
        max_features = self._resolve_max_features(X.shape[1])
        self.trees_ = []
        for index in range(self.n_estimators):
            if self.bootstrap:
                rows = rng.integers(0, len(X), size=len(X))
            else:
                rows = np.arange(len(X))
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=int(rng.integers(0, 2 ** 31 - 1)))
            sample_y = y[rows]
            if len(np.unique(sample_y)) < 2:
                # degenerate bootstrap: force at least one sample of another class
                missing = np.setdiff1d(self.classes_, np.unique(sample_y))
                for label in missing:
                    rows[int(rng.integers(0, len(rows)))] = int(
                        np.flatnonzero(y == label)[0])
                sample_y = y[rows]
            tree.fit(X[rows], sample_y)
            self.trees_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("RandomForestClassifier used before fit")
        X = self._validate(X)
        aggregate = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.trees_:
            tree_probabilities = tree.predict_proba(X)
            # align tree class order with forest class order
            for column, label in enumerate(tree.classes_):
                forest_column = int(np.flatnonzero(self.classes_ == label)[0])
                aggregate[:, forest_column] += tree_probabilities[:, column]
        return aggregate / len(self.trees_)
