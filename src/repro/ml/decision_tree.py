"""CART decision tree (gini / entropy splits)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ml.base import Classifier


@dataclass
class _Node:
    """A tree node; leaves carry a class-probability vector."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    probabilities: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.probabilities is not None


def _impurity(counts: np.ndarray, criterion: str) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    if criterion == "entropy":
        nonzero = proportions[proportions > 0]
        return float(-np.sum(nonzero * np.log2(nonzero)))
    return float(1.0 - np.sum(proportions ** 2))


class DecisionTreeClassifier(Classifier):
    """Binary-split CART classifier.

    Args:
        max_depth: Maximum tree depth (None = unbounded).
        min_samples_split: Minimum samples required to attempt a split.
        min_samples_leaf: Minimum samples in each child of a split.
        criterion: ``"gini"`` or ``"entropy"``.
        max_features: If set, the number of features sampled per split (used
            by the random forest); None uses all features.
        random_state: Seed for feature subsampling.
    """

    name = "decision-tree"

    def __init__(self, max_depth: Optional[int] = 12, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, criterion: str = "gini",
                 max_features: Optional[int] = None,
                 random_state: Optional[int] = None) -> None:
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"unknown criterion {criterion!r}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.criterion = criterion
        self.max_features = max_features
        self.random_state = random_state
        self._root: Optional[_Node] = None
        self._rng = np.random.default_rng(random_state)

    # ------------------------------------------------------------------ #

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = self._validate(X, y)
        encoded = self._encode_labels(y)
        self._num_classes = len(self.classes_)
        self._root = self._grow(X, encoded, depth=0)
        return self

    def _leaf(self, y: np.ndarray) -> _Node:
        counts = np.bincount(y, minlength=self._num_classes).astype(np.float64)
        total = counts.sum() or 1.0
        return _Node(probabilities=counts / total)

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        if (len(y) < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or len(np.unique(y)) == 1):
            return self._leaf(y)

        feature, threshold = self._best_split(X, y)
        if feature < 0:
            return self._leaf(y)

        mask = X[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return self._leaf(y)
        node = _Node(feature=feature, threshold=threshold)
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple:
        num_samples, num_features = X.shape
        parent_counts = np.bincount(y, minlength=self._num_classes).astype(np.float64)
        parent_impurity = _impurity(parent_counts, self.criterion)
        best_gain = 1e-12
        best = (-1, 0.0)

        if self.max_features is not None and self.max_features < num_features:
            candidate_features = self._rng.choice(num_features, size=self.max_features,
                                                  replace=False)
        else:
            candidate_features = np.arange(num_features)

        for feature in candidate_features:
            order = np.argsort(X[:, feature], kind="mergesort")
            values = X[order, feature]
            labels = y[order]
            # cumulative class counts below each candidate split position
            one_hot = np.zeros((num_samples, self._num_classes))
            one_hot[np.arange(num_samples), labels] = 1.0
            left_counts = np.cumsum(one_hot, axis=0)
            # only positions where the value changes are valid thresholds
            change = np.flatnonzero(np.diff(values) > 1e-12)
            if len(change) == 0:
                continue
            for position in change:
                left = left_counts[position]
                right = parent_counts - left
                n_left, n_right = left.sum(), right.sum()
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                weighted = (n_left * _impurity(left, self.criterion)
                            + n_right * _impurity(right, self.criterion)) / num_samples
                gain = parent_impurity - weighted
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float((values[position] + values[position + 1]) / 2.0))
        return best

    # ------------------------------------------------------------------ #

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("DecisionTreeClassifier used before fit")
        X = self._validate(X)
        output = np.zeros((X.shape[0], self._num_classes))
        for row in range(X.shape[0]):
            node = self._root
            while not node.is_leaf:
                node = node.left if X[row, node.feature] <= node.threshold else node.right
            output[row] = node.probabilities
        return output

    def depth(self) -> int:
        """Actual depth of the grown tree (0 for a single leaf)."""
        def _depth(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))
        return _depth(self._root)
