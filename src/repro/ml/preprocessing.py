"""Feature scaling and array-level train/test splitting."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class StandardScaler:
    """Zero-mean / unit-variance feature scaling."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler.transform called before fit")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class MinMaxScaler:
    """Scale features into [0, 1] per column."""

    def __init__(self) -> None:
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = np.asarray(X, dtype=np.float64)
        self.min_ = X.min(axis=0)
        value_range = X.max(axis=0) - self.min_
        value_range[value_range == 0] = 1.0
        self.range_ = value_range
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("MinMaxScaler.transform called before fit")
        return (np.asarray(X, dtype=np.float64) - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


def train_test_split(X: np.ndarray, y: np.ndarray, test_fraction: float = 0.3,
                     seed: int = 0, stratify: bool = True
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split feature/label arrays into train and test portions.

    Args:
        X: Feature matrix.
        y: Label vector.
        test_fraction: Fraction of samples assigned to the test split.
        seed: Shuffling seed.
        stratify: Preserve per-class proportions.

    Returns:
        ``(X_train, X_test, y_train, y_test)``.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("X and y have inconsistent lengths")
    rng = np.random.default_rng(seed)
    test_indices: list = []
    train_indices: list = []
    if stratify:
        for label in np.unique(y):
            indices = np.flatnonzero(y == label)
            rng.shuffle(indices)
            cut = max(1, int(round(len(indices) * test_fraction))) if len(indices) > 1 else 0
            test_indices.extend(indices[:cut].tolist())
            train_indices.extend(indices[cut:].tolist())
    else:
        indices = np.arange(len(y))
        rng.shuffle(indices)
        cut = int(round(len(indices) * test_fraction))
        test_indices = indices[:cut].tolist()
        train_indices = indices[cut:].tolist()
    rng.shuffle(train_indices)
    rng.shuffle(test_indices)
    return X[train_indices], X[test_indices], y[train_indices], y[test_indices]
