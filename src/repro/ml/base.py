"""Base classifier protocol."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np


class Classifier(abc.ABC):
    """A binary (or small multi-class) classifier.

    All implementations store the sorted unique training labels in
    ``self.classes_`` after fit and return probability matrices whose columns
    follow that order.
    """

    #: Short name used in experiment tables.
    name: str = "classifier"

    classes_: Optional[np.ndarray] = None

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train on features ``X`` (n_samples, n_features) and labels ``y``."""

    @abc.abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix of shape (n_samples, n_classes)."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels (argmax of :meth:`predict_proba`)."""
        probabilities = self.predict_proba(X)
        if self.classes_ is None:
            raise RuntimeError("classifier used before fit")
        return self.classes_[np.argmax(probabilities, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on ``(X, y)``."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    # ------------------------------------------------------------------ #
    # shared helpers

    @staticmethod
    def _validate(X: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y is not None:
            y = np.asarray(y)
            if len(y) != X.shape[0]:
                raise ValueError("X and y have inconsistent lengths")
        return X

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        """Store classes_ and return labels re-encoded as 0..n_classes-1."""
        self.classes_ = np.unique(np.asarray(y))
        index = {label: i for i, label in enumerate(self.classes_)}
        return np.array([index[label] for label in np.asarray(y)], dtype=np.int64)
